
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accuracy.cc" "tests/CMakeFiles/dtusim_tests.dir/test_accuracy.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_accuracy.cc.o.d"
  "/root/repo/tests/test_api.cc" "tests/CMakeFiles/dtusim_tests.dir/test_api.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_api.cc.o.d"
  "/root/repo/tests/test_baseline.cc" "tests/CMakeFiles/dtusim_tests.dir/test_baseline.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_baseline.cc.o.d"
  "/root/repo/tests/test_codegen.cc" "tests/CMakeFiles/dtusim_tests.dir/test_codegen.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_codegen.cc.o.d"
  "/root/repo/tests/test_compiler.cc" "tests/CMakeFiles/dtusim_tests.dir/test_compiler.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_compiler.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/dtusim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dma.cc" "tests/CMakeFiles/dtusim_tests.dir/test_dma.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_dma.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/dtusim_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_icache.cc" "tests/CMakeFiles/dtusim_tests.dir/test_icache.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_icache.cc.o.d"
  "/root/repo/tests/test_importer_profiler.cc" "tests/CMakeFiles/dtusim_tests.dir/test_importer_profiler.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_importer_profiler.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/dtusim_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/dtusim_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/dtusim_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/dtusim_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_multicore.cc" "tests/CMakeFiles/dtusim_tests.dir/test_multicore.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_multicore.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/dtusim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/dtusim_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_sim_kernel.cc" "tests/CMakeFiles/dtusim_tests.dir/test_sim_kernel.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_sim_kernel.cc.o.d"
  "/root/repo/tests/test_soc.cc" "tests/CMakeFiles/dtusim_tests.dir/test_soc.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_soc.cc.o.d"
  "/root/repo/tests/test_sync_power.cc" "tests/CMakeFiles/dtusim_tests.dir/test_sync_power.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_sync_power.cc.o.d"
  "/root/repo/tests/test_tensor.cc" "tests/CMakeFiles/dtusim_tests.dir/test_tensor.cc.o" "gcc" "tests/CMakeFiles/dtusim_tests.dir/test_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
