# Empty compiler generated dependencies file for dtusim_tests.
# This may be replaced when dependencies are built.
