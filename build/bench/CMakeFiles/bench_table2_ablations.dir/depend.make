# Empty dependencies file for bench_table2_ablations.
# This may be replaced when dependencies are built.
