file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ablations.dir/bench_table2_ablations.cc.o"
  "CMakeFiles/bench_table2_ablations.dir/bench_table2_ablations.cc.o.d"
  "bench_table2_ablations"
  "bench_table2_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
