# Empty dependencies file for bench_spu_functions.
# This may be replaced when dependencies are built.
