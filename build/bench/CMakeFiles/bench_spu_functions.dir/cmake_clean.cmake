file(REMOVE_RECURSE
  "CMakeFiles/bench_spu_functions.dir/bench_spu_functions.cc.o"
  "CMakeFiles/bench_spu_functions.dir/bench_spu_functions.cc.o.d"
  "bench_spu_functions"
  "bench_spu_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spu_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
