# Empty dependencies file for bench_fig15_dnn_efficiency.
# This may be replaced when dependencies are built.
