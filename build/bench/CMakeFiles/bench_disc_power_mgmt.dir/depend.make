# Empty dependencies file for bench_disc_power_mgmt.
# This may be replaced when dependencies are built.
