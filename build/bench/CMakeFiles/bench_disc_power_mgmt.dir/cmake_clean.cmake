file(REMOVE_RECURSE
  "CMakeFiles/bench_disc_power_mgmt.dir/bench_disc_power_mgmt.cc.o"
  "CMakeFiles/bench_disc_power_mgmt.dir/bench_disc_power_mgmt.cc.o.d"
  "bench_disc_power_mgmt"
  "bench_disc_power_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disc_power_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
