file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_repeat_dma.dir/bench_fig6_repeat_dma.cc.o"
  "CMakeFiles/bench_fig6_repeat_dma.dir/bench_fig6_repeat_dma.cc.o.d"
  "bench_fig6_repeat_dma"
  "bench_fig6_repeat_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_repeat_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
