# Empty dependencies file for bench_fig6_repeat_dma.
# This may be replaced when dependencies are built.
