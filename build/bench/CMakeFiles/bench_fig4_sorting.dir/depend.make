# Empty dependencies file for bench_fig4_sorting.
# This may be replaced when dependencies are built.
