file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sorting.dir/bench_fig4_sorting.cc.o"
  "CMakeFiles/bench_fig4_sorting.dir/bench_fig4_sorting.cc.o.d"
  "bench_fig4_sorting"
  "bench_fig4_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
