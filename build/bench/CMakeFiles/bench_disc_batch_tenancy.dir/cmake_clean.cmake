file(REMOVE_RECURSE
  "CMakeFiles/bench_disc_batch_tenancy.dir/bench_disc_batch_tenancy.cc.o"
  "CMakeFiles/bench_disc_batch_tenancy.dir/bench_disc_batch_tenancy.cc.o.d"
  "bench_disc_batch_tenancy"
  "bench_disc_batch_tenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disc_batch_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
