# Empty compiler generated dependencies file for bench_disc_batch_tenancy.
# This may be replaced when dependencies are built.
