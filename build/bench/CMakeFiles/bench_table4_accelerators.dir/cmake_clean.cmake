file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_accelerators.dir/bench_table4_accelerators.cc.o"
  "CMakeFiles/bench_table4_accelerators.dir/bench_table4_accelerators.cc.o.d"
  "bench_table4_accelerators"
  "bench_table4_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
