file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dtype_sweep.dir/bench_ext_dtype_sweep.cc.o"
  "CMakeFiles/bench_ext_dtype_sweep.dir/bench_ext_dtype_sweep.cc.o.d"
  "bench_ext_dtype_sweep"
  "bench_ext_dtype_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dtype_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
