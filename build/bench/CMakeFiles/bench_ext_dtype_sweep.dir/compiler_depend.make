# Empty compiler generated dependencies file for bench_ext_dtype_sweep.
# This may be replaced when dependencies are built.
