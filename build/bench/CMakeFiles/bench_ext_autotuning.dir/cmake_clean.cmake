file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_autotuning.dir/bench_ext_autotuning.cc.o"
  "CMakeFiles/bench_ext_autotuning.dir/bench_ext_autotuning.cc.o.d"
  "bench_ext_autotuning"
  "bench_ext_autotuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_autotuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
