# Empty dependencies file for bench_ext_autotuning.
# This may be replaced when dependencies are built.
