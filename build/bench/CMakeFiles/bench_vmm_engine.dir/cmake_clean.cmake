file(REMOVE_RECURSE
  "CMakeFiles/bench_vmm_engine.dir/bench_vmm_engine.cc.o"
  "CMakeFiles/bench_vmm_engine.dir/bench_vmm_engine.cc.o.d"
  "bench_vmm_engine"
  "bench_vmm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vmm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
