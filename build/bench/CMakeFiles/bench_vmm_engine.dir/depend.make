# Empty dependencies file for bench_vmm_engine.
# This may be replaced when dependencies are built.
