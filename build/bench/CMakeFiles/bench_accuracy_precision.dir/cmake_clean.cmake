file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_precision.dir/bench_accuracy_precision.cc.o"
  "CMakeFiles/bench_accuracy_precision.dir/bench_accuracy_precision.cc.o.d"
  "bench_accuracy_precision"
  "bench_accuracy_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
