# Empty dependencies file for bench_accuracy_precision.
# This may be replaced when dependencies are built.
