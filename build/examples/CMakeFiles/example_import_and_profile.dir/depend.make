# Empty dependencies file for example_import_and_profile.
# This may be replaced when dependencies are built.
