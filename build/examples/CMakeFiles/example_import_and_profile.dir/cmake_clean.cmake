file(REMOVE_RECURSE
  "CMakeFiles/example_import_and_profile.dir/import_and_profile.cpp.o"
  "CMakeFiles/example_import_and_profile.dir/import_and_profile.cpp.o.d"
  "example_import_and_profile"
  "example_import_and_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_import_and_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
