file(REMOVE_RECURSE
  "CMakeFiles/example_topk_recommendation.dir/topk_recommendation.cpp.o"
  "CMakeFiles/example_topk_recommendation.dir/topk_recommendation.cpp.o.d"
  "example_topk_recommendation"
  "example_topk_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topk_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
