# Empty dependencies file for example_topk_recommendation.
# This may be replaced when dependencies are built.
