# Empty dependencies file for example_custom_operator.
# This may be replaced when dependencies are built.
