file(REMOVE_RECURSE
  "CMakeFiles/example_multi_tenant_serving.dir/multi_tenant_serving.cpp.o"
  "CMakeFiles/example_multi_tenant_serving.dir/multi_tenant_serving.cpp.o.d"
  "example_multi_tenant_serving"
  "example_multi_tenant_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_tenant_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
