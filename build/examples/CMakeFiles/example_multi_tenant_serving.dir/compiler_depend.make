# Empty compiler generated dependencies file for example_multi_tenant_serving.
# This may be replaced when dependencies are built.
