
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/tops_runtime.cc" "src/CMakeFiles/dtusim.dir/api/tops_runtime.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/api/tops_runtime.cc.o.d"
  "/root/repo/src/baseline/gpu_model.cc" "src/CMakeFiles/dtusim.dir/baseline/gpu_model.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/baseline/gpu_model.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/CMakeFiles/dtusim.dir/compiler/codegen.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/compiler/codegen.cc.o.d"
  "/root/repo/src/compiler/fusion.cc" "src/CMakeFiles/dtusim.dir/compiler/fusion.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/compiler/fusion.cc.o.d"
  "/root/repo/src/compiler/lowering.cc" "src/CMakeFiles/dtusim.dir/compiler/lowering.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/compiler/lowering.cc.o.d"
  "/root/repo/src/core/compute_core.cc" "src/CMakeFiles/dtusim.dir/core/compute_core.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/core/compute_core.cc.o.d"
  "/root/repo/src/core/icache.cc" "src/CMakeFiles/dtusim.dir/core/icache.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/core/icache.cc.o.d"
  "/root/repo/src/core/matrix_engine.cc" "src/CMakeFiles/dtusim.dir/core/matrix_engine.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/core/matrix_engine.cc.o.d"
  "/root/repo/src/core/register_file.cc" "src/CMakeFiles/dtusim.dir/core/register_file.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/core/register_file.cc.o.d"
  "/root/repo/src/core/spu.cc" "src/CMakeFiles/dtusim.dir/core/spu.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/core/spu.cc.o.d"
  "/root/repo/src/dma/dma_engine.cc" "src/CMakeFiles/dtusim.dir/dma/dma_engine.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/dma/dma_engine.cc.o.d"
  "/root/repo/src/dma/sparse_codec.cc" "src/CMakeFiles/dtusim.dir/dma/sparse_codec.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/dma/sparse_codec.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/dtusim.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/importer.cc" "src/CMakeFiles/dtusim.dir/graph/importer.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/graph/importer.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/dtusim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/dtusim.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/dtusim.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/isa/opcode.cc.o.d"
  "/root/repo/src/mem/allocator.cc" "src/CMakeFiles/dtusim.dir/mem/allocator.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/mem/allocator.cc.o.d"
  "/root/repo/src/mem/bandwidth.cc" "src/CMakeFiles/dtusim.dir/mem/bandwidth.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/mem/bandwidth.cc.o.d"
  "/root/repo/src/mem/hbm.cc" "src/CMakeFiles/dtusim.dir/mem/hbm.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/mem/hbm.cc.o.d"
  "/root/repo/src/mem/sram.cc" "src/CMakeFiles/dtusim.dir/mem/sram.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/mem/sram.cc.o.d"
  "/root/repo/src/models/blocks.cc" "src/CMakeFiles/dtusim.dir/models/blocks.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/blocks.cc.o.d"
  "/root/repo/src/models/classification.cc" "src/CMakeFiles/dtusim.dir/models/classification.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/classification.cc.o.d"
  "/root/repo/src/models/dense_prediction.cc" "src/CMakeFiles/dtusim.dir/models/dense_prediction.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/dense_prediction.cc.o.d"
  "/root/repo/src/models/detection.cc" "src/CMakeFiles/dtusim.dir/models/detection.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/detection.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/dtusim.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/sequence.cc" "src/CMakeFiles/dtusim.dir/models/sequence.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/models/sequence.cc.o.d"
  "/root/repo/src/power/cpme.cc" "src/CMakeFiles/dtusim.dir/power/cpme.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/power/cpme.cc.o.d"
  "/root/repo/src/power/lpme.cc" "src/CMakeFiles/dtusim.dir/power/lpme.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/power/lpme.cc.o.d"
  "/root/repo/src/runtime/accuracy.cc" "src/CMakeFiles/dtusim.dir/runtime/accuracy.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/runtime/accuracy.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/CMakeFiles/dtusim.dir/runtime/executor.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/runtime/executor.cc.o.d"
  "/root/repo/src/runtime/profiler.cc" "src/CMakeFiles/dtusim.dir/runtime/profiler.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/runtime/profiler.cc.o.d"
  "/root/repo/src/runtime/report.cc" "src/CMakeFiles/dtusim.dir/runtime/report.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/runtime/report.cc.o.d"
  "/root/repo/src/runtime/tenancy.cc" "src/CMakeFiles/dtusim.dir/runtime/tenancy.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/runtime/tenancy.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dtusim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/dtusim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/dtusim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/sim/stats.cc.o.d"
  "/root/repo/src/soc/config.cc" "src/CMakeFiles/dtusim.dir/soc/config.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/soc/config.cc.o.d"
  "/root/repo/src/soc/dtu.cc" "src/CMakeFiles/dtusim.dir/soc/dtu.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/soc/dtu.cc.o.d"
  "/root/repo/src/soc/processing_group.cc" "src/CMakeFiles/dtusim.dir/soc/processing_group.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/soc/processing_group.cc.o.d"
  "/root/repo/src/soc/resource_manager.cc" "src/CMakeFiles/dtusim.dir/soc/resource_manager.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/soc/resource_manager.cc.o.d"
  "/root/repo/src/sync/sync_engine.cc" "src/CMakeFiles/dtusim.dir/sync/sync_engine.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/sync/sync_engine.cc.o.d"
  "/root/repo/src/tensor/dtype.cc" "src/CMakeFiles/dtusim.dir/tensor/dtype.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/tensor/dtype.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/dtusim.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/dtusim.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/dtusim.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
