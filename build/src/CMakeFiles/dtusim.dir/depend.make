# Empty dependencies file for dtusim.
# This may be replaced when dependencies are built.
