file(REMOVE_RECURSE
  "libdtusim.a"
)
