/**
 * @file
 * Fig. 15 reproduction: per-DNN energy efficiency (performance per
 * watt) normalized to T4, all models in FP16 at batch 1.
 *
 * Paper checkpoints: i20's power efficiency beats T4 by 4% and A10
 * by 17% on (geometric) average; SRResNet shows the largest gain at
 * 2.03x (T4) / 2.39x (A10); i20 beats T4 on half the models.
 */

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

int
main()
{
    GpuModel t4(t4Spec(), t4Efficiency());
    GpuModel a10(a10Spec(), a10Efficiency());

    printBanner("Fig. 15: DNN energy efficiency normalized to T4 "
                "(perf/W, FP16, batch 1)");
    ReportTable table({"model", "i20_J", "T4_J", "A10_J",
                       "i20_vs_T4", "i20_vs_A10"});
    std::vector<double> vs_t4, vs_a10;
    for (const auto &model : models::modelZoo()) {
        // Power management ON: the shipping configuration.
        ChipRun i20 = runOnChip(dtu2Config(), model.name,
                                {.powerManagement = true});
        ExecutionPlan plan = gpuPlan(model.name);
        GpuResult r4 = t4.run(plan);
        GpuResult ra = a10.run(plan);
        // Efficiency = work per joule; with fixed work per inference
        // the ratio reduces to inverse energy.
        double s4 = r4.joules / i20.joules;
        double sa = ra.joules / i20.joules;
        vs_t4.push_back(s4);
        vs_a10.push_back(sa);
        table.addRow(model.name,
                     {i20.joules, r4.joules, ra.joules, s4, sa});
    }
    table.addRow("GeoMean", {0, 0, 0, geomean(vs_t4), geomean(vs_a10)});
    table.print();
    unsigned t4_wins = 0;
    for (double s : vs_t4)
        t4_wins += s > 1.0 ? 1 : 0;
    std::printf("\n  paper: GeoMean 1.04x (T4), 1.17x (A10); SRResNet "
                "2.03x / 2.39x; i20 beats T4 on 5/10\n");
    std::printf("  measured: GeoMean %.2fx / %.2fx; SRResNet %.2fx / "
                "%.2fx; i20 beats T4 on %u/10\n",
                geomean(vs_t4), geomean(vs_a10), vs_t4[7], vs_a10[7],
                t4_wins);
    return 0;
}
