/**
 * @file
 * Matrix-engine microbenchmarks (google-benchmark): functional VMM
 * execution across the supported shape/dtype patterns, the sorting
 * facility, and utilization of the fine-grained shapes vs the DTU
 * 1.0 coarse GEMM engine on tall-and-skinny reductions.
 */

#include <benchmark/benchmark.h>

#include "compiler/lowering.hh"
#include "core/matrix_engine.hh"
#include "core/register_file.hh"
#include "sim/random.hh"

using namespace dtu;

namespace
{

void
BM_VmmExecute(benchmark::State &state)
{
    auto rows = static_cast<unsigned>(state.range(0));
    RegisterFile regs;
    MatrixEngine engine(false);
    Random rng(7);
    for (unsigned r = 0; r < rows; ++r) {
        regs.setVlane(0, r, rng.uniform(-1, 1));
        for (unsigned c = 0; c < 16; ++c)
            regs.setMelem(0, r, c, rng.uniform(-1, 1));
    }
    Instruction inst{.op = Opcode::Vmm, .dst = 0, .a = 0, .b = 0,
                     .vmmRows = static_cast<int>(rows),
                     .accumulate = true, .dtype = DType::FP32};
    for (auto _ : state) {
        engine.executeVmm(regs, inst);
        benchmark::DoNotOptimize(regs);
    }
    state.counters["macs"] = static_cast<double>(rows) * 16;
    state.counters["engine_cycles"] =
        engine.vmmCycles(rows, DType::FP32);
}
BENCHMARK(BM_VmmExecute)->Arg(4)->Arg(8)->Arg(16);

void
BM_SortVector(benchmark::State &state)
{
    auto n = static_cast<std::size_t>(state.range(0));
    Random rng(11);
    std::vector<double> input(n);
    for (auto &v : input)
        v = rng.uniform(-10, 10);
    for (auto _ : state) {
        auto sorted = MatrixEngine::sortVector(input);
        benchmark::DoNotOptimize(sorted);
    }
}
BENCHMARK(BM_SortVector)->Arg(8)->Arg(16)->Arg(32);

void
BM_TopK(benchmark::State &state)
{
    Random rng(13);
    std::vector<double> input(32);
    for (auto &v : input)
        v = rng.uniform(-10, 10);
    for (auto _ : state) {
        auto top = MatrixEngine::topK(input, 8);
        benchmark::DoNotOptimize(top);
    }
}
BENCHMARK(BM_TopK);

/**
 * Tall-and-skinny utilization: fine-grained VMM vs coarse GEMM, the
 * motivation in Section III ("Capability v.s. Quantity").
 */
void
BM_SkinnyUtilization(benchmark::State &state)
{
    auto k = state.range(0);
    double vmm_util = 0.0, gemm_util = 0.0;
    for (auto _ : state) {
        vmm_util = tensorize(k, 512, DType::FP16, true).second;
        gemm_util = tensorize(k, 512, DType::FP16, false).second;
        benchmark::DoNotOptimize(vmm_util);
    }
    state.counters["vmm_util"] = vmm_util;
    state.counters["gemm_util"] = gemm_util;
    state.counters["advantage"] = vmm_util / gemm_util;
}
BENCHMARK(BM_SkinnyUtilization)->Arg(9)->Arg(27)->Arg(64)->Arg(576);

} // namespace

BENCHMARK_MAIN();
