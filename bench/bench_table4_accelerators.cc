/**
 * @file
 * Table IV reproduction: the accelerator roster used for evaluation
 * (Cloudblazer i10, Nvidia T4, Nvidia A10), from the baseline spec
 * database and the DTU 1.0 configuration.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dtu;

namespace
{

void
row(const char *label, double i10, double t4, double a10,
    const char *unit)
{
    std::printf("  %-22s %10.1f %10.1f %10.1f  %s\n", label, i10, t4, a10,
                unit);
}

} // namespace

int
main()
{
    DtuConfig i10 = dtu1Config();
    GpuSpec t4 = t4Spec();
    GpuSpec a10 = a10Spec();

    printBanner("Table IV: AI inference accelerators adopted for "
                "evaluation");
    std::printf("  %-22s %10s %10s %10s\n", "", "i10", "T4", "A10");
    row("FP32 Perf", i10.peakOpsPerSecond(DType::FP32) / 1e12,
        t4.fp32Tflops, a10.fp32Tflops, "TFLOPS (paper: 20/8.1/31.2)");
    row("FP16 Perf", i10.peakOpsPerSecond(DType::FP16) / 1e12,
        t4.fp16Tflops, a10.fp16Tflops, "TFLOPS (paper: 80/65/125)");
    row("INT8 Perf", i10.peakOpsPerSecond(DType::INT8) / 1e12,
        t4.int8Tops, a10.int8Tops, "TOPS (paper: 80/130/250)");
    row("Memory", static_cast<double>(i10.l3Bytes) / 1_GiB,
        t4.memoryGiB, a10.memoryGiB, "GB (paper: 16/16/24)");
    row("Bandwidth", i10.l3BytesPerSecond / 1e9, t4.bandwidthGBs,
        a10.bandwidthGBs, "GB/s (paper: 512/320/600)");
    row("Board TDP", i10.tdpWatts, t4.tdpWatts, a10.tdpWatts,
        "W (paper: 150/70/150)");
    std::printf("  %-22s %10s %10s %10s  (paper: 12/12/7 nm)\n",
                "Chip Technology", "12nm", "12nm", "7nm");
    std::printf("  %-22s %10s %10s %10s\n", "Interconnect", "PCIe4",
                t4.interconnect.c_str(), a10.interconnect.c_str());
    return 0;
}
