/**
 * @file
 * Discussion reproduction ("Power management ON v.s. OFF"): run
 * ResNet50 v1.5 and BERT-Large with (1) power management on — DVFS
 * between 1.0 and 1.4 GHz plus LPME integrity — and (2) power
 * management off — clocks pinned at 1.4 GHz with worst-case voltage
 * guard-bands.
 *
 * Paper checkpoints: 0.85% (ResNet50) and 3.2% (BERT) performance
 * drop with PM on, and 13% energy-efficiency improvement for both.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

int
main(int argc, char **argv)
{
    BenchOutput output(argc, argv, "disc_power_mgmt");
    printBanner("Discussion: power management ON vs OFF "
                "(DVFS 1.0-1.4 GHz vs fixed 1.4 GHz)");
    ReportTable table({"model", "off_ms", "on_ms", "perf_drop_%",
                       "off_J", "on_J", "eff_gain_%"});
    const char *models[] = {"resnet50", "bert_large"};
    const double paper_drop[] = {0.85, 3.2};
    for (int i = 0; i < 2; ++i) {
        ChipRun off = runOnChip(dtu2Config(), models[i],
                                {.powerManagement = false});
        ChipRun on = runOnChip(dtu2Config(), models[i],
                               {.powerManagement = true});
        double drop = (on.latencyMs - off.latencyMs) / off.latencyMs *
                      100.0;
        // Efficiency = inferences per joule; fixed work per run makes
        // the ratio the inverse energy ratio.
        double gain = (off.joules / on.joules - 1.0) * 100.0;
        table.addRow(models[i], {off.latencyMs, on.latencyMs, drop,
                                 off.joules, on.joules, gain});
        std::printf("  %s: paper drop %.2f%%, paper efficiency gain "
                    "13%%\n",
                    models[i], paper_drop[i]);
    }
    table.print();
    std::printf("\n  mechanism: bandwidth-bound windows coast the core "
                "clocks down (compute stays hidden under DMA), and the "
                "closed loop removes the worst-case voltage "
                "guard-band\n");
    output.table("power_mgmt_on_vs_off", table);
    return output.finish();
}
