/**
 * @file
 * Fig. 4 reproduction: the VMM-assisted data sorting facility and
 * Top-K selection, including a cycle-cost comparison against a
 * scalar-core insertion sort (the operation the matrix engine
 * replaces) and a hardware walk-through of the paper's four steps.
 */

#include <algorithm>
#include <cstdio>

#include "core/compute_core.hh"
#include "core/matrix_engine.hh"
#include "isa/assembler.hh"
#include "runtime/report.hh"
#include "sim/random.hh"

using namespace dtu;

namespace
{

/** Cycle cost of sorting one 16-element vector on the matrix engine. */
RunResult
sortOnCore(ComputeCore &core, const std::vector<double> &input)
{
    for (unsigned i = 0; i < 16; ++i)
        core.setL1Word(i, input[i]);
    Assembler as("sort16");
    as.sli(0, 0).vload(1, 0);
    as.mrel(0, 1);
    as.morder(2, 0);
    as.mperm(1, 2);
    as.mzeroacc(0);
    as.vmm(0, 1, 1, 16, true, DType::FP32);
    as.mreadacc(3, 0);
    as.sli(4, 32).vstore(3, 4);
    return core.run(as.finish());
}

/** Scalar-core insertion sort of the same vector (no matrix engine). */
RunResult
scalarSortOnCore(ComputeCore &core, const std::vector<double> &input)
{
    for (unsigned i = 0; i < 16; ++i)
        core.setL1Word(100 + i, input[i]);
    // Emit a fully unrolled compare-exchange network (bubble sort):
    // 15+14+...+1 = 120 scalar compare/swap pairs, each several
    // scalar ops — representative of a scalar fallback.
    Assembler as("scalar_sort16");
    for (int pass = 0; pass < 15; ++pass) {
        for (int i = 0; i < 15 - pass; ++i) {
            // Load both, compute min/max via vector ops on 1 lane,
            // store back. Approximated with scalar ops.
            as.sli(0, 100 + i).sli(1, 100 + i + 1);
            as.sadd(2, 0, 1).ssub(3, 0, 1).smul(4, 2, 3);
        }
    }
    return core.run(as.finish());
}

} // namespace

int
main()
{
    printBanner("Fig. 4: VMM-assisted data sorting");
    Random rng(2023);
    std::vector<double> input(16);
    for (auto &v : input)
        v = static_cast<double>(rng.between(0, 9));

    // Walk through the paper's four steps functionally.
    auto rel = MatrixEngine::relationshipMatrix(input);
    auto order = MatrixEngine::orderVector(rel);
    auto perm = MatrixEngine::permutationMatrix(order);
    auto sorted = MatrixEngine::sortVector(input);

    std::printf("  input vector:   ");
    for (double v : input)
        std::printf("%3.0f", v);
    std::printf("\n  order vector:   ");
    for (double v : order)
        std::printf("%3.0f", v);
    std::printf("\n  sorted vector:  ");
    for (double v : sorted)
        std::printf("%3.0f", v);
    auto check = input;
    std::sort(check.begin(), check.end());
    std::printf("\n  matches std::sort: %s (duplicates tie-broken by "
                "original index)\n",
                sorted == check ? "yes" : "NO");

    auto top4 = MatrixEngine::topK(input, 4);
    std::printf("  top-4:          ");
    for (double v : top4)
        std::printf("%3.0f", v);
    std::printf("\n");

    // Cycle comparison on the simulated core.
    EventQueue queue;
    ClockDomain clock(queue, 1.3e9);
    CoreConfig config;
    ComputeCore core("bench.core", queue, nullptr, clock, config);
    RunResult vmm = sortOnCore(core, input);
    RunResult scalar = scalarSortOnCore(core, input);
    std::printf("\n  matrix-engine sort: %llu cycles\n",
                static_cast<unsigned long long>(vmm.cycles));
    std::printf("  scalar sort:        %llu cycles (%.1fx slower)\n",
                static_cast<unsigned long long>(scalar.cycles),
                static_cast<double>(scalar.cycles) /
                    static_cast<double>(vmm.cycles));
    return 0;
}
