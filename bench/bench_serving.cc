/**
 * @file
 * Request-level serving: arrival rate x batching policy sweep on a
 * ResNet50 + BERT-Large mix (3:1 by request count).
 *
 * Each cell replays the same Poisson arrival trace through the
 * dynamic batcher at a different policy: batch-1 FIFO (the strawman
 * every serving stack starts from), and dynamic batching with
 * maxBatch 4 and 8 under a bounded queue delay. BERT-Large is capped
 * at batch 1 in the dynamic policies (its runtime scales linearly
 * with batch, so batching it only serializes work — see
 * BatchingPolicy::perModelMaxBatch); ResNet50 amortizes weight
 * streams and kernel loads, costing 0.6x per request at batch 8.
 * Reported per cell: sustained QPS, p50/p99 latency, deadline-miss
 * rate, energy per request, and the mean formed batch. The headline
 * is the cloud claim behind Section IV-E: at saturating offered
 * load, dynamic batching sustains strictly more QPS than batch-1
 * FIFO on the same chip.
 *
 *     bench_serving [--json <path>] [--timeline <path>]
 *
 * --timeline replays the highest-load dynamic cell with the tracer
 * on and writes a Perfetto-loadable trace in which request and batch
 * spans sit above the per-operator spans.
 */

#include <cstdio>

#include "bench_common.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

// 3:1 ResNet50:BERT-Large mix with per-model SLOs.
std::vector<serve::Request>
mixTrace(double qps)
{
    return serve::finalizeTrace(
        {serve::poissonTrace("resnet50", qps * 0.75, 96, /*seed=*/101,
                             /*deadline=*/secondsToTicks(20e-3)),
         serve::poissonTrace("bert_large", qps * 0.25, 32,
                             /*seed=*/202,
                             /*deadline=*/secondsToTicks(80e-3))});
}

serve::ServingConfig
policyConfig(unsigned max_batch)
{
    serve::ServingConfig config;
    config.batching.maxBatch = max_batch;
    config.batching.maxQueueDelay = secondsToTicks(2e-3);
    if (max_batch > 1)
        config.batching.perModelMaxBatch["bert_large"] = 1;
    config.groupsPerBatch = 1;
    return config;
}

serve::ServingReport
runCell(const std::vector<serve::Request> &trace, unsigned max_batch,
        const std::string &timeline_path = "")
{
    Dtu chip(dtu2Config());
    ResourceManager rm(chip);
    serve::ServingConfig config = policyConfig(max_batch);
    config.exec.timeline = !timeline_path.empty();
    serve::Scheduler scheduler(chip, rm, config);
    serve::ServingReport report = scheduler.serve(trace);
    if (!timeline_path.empty())
        chip.tracer().writeChromeTrace(timeline_path);
    return report;
}

std::string
policyName(unsigned max_batch)
{
    return max_batch == 1 ? std::string("fifo-1")
                          : "dyn-" + std::to_string(max_batch);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "serving", {"--timeline"});
    printBanner("Serving: arrival rate x batching policy "
                "(ResNet50 + BERT-Large, 3:1)");

    const double rates[] = {500.0, 1500.0, 4000.0};
    const unsigned policies[] = {1, 4, 8};

    ReportTable table({"offered_qps/policy", "achieved_qps", "p50_ms",
                       "p99_ms", "miss_rate", "j_per_req",
                       "mean_batch"});
    double fifo_qps_at_peak = 0.0;
    double best_dynamic_qps_at_peak = 0.0;
    const double peak = rates[2];

    for (double rate : rates) {
        std::vector<serve::Request> trace = mixTrace(rate);
        for (unsigned max_batch : policies) {
            serve::ServingReport r = runCell(trace, max_batch);
            std::string cell = std::to_string(
                                   static_cast<int>(rate)) +
                               " " + policyName(max_batch);
            table.addRow(cell,
                         {r.achievedQps, r.p50Ms, r.p99Ms, r.missRate,
                          r.joulesPerRequest, r.meanBatchSize});
            std::string prefix = "qps" +
                                 std::to_string(
                                     static_cast<int>(rate)) +
                                 "_" + policyName(max_batch) + "_";
            out.metric(prefix + "achieved_qps", r.achievedQps);
            out.metric(prefix + "p50_ms", r.p50Ms);
            out.metric(prefix + "p99_ms", r.p99Ms);
            out.metric(prefix + "miss_rate", r.missRate);
            out.metric(prefix + "j_per_req", r.joulesPerRequest);
            if (rate == peak && max_batch == 1)
                fifo_qps_at_peak = r.achievedQps;
            if (rate == peak && max_batch > 1)
                best_dynamic_qps_at_peak =
                    std::max(best_dynamic_qps_at_peak, r.achievedQps);
        }
    }
    table.print();

    double gain = best_dynamic_qps_at_peak / fifo_qps_at_peak;
    out.metric("dynamic_vs_fifo_qps_gain_at_peak", gain);
    std::printf("\n  at %.0f offered QPS, dynamic batching sustains "
                "%.2fx the QPS of batch-1 FIFO%s\n",
                peak, gain, gain > 1.0 ? "" : "  ** REGRESSION **");

    const std::string &timeline = out.option("--timeline");
    if (!timeline.empty()) {
        runCell(mixTrace(peak), 8, timeline);
        std::printf("  timeline with request spans: %s "
                    "(open in https://ui.perfetto.dev)\n",
                    timeline.c_str());
    }
    return out.finish();
}
