/**
 * @file
 * Fig. 13 reproduction: DNN inference latency across platforms, all
 * models in FP16 at batch 1, normalized to the Nvidia T4 (higher =
 * faster than T4).
 *
 * Paper checkpoints: GeoMean speedup 2.22x over T4 and 1.16x over
 * A10; largest win SRResNet at 4.34x (T4) / 2.37x (A10); A10 wins
 * 3 of 10 models, notably in image classification (VGG16,
 * Inception v4).
 */

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

int
main(int argc, char **argv)
{
    BenchOutput output(argc, argv, "fig13_latency");
    GpuModel t4(t4Spec(), t4Efficiency());
    GpuModel a10(a10Spec(), a10Efficiency());

    printBanner("Fig. 13: DNN latency normalized to T4 (FP16, batch 1)");
    ReportTable table({"model", "i20_ms", "T4_ms", "A10_ms",
                       "i20_vs_T4", "i20_vs_A10"});
    std::vector<double> vs_t4, vs_a10;
    for (const auto &model : models::modelZoo()) {
        ChipRun i20 = runOnChip(dtu2Config(), model.name);
        ExecutionPlan plan = gpuPlan(model.name);
        double t4_ms = t4.run(plan).latencyMs();
        double a10_ms = a10.run(plan).latencyMs();
        double s4 = t4_ms / i20.latencyMs;
        double sa = a10_ms / i20.latencyMs;
        vs_t4.push_back(s4);
        vs_a10.push_back(sa);
        table.addRow(model.name,
                     {i20.latencyMs, t4_ms, a10_ms, s4, sa});
    }
    table.addRow("GeoMean", {0, 0, 0, geomean(vs_t4), geomean(vs_a10)});
    table.print();
    std::printf("\n  paper: GeoMean 2.22x (T4), 1.16x (A10); "
                "SRResNet 4.34x / 2.37x; A10 wins 3/10\n");
    unsigned a10_wins = 0;
    for (double s : vs_a10)
        a10_wins += s < 1.0 ? 1 : 0;
    std::printf("  measured: GeoMean %.2fx / %.2fx; SRResNet %.2fx / "
                "%.2fx; A10 wins %u/10\n",
                geomean(vs_t4), geomean(vs_a10), vs_t4[7], vs_a10[7],
                a10_wins);
    output.table("fig13", table);
    output.metric("geomean_vs_t4", geomean(vs_t4));
    output.metric("geomean_vs_a10", geomean(vs_a10));
    output.metric("srresnet_vs_t4", vs_t4[7]);
    output.metric("srresnet_vs_a10", vs_a10[7]);
    output.metric("a10_wins", a10_wins);
    return output.finish();
}
