/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef DTU_BENCH_BENCH_COMMON_HH
#define DTU_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/gpu_model.hh"
#include "compiler/lowering.hh"
#include "models/model_zoo.hh"
#include "runtime/executor.hh"
#include "runtime/report.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "soc/dtu.hh"

namespace dtu
{
namespace bench
{

/**
 * Machine-readable output for the figure binaries. Every bench keeps
 * printing its human-readable table to stdout; when invoked as
 *
 *     bench_figNN --json <path>
 *
 * the same numbers are also written to @p path as a JSON artifact:
 *
 *     {"schema_version": 1,
 *      "bench": "...",
 *      "run": {"git_describe": "...", "threads": "8", ...},
 *      "metrics": {"geomean_vs_t4": 2.2, ...},
 *      "tables": {"fig13": {"columns": [...], "rows": [...]}}}
 *
 * so CI can diff results across commits without screen-scraping the
 * aligned-column text (see EXPERIMENTS.md). schema_version guards
 * downstream parsers against artifact-shape drift; the run section
 * records provenance (the producing commit plus whatever knobs the
 * bench declares with meta(), e.g. threads and seed).
 */
class BenchOutput
{
  public:
    /**
     * @param value_flags extra accepted flags that take one value
     *        (e.g. {"--timeline"}); read them back with option().
     */
    BenchOutput(int argc, char **argv, std::string bench_name,
                std::vector<std::string> value_flags = {})
        : benchName_(std::move(bench_name))
    {
        auto usage = [&] {
            std::string line = "[--json <path>]";
            for (const std::string &flag : value_flags)
                line += " [" + flag + " <value>]";
            return line;
        };
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--json") {
                fatalIf(i + 1 >= argc, "--json requires a file path");
                jsonPath_ = argv[++i];
            } else if (std::find(value_flags.begin(), value_flags.end(),
                                 arg) != value_flags.end()) {
                fatalIf(i + 1 >= argc, arg, " requires a value");
                options_[arg] = argv[++i];
            } else if (arg == "--help" || arg == "-h") {
                std::printf("usage: %s %s\n", argv[0], usage().c_str());
                std::exit(0);
            } else {
                fatal("unknown argument '", arg, "' (usage: ", argv[0],
                      " ", usage(), ")");
            }
        }
    }

    /** Value of an extra flag, or "" when it was not given. */
    const std::string &
    option(const std::string &flag) const
    {
        static const std::string kEmpty;
        auto it = options_.find(flag);
        return it == options_.end() ? kEmpty : it->second;
    }

    /** Record a named table (serialized immediately, copy-free). */
    void
    table(const std::string &name, const ReportTable &t)
    {
        std::ostringstream ss;
        t.writeJson(ss);
        tables_.emplace_back(name, ss.str());
    }

    /** Record a named scalar (geomeans, checkpoint comparisons). */
    void
    metric(const std::string &name, double value)
    {
        metrics_.emplace_back(name, value);
    }

    /**
     * Record one run-provenance entry (threads, seed, trace length —
     * whatever identifies the run). Rendered as strings in the
     * artifact's "run" object next to the producing commit.
     */
    void
    meta(const std::string &name, const std::string &value)
    {
        meta_.emplace_back(name, value);
    }

    void
    meta(const std::string &name, std::uint64_t value)
    {
        meta(name, std::to_string(value));
    }

    /** `git describe` of the producing tree, or "unknown". */
    static std::string
    gitDescribe()
    {
        std::string out;
#if !defined(_WIN32)
        if (FILE *pipe = ::popen(
                "git describe --always --dirty 2>/dev/null", "r")) {
            char buf[128];
            while (std::fgets(buf, sizeof(buf), pipe))
                out += buf;
            ::pclose(pipe);
        }
#endif
        while (!out.empty() &&
               (out.back() == '\n' || out.back() == '\r'))
            out.pop_back();
        return out.empty() ? "unknown" : out;
    }

    /**
     * Write the artifact when --json was given. Call last in main();
     * returns the process exit code.
     */
    int
    finish()
    {
        if (jsonPath_.empty())
            return 0;
        std::ofstream out(jsonPath_);
        fatalIf(!out, "cannot open '", jsonPath_, "' for writing");
        JsonWriter json(out);
        json.beginObject();
        json.field("schema_version",
                   static_cast<std::uint64_t>(kSchemaVersion));
        json.field("bench", benchName_);
        json.key("run").beginObject();
        json.field("git_describe", gitDescribe());
        for (const auto &[name, value] : meta_)
            json.field(name, value);
        json.endObject();
        json.key("metrics").beginObject();
        for (const auto &[name, value] : metrics_)
            json.field(name, value);
        json.endObject();
        json.key("tables").beginObject();
        for (const auto &[name, doc] : tables_)
            json.key(name).raw(doc);
        json.endObject();
        json.endObject();
        out << "\n";
        fatalIf(!out.good(), "write to '", jsonPath_, "' failed");
        std::printf("\n  json artifact: %s\n", jsonPath_.c_str());
        return 0;
    }

    /** Artifact shape version; bump on breaking layout changes. */
    static constexpr unsigned kSchemaVersion = 1;

  private:
    std::string benchName_;
    std::string jsonPath_;
    std::map<std::string, std::string> options_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> tables_;
};

/** Result of one full-chip i20/i10 model run. */
struct ChipRun
{
    double latencyMs = 0.0;
    double joules = 0.0;
    double watts = 0.0;
};

/** Every processing group of a chip. */
inline std::vector<unsigned>
allGroups(const Dtu &)
{
    return {};
}

/** Run a model on a freshly built chip using all processing groups. */
inline ChipRun
runOnChip(const DtuConfig &config, const std::string &model,
          ExecOptions options = {.powerManagement = false},
          int batch = 1)
{
    Dtu chip(config);
    Graph graph = models::buildModel(model, batch);
    ExecutionPlan plan =
        compile(graph, config, DType::FP16, config.totalGroups(), {},
                batch);
    std::vector<unsigned> groups;
    for (unsigned g = 0; g < config.totalGroups(); ++g)
        groups.push_back(g);
    Executor executor(chip, groups, options);
    ExecResult result = executor.run(plan);
    return {result.latencyMs(), result.joules, result.watts};
}

/** The fused plan a GPU baseline evaluates (same compiler front end). */
inline ExecutionPlan
gpuPlan(const std::string &model, int batch = 1)
{
    Graph graph = models::buildModel(model, batch);
    DtuConfig config = dtu2Config();
    return compile(graph, config, DType::FP16, config.totalGroups(), {},
                   batch);
}

} // namespace bench
} // namespace dtu

#endif // DTU_BENCH_BENCH_COMMON_HH
