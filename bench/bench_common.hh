/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef DTU_BENCH_BENCH_COMMON_HH
#define DTU_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "baseline/gpu_model.hh"
#include "compiler/lowering.hh"
#include "models/model_zoo.hh"
#include "runtime/executor.hh"
#include "runtime/report.hh"
#include "soc/dtu.hh"

namespace dtu
{
namespace bench
{

/** Result of one full-chip i20/i10 model run. */
struct ChipRun
{
    double latencyMs = 0.0;
    double joules = 0.0;
    double watts = 0.0;
};

/** Every processing group of a chip. */
inline std::vector<unsigned>
allGroups(const Dtu &)
{
    return {};
}

/** Run a model on a freshly built chip using all processing groups. */
inline ChipRun
runOnChip(const DtuConfig &config, const std::string &model,
          ExecOptions options = {.powerManagement = false},
          int batch = 1)
{
    Dtu chip(config);
    Graph graph = models::buildModel(model, batch);
    ExecutionPlan plan =
        compile(graph, config, DType::FP16, config.totalGroups(), {},
                batch);
    std::vector<unsigned> groups;
    for (unsigned g = 0; g < config.totalGroups(); ++g)
        groups.push_back(g);
    Executor executor(chip, groups, options);
    ExecResult result = executor.run(plan);
    return {result.latencyMs(), result.joules, result.watts};
}

/** The fused plan a GPU baseline evaluates (same compiler front end). */
inline ExecutionPlan
gpuPlan(const std::string &model, int batch = 1)
{
    Graph graph = models::buildModel(model, batch);
    DtuConfig config = dtu2Config();
    return compile(graph, config, DType::FP16, config.totalGroups(), {},
                   batch);
}

} // namespace bench
} // namespace dtu

#endif // DTU_BENCH_BENCH_COMMON_HH
