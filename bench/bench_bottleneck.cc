/**
 * @file
 * Top-down bottleneck attribution of the paper's workloads.
 *
 * Runs each model on the simulated i20 with the performance sampler
 * and per-operator tracing enabled, then prints (and exports) where
 * every core tick went — issue, throttled, dma-wait, icache-stall,
 * idle — plus each operator's roofline placement against the chip's
 * compute and HBM ceilings. The Section VI analysis ("ResNet50 is
 * mostly compute-bound at batch 8; BERT's attention blocks live under
 * the bandwidth roof") as one reproducible binary.
 *
 *   bench_bottleneck                         # table to stdout
 *   bench_bottleneck --json out.json         # + machine-readable
 *   bench_bottleneck --prometheus out.prom   # + Prometheus scrape
 *   bench_bottleneck --csv out.csv           # + PMU time series
 *   bench_bottleneck --report out.json       # + full BottleneckReport
 *                                            #   of the last model
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/perf_monitor.hh"
#include "obs/prometheus.hh"
#include "obs/topdown.hh"

using namespace dtu;

int
main(int argc, char **argv)
{
    bench::BenchOutput out(argc, argv, "bench_bottleneck",
                           {"--prometheus", "--csv", "--report"});

    const DtuConfig config = dtu2Config();
    const std::vector<std::string> models = {"resnet50", "bert_large",
                                             "vgg16"};
    const int batch = 8;

    ReportTable table({"model", "issue %", "throttled %", "dma-wait %",
                       "icache %", "idle %", "top-op intensity",
                       "latency ms"});

    std::printf("top-down bottleneck attribution, i20 batch %d\n\n",
                batch);

    for (std::size_t mi = 0; mi < models.size(); ++mi) {
        const std::string &model = models[mi];
        const bool last = mi + 1 == models.size();

        Dtu chip(config);
        // 50 us sampling period: fine enough to see per-layer phases,
        // coarse enough that a full model run stays in thousands of
        // samples.
        obs::PerfMonitor &pm =
            chip.enablePerfSampling(secondsToTicks(50e-6));

        Graph graph = models::buildModel(model, batch);
        ExecutionPlan plan = compile(graph, config, DType::FP16,
                                     config.totalGroups(), {}, batch);
        std::vector<unsigned> groups;
        for (unsigned g = 0; g < config.totalGroups(); ++g)
            groups.push_back(g);
        Executor executor(chip, groups, {.trace = true});
        ExecResult result = executor.run(plan);

        obs::BottleneckReport report = obs::buildBottleneckReport(
            result, config, DType::FP16, groups);

        std::printf("== %s ==\n", model.c_str());
        report.print(std::cout);
        std::printf("  pmu: %zu samples across %zu counters\n\n",
                    pm.sampleCount(), pm.watched().size());

        // The operator with the highest arithmetic intensity — the
        // model's best shot at the compute roof.
        double top_intensity = 0.0;
        for (const obs::OpAttribution &op : report.operators) {
            top_intensity = std::max(
                top_intensity, op.roofline.intensityOpsPerByte);
        }
        table.addRow(model,
                     {100.0 * report.total.share(obs::TdCategory::Issue),
                      100.0 * report.total.share(
                                  obs::TdCategory::Throttled),
                      100.0 * report.total.share(
                                  obs::TdCategory::DmaWait),
                      100.0 * report.total.share(
                                  obs::TdCategory::IcacheStall),
                      100.0 * report.total.share(obs::TdCategory::Idle),
                      top_intensity, ticksToMilliSeconds(report.latency)});

        out.metric(model + "_issue_share",
                   report.total.share(obs::TdCategory::Issue));
        out.metric(model + "_dma_wait_share",
                   report.total.share(obs::TdCategory::DmaWait));
        out.metric(model + "_latency_ms",
                   ticksToMilliSeconds(report.latency));

        // Artifacts come from the last (largest-trace) model so one
        // invocation yields one coherent set of files.
        if (last) {
            const std::string &prom_path = out.option("--prometheus");
            if (!prom_path.empty()) {
                std::ofstream os(prom_path);
                fatalIf(!os, "cannot open '", prom_path, "'");
                obs::writePrometheusText(chip.stats(), os);
                std::printf("  prometheus artifact: %s\n",
                            prom_path.c_str());
            }
            const std::string &csv_path = out.option("--csv");
            if (!csv_path.empty()) {
                std::ofstream os(csv_path);
                fatalIf(!os, "cannot open '", csv_path, "'");
                pm.writeCsv(os);
                std::printf("  pmu csv artifact: %s\n",
                            csv_path.c_str());
            }
            const std::string &report_path = out.option("--report");
            if (!report_path.empty()) {
                std::ofstream os(report_path);
                fatalIf(!os, "cannot open '", report_path, "'");
                report.writeJson(os);
                std::printf("  bottleneck report artifact: %s\n",
                            report_path.c_str());
            }
        }
    }

    printBanner("per-model top-down summary");
    table.print();
    out.table("bottleneck", table);
    return out.finish();
}
