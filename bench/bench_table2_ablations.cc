/**
 * @file
 * Table II ablations: the hardware/software enhancements DTU 2.0
 * introduced, measured feature-by-feature by disabling each one and
 * re-running representative models on the full simulated chip.
 *
 * Also reports the end-to-end i20 vs i10 comparison (the Fig. 13
 * results the paper omits because "i10 performs worse than i20 for
 * all tested DNNs").
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

double
latencyWith(const std::string &model, ExecOptions options,
            LoweringOptions lowering = {}, DtuConfig config = dtu2Config())
{
    Dtu chip(config);
    Graph graph = models::buildModel(model);
    ExecutionPlan plan =
        compile(graph, config, DType::FP16, config.totalGroups(),
                lowering);
    std::vector<unsigned> groups;
    for (unsigned g = 0; g < config.totalGroups(); ++g)
        groups.push_back(g);
    Executor executor(chip, groups, options);
    return executor.run(plan).latencyMs();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput output(argc, argv, "table2_ablations");
    const std::vector<std::string> subjects = {"resnet50", "srresnet",
                                               "bert_large", "conformer"};
    ExecOptions base{.powerManagement = false};

    printBanner("Table II ablations: slowdown when one DTU 2.0 "
                "feature is disabled (x over full-featured)");
    ReportTable table({"feature off", "resnet50", "srresnet",
                       "bert_large", "conformer"});

    std::vector<double> baseline;
    for (const auto &model : subjects)
        baseline.push_back(latencyWith(model, base));

    auto ablate = [&](const std::string &label, ExecOptions options,
                      LoweringOptions lowering = {}) {
        std::vector<double> cells;
        for (std::size_t i = 0; i < subjects.size(); ++i) {
            cells.push_back(latencyWith(subjects[i], options, lowering) /
                            baseline[i]);
        }
        table.addRow(label, cells);
    };

    ExecOptions opt;

    opt = base;
    opt.useRepeat = false;
    ablate("repeat-mode DMA", opt);

    opt = base;
    opt.useBroadcast = false;
    ablate("L2 broadcast", opt);

    opt = base;
    opt.useSparse = false;
    ablate("sparse DMA", opt);

    opt = base;
    opt.usePrefetch = false;
    ablate("kernel prefetch", opt);

    opt = base;
    opt.useL2Residency = false;
    ablate("L2 residency", opt);

    LoweringOptions lowering;
    lowering.autoTensorize = false;
    ablate("fine-grained VMM", base, lowering);

    lowering = {};
    lowering.fusion.enabled = false;
    ablate("operator fusion", base, lowering);

    table.print();
    output.table("table2_feature_slowdowns", table);
    std::printf("\n  note: sparse DMA shows ~1.0x at batch 1 because "
                "double buffering hides the (reduced) L3 streams under "
                "compute; its benefit is bandwidth-bound, shown "
                "below.\n");

    printBanner("Sparse DMA under bandwidth pressure: effective "
                "speedup of a contended L3->L2 stream vs density");
    {
        ReportTable sparse_table({"density", "dense_us", "sparse_us",
                                  "speedup"});
        for (double density : {0.1, 0.25, 0.5, 0.75, 1.0}) {
            Tick dense_done = 0, sparse_done = 0;
            for (int mode = 0; mode < 2; ++mode) {
                Dtu chip(dtu2Config());
                DmaDescriptor desc;
                desc.src = MemLevel::L3;
                desc.dst = MemLevel::L2;
                desc.dtype = DType::FP16;
                desc.bytes = 8_MiB;
                desc.sparse = mode == 1;
                desc.density = density;
                // All six engines stream at once: contended HBM.
                Tick done = 0;
                for (unsigned g = 0; g < chip.totalGroups(); ++g)
                    done = std::max(done, chip.group(g).dma()
                                              .submitAt(0, desc)
                                              .done);
                (mode == 0 ? dense_done : sparse_done) = done;
            }
            sparse_table.addRow(
                std::to_string(density),
                {ticksToMicroSeconds(dense_done),
                 ticksToMicroSeconds(sparse_done),
                 static_cast<double>(dense_done) /
                     static_cast<double>(sparse_done)});
        }
        sparse_table.print();
        output.table("sparse_dma_vs_density", sparse_table);
    }

    printBanner("End-to-end i20 vs i10 (feature set + capacities + "
                "bandwidth together)");
    ReportTable gen({"model", "i10_ms", "i20_ms", "i20_speedup"});
    for (const auto &model : models::modelZoo()) {
        double i10 = latencyWith(model.name, base, {}, dtu1Config());
        double i20 = latencyWith(model.name, base, {}, dtu2Config());
        gen.addRow(model.name, {i10, i20, i10 / i20});
    }
    gen.print();
    std::printf("\n  paper: 'We omit the results of Cloudblazer i10, "
                "which performs worse than Cloudblazer i20 for all "
                "tested DNNs.'\n");
    output.table("i20_vs_i10_end_to_end", gen);
    return output.finish();
}
