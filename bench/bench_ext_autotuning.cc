/**
 * @file
 * Extension study: search-based data-flow auto-tuning.
 *
 * TopsEngine's "auto-tuning on data flows searches for efficient
 * data tiling solutions" (Section V-B), and the paper's future work
 * considers deeper search-based automation. This bench compares the
 * closed-form tiling heuristic (the calibrated default) against a
 * per-operator search over tile counts using the pipeline cost model
 * — deeper pipelines amortize DMA configuration and shrink the
 * unhidden fill/drain.
 */

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

double
latency(const std::string &model, bool search)
{
    DtuConfig config = dtu2Config();
    Dtu chip(config);
    LoweringOptions options;
    options.searchTiling = search;
    ExecutionPlan plan = compile(models::buildModel(model), config,
                                 DType::FP16, config.totalGroups(),
                                 options);
    Executor executor(chip, {0, 1, 2, 3, 4, 5},
                      {.powerManagement = false});
    return executor.run(plan).latencyMs();
}

} // namespace

int
main()
{
    printBanner("Extension: search-based data-flow auto-tuning vs the "
                "closed-form tiling heuristic");
    ReportTable table({"model", "heuristic_ms", "search_ms", "gain_%"});
    std::vector<double> gains;
    for (const auto &model : models::modelZoo()) {
        double h = latency(model.name, false);
        double s = latency(model.name, true);
        gains.push_back(h / s);
        table.addRow(model.name, {h, s, (h / s - 1.0) * 100.0});
    }
    table.print();
    std::printf("\n  geometric-mean gain: %.1f%% — the searched tile "
                "depths pipeline DMA under compute more tightly,\n"
                "  at the cost of a per-operator sweep at compile time "
                "(64 candidates/op)\n",
                (geomean(gains) - 1.0) * 100.0);
    return 0;
}
