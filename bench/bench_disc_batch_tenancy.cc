/**
 * @file
 * Discussion reproduction ("Latency v.s. Throughput"): VGG16 batch
 * throughput via multi-task/tenancy.
 *
 * The paper runs VGG16 at batch sizes 8 and 16 and reports the
 * Cloudblazer i20 beating the A10 by 1.11x and 1.17x, enabled by
 * parallel and isolated processing groups. We sweep the Fig. 7
 * resource mappings (6 tenants x 1 group, 2 tenants x 3 groups, one
 * monolithic tenant) and report each against the A10 baseline.
 */

#include <cstdio>

#include "bench_common.hh"
#include "runtime/tenancy.hh"

using namespace dtu;
using namespace dtu::bench;

int
main()
{
    GpuModel a10(a10Spec(), a10Efficiency());
    printBanner("Discussion: VGG16 batch throughput via "
                "multi-task/tenancy (img/s)");
    ReportTable table({"mapping", "batch8", "batch8_vs_A10", "batch16",
                       "batch16_vs_A10"});

    double a10_throughput[2];
    int batches[2] = {8, 16};
    for (int i = 0; i < 2; ++i) {
        ExecutionPlan plan = gpuPlan("vgg16", batches[i]);
        a10_throughput[i] = a10.run(plan).throughput;
    }
    table.addRow("A10 (monolithic)",
                 {a10_throughput[0], 1.0, a10_throughput[1], 1.0});

    struct Mapping
    {
        const char *label;
        unsigned tenants;
        unsigned groups;
    };
    const Mapping mappings[] = {
        {"i20 6 x 1-group", 6, 1},
        {"i20 2 x 3-group", 2, 3},
    };
    for (const Mapping &m : mappings) {
        double th[2];
        for (int i = 0; i < 2; ++i) {
            Dtu chip(dtu2Config());
            auto res = runBatched(
                chip, [](int b) { return models::buildVgg16(b); },
                batches[i], m.tenants, m.groups,
                {.powerManagement = false});
            th[i] = res.throughput;
        }
        table.addRow(m.label, {th[0], th[0] / a10_throughput[0], th[1],
                               th[1] / a10_throughput[1]});
    }
    table.print();
    std::printf("\n  paper: best i20 mapping beats A10 by 1.11x "
                "(batch 8) and 1.17x (batch 16)\n");
    std::printf("  measured (2 x 3-group mapping above): gains grow "
                "with batch size, reproducing the trend\n");
    return 0;
}
