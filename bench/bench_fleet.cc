/**
 * @file
 * Fleet serving: fleet size x routing policy x arrival pattern on
 * the ResNet50 + BERT-Large mix (3:1 by request count).
 *
 * Each cell replays an open-loop arrival trace whose offered load
 * scales with the fleet (4000 QPS and 128 requests per device, so
 * per-device pressure is constant) through a FleetServer of N
 * identically configured i20 devices. Two headlines:
 *
 *  - Data-parallel scale-out is near-linear: the aggregate achieved
 *    QPS of a 4-device fleet under Poisson load is ~4x a single
 *    device (each card serves its own slice; they share nothing).
 *  - Routing policy is a tail-latency lever: under bursty arrivals,
 *    least-outstanding routing undercuts round-robin's p99 because
 *    it steers bursts away from devices still draining a backlog
 *    (round-robin stacks requests behind a busy device whenever its
 *    turn comes up, which the heterogeneous ResNet/BERT mix
 *    punishes).
 *
 *     bench_fleet [--json <path>] [--max-devices <n>]
 *                 [--requests <per-device>] [--weight-gbps <gbps>]
 *                 [--threads <n>]
 *
 * --max-devices caps the sweep (CI smoke uses 2); --requests scales
 * the per-device trace length; --weight-gbps > 0 additionally
 * models first-placement PCIe weight loads at that bandwidth.
 * --threads drives every fleet with that many worker threads
 * (FleetConfig::threads) and adds a serial-vs-parallel A/B at the
 * largest size that fatals unless the two reports are byte-identical.
 *
 * The JSON artifact always carries simulator-speed metrics —
 * wall_clock_seconds and sim_ticks_per_second over the whole sweep —
 * so the perf trajectory (BENCH_*.json) can track simulator speed
 * across commits.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/server.hh"
#include "bench_common.hh"
#include "serve/arrival.hh"
#include "serve/fleet.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

constexpr double kQpsPerDevice = 4000.0;

std::vector<serve::Request>
mixTrace(const std::string &pattern, unsigned devices,
         unsigned per_device)
{
    double qps = kQpsPerDevice * devices;
    unsigned resnet = per_device * devices * 3 / 4;
    unsigned bert = per_device * devices / 4;
    Tick resnet_slo = secondsToTicks(20e-3);
    Tick bert_slo = secondsToTicks(80e-3);
    if (pattern == "poisson") {
        return serve::finalizeTrace(
            {serve::poissonTrace("resnet50", qps * 0.75, resnet,
                                 /*seed=*/101, resnet_slo),
             serve::poissonTrace("bert_large", qps * 0.25, bert,
                                 /*seed=*/202, bert_slo)});
    }
    return serve::finalizeTrace(
        {serve::burstyTrace("resnet50", qps * 0.75, resnet,
                            /*seed=*/303, /*burst=*/8, /*factor=*/4.0,
                            resnet_slo),
         serve::burstyTrace("bert_large", qps * 0.25, bert,
                            /*seed=*/404, /*burst=*/8, /*factor=*/4.0,
                            bert_slo)});
}

serve::ServingConfig
servingConfig()
{
    serve::ServingConfig config;
    config.batching.maxBatch = 8;
    config.batching.maxQueueDelay = secondsToTicks(2e-3);
    config.batching.perModelMaxBatch["bert_large"] = 1;
    config.groupsPerBatch = 1;
    return config;
}

unsigned
parseCount(const std::string &value, unsigned fallback)
{
    return value.empty()
               ? fallback
               : static_cast<unsigned>(std::stoul(value));
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "fleet",
                    {"--max-devices", "--requests", "--weight-gbps",
                     "--threads"});
    unsigned max_devices = parseCount(out.option("--max-devices"), 8);
    unsigned per_device = parseCount(out.option("--requests"), 128);
    double weight_gbps = out.option("--weight-gbps").empty()
                             ? 0.0
                             : std::stod(out.option("--weight-gbps"));
    unsigned threads = parseCount(out.option("--threads"), 1);
    unsigned hw = std::thread::hardware_concurrency();
    if (threads > 1 && hw > 0 && hw < threads)
        std::printf("  note: --threads %u > %u hardware thread%s; "
                    "results stay bit-identical but wall-clock gains "
                    "need real cores\n",
                    threads, hw, hw == 1 ? "" : "s");

    out.meta("threads", static_cast<std::uint64_t>(threads));
    out.meta("requests_per_device",
             static_cast<std::uint64_t>(per_device));
    out.meta("max_devices", static_cast<std::uint64_t>(max_devices));
    out.meta("arrival_seeds", "101/202/303/404");

    printBanner("Fleet serving: size x routing x arrival pattern "
                "(ResNet50 + BERT-Large, 3:1, "
                + std::to_string(static_cast<int>(kQpsPerDevice)) +
                " QPS/device)");

    std::vector<unsigned> sizes;
    for (unsigned s : {1u, 2u, 4u, 8u})
        if (s <= max_devices)
            sizes.push_back(s);
    const serve::RoutingPolicy policies[] = {
        serve::RoutingPolicy::RoundRobin,
        serve::RoutingPolicy::LeastOutstanding,
        serve::RoutingPolicy::ModelAffinity,
    };

    ReportTable table({"pattern/n/policy", "achieved_qps", "p50_ms",
                       "p99_ms", "miss_rate", "util", "j_per_req"});

    // achieved QPS by [pattern][size][policy] for the headlines.
    std::map<std::string,
             std::map<unsigned, std::map<std::string, double>>>
        achieved;
    std::map<std::string,
             std::map<unsigned, std::map<std::string, double>>>
        p99;

    auto sweep_start = std::chrono::steady_clock::now();
    double simulated_seconds = 0.0;

    for (const std::string pattern : {"poisson", "bursty"}) {
        for (unsigned size : sizes) {
            std::vector<serve::Request> trace =
                mixTrace(pattern, size, per_device);
            for (serve::RoutingPolicy policy : policies) {
                serve::FleetConfig config;
                config.devices = size;
                config.routing = policy;
                config.serving = servingConfig();
                config.weightLoadGbps = weight_gbps;
                config.threads = threads;
                FleetServer fleet(config);
                fleet.submit(trace);
                const serve::FleetReport &r = fleet.serveFleet();

                std::string policy_name =
                    serve::routingPolicyName(policy);
                std::string cell = pattern + " n" +
                                   std::to_string(size) + " " +
                                   policy_name;
                table.addRow(cell,
                             {r.fleet.achievedQps, r.fleet.p50Ms,
                              r.fleet.p99Ms, r.fleet.missRate,
                              r.fleet.groupUtilization,
                              r.fleet.joulesPerRequest});
                std::string prefix = pattern + "_n" +
                                     std::to_string(size) + "_" +
                                     policy_name + "_";
                out.metric(prefix + "achieved_qps",
                           r.fleet.achievedQps);
                out.metric(prefix + "p50_ms", r.fleet.p50Ms);
                out.metric(prefix + "p99_ms", r.fleet.p99Ms);
                out.metric(prefix + "miss_rate", r.fleet.missRate);
                achieved[pattern][size][policy_name] =
                    r.fleet.achievedQps;
                p99[pattern][size][policy_name] = r.fleet.p99Ms;
                simulated_seconds += ticksToSeconds(r.fleet.makespan);
            }
        }
    }
    double wall_seconds = secondsSince(sweep_start);
    table.print();
    out.table("fleet", table);

    // Simulator-speed headline: simulated time retired per second of
    // host wall-clock, summed over every sweep cell.
    double sim_ticks =
        simulated_seconds * static_cast<double>(ticksPerSecond);
    out.metric("wall_clock_seconds", wall_seconds);
    out.metric("simulated_ticks", sim_ticks);
    out.metric("sim_ticks_per_second",
               wall_seconds > 0.0 ? sim_ticks / wall_seconds : 0.0);
    std::printf("\n  sweep wall clock: %.2f s for %.3f simulated "
                "seconds (%.3g ticks/s, threads=%u)\n",
                wall_seconds, simulated_seconds,
                wall_seconds > 0.0 ? sim_ticks / wall_seconds : 0.0,
                threads);

    // Serial-vs-parallel A/B at the largest size: the parallel window
    // scheduler must reproduce the serial report byte-for-byte, and
    // we record the speedup it buys on this host.
    if (threads > 1) {
        unsigned ab_size = sizes.back();
        std::vector<serve::Request> trace =
            mixTrace("poisson", ab_size, per_device);
        auto run_ab = [&](unsigned n_threads, double *seconds) {
            serve::FleetConfig config;
            config.devices = ab_size;
            config.routing = serve::RoutingPolicy::LeastOutstanding;
            config.serving = servingConfig();
            config.weightLoadGbps = weight_gbps;
            config.threads = n_threads;
            FleetServer fleet(config);
            fleet.submit(trace);
            auto start = std::chrono::steady_clock::now();
            const serve::FleetReport &r = fleet.serveFleet();
            *seconds = secondsSince(start);
            std::ostringstream os;
            serve::writeJson(r, os, /*per_request=*/true);
            return os.str();
        };
        double serial_s = 0.0, parallel_s = 0.0;
        std::string serial = run_ab(1, &serial_s);
        std::string parallel = run_ab(threads, &parallel_s);
        fatalIf(serial != parallel,
                "threads=", threads, " fleet report diverged from "
                "serial at ", ab_size, " devices");
        double speedup =
            parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
        out.metric("ab_serial_seconds", serial_s);
        out.metric("ab_parallel_seconds", parallel_s);
        out.metric("ab_speedup_threads_" + std::to_string(threads),
                   speedup);
        std::printf("  serial/parallel A/B at n%u: %.2f s -> %.2f s "
                    "(%.2fx, threads=%u), reports byte-identical\n",
                    ab_size, serial_s, parallel_s, speedup, threads);
    }

    // Generation smoke: a short gpt_small decode run on one device,
    // so the perf-trajectory artifact also tracks tokens/s next to
    // the simulator-speed metrics.
    {
        serve::FleetConfig config;
        config.devices = 1;
        config.serving = servingConfig();
        FleetServer fleet(config);
        std::vector<serve::Request> gen_trace;
        for (unsigned i = 0; i < 16; ++i) {
            serve::Request r;
            r.model = "gpt_small";
            r.arrival = secondsToTicks(1e-4) * i;
            r.gen.promptLen = 64;
            r.gen.maxNewTokens = 16;
            gen_trace.push_back(r);
        }
        fleet.submit(serve::finalizeTrace({std::move(gen_trace)}));
        auto gen_start = std::chrono::steady_clock::now();
        const serve::FleetReport &g = fleet.serveFleet();
        double gen_wall = secondsSince(gen_start);
        out.metric("gen_tokens_per_second",
                   g.fleet.generation.tokensPerSecond);
        out.metric("gen_wall_clock_seconds", gen_wall);
        std::printf("  generation smoke: %.0f tokens/s simulated "
                    "(gpt_small, 16 req x 16 tokens, %.2f s wall)\n",
                    g.fleet.generation.tokensPerSecond, gen_wall);
    }

    // Headline 1: near-linear aggregate QPS scaling under open-loop
    // Poisson load (least-outstanding routing, largest size vs 1).
    unsigned top = sizes.back();
    double base = achieved["poisson"][1]["least_outstanding"];
    double scaled = achieved["poisson"][top]["least_outstanding"];
    double scaling = base > 0.0 ? scaled / base : 0.0;
    out.metric("poisson_qps_scaling_1_to_" + std::to_string(top),
               scaling);
    std::printf("\n  poisson scale-out: %u devices sustain %.2fx the "
                "QPS of one (ideal %.1fx)%s\n",
                top, scaling, static_cast<double>(top),
                scaling > 0.85 * top ? ""
                                     : "  ** SUBLINEAR **");

    // Headline 2: under bursty arrivals, least-outstanding beats
    // round-robin on tail latency at the largest fleet size.
    double lo_p99 = p99["bursty"][top]["least_outstanding"];
    double rr_p99 = p99["bursty"][top]["round_robin"];
    double ratio = rr_p99 > 0.0 ? lo_p99 / rr_p99 : 0.0;
    out.metric("bursty_p99_lo_over_rr_n" + std::to_string(top),
               ratio);
    std::printf("  bursty tail: least-outstanding p99 %.2f ms vs "
                "round-robin %.2f ms (%.2fx)%s\n",
                lo_p99, rr_p99, ratio,
                (top == 1 || ratio < 1.0) ? ""
                                          : "  ** REGRESSION **");

    return out.finish();
}
