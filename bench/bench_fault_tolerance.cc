/**
 * @file
 * Fault tolerance: fault rate x shedding policy sweep on the serving
 * stack (ResNet50 + BERT-Large, 3:1 by request count).
 *
 * Each cell replays the same near-saturation Poisson trace through
 * the dynamic batcher while the seeded FaultInjector disturbs the
 * chip at one of three levels: none (injector installed with every
 * rate at zero — the transparency baseline), moderate (occasional
 * ECC scrubs, 1% transient DMA faults, short thermal-throttle
 * episodes), and overload (sustained throttling to ~45% of nominal
 * clock plus 5% DMA faults — the chip cannot keep up with offered
 * load). Both degradation policies retry poisoned batches; "shed"
 * additionally bounces arrivals past an admission limit and drops
 * queued requests whose deadline already expired.
 *
 * Reported per cell: goodput (in-deadline completions per second),
 * achieved QPS, availability (completed / submitted), p99 latency,
 * and the drop/retry counters. The headline: under overload faults,
 * deadline-aware shedding sustains strictly more goodput than
 * serving every request late, because batches stop carrying
 * requests that already missed.
 *
 *     bench_fault_tolerance [--json <path>]
 */

#include <cstdio>

#include "bench_common.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"
#include "sim/fault.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

struct FaultLevel
{
    const char *name;
    FaultConfig config;
};

// All three levels share the seed so the thermal/ECC/DMA schedules
// are comparable across policies within a level.
std::vector<FaultLevel>
faultLevels()
{
    FaultConfig none;
    none.seed = 42;

    FaultConfig moderate;
    moderate.seed = 42;
    moderate.eccCorrectablePerGiB = 50.0;
    moderate.dmaTransientRate = 0.01;
    moderate.thermalMeanIntervalS = 50e-3;
    moderate.thermalMeanDurationS = 2e-3;
    moderate.thermalCapHz = 0.9e9;

    FaultConfig overload;
    overload.seed = 42;
    overload.eccCorrectablePerGiB = 200.0;
    overload.dmaTransientRate = 0.05;
    overload.thermalMeanIntervalS = 5e-3;
    overload.thermalMeanDurationS = 20e-3;
    overload.thermalCapHz = 0.45e9;

    return {{"none", none}, {"moderate", moderate},
            {"overload", overload}};
}

// Same 3:1 ResNet50:BERT-Large mix as bench_serving, offered near
// the fault-free saturation point so throttling tips it over.
std::vector<serve::Request>
mixTrace()
{
    const double qps = 3000.0;
    return serve::finalizeTrace(
        {serve::poissonTrace("resnet50", qps * 0.75, 96, /*seed=*/101,
                             /*deadline=*/secondsToTicks(20e-3)),
         serve::poissonTrace("bert_large", qps * 0.25, 32,
                             /*seed=*/202,
                             /*deadline=*/secondsToTicks(80e-3))});
}

serve::ServingConfig
policyConfig(bool shed)
{
    serve::ServingConfig config;
    config.batching.maxBatch = 8;
    config.batching.maxQueueDelay = secondsToTicks(2e-3);
    config.batching.perModelMaxBatch["bert_large"] = 1;
    config.groupsPerBatch = 1;
    config.degradation.maxBatchRetries = 2;
    if (shed) {
        config.degradation.shedExpired = true;
        config.degradation.requestTimeout = secondsToTicks(120e-3);
        config.degradation.admissionLimit = 64;
    }
    return config;
}

serve::ServingReport
runCell(const std::vector<serve::Request> &trace,
        const FaultConfig &faults, bool shed)
{
    Dtu chip(dtu2Config());
    chip.installFaults(faults);
    ResourceManager rm(chip);
    serve::Scheduler scheduler(chip, rm, policyConfig(shed));
    return scheduler.serve(trace);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "fault_tolerance");
    printBanner("Fault tolerance: fault rate x shedding policy "
                "(ResNet50 + BERT-Large, 3:1)");

    std::vector<serve::Request> trace = mixTrace();
    ReportTable table({"faults/policy", "goodput_qps", "achieved_qps",
                       "availability", "p99_ms", "dropped", "retries"});

    double none_goodput_overload = 0.0;
    double shed_goodput_overload = 0.0;

    for (const FaultLevel &level : faultLevels()) {
        for (bool shed : {false, true}) {
            serve::ServingReport r = runCell(trace, level.config, shed);
            std::string policy = shed ? "shed" : "none";
            double dropped = static_cast<double>(
                r.shedRequests + r.timedOutRequests +
                r.rejectedRequests + r.failedRequests);
            table.addRow(std::string(level.name) + " " + policy,
                         {r.goodputQps, r.achievedQps, r.availability,
                          r.p99Ms, dropped,
                          static_cast<double>(r.batchRetries)});
            std::string prefix =
                std::string(level.name) + "_" + policy + "_";
            out.metric(prefix + "goodput_qps", r.goodputQps);
            out.metric(prefix + "achieved_qps", r.achievedQps);
            out.metric(prefix + "availability", r.availability);
            out.metric(prefix + "p99_ms", r.p99Ms);
            out.metric(prefix + "dropped", dropped);
            out.metric(prefix + "batch_retries",
                       static_cast<double>(r.batchRetries));
            out.metric(prefix + "faults_injected",
                       static_cast<double>(r.faultsInjected));
            if (std::string(level.name) == "overload") {
                if (shed)
                    shed_goodput_overload = r.goodputQps;
                else
                    none_goodput_overload = r.goodputQps;
            }
        }
    }
    table.print();
    out.table("fault_tolerance", table);

    double gain = none_goodput_overload > 0.0
                      ? shed_goodput_overload / none_goodput_overload
                      : (shed_goodput_overload > 0.0 ? 999.0 : 1.0);
    out.metric("shed_vs_none_goodput_gain_overload", gain);
    std::printf("\n  under overload faults, deadline-aware shedding "
                "sustains %.2fx the goodput of no shedding%s\n",
                gain, gain > 1.0 ? "" : "  ** REGRESSION **");
    return out.finish();
}
