/**
 * @file
 * SPU microbenchmarks (google-benchmark): LUT + quadratic-Taylor
 * evaluation throughput and worst-case relative accuracy for each of
 * the ~10 supported transcendental functions (Section IV-A2).
 */

#include <benchmark/benchmark.h>

#include "core/spu.hh"

using namespace dtu;

namespace
{

void
BM_SpuEvaluate(benchmark::State &state)
{
    auto f = static_cast<SpuFunc>(state.range(0));
    Spu spu;
    double lo = -4.0, hi = 4.0;
    if (f == SpuFunc::Log || f == SpuFunc::Rsqrt) {
        lo = 0.25;
        hi = 8.0;
    }
    double x = lo;
    double step = (hi - lo) / 1024.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(spu.evaluate(f, x));
        x += step;
        if (x >= hi)
            x = lo;
    }
    state.SetLabel(spuFuncName(f));
    state.counters["max_rel_err"] =
        spu.maxRelativeError(f, lo, hi, 2000);
    state.counters["lanes_per_cycle"] =
        Spu::resultsPerCycle(DType::FP16, true);
}
BENCHMARK(BM_SpuEvaluate)->DenseRange(0, numSpuFuncs - 1);

void
BM_SpuTableSize(benchmark::State &state)
{
    auto entries = static_cast<unsigned>(state.range(0));
    Spu spu(entries);
    for (auto _ : state)
        benchmark::DoNotOptimize(spu.evaluate(SpuFunc::Tanh, 0.73));
    state.counters["max_rel_err"] =
        spu.maxRelativeError(SpuFunc::Tanh, -6, 6, 2000);
}
BENCHMARK(BM_SpuTableSize)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(
    1024);

} // namespace

BENCHMARK_MAIN();
