/**
 * @file
 * Table I reproduction: technical specifications of the Cloudblazer
 * i20 accelerator, derived from the simulated DTU 2.0 configuration
 * rather than hard-coded, so any model drift shows up here.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dtu;

int
main()
{
    DtuConfig c = dtu2Config();
    printBanner("Table I: Cloudblazer i20 technical specifications");
    std::printf("  %-22s %8.0f teraFLOPS (paper: 32)\n", "FP32",
                c.peakOpsPerSecond(DType::FP32) / 1e12);
    std::printf("  %-22s %8.0f teraFLOPS (paper: 128)\n", "TF32",
                c.peakOpsPerSecond(DType::TF32) / 1e12);
    std::printf("  %-22s %8.0f teraFLOPS (paper: 128)\n", "FP16",
                c.peakOpsPerSecond(DType::FP16) / 1e12);
    std::printf("  %-22s %8.0f teraFLOPS (paper: 128)\n", "BF16",
                c.peakOpsPerSecond(DType::BF16) / 1e12);
    std::printf("  %-22s %8.0f TOPS      (paper: 256)\n", "INT8",
                c.peakOpsPerSecond(DType::INT8) / 1e12);
    std::printf("  %-22s %8.0f GB        (paper: 16)\n", "Memory",
                static_cast<double>(c.l3Bytes) / (1024.0 * 1024.0 *
                                                  1024.0));
    std::printf("  %-22s %8.0f GB/s      (paper: 819)\n", "Bandwidth",
                c.l3BytesPerSecond / 1e9);
    std::printf("  %-22s %8.0f W         (paper: 150)\n", "Board TDP",
                c.tdpWatts);
    std::printf("  %-22s %8.0f GB/s      (paper: PCIe Gen4 64GB/s)\n",
                "Interconnect", c.pcieBytesPerSecond / 1e9);
    std::printf("  %-22s 2 clusters x 3 groups x 4 cores = %u cores\n",
                "Topology", c.totalCores());
    return 0;
}
