/**
 * @file
 * Power & energy observability: per-component attribution, the
 * CPME/LPME decision audit trail, and the serving-level energy
 * rollups, exercised end to end.
 *
 * Three parts:
 *
 *  1. Attribution tightness. Every zoo model runs once on a bare
 *     chip and the per-component EnergyBreakdown (MAC, vector/SPU,
 *     L1, L2, HBM, DMA, static leakage) must sum back to the energy
 *     meter's joules. max_component_sum_error is the CI gate
 *     (acceptance: within 0.1%).
 *
 *  2. Serving headline. ResNet50 request serving vs gpt_small
 *     autoregressive decode through a FleetServer with the energy
 *     monitor attached: the classic CNN burns its joules in the MAC
 *     arrays while decode pays the HBM/DMA streaming tax — the
 *     prefill/decode J/token contrast the capacity planner budgets
 *     by. Also emits the EnergyReport artifact (--energy-out) and
 *     the opt-in per-operator energy-feature corpus (--corpus-out).
 *
 *  3. Audit replay. A power-starved chip (tdpWatts cut to 60 W)
 *     serves a ResNet50+BERT mix with power management on; the run
 *     must replay at least one budget-denial -> DVFS-downshift ->
 *     recovery sequence, visible in all three exports: the
 *     PowerAuditTrail ring, the flight-recorder incident dump, and
 *     the merged Chrome trace. audit_replay_ok is the CI gate.
 *
 *     bench_energy [--json <path>] [--energy-out <path>]
 *                  [--corpus-out <path>] [--requests <n>]
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/server.hh"
#include "bench_common.hh"
#include "power/power_event.hh"
#include "serve/arrival.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

serve::ServingConfig
servingConfig()
{
    serve::ServingConfig config;
    config.batching.maxBatch = 8;
    config.batching.maxQueueDelay = secondsToTicks(2e-3);
    config.batching.perModelMaxBatch["bert_large"] = 1;
    config.groupsPerBatch = 1;
    return config;
}

/** One full-chip run keeping the component breakdown and op trace. */
ExecResult
runTraced(const std::string &model)
{
    DtuConfig config = dtu2Config();
    Dtu chip(config);
    Graph graph = models::buildModel(model, 1);
    ExecutionPlan plan =
        compile(graph, config, DType::FP16, config.totalGroups(), {}, 1);
    std::vector<unsigned> groups;
    for (unsigned g = 0; g < config.totalGroups(); ++g)
        groups.push_back(g);
    Executor executor(chip, groups, {.powerManagement = true,
                                     .trace = true});
    return executor.run(plan);
}

double
fraction(double part, double total)
{
    return total > 0.0 ? part / total : 0.0;
}

/** Component percentages of @p e plus a per-unit joules column. */
std::vector<double>
splitRow(const EnergyBreakdown &e, double per_unit)
{
    double t = e.total();
    return {100.0 * fraction(e.macJoules, t),
            100.0 * fraction(e.vectorJoules, t),
            100.0 * fraction(e.l1Joules, t),
            100.0 * fraction(e.l2Joules, t),
            100.0 * fraction(e.hbmJoules, t),
            100.0 * fraction(e.dmaJoules, t),
            100.0 * fraction(e.staticJoules, t),
            per_unit};
}

unsigned
parseCount(const std::string &value, unsigned fallback)
{
    return value.empty()
               ? fallback
               : static_cast<unsigned>(std::stoul(value));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "energy",
                    {"--energy-out", "--corpus-out", "--requests"});
    unsigned requests = parseCount(out.option("--requests"), 256);
    out.meta("requests", static_cast<std::uint64_t>(requests));
    out.meta("arrival_seeds", "11/21/22");

    printBanner("Power & energy observability: attribution, audit "
                "trail, fleet telemetry");

    //
    // Part 1: the per-component split must sum to the meter total on
    // every zoo model (the attribution is exact bucket deltas, so
    // anything above float noise means a component went missing).
    //
    ReportTable attr({"model", "joules", "mac%", "vec%", "l1%", "l2%",
                      "hbm%", "dma%", "static%", "sum_err"});
    double max_err = 0.0;
    for (const models::ModelInfo &info : models::modelZoo()) {
        ExecResult r = runTraced(info.name);
        double err = r.joules > 0.0
                         ? std::fabs(r.energy.total() - r.joules) /
                               r.joules
                         : 0.0;
        max_err = std::max(max_err, err);
        double t = r.energy.total();
        attr.addRow(info.name,
                    {r.joules,
                     100.0 * fraction(r.energy.macJoules, t),
                     100.0 * fraction(r.energy.vectorJoules, t),
                     100.0 * fraction(r.energy.l1Joules, t),
                     100.0 * fraction(r.energy.l2Joules, t),
                     100.0 * fraction(r.energy.hbmJoules, t),
                     100.0 * fraction(r.energy.dmaJoules, t),
                     100.0 * fraction(r.energy.staticJoules, t),
                     err});
    }
    attr.print();
    out.table("attribution", attr);
    out.metric("max_component_sum_error", max_err);
    std::printf("\n  worst component-sum error: %.3g (gate: 1e-3)\n",
                max_err);

    //
    // Part 2: serving headline — ResNet50 request serving vs
    // gpt_small prefill/decode, through the energy monitor.
    //
    ReportTable headline({"workload", "mac%", "vec%", "l1%", "l2%",
                          "hbm%", "dma%", "static%", "j_per_unit"});

    {
        serve::FleetConfig config;
        config.devices = 1;
        config.serving = servingConfig();
        FleetServer fleet(config);
        fleet.enableEnergyMonitor();
        fleet.submit(serve::finalizeTrace(
            {serve::poissonTrace("resnet50", 2000.0, requests,
                                 /*seed=*/11, secondsToTicks(20e-3))}));
        const serve::FleetReport &r = fleet.serveFleet();
        fatalIf(!r.fleet.hasEnergy,
                "energy monitor attached but the report has no "
                "energy section");
        headline.addRow("resnet50 serve (J/req)",
                        splitRow(r.fleet.energy,
                                 r.fleet.joulesPerRequest));
        out.metric("resnet50_j_per_request", r.fleet.joulesPerRequest);
        out.metric("resnet50_mac_fraction",
                   fraction(r.fleet.energy.macJoules,
                            r.fleet.energy.total()));
        out.metric("resnet50_hbm_dma_fraction",
                   fraction(r.fleet.energy.hbmJoules +
                                r.fleet.energy.dmaJoules,
                            r.fleet.energy.total()));
    }

    double decode_mem_fraction = 0.0;
    {
        serve::FleetConfig config;
        config.devices = 1;
        config.serving = servingConfig();
        FleetServer fleet(config);
        obs::EnergyMonitorConfig mon_config;
        mon_config.corpus = !out.option("--corpus-out").empty();
        obs::EnergyMonitor &monitor =
            fleet.enableEnergyMonitor(mon_config);
        std::vector<serve::Request> gen_trace;
        for (unsigned i = 0; i < 32; ++i) {
            serve::Request r;
            r.model = "gpt_small";
            r.arrival = secondsToTicks(1e-4) * i;
            r.gen.promptLen = 64;
            r.gen.maxNewTokens = 32;
            gen_trace.push_back(r);
        }
        fleet.submit(serve::finalizeTrace({std::move(gen_trace)}));
        const serve::FleetReport &r = fleet.serveFleet();
        const serve::GenerationReport &g = r.fleet.generation;
        fatalIf(!r.fleet.hasGeneration, "gpt_small run did not generate");
        headline.addRow("gpt_small prefill (J/tok)",
                        splitRow(g.prefill.energy,
                                 g.prefillJoulesPerToken));
        headline.addRow("gpt_small decode (J/tok)",
                        splitRow(g.decode.energy,
                                 g.decodeJoulesPerToken));
        out.metric("gpt_small_j_per_token", g.joulesPerToken);
        out.metric("gpt_small_prefill_j_per_token",
                   g.prefillJoulesPerToken);
        out.metric("gpt_small_decode_j_per_token",
                   g.decodeJoulesPerToken);
        decode_mem_fraction =
            fraction(g.decode.energy.hbmJoules +
                         g.decode.energy.dmaJoules,
                     g.decode.energy.total());
        out.metric("gpt_small_decode_hbm_dma_fraction",
                   decode_mem_fraction);
        out.metric("gpt_small_decode_mac_fraction",
                   fraction(g.decode.energy.macJoules,
                            g.decode.energy.total()));
        if (!out.option("--corpus-out").empty()) {
            std::ofstream corpus(out.option("--corpus-out"));
            fatalIf(!corpus, "cannot open '",
                    out.option("--corpus-out"), "'");
            monitor.writeCorpusJson(corpus);
            out.meta("corpus_rows", static_cast<std::uint64_t>(
                                        monitor.corpus().size()));
            std::printf("  energy corpus: %zu operator rows -> %s\n",
                        monitor.corpus().size(),
                        out.option("--corpus-out").c_str());
        }
    }
    std::printf("\n");
    headline.print();
    out.table("headline", headline);

    //
    // Part 3: audit replay on a power-starved chip. tdpWatts drops
    // from 150 W to 60 W: the reserve pool is nearly empty after the
    // boot-time baselines, so LPME borrows get denied, the feedback
    // throttles bite, and the DVFS loop coasts and climbs around the
    // ResNet/BERT phase changes. The denial -> downshift -> recovery
    // story must survive into all three exports.
    //
    DtuConfig starved = dtu2Config();
    starved.tdpWatts = 60.0;
    serve::FleetConfig config;
    config.devices = 1;
    config.serving = servingConfig();
    config.serving.exec.powerManagement = true;
    config.serving.exec.timeline = true;
    FleetServer fleet(config, starved);
    fleet.enableRequestTracing();
    obs::FlightRecorderConfig rec_config;
    rec_config.powerCapacity = 4096;
    fleet.enableFlightRecorder(rec_config);
    obs::EnergyMonitorConfig mon_config;
    mon_config.auditCapacity = 1 << 16;
    obs::EnergyMonitor &monitor = fleet.enableEnergyMonitor(mon_config);
    fleet.submit(serve::finalizeTrace(
        {serve::poissonTrace("resnet50", 2000.0, (requests * 3) / 4,
                             /*seed=*/21, secondsToTicks(40e-3)),
         serve::poissonTrace("bert_large", 700.0, requests / 4,
                             /*seed=*/22, secondsToTicks(120e-3))}));
    const serve::FleetReport &r = fleet.serveFleet();
    fleet.flightRecorder()->trigger("bench:energy_audit",
                                    r.fleet.makespan);

    const PowerAuditTrail *trail = monitor.auditTrail(0);
    fatalIf(trail == nullptr, "energy monitor installed no audit trail");
    auto count = [&](PowerEventKind kind) {
        return trail->count(kind);
    };
    out.metric("audit_budget_grants",
               static_cast<double>(count(PowerEventKind::BudgetGrant)));
    out.metric("audit_budget_denials",
               static_cast<double>(count(PowerEventKind::BudgetDeny)));
    out.metric("audit_dvfs_coasts",
               static_cast<double>(count(PowerEventKind::DvfsCoast)));
    out.metric("audit_dvfs_climbs",
               static_cast<double>(count(PowerEventKind::DvfsClimb)));
    out.metric("audit_throttles",
               static_cast<double>(count(PowerEventKind::Throttle)));

    // The replay: a denial, then a downshift, then a climb back up,
    // in simulated-time order within the buffered ring.
    int stage = 0; // 0 = want deny, 1 = want coast, 2 = want climb
    for (const PowerEvent &event : trail->events()) {
        if (stage == 0 && event.kind == PowerEventKind::BudgetDeny)
            stage = 1;
        else if (stage == 1 && event.kind == PowerEventKind::DvfsCoast)
            stage = 2;
        else if (stage == 2 && event.kind == PowerEventKind::DvfsClimb) {
            stage = 3;
            break;
        }
    }
    bool in_trail = stage == 3;

    const std::string &dump = fleet.flightRecorder()->lastDump();
    bool in_dump = dump.find("\"power_events\"") != std::string::npos &&
                   dump.find("budget_deny") != std::string::npos &&
                   dump.find("dvfs_coast") != std::string::npos &&
                   dump.find("dvfs_climb") != std::string::npos;

    std::ostringstream trace;
    fleet.exportFleetTrace(trace);
    const std::string chrome = trace.str();
    bool in_trace =
        chrome.find("budget denial") != std::string::npos &&
        chrome.find("dvfs coast") != std::string::npos &&
        chrome.find("dvfs climb") != std::string::npos;

    bool replay_ok = in_trail && in_dump && in_trace;
    out.metric("audit_replay_ok", replay_ok ? 1.0 : 0.0);
    std::printf("\n  audit replay @ 60 W: %llu denials, %llu coasts, "
                "%llu climbs, %llu throttles\n",
                static_cast<unsigned long long>(
                    count(PowerEventKind::BudgetDeny)),
                static_cast<unsigned long long>(
                    count(PowerEventKind::DvfsCoast)),
                static_cast<unsigned long long>(
                    count(PowerEventKind::DvfsClimb)),
                static_cast<unsigned long long>(
                    count(PowerEventKind::Throttle)));
    std::printf("  deny -> coast -> climb visible: audit trail %s, "
                "flight dump %s, chrome trace %s%s\n",
                in_trail ? "yes" : "NO", in_dump ? "yes" : "NO",
                in_trace ? "yes" : "NO",
                replay_ok ? "" : "  ** MISSING **");

    if (!out.option("--energy-out").empty()) {
        fleet.writeEnergyReport(out.option("--energy-out"));
        std::printf("  energy report: %s\n",
                    out.option("--energy-out").c_str());
    }

    std::printf("\n  headline: gpt_small decode spends %.0f%% of its "
                "energy on HBM+DMA streaming (the KV tax); ResNet50 "
                "serving stays MAC-dominated\n",
                100.0 * decode_mem_fraction);

    return out.finish();
}
