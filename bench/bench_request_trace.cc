/**
 * @file
 * Request-tracing overhead: sampling rate x fleet size on the
 * ResNet50 + Conformer serving mix.
 *
 * Each cell replays the same open-loop Poisson trace through a
 * FleetServer twice — once bare, once with a RequestTracer at
 * sampling rate p — and reports the host wall-clock overhead of
 * tracing plus how many requests the head-based sampler captured.
 * Two invariants are checked in-line:
 *
 *  - Non-perturbation: the traced run's serialized FleetReport is
 *    byte-identical to the bare run's (tracing is host-side only and
 *    must never move simulated time).
 *  - Chain completeness: every sampled completed request has a full
 *    enqueue -> dispatch -> terminal lifecycle and a flow link into
 *    its device's chip timeline.
 *
 * The headline is the ISSUE's budget: p = 0.1 on a fleet-sized load
 * stays under 5% wall-clock overhead.
 *
 *     bench_request_trace [--json <path>] [--max-devices <n>]
 *                         [--requests <per-device>]
 *                         [--trace-out <path>] [--flight-out <path>]
 *
 * --trace-out writes the merged Chrome trace (request lanes + every
 * chip timeline, flow-linked) of the largest p = 0.1 cell — open it
 * in https://ui.perfetto.dev. --flight-out runs an extra overloaded
 * scenario with an SLO monitor + flight recorder and writes the
 * burn-rate incident dump it produces.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/server.hh"
#include "bench_common.hh"
#include "serve/arrival.hh"
#include "serve/fleet.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

constexpr double kQpsPerDevice = 4000.0;

std::vector<serve::Request>
mixTrace(unsigned devices, unsigned per_device)
{
    double qps = kQpsPerDevice * devices;
    unsigned resnet = per_device * devices * 3 / 4;
    unsigned conformer = per_device * devices / 4;
    return serve::finalizeTrace(
        {serve::poissonTrace("resnet50", qps * 0.75, resnet,
                             /*seed=*/101, secondsToTicks(20e-3)),
         serve::poissonTrace("conformer", qps * 0.25, conformer,
                             /*seed=*/202, secondsToTicks(30e-3))});
}

serve::FleetConfig
fleetConfig(unsigned devices)
{
    serve::FleetConfig config;
    config.devices = devices;
    config.routing = serve::RoutingPolicy::LeastOutstanding;
    config.serving.batching.maxBatch = 8;
    config.serving.batching.maxQueueDelay = secondsToTicks(2e-3);
    config.serving.groupsPerBatch = 1;
    return config;
}

/** One serving run; returns wall-clock seconds. */
double
timedServe(unsigned devices,
           const std::vector<serve::Request> &trace, double rate,
           std::string *report_json, FleetServer **keep = nullptr)
{
    auto fleet = std::make_unique<FleetServer>(fleetConfig(devices));
    if (rate >= 0.0)
        fleet->enableRequestTracing({.sampleRate = rate, .seed = 7});
    fleet->submit(trace);
    auto t0 = std::chrono::steady_clock::now();
    const serve::FleetReport &r = fleet->serveFleet();
    auto t1 = std::chrono::steady_clock::now();
    if (report_json) {
        std::ostringstream ss;
        serve::writeJson(r, ss, /*per_request=*/true);
        *report_json = ss.str();
    }
    if (keep)
        *keep = fleet.release();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Fraction of sampled completions with a complete, linked chain. */
double
chainCompleteness(const obs::RequestTracer &tracer, bool *all_linked)
{
    std::uint64_t complete = 0, total = 0;
    *all_linked = true;
    for (const obs::RequestRecord &rec : tracer.finished()) {
        const serve::RequestOutcome &o = rec.outcome;
        if (!o.completedOk())
            continue;
        ++total;
        bool chain = rec.executed &&
                     o.request.arrival <= o.dispatched &&
                     o.dispatched <= o.completed && o.device >= 0 &&
                     rec.deviceLinked;
        if (chain)
            ++complete;
        else
            *all_linked = false;
    }
    return total ? static_cast<double>(complete) / total : 1.0;
}

void
flightRecorderDemo(const std::string &path, unsigned devices,
                   unsigned per_device)
{
    // Overload the fleet (tight deadlines + shallow queues) so the
    // burn-rate alert genuinely fires, and capture the incident.
    serve::FleetConfig config = fleetConfig(devices);
    config.serving.degradation.admissionLimit = 4;
    FleetServer fleet(config);
    fleet.enableRequestTracing({.sampleRate = 1.0, .seed = 7});
    obs::FlightRecorder &rec = fleet.enableFlightRecorder({});
    fleet.enableSloMonitor({.window = secondsToTicks(5e-3),
                            .sloTarget = 0.999,
                            .burnRateAlert = 5.0});
    double qps = kQpsPerDevice * devices * 4.0;
    fleet.submit(serve::finalizeTrace(
        {serve::poissonTrace("resnet50", qps, per_device * devices,
                             /*seed=*/909, secondsToTicks(2e-3))}));
    fleet.serveFleet();
    if (rec.dumpCount() == 0) {
        std::printf("  flight recorder: no incident triggered "
                    "(unexpected under this overload)\n");
        return;
    }
    rec.writeLastDump(path);
    std::printf("  flight recorder: %llu trigger(s), dump -> %s\n",
                static_cast<unsigned long long>(rec.triggerCount()),
                path.c_str());
}

unsigned
parseCount(const std::string &value, unsigned fallback)
{
    return value.empty()
               ? fallback
               : static_cast<unsigned>(std::stoul(value));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "request_trace",
                    {"--max-devices", "--requests", "--trace-out",
                     "--flight-out"});
    unsigned max_devices = parseCount(out.option("--max-devices"), 4);
    unsigned per_device = parseCount(out.option("--requests"), 96);
    const std::string trace_out = out.option("--trace-out");
    const std::string flight_out = out.option("--flight-out");

    printBanner("Request-trace overhead: sampling rate x fleet size "
                "(ResNet50 + Conformer, " +
                std::to_string(static_cast<int>(kQpsPerDevice)) +
                " QPS/device)");

    std::vector<unsigned> sizes;
    for (unsigned s : {1u, 2u, 4u})
        if (s <= max_devices)
            sizes.push_back(s);
    const double rates[] = {0.01, 0.1, 1.0};
    const unsigned reps = 3;

    ReportTable table({"n/p", "base_ms", "traced_ms", "overhead_pct",
                       "sampled", "chain_ok"});

    bool identical = true;
    bool chains_ok = true;
    double headline_overhead = 0.0;
    for (unsigned size : sizes) {
        std::vector<serve::Request> trace =
            mixTrace(size, per_device);
        for (double rate : rates) {
            // Interleave bare and traced runs rep by rep so host
            // noise (the dominant error at these overheads) drifts
            // into both measurements equally; keep the best of each.
            std::string base_json, traced_json;
            FleetServer *fleet = nullptr;
            double base = 0.0, traced = 0.0;
            for (unsigned rep = 0; rep < reps; ++rep) {
                delete fleet;
                fleet = nullptr;
                double b = timedServe(size, trace, -1.0,
                                      rep ? nullptr : &base_json);
                double t = timedServe(size, trace, rate,
                                      rep ? nullptr : &traced_json,
                                      &fleet);
                base = rep == 0 ? b : std::min(base, b);
                traced = rep == 0 ? t : std::min(traced, t);
            }
            const obs::RequestTracer &tracer =
                *fleet->requestTracer();
            bool linked = false;
            double chain = chainCompleteness(tracer, &linked);
            bool same = traced_json == base_json;
            identical = identical && same;
            chains_ok = chains_ok && linked;
            double overhead =
                base > 0.0 ? (traced - base) / base * 100.0 : 0.0;
            if (rate == 0.1 && size == sizes.back())
                headline_overhead = overhead;

            std::string cell = "n" + std::to_string(size) + " p" +
                               std::to_string(rate).substr(0, 4);
            table.addRow(cell,
                         {base * 1e3, traced * 1e3, overhead,
                          static_cast<double>(tracer.sampledSeen()),
                          chain});
            std::string prefix =
                "n" + std::to_string(size) + "_p" +
                std::to_string(rate).substr(0, 4) + "_";
            out.metric(prefix + "overhead_pct", overhead);
            out.metric(prefix + "sampled",
                       static_cast<double>(tracer.sampledSeen()));
            out.metric(prefix + "report_identical", same ? 1.0 : 0.0);

            if (!trace_out.empty() && rate == 0.1 &&
                size == sizes.back()) {
                fleet->writeFleetTrace(trace_out);
            }
            delete fleet;
        }
    }
    table.print();
    out.table("request_trace", table);
    out.metric("reports_identical", identical ? 1.0 : 0.0);
    out.metric("chains_complete", chains_ok ? 1.0 : 0.0);
    out.metric("headline_overhead_pct", headline_overhead);

    std::printf("\n  non-perturbation: traced reports %s the bare "
                "runs%s\n",
                identical ? "byte-identical to" : "DIVERGED from",
                identical ? "" : "  ** REGRESSION **");
    std::printf("  chain completeness: %s\n",
                chains_ok ? "every sampled completion flow-linked"
                          : "** INCOMPLETE CHAINS **");
    std::printf("  headline: p=0.1 n%u overhead %.2f%% (budget 5%%)%s\n",
                sizes.back(), headline_overhead,
                headline_overhead < 5.0 ? "" : "  ** OVER BUDGET **");

    if (!flight_out.empty())
        flightRecorderDemo(flight_out, sizes.back(), per_device);

    return out.finish();
}
