/**
 * @file
 * Reproduction of the experimental setup's precision criterion
 * (Section VI-A): "the differences in inference precision of the
 * tests run on CPU and accelerators are configured as 0.01% for all
 * tested DNNs except for Bert Large, which is 0.05%".
 *
 * The simulator's engines are functional, so the drift of each
 * operator class against an FP64 host reference is directly
 * measurable per data type. The mean per-operator drift at FP16 is
 * what accumulates into end-to-end precision differences.
 */

#include <cstdio>

#include "runtime/accuracy.hh"
#include "runtime/report.hh"

using namespace dtu;
using namespace dtu::accuracy;

int
main()
{
    printBanner("Operator precision vs FP64 host reference "
                "(mean / max relative error, %)");
    std::printf("  %-14s", "operator");
    for (const char *column : {"fp16 mean", "fp16 max", "bf16 mean",
                               "fp32 mean"})
        std::printf(" %12s", column);
    std::printf("\n");

    auto fp16 = measurePanel(DType::FP16);
    auto bf16 = measurePanel(DType::BF16);
    auto fp32 = measurePanel(DType::FP32);
    for (std::size_t i = 0; i < fp16.size(); ++i) {
        std::printf("  %-14s %11.4f%% %11.4f%% %11.4f%% %11.5f%%\n",
                    fp16[i].op.c_str(), 100.0 * fp16[i].meanRelError,
                    100.0 * fp16[i].maxRelError,
                    100.0 * bf16[i].meanRelError,
                    100.0 * fp32[i].meanRelError);
    }

    // The paper's criterion applies to mean end-to-end drift; long
    // reductions with FP32 accumulation average per-element rounding
    // down, which is what keeps FP16 inference near the 0.01% class.
    double vmm_mean = fp16[2].meanRelError; // k=1024, the BERT shape
    std::printf("\n  paper criterion: 0.01%% (all DNNs) / 0.05%% "
                "(BERT-Large)\n");
    std::printf("  measured: FP16 k=1024 reductions drift %.4f%% on "
                "average (max %.4f%%) — the %s class\n",
                100.0 * vmm_mean, 100.0 * fp16[2].maxRelError,
                vmm_mean < 5e-4 ? "0.01-0.05%" : ">0.05%");
    return 0;
}
