/**
 * @file
 * Fig. 12 reproduction: peak performance, memory capacity, and
 * bandwidth comparisons across platforms.
 *
 *  (a) i20 vs i10, normalized to i10: the paper reports 1.6x on
 *      FP32/FP16 peaks, 3.2x on INT8, 1x memory, 1.6x bandwidth.
 *  (b) i20 vs T4/A10, normalized to T4: bandwidth 2.56x (i20) and
 *      1.36x relative ratios; A10 holds 1.5x memory capacity.
 */

#include "bench_common.hh"

using namespace dtu;

int
main(int argc, char **argv)
{
    bench::BenchOutput output(argc, argv, "fig12_peak");
    DtuConfig i20 = dtu2Config();
    DtuConfig i10 = dtu1Config();
    GpuSpec t4 = t4Spec();
    GpuSpec a10 = a10Spec();

    printBanner("Fig. 12(a): i20 vs i10 (normalized with i10)");
    ReportTable a({"metric", "i10", "i20", "ratio", "paper"});
    auto ratio_row = [&](const std::string &name, double v10, double v20,
                         double paper) {
        a.addRow(name, {1.0, v20 / v10, v20 / v10, paper});
    };
    ratio_row("FP32 peak", i10.peakOpsPerSecond(DType::FP32),
              i20.peakOpsPerSecond(DType::FP32), 1.6);
    ratio_row("FP16 peak", i10.peakOpsPerSecond(DType::FP16),
              i20.peakOpsPerSecond(DType::FP16), 1.6);
    ratio_row("INT8 peak", i10.peakOpsPerSecond(DType::INT8),
              i20.peakOpsPerSecond(DType::INT8), 3.2);
    ratio_row("Memory", static_cast<double>(i10.l3Bytes),
              static_cast<double>(i20.l3Bytes), 1.0);
    ratio_row("Bandwidth", i10.l3BytesPerSecond, i20.l3BytesPerSecond,
              1.6);
    a.print();

    printBanner("Fig. 12(b): i20 vs T4/A10 (normalized with T4)");
    ReportTable b({"metric", "T4", "A10", "i20"});
    b.addRow("FP32 peak", {1.0, a10.fp32Tflops / t4.fp32Tflops,
                           i20.peakOpsPerSecond(DType::FP32) / 1e12 /
                               t4.fp32Tflops});
    b.addRow("FP16 peak", {1.0, a10.fp16Tflops / t4.fp16Tflops,
                           i20.peakOpsPerSecond(DType::FP16) / 1e12 /
                               t4.fp16Tflops});
    b.addRow("INT8 peak", {1.0, a10.int8Tops / t4.int8Tops,
                           i20.peakOpsPerSecond(DType::INT8) / 1e12 /
                               t4.int8Tops});
    b.addRow("Memory", {1.0, a10.memoryGiB / t4.memoryGiB,
                        static_cast<double>(i20.l3Bytes) / 1_GiB /
                            t4.memoryGiB});
    b.addRow("Bandwidth", {1.0, a10.bandwidthGBs / t4.bandwidthGBs,
                           i20.l3BytesPerSecond / 1e9 /
                               t4.bandwidthGBs});
    b.print();
    std::printf("\n  paper checkpoints: i20 bandwidth = 2.56x T4 "
                "(measured %.2fx), 1.36x A10 (measured %.2fx); A10 "
                "memory = 1.5x others (measured %.2fx)\n",
                i20.l3BytesPerSecond / 1e9 / t4.bandwidthGBs,
                i20.l3BytesPerSecond / 1e9 / a10.bandwidthGBs,
                a10.memoryGiB / (static_cast<double>(i20.l3Bytes) /
                                 1_GiB));
    output.table("fig12a_i20_vs_i10", a);
    output.table("fig12b_i20_vs_gpus", b);
    output.metric("bandwidth_vs_t4",
                  i20.l3BytesPerSecond / 1e9 / t4.bandwidthGBs);
    output.metric("bandwidth_vs_a10",
                  i20.l3BytesPerSecond / 1e9 / a10.bandwidthGBs);
    return output.finish();
}
