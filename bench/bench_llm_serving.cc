/**
 * @file
 * Autoregressive LLM serving: arrival rate x decode batch x KV
 * budget on the GPT-2-small-class decoder, continuous vs static
 * batching.
 *
 * Each cell replays the same Poisson trace of ragged generation
 * requests (EosHash stop lengths) through the generation-aware
 * Server facade twice — once with iteration-level continuous
 * batching, once with static batch-until-drained scheduling — and
 * reports token throughput, TTFT and ITL tails, and KV page
 * occupancy. Three headlines:
 *
 *  - Continuous batching sustains strictly more tokens/s than
 *    static batching at equal-or-better p99 TTFT: freed decode
 *    slots are backfilled from the queue instead of idling until
 *    the batch's longest sequence finishes.
 *  - The phase split lands where the roofline says it must:
 *    prefill (a full [batch, prompt] pass) is issue-dominated with
 *    high arithmetic intensity; decode (one token attending over
 *    the whole HBM-resident KV-cache) is DMA/bandwidth-dominated.
 *  - The KV page budget is the admission lever: shrinking it sheds
 *    or queues load but never leaks — every run drains its pool
 *    back to zero pages in use.
 *
 *     bench_llm_serving [--json <path>] [--model <name>]
 *                       [--requests <n>] [--prompt <tokens>]
 *                       [--max-new <tokens>]
 *
 * --model gpt_tiny --requests 24 is the CI smoke configuration.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/server.hh"
#include "bench_common.hh"
#include "serve/arrival.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

struct TrafficShape
{
    std::string model = "gpt_small";
    unsigned requests = 48;
    unsigned promptLen = 128;
    unsigned maxNewTokens = 32;
};

/** Poisson arrivals carrying ragged generation params. */
std::vector<serve::RequestSpec>
genTrace(const TrafficShape &shape, double qps)
{
    std::vector<serve::RequestSpec> specs;
    for (const serve::Request &r : serve::finalizeTrace(
             {serve::poissonTrace(shape.model, qps, shape.requests,
                                  /*seed=*/607)})) {
        serve::RequestSpec spec = r.spec();
        spec.gen.promptLen = shape.promptLen;
        spec.gen.maxNewTokens = shape.maxNewTokens;
        spec.gen.stop = serve::StopPolicy::EosHash;
        specs.push_back(spec);
    }
    return specs;
}

serve::ServingConfig
cellConfig(bool continuous, unsigned decode_batch,
           std::uint64_t kv_budget)
{
    serve::ServingConfig config;
    config.batching.maxBatch = decode_batch;
    config.batching.maxQueueDelay = secondsToTicks(500e-6);
    config.groupsPerBatch = 1;
    config.generation.continuousBatching = continuous;
    config.generation.maxDecodeBatch = decode_batch;
    if (kv_budget)
        config.generation.kv.budgetBytes = kv_budget;
    return config;
}

serve::ServingReport
runCell(const std::vector<serve::RequestSpec> &trace, bool continuous,
        unsigned decode_batch, std::uint64_t kv_budget = 0)
{
    Device device;
    Server server(device,
                  cellConfig(continuous, decode_batch, kv_budget));
    for (const serve::RequestSpec &spec : trace)
        server.submit(spec);
    return server.serve();
}

/** Every request terminal and the KV pool drained? */
bool
drainedClean(const serve::ServingReport &report, unsigned submitted)
{
    return report.outcomes.size() == submitted &&
           report.generation.kvPagesInUseAtEnd == 0 &&
           report.generation.kvPagesAllocated ==
               report.generation.kvPagesFreed;
}

unsigned
parseCount(const std::string &value, unsigned fallback)
{
    return value.empty()
               ? fallback
               : static_cast<unsigned>(std::stoul(value));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "llm_serving",
                    {"--model", "--requests", "--prompt",
                     "--max-new"});
    TrafficShape shape;
    if (!out.option("--model").empty())
        shape.model = out.option("--model");
    shape.requests = parseCount(out.option("--requests"),
                                shape.model == "gpt_tiny" ? 24 : 48);
    shape.promptLen = parseCount(out.option("--prompt"), 128);
    shape.maxNewTokens = parseCount(out.option("--max-new"), 32);

    printBanner("LLM serving: rate x decode batch x KV budget (" +
                shape.model + ", prompt " +
                std::to_string(shape.promptLen) + ", <=" +
                std::to_string(shape.maxNewTokens) +
                " new tokens, EosHash)");

    const double rates[] = {2000.0, 6000.0};
    const unsigned decode_batches[] = {4, 8};

    ReportTable table({"rate/batch/policy", "tok_per_s", "ttft_p50_ms",
                       "ttft_p99_ms", "itl_p99_ms", "kv_peak_occ",
                       "clean"});

    bool all_clean = true;
    // Reference cell (highest rate, widest batch) for the headline.
    double ref_cont_tps = 0.0, ref_stat_tps = 0.0;
    double ref_cont_ttft = 0.0, ref_stat_ttft = 0.0;
    serve::ServingReport ref_report;
    for (double rate : rates) {
        std::vector<serve::RequestSpec> trace = genTrace(shape, rate);
        for (unsigned batch : decode_batches) {
            for (bool continuous : {false, true}) {
                serve::ServingReport r =
                    runCell(trace, continuous, batch);
                bool clean = drainedClean(r, shape.requests);
                all_clean = all_clean && clean;
                const serve::GenerationReport &gen = r.generation;
                std::string policy =
                    continuous ? "continuous" : "static";
                std::string cell = std::to_string(
                                       static_cast<int>(rate)) +
                                   " b" + std::to_string(batch) +
                                   " " + policy;
                table.addRow(cell, {gen.tokensPerSecond,
                                    gen.ttftP50Ms, gen.ttftP99Ms,
                                    gen.itlP99Ms, gen.kvPeakOccupancy,
                                    clean ? 1.0 : 0.0});
                std::string prefix =
                    "r" + std::to_string(static_cast<int>(rate)) +
                    "_b" + std::to_string(batch) + "_" + policy + "_";
                out.metric(prefix + "tokens_per_second",
                           gen.tokensPerSecond);
                out.metric(prefix + "ttft_p99_ms", gen.ttftP99Ms);
                out.metric(prefix + "itl_p99_ms", gen.itlP99Ms);
                if (rate == rates[1] &&
                    batch == decode_batches[1]) {
                    (continuous ? ref_cont_tps : ref_stat_tps) =
                        gen.tokensPerSecond;
                    (continuous ? ref_cont_ttft : ref_stat_ttft) =
                        gen.ttftP99Ms;
                    if (continuous)
                        ref_report = r;
                }
            }
        }
    }
    table.print();
    out.table("llm_serving", table);

    // KV budget pressure: shrink the pool at the reference cell.
    // gpt_small holds ~5.9 MB of KV per 160-token sequence, so the
    // smallest budget forces near-serial admission.
    std::printf("\n");
    ReportTable kv_table({"kv_budget_mib", "completed", "shed",
                          "tok_per_s", "kv_peak_occ", "clean"});
    std::vector<serve::RequestSpec> ref_trace =
        genTrace(shape, rates[1]);
    for (std::uint64_t mib : {256, 64, 16}) {
        serve::ServingReport r =
            runCell(ref_trace, /*continuous=*/true,
                    decode_batches[1], mib << 20);
        bool clean = r.generation.kvPagesInUseAtEnd == 0 &&
                     r.generation.kvPagesAllocated ==
                         r.generation.kvPagesFreed;
        all_clean = all_clean && clean;
        kv_table.addRow(std::to_string(mib),
                        {static_cast<double>(r.requests),
                         static_cast<double>(r.shedRequests +
                                             r.rejectedRequests),
                         r.generation.tokensPerSecond,
                         r.generation.kvPeakOccupancy,
                         clean ? 1.0 : 0.0});
        std::string prefix = "kv" + std::to_string(mib) + "_";
        out.metric(prefix + "completed",
                   static_cast<double>(r.requests));
        out.metric(prefix + "peak_occupancy",
                   r.generation.kvPeakOccupancy);
    }
    kv_table.print();
    out.table("llm_serving_kv", kv_table);

    // Headline 1: continuous > static on tokens/s at equal-or-better
    // p99 TTFT, at the most loaded cell.
    double speedup =
        ref_stat_tps > 0.0 ? ref_cont_tps / ref_stat_tps : 0.0;
    bool ttft_ok = ref_cont_ttft <= ref_stat_ttft;
    out.metric("continuous_over_static_tps", speedup);
    out.metric("continuous_ttft_no_worse", ttft_ok ? 1.0 : 0.0);
    std::printf("\n  continuous batching: %.0f tok/s vs static %.0f "
                "(%.2fx)%s\n",
                ref_cont_tps, ref_stat_tps, speedup,
                speedup > 1.0 ? "" : "  ** NO GAIN **");
    std::printf("  p99 TTFT: continuous %.2f ms vs static %.2f ms%s\n",
                ref_cont_ttft, ref_stat_ttft,
                ttft_ok ? "" : "  ** TAIL REGRESSION **");

    // Headline 2: the top-down phase split. Prefill is the
    // compute-bound full-prompt pass; decode streams the KV-cache
    // every step and pins the DMA engines.
    const serve::PhaseBreakdown &prefill =
        ref_report.generation.prefill;
    const serve::PhaseBreakdown &decode = ref_report.generation.decode;
    bool prefill_issue =
        std::string(prefill.dominant()) == "issue";
    bool decode_dma = std::string(decode.dominant()) == "dma";
    out.metric("prefill_issue_dominated", prefill_issue ? 1.0 : 0.0);
    out.metric("decode_dma_dominated", decode_dma ? 1.0 : 0.0);
    out.metric("prefill_intensity_ops_per_byte",
               prefill.intensityOpsPerByte());
    out.metric("decode_intensity_ops_per_byte",
               decode.intensityOpsPerByte());
    std::printf("  phase split: prefill %s-dominated (%.1f ops/B), "
                "decode %s-dominated (%.1f ops/B)%s\n",
                prefill.dominant(), prefill.intensityOpsPerByte(),
                decode.dominant(), decode.intensityOpsPerByte(),
                prefill_issue && decode_dma ? ""
                                            : "  ** MISPLACED **");

    // Headline 3: every cell drained — all requests terminal, KV
    // pool back to zero.
    out.metric("all_cells_drained", all_clean ? 1.0 : 0.0);
    std::printf("  lifecycle: %s\n",
                all_clean ? "every request terminal, KV pools drained "
                            "to zero in every cell"
                          : "** LEAKED KV PAGES OR LOST REQUESTS **");

    return out.finish();
}
