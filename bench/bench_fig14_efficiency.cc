/**
 * @file
 * Fig. 14 reproduction: TDP and theoretical power efficiency
 * (peak performance / TDP) across platforms.
 *
 * Paper checkpoints: T4's FP16 (INT8) perf/TDP is 1.11x (1.11x) A10,
 * 1.74x (3.48x) i10, and 1.09x (1.09x) i20; for FP32 the i20 leads
 * at 1.6x i10, 1.84x T4, and 1.03x A10.
 */

#include "bench_common.hh"

using namespace dtu;

int
main(int argc, char **argv)
{
    bench::BenchOutput output(argc, argv, "fig14_efficiency");
    DtuConfig i20 = dtu2Config();
    DtuConfig i10 = dtu1Config();
    GpuSpec t4 = t4Spec();
    GpuSpec a10 = a10Spec();

    printBanner("Fig. 14(a): TDP and Perf/TDP, i20 vs i10");
    ReportTable a({"metric", "i10", "i20", "ratio"});
    a.addRow("TDP (W)", {i10.tdpWatts, i20.tdpWatts,
                         i20.tdpWatts / i10.tdpWatts});
    a.addRow("FP32/TDP (GF/W)", {i10.opsPerWatt(DType::FP32) / 1e9,
                                 i20.opsPerWatt(DType::FP32) / 1e9,
                                 i20.opsPerWatt(DType::FP32) /
                                     i10.opsPerWatt(DType::FP32)});
    a.addRow("FP16/TDP (GF/W)", {i10.opsPerWatt(DType::FP16) / 1e9,
                                 i20.opsPerWatt(DType::FP16) / 1e9,
                                 i20.opsPerWatt(DType::FP16) /
                                     i10.opsPerWatt(DType::FP16)});
    a.addRow("INT8/TDP (GOP/W)", {i10.opsPerWatt(DType::INT8) / 1e9,
                                  i20.opsPerWatt(DType::INT8) / 1e9,
                                  i20.opsPerWatt(DType::INT8) /
                                      i10.opsPerWatt(DType::INT8)});
    a.print();

    auto gpu_eff = [](const GpuSpec &spec, DType t) {
        double peak = spec.peakOps(t);
        return peak / spec.tdpWatts / 1e9;
    };
    double i20_fp32 = i20.opsPerWatt(DType::FP32) / 1e9;
    double i20_fp16 = i20.opsPerWatt(DType::FP16) / 1e9;
    double i20_int8 = i20.opsPerWatt(DType::INT8) / 1e9;

    printBanner("Fig. 14(b): Perf/TDP, i20 vs T4/A10 (GFLOPS/W)");
    ReportTable b({"dtype", "T4", "A10", "i20"});
    b.addRow("FP32", {gpu_eff(t4, DType::FP32), gpu_eff(a10, DType::FP32),
                      i20_fp32});
    b.addRow("FP16", {gpu_eff(t4, DType::FP16), gpu_eff(a10, DType::FP16),
                      i20_fp16});
    b.addRow("INT8", {gpu_eff(t4, DType::INT8), gpu_eff(a10, DType::INT8),
                      i20_int8});
    b.print();

    std::printf("\n  paper checkpoints (measured):\n");
    std::printf("    T4 FP16/TDP vs i20: paper 1.09x, measured %.2fx\n",
                gpu_eff(t4, DType::FP16) / i20_fp16);
    std::printf("    T4 INT8/TDP vs i20: paper 1.09x, measured %.2fx\n",
                gpu_eff(t4, DType::INT8) / i20_int8);
    std::printf("    i20 FP32/TDP vs T4: paper 1.84x, measured %.2fx\n",
                i20_fp32 / gpu_eff(t4, DType::FP32));
    std::printf("    i20 FP32/TDP vs A10: paper 1.03x, measured %.2fx\n",
                i20_fp32 / gpu_eff(a10, DType::FP32));
    std::printf("    i20 FP32/TDP vs i10: paper 1.6x, measured %.2fx\n",
                i20.opsPerWatt(DType::FP32) /
                    i10.opsPerWatt(DType::FP32));
    output.table("fig14a_perf_per_tdp_i20_vs_i10", a);
    output.table("fig14b_perf_per_tdp_i20_vs_gpus", b);
    output.metric("t4_fp16_per_tdp_vs_i20",
                  gpu_eff(t4, DType::FP16) / i20_fp16);
    output.metric("i20_fp32_per_tdp_vs_t4",
                  i20_fp32 / gpu_eff(t4, DType::FP32));
    output.metric("i20_fp32_per_tdp_vs_i10",
                  i20.opsPerWatt(DType::FP32) /
                      i10.opsPerWatt(DType::FP32));
    return output.finish();
}
