/**
 * @file
 * Extension study (beyond the paper's FP16-only evaluation): the
 * model zoo across the data types Table I advertises — FP32, TF32,
 * BF16, FP16, and INT8 — on the i20 and both GPU baselines.
 *
 * The paper's flexibility discussion claims the DTU "supports a full
 * range of widely used data types"; this sweep quantifies what each
 * type buys end-to-end: INT8 approaches 2x FP16 only on
 * compute-bound models, FP32 costs ~4x on those same models, and
 * memory-bound models barely move.
 */

#include "bench_common.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

double
latencyAt(const std::string &model, DType dtype)
{
    DtuConfig config = dtu2Config();
    Dtu chip(config);
    ExecutionPlan plan = compile(models::buildModel(model), config,
                                 dtype, config.totalGroups());
    Executor executor(chip, {0, 1, 2, 3, 4, 5},
                      {.powerManagement = false});
    return executor.run(plan).latencyMs();
}

} // namespace

int
main()
{
    printBanner("Extension: i20 latency by data type (ms; paper "
                "evaluates FP16 only)");
    ReportTable table({"model", "fp32", "tf32", "fp16", "bf16", "int8",
                       "int8_speedup"});
    for (const auto &model : models::modelZoo()) {
        double fp32 = latencyAt(model.name, DType::FP32);
        double tf32 = latencyAt(model.name, DType::TF32);
        double fp16 = latencyAt(model.name, DType::FP16);
        double bf16 = latencyAt(model.name, DType::BF16);
        double int8 = latencyAt(model.name, DType::INT8);
        table.addRow(model.name,
                     {fp32, tf32, fp16, bf16, int8, fp16 / int8});
    }
    table.print();
    std::printf("\n  peak ratios (Table I): FP32 1x, TF32/FP16/BF16 4x, "
                "INT8 8x — end-to-end gains shrink where data movement "
                "or launch overheads dominate\n");
    return 0;
}
