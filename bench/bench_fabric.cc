/**
 * @file
 * Multi-chip model parallelism over the interconnect fabric: tensor-
 * parallel speedup vs all-reduce overhead, pipeline bubble fraction
 * vs microbatch count, and a topology x placement sweep.
 *
 * Every cell serves the same open-loop gpt_small generation trace
 * through one placement group, so the contrasts isolate the fabric:
 *
 *  - TP sweep (degree 1/2/4 on a ring): sharded layers shrink the
 *    per-device compute, two ring all-reduces per layer pay for it.
 *    The speedup headline is makespan(degree 1) / makespan(d).
 *  - PP sweep (2 and 4 stages, microbatches 1..16): the pipeline
 *    fills as microbatches shrink the bubble — the classic
 *    (d-1)/(d+m-1) curve, measured end-to-end.
 *  - Topology x placement sweep (--sweep, the slow tier): shared
 *    root complex vs ring vs full mesh under TP and PP, with the
 *    root-link utilization showing why peer links matter.
 *
 * The fast-tier CI smoke always runs: a 2-device tensor-parallel
 * fleet must drain its trace clean (every request completes) and
 * produce byte-identical reports at threads=1 and threads=2; either
 * failure is fatal (nonzero exit).
 *
 *     bench_fabric [--json <path>] [--requests <n>]
 *                  [--max-degree <1|2|4>] [--max-microbatches <m>]
 *                  [--sweep]
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/server.hh"
#include "bench_common.hh"
#include "fabric/fabric.hh"
#include "serve/arrival.hh"
#include "serve/fleet.hh"
#include "sim/logging.hh"

using namespace dtu;
using namespace dtu::bench;

namespace
{

std::vector<serve::Request>
genTrace(unsigned requests)
{
    std::vector<serve::Request> trace;
    for (unsigned i = 0; i < requests; ++i) {
        serve::Request r;
        r.model = "gpt_small";
        r.arrival = secondsToTicks(2e-4) * i;
        r.gen.promptLen = 64;
        r.gen.maxNewTokens = 8;
        trace.push_back(r);
    }
    return serve::finalizeTrace({std::move(trace)});
}

serve::FleetConfig
groupConfig(unsigned degree, serve::PlacementMode mode,
            fabric::Topology topology, unsigned microbatches = 4,
            unsigned threads = 1)
{
    serve::FleetConfig config;
    config.devices = degree;
    config.threads = threads;
    config.serving.batching.maxBatch = 4;
    config.serving.batching.maxQueueDelay = secondsToTicks(500e-6);
    config.serving.generation.maxDecodeBatch = 8;
    config.fabric.enabled = true;
    config.fabric.topology = topology;
    config.fabric.linkGbps = 32.0;
    config.fabric.hostGbps = 64.0;
    config.placement.mode = mode;
    config.placement.degree = degree;
    config.placement.microbatches = microbatches;
    return config;
}

struct CellResult
{
    double makespanMs = 0.0;
    double tokensPerSecond = 0.0;
    serve::FleetReport report;
};

CellResult
runCell(const serve::FleetConfig &config,
        const std::vector<serve::Request> &trace)
{
    FleetServer fleet(config);
    fleet.submit(trace);
    CellResult cell;
    cell.report = fleet.serveFleet();
    fatalIf(cell.report.fleet.requests != trace.size(),
            "fabric cell dropped requests: ",
            cell.report.fleet.requests, " of ", trace.size(),
            " completed");
    cell.makespanMs = ticksToMilliSeconds(cell.report.fleet.makespan);
    cell.tokensPerSecond =
        cell.report.fleet.generation.tokensPerSecond;
    return cell;
}

unsigned
parseCount(const std::string &value, unsigned fallback)
{
    return value.empty()
               ? fallback
               : static_cast<unsigned>(std::stoul(value));
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOutput out(argc, argv, "fabric",
                    {"--requests", "--max-degree", "--max-microbatches",
                     "--sweep"});
    const unsigned requests = parseCount(out.option("--requests"), 16);
    const unsigned max_degree =
        parseCount(out.option("--max-degree"), 4);
    const unsigned max_micro =
        parseCount(out.option("--max-microbatches"), 16);
    const bool sweep = !out.option("--sweep").empty();

    out.meta("model", "gpt_small");
    out.meta("requests", static_cast<std::uint64_t>(requests));
    out.meta("link_gbps", "32");
    out.meta("host_gbps", "64");

    printBanner("Interconnect fabric: TP speedup, PP bubbles, "
                "topology sweep (gpt_small, " +
                std::to_string(requests) + " requests)");

    const std::vector<serve::Request> trace = genTrace(requests);
    auto sweep_start = std::chrono::steady_clock::now();
    double simulated_seconds = 0.0;

    //
    // Fast-tier smoke: a 2-device TP fleet drains clean and is
    // byte-identical across thread counts. runCell() already fatals
    // on drops; the A/B fatals on divergence.
    //
    {
        auto render = [&](unsigned threads) {
            serve::FleetConfig config = groupConfig(
                2, serve::PlacementMode::TensorParallel,
                fabric::Topology::Ring, 4, threads);
            FleetServer fleet(config);
            fleet.submit(trace);
            const serve::FleetReport &r = fleet.serveFleet();
            fatalIf(r.fleet.requests != trace.size(),
                    "TP smoke dropped requests");
            simulated_seconds += ticksToSeconds(r.fleet.makespan);
            std::ostringstream os;
            serve::writeJson(r, os, /*per_request=*/true);
            return os.str();
        };
        const std::string serial = render(1);
        const std::string parallel = render(2);
        fatalIf(serial != parallel,
                "threads=2 TP fleet report diverged from serial");
        out.metric("smoke_drained_clean", 1.0);
        out.metric("smoke_byte_identical_threads_2", 1.0);
        std::printf("  smoke: 2-device TP drained clean, reports "
                    "byte-identical at threads=1/2\n\n");
    }

    //
    // Tensor parallelism: speedup vs all-reduce overhead.
    //
    ReportTable tp_table({"degree", "makespan_ms", "tokens_per_s",
                          "speedup", "allreduce_gb", "link_wait_ms"});
    double tp_base_ms = 0.0;
    for (unsigned d : {1u, 2u, 4u}) {
        if (d > max_degree)
            break;
        serve::FleetConfig config = groupConfig(
            d,
            d == 1 ? serve::PlacementMode::DataParallel
                   : serve::PlacementMode::TensorParallel,
            fabric::Topology::Ring);
        CellResult cell = runCell(config, trace);
        simulated_seconds += ticksToSeconds(cell.report.fleet.makespan);
        if (d == 1)
            tp_base_ms = cell.makespanMs;
        const double speedup =
            cell.makespanMs > 0.0 ? tp_base_ms / cell.makespanMs : 0.0;
        double wait_ms = 0.0;
        for (const fabric::LinkStats &l : cell.report.fabric.links)
            wait_ms += l.waitMs;
        const double allreduce_gb =
            cell.report.fabric.totals.collectiveBytes / 1e9;
        tp_table.addRow("tp" + std::to_string(d),
                        {cell.makespanMs, cell.tokensPerSecond,
                         speedup, allreduce_gb, wait_ms});
        const std::string prefix = "tp" + std::to_string(d) + "_";
        out.metric(prefix + "makespan_ms", cell.makespanMs);
        out.metric(prefix + "tokens_per_second", cell.tokensPerSecond);
        out.metric(prefix + "speedup", speedup);
        out.metric(prefix + "allreduce_bytes",
                   cell.report.fabric.totals.collectiveBytes);
    }
    tp_table.print();
    out.table("tensor_parallel", tp_table);

    //
    // Pipeline parallelism: bubble fraction vs microbatch count.
    //
    ReportTable pp_table({"stages/micro", "makespan_ms",
                          "tokens_per_s", "bubble_theory",
                          "activation_mb"});
    for (unsigned d : {2u, 4u}) {
        if (d > max_degree)
            break;
        for (unsigned m : {1u, 2u, 4u, 8u, 16u}) {
            if (m > max_micro)
                break;
            serve::FleetConfig config = groupConfig(
                d, serve::PlacementMode::PipelineParallel,
                fabric::Topology::FullMesh, m);
            CellResult cell = runCell(config, trace);
            simulated_seconds +=
                ticksToSeconds(cell.report.fleet.makespan);
            const double bubble =
                static_cast<double>(d - 1) / (d + m - 1);
            pp_table.addRow(
                "d" + std::to_string(d) + " m" + std::to_string(m),
                {cell.makespanMs, cell.tokensPerSecond, bubble,
                 cell.report.fabric.totals.activationBytes / 1e6});
            const std::string prefix = "pp_d" + std::to_string(d) +
                                       "_m" + std::to_string(m) + "_";
            out.metric(prefix + "makespan_ms", cell.makespanMs);
            out.metric(prefix + "tokens_per_second",
                       cell.tokensPerSecond);
            out.metric(prefix + "bubble_theory", bubble);
        }
    }
    pp_table.print();
    out.table("pipeline_parallel", pp_table);

    //
    // Topology x placement sweep (slow tier).
    //
    if (sweep) {
        ReportTable topo_table({"topology/placement", "makespan_ms",
                                "tokens_per_s", "peer_gb",
                                "root_util"});
        const struct
        {
            fabric::Topology topology;
            const char *name;
        } topologies[] = {
            {fabric::Topology::SharedRoot, "shared_root"},
            {fabric::Topology::Ring, "ring"},
            {fabric::Topology::FullMesh, "full_mesh"},
        };
        for (const auto &t : topologies) {
            for (serve::PlacementMode mode :
                 {serve::PlacementMode::TensorParallel,
                  serve::PlacementMode::PipelineParallel}) {
                const unsigned d = std::min(2u, max_degree);
                serve::FleetConfig config =
                    groupConfig(d, mode, t.topology);
                CellResult cell = runCell(config, trace);
                simulated_seconds +=
                    ticksToSeconds(cell.report.fleet.makespan);
                const serve::FleetFabricReport &fab =
                    cell.report.fabric;
                const double peer_gb =
                    (fab.totals.collectiveBytes +
                     fab.totals.activationBytes) /
                    1e9;
                double root_util = 0.0;
                if (!fab.links.empty())
                    root_util = fab.links[0].utilization;
                const std::string mode_name =
                    serve::placementModeName(mode);
                topo_table.addRow(
                    std::string(t.name) + " " + mode_name,
                    {cell.makespanMs, cell.tokensPerSecond, peer_gb,
                     root_util});
                const std::string prefix = std::string(t.name) + "_" +
                                           mode_name + "_";
                out.metric(prefix + "makespan_ms", cell.makespanMs);
                out.metric(prefix + "tokens_per_second",
                           cell.tokensPerSecond);
                out.metric(prefix + "root_utilization", root_util);
            }
        }
        topo_table.print();
        out.table("topology_sweep", topo_table);
    }

    const double wall_seconds = secondsSince(sweep_start);
    const double sim_ticks =
        simulated_seconds * static_cast<double>(ticksPerSecond);
    out.metric("wall_clock_seconds", wall_seconds);
    out.metric("simulated_ticks", sim_ticks);
    out.metric("sim_ticks_per_second",
               wall_seconds > 0.0 ? sim_ticks / wall_seconds : 0.0);
    std::printf("\n  sweep wall clock: %.2f s for %.3f simulated "
                "seconds\n",
                wall_seconds, simulated_seconds);

    return out.finish();
}
