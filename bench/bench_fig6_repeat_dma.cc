/**
 * @file
 * Fig. 6 reproduction: the DMA engine's repeat mode vs normal mode
 * when consuming a large tensor in fixed-stride slices.
 *
 * With N slices, normal mode pays N descriptor configurations while
 * repeat mode pays one, eliminating (N-1)/N of the configuration
 * overhead. The sweep shows the saving as slice count grows and how
 * it matters most for small slices.
 */

#include <cstdio>
#include <memory>

#include "dma/dma_engine.hh"
#include "runtime/report.hh"

using namespace dtu;

namespace
{

struct Rig
{
    EventQueue queue;
    StatRegistry stats;
    ClockDomain clock{queue, 1.0e9};
    Hbm hbm{"hbm", queue, &stats, 16_GiB, 819e9, 8, 120'000};
    Sram l2{"l2", queue, &stats, MemLevel::L2, 8_MiB, 4, 83e9, 15'000,
            20'000, 333e9};
    Sram l1{"l1", queue, &stats, MemLevel::L1, 1_MiB, 1, 166e9, 2'000};
    std::unique_ptr<DmaEngine> dma;

    Rig()
    {
        DmaFabric fabric;
        fabric.hbm = &hbm;
        fabric.localL2 = &l2;
        fabric.clusterL2 = {&l2};
        fabric.coreL1 = {&l1};
        dma = std::make_unique<DmaEngine>("dma", queue, &stats, clock,
                                          fabric, DmaFeatures{});
    }
};

Tick
slicedTransfer(unsigned slices, std::uint64_t slice_bytes, bool repeat)
{
    Rig rig;
    DmaDescriptor desc;
    desc.src = MemLevel::L3;
    desc.dst = MemLevel::L2;
    desc.bytes = slice_bytes;
    desc.repeatCount = slices;
    desc.repeatStride = slice_bytes * 4; // strided out of a big tensor
    desc.repeatMode = repeat;
    return rig.dma->submit(desc).done;
}

} // namespace

int
main()
{
    printBanner("Fig. 6: repeat-mode DMA vs normal mode (strided "
                "slices out of a large tensor)");
    ReportTable table({"slices", "slice_KiB", "normal_us", "repeat_us",
                       "speedup", "cfg_saved_%"});
    for (unsigned slices : {2u, 4u, 9u, 16u, 32u, 64u}) {
        for (std::uint64_t kib : {4ull, 16ull, 64ull}) {
            Tick normal = slicedTransfer(slices, kib * 1024, false);
            Tick repeat = slicedTransfer(slices, kib * 1024, true);
            table.addRow(std::to_string(slices),
                         {static_cast<double>(kib),
                          ticksToMicroSeconds(normal),
                          ticksToMicroSeconds(repeat),
                          static_cast<double>(normal) /
                              static_cast<double>(repeat),
                          100.0 * (slices - 1) / slices});
        }
    }
    table.print();
    std::printf("\n  paper: repeat mode eliminates (N-1)/N of the DMA "
                "configuration overheads (Fig. 6 shows N=9)\n");
    Tick n9 = slicedTransfer(9, 4 * 1024, false);
    Tick r9 = slicedTransfer(9, 4 * 1024, true);
    std::printf("  measured at N=9, 4 KiB slices: %.2fx faster, "
                "8/9 = 88.9%% of configurations eliminated\n",
                static_cast<double>(n9) / static_cast<double>(r9));
    return 0;
}
