/**
 * @file
 * Lowering: auto-tensorization and data-flow (tiling) auto-tuning.
 *
 * TopsEngine (Section V-B) maps each fused operator onto the
 * hardware:
 *  - auto-tensorization picks the VMM shape (4/8/16/32 rows) that
 *    maximizes matrix-engine utilization for the operator's reduction
 *    length — the fine-grained shapes are exactly what makes tall
 *    and skinny matrices (depthwise convs, small heads) efficient;
 *  - data-flow auto-tuning tiles the operator so double-buffered
 *    working sets fit the L1 buffer, and recognizes regular tile
 *    streams that the DMA repeat mode can replay from one
 *    configuration.
 */

#ifndef DTU_COMPILER_LOWERING_HH
#define DTU_COMPILER_LOWERING_HH

#include "compiler/fusion.hh"
#include "compiler/plan.hh"
#include "soc/config.hh"

namespace dtu
{

/** Compilation switches (each is an ablation knob). */
struct LoweringOptions
{
    FusionOptions fusion;
    /** Pick best VMM rows vs always using full 16-row tiles. */
    bool autoTensorize = true;
    /** Minimum tiles before the repeat-DMA pattern is used. */
    unsigned repeatThreshold = 3;
    /**
     * Search-based data-flow tuning (the paper's "auto-tuning on
     * data flows"): sweep candidate tile counts per operator against
     * a pipeline cost model instead of the closed-form capacity
     * heuristic. Finds deeper pipelines for bandwidth-heavy ops.
     */
    bool searchTiling = false;
};

/**
 * Matrix-engine utilization for reduction length @p k and output
 * width @p n with the VMM pattern of @p rows rows on a chip with
 * @p lanes output lanes.
 */
double vmmUtilization(std::int64_t k, std::int64_t n, unsigned rows,
                      unsigned lanes);

/**
 * Pick the best VMM row count for (@p k, @p n, @p dtype) on the
 * given chip generation.
 * @return {rows, utilization}.
 */
std::pair<unsigned, double> tensorize(std::int64_t k, std::int64_t n,
                                      DType dtype, bool dtu2,
                                      bool auto_tensorize = true);

/**
 * Fill tiling fields of @p op for @p cores cooperating cores with
 * @p l1_bytes of local buffer each.
 */
void tileOp(PlannedOp &op, unsigned cores, std::uint64_t l1_bytes,
            unsigned repeat_threshold);

/**
 * Search-based variant: sweep tile counts and keep the one with the
 * lowest modeled operator time on @p config (compute/DMA pipeline
 * with per-transaction configuration cost and fill/drain).
 * @return the modeled time (seconds) of the chosen tiling.
 */
double tileOpSearch(PlannedOp &op, unsigned cores,
                    const DtuConfig &config, DType dtype,
                    unsigned repeat_threshold);

/**
 * Full lowering: fusion + tensorization + tiling for a model on a
 * chip configuration, assuming @p groups processing groups execute
 * the plan cooperatively.
 */
ExecutionPlan compile(const Graph &graph, const DtuConfig &config,
                      DType dtype, unsigned groups,
                      LoweringOptions options = {}, int batch = 1);

} // namespace dtu

#endif // DTU_COMPILER_LOWERING_HH
