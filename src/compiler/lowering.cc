#include "compiler/lowering.hh"

#include <algorithm>
#include <cmath>

#include "core/matrix_engine.hh"
#include "core/register_file.hh"
#include "sim/logging.hh"

namespace dtu
{

double
vmmUtilization(std::int64_t k, std::int64_t n, unsigned rows,
               unsigned lanes)
{
    if (k <= 0 || n <= 0)
        return 1.0;
    auto k_pad = static_cast<double>((k + rows - 1) / rows) * rows;
    auto n_pad = static_cast<double>((n + lanes - 1) / lanes) * lanes;
    return (static_cast<double>(k) / k_pad) *
           (static_cast<double>(n) / n_pad);
}

std::pair<unsigned, double>
tensorize(std::int64_t k, std::int64_t n, DType dtype, bool dtu2,
          bool auto_tensorize)
{
    unsigned lanes = vectorLanes(dtype);
    MatrixEngine probe(!dtu2);
    // When the output-feature dimension is narrower than the lane
    // width (e.g. a 3-channel image-output conv), auto-tensorization
    // remaps output *pixels* (the M dimension) onto the lanes via a
    // loop switch, keeping the array busy at a small transform cost.
    auto lane_util = [&](std::int64_t nn) {
        double direct = vmmUtilization(1, nn, 1, lanes);
        return std::max(direct, nn < lanes ? 0.85 : 0.0);
    };
    if (!dtu2 || !auto_tensorize) {
        // DTU 1.0's GEMM engine (or disabled auto-tensorization):
        // full 16-row tiles only and no lane remapping.
        return {16u, vmmUtilization(k, n, 16, lanes)};
    }
    unsigned best_rows = 16;
    double best_util = 0.0;
    for (unsigned rows : {4u, 8u, 16u, 32u}) {
        if (!probe.supports(rows, dtype))
            continue;
        // K-utilization of this row count times the lane utilization.
        double util = vmmUtilization(k, lanes, rows, lanes) *
                      lane_util(n);
        // Ties prefer the larger shape: fewer VMM issues per output.
        if (util > best_util + 1e-12 ||
            (util >= best_util - 1e-12 && rows > best_rows)) {
            best_util = util;
            best_rows = rows;
        }
    }
    return {best_rows, best_util};
}

void
tileOp(PlannedOp &op, unsigned cores, std::uint64_t l1_bytes,
       unsigned repeat_threshold)
{
    fatalIf(cores == 0, "tiling needs at least one core");
    // Per-core working set: this core's slice of activations plus a
    // reusable weight slice. Double buffering requires two tiles
    // resident plus the weight slice: budget a third of L1 per tile.
    std::uint64_t per_core =
        (op.inputBytes + op.outputBytes) / cores + op.weightBytes / cores;
    std::uint64_t tile_budget = std::max<std::uint64_t>(l1_bytes / 3, 1);
    op.tiles = static_cast<unsigned>(
        std::max<std::uint64_t>(1, (per_core + tile_budget - 1) /
                                       tile_budget));
    op.tileInBytes = op.inputBytes / cores / op.tiles;
    op.tileOutBytes = op.outputBytes / cores / op.tiles;
    // A regular multi-tile stream over a fixed stride is what the
    // repeat mode replays from one configuration (Fig. 6).
    op.repeatEligible = op.tiles >= repeat_threshold;
}

double
tileOpSearch(PlannedOp &op, unsigned cores, const DtuConfig &config,
             DType dtype, unsigned repeat_threshold)
{
    fatalIf(cores == 0, "tiling needs at least one core");
    // Modeled operator time as a function of the tile count T:
    //   compute = work / throughput (T-independent),
    //   dma     = bytes / bandwidth + T x config,
    //   time    = max(compute, dma) + (dma / (T+1))  [fill + drain]
    // subject to the double-buffered tile fitting L1.
    double compute_seconds =
        op.macs / cores /
            (MatrixEngine::macsPerCycle(dtype, config.dtu2) *
             std::max(0.05, op.utilization) * config.nominalHz) +
        (op.spuOps + op.vecOps) / cores /
            (vectorLanes(dtype) * config.nominalHz);
    double bytes_per_core =
        static_cast<double>(op.inputBytes + op.outputBytes) / cores;
    // Per-group DMA bandwidth seen by one core's share of traffic.
    double dma_bw = config.dmaBytesPerCycle * config.dmaHz /
                    config.coresPerGroup;
    double config_seconds = config.dmaConfigCycles / config.dmaHz;

    double best_time = 1e18;
    unsigned best_tiles = 1;
    std::uint64_t tile_limit = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(bytes_per_core) / 1024);
    for (unsigned tiles = 1; tiles <= 64; ++tiles) {
        if (tiles > tile_limit && tiles > 1)
            break;
        // Capacity: two tiles resident (double buffering) plus the
        // weight slice must fit this core's L1.
        double tile_bytes = bytes_per_core / tiles;
        double weight_slice =
            static_cast<double>(op.weightBytes) / cores;
        if (2 * tile_bytes + weight_slice >
            static_cast<double>(config.l1BytesPerCore))
            continue;
        bool repeat = config.dmaFeatures.repeatMode &&
                      tiles >= repeat_threshold;
        double configs = repeat ? 1.0 : static_cast<double>(tiles);
        double dma_seconds =
            bytes_per_core / dma_bw + configs * config_seconds;
        double time = std::max(compute_seconds, dma_seconds) +
                      dma_seconds / (tiles + 1);
        if (time < best_time) {
            best_time = time;
            best_tiles = tiles;
        }
    }
    if (best_time >= 1e18) {
        // Nothing fit (giant weights): fall back to the heuristic.
        tileOp(op, cores, config.l1BytesPerCore, repeat_threshold);
        return compute_seconds;
    }
    op.tiles = best_tiles;
    op.tileInBytes = op.inputBytes / cores / best_tiles;
    op.tileOutBytes = op.outputBytes / cores / best_tiles;
    op.repeatEligible = best_tiles >= repeat_threshold;
    return best_time;
}

ExecutionPlan
compile(const Graph &graph, const DtuConfig &config, DType dtype,
        unsigned groups, LoweringOptions options, int batch)
{
    fatalIf(groups == 0 || groups > config.totalGroups(),
            "compile: invalid group count ", groups);
    ExecutionPlan plan;
    plan.model = graph.name();
    plan.dtype = dtype;
    plan.batch = batch;
    plan.ops = fuseGraph(graph, dtype, options.fusion);

    unsigned cores = groups * config.coresPerGroup;
    for (PlannedOp &op : plan.ops) {
        if (op.matrixBound()) {
            auto [rows, util] = tensorize(op.dimK, op.dimN, dtype,
                                          config.dtu2,
                                          options.autoTensorize);
            op.vmmRows = rows;
            op.utilization = util;
        }
        if (options.searchTiling) {
            tileOpSearch(op, cores, config, dtype,
                         options.repeatThreshold);
        } else {
            tileOp(op, cores, config.l1BytesPerCore,
                   options.repeatThreshold);
        }
    }
    return plan;
}

} // namespace dtu
