/**
 * @file
 * Automatic operator fusion (Section V-B).
 *
 * TopsInference "optimizes the computation graph through automatic
 * operator fusion to eliminate unnecessary materialization and scan
 * of intermediate values". The pass anchors a fusion group at every
 * matrix operator (or at the head of a pure elementwise chain) and
 * greedily absorbs single-consumer elementwise, normalization,
 * activation, residual-add, and layout nodes behind it. Layout nodes
 * fold into the next operator's DMA transform instead of costing
 * compute.
 */

#ifndef DTU_COMPILER_FUSION_HH
#define DTU_COMPILER_FUSION_HH

#include "compiler/plan.hh"
#include "graph/graph.hh"

namespace dtu
{

/** Fusion pass tunables. */
struct FusionOptions
{
    /** Master switch (ablation: measure unfused execution). */
    bool enabled = true;
    /** Upper bound on nodes folded into one fused operator. */
    unsigned maxNodesPerFusion = 12;
};

/**
 * Fuse a graph into operator groups.
 * @return one PlannedOp per group, with work/byte accounting filled
 *         in for @p dtype (tensorize/tile fields still default).
 */
std::vector<PlannedOp> fuseGraph(const Graph &graph, DType dtype,
                                 FusionOptions options = {});

} // namespace dtu

#endif // DTU_COMPILER_FUSION_HH
