/**
 * @file
 * Microkernel code generation for elementwise chains: the
 * auto-vectorizer, VLIW packetizer, and bank-aware register
 * allocator of Section V-B, producing real Kernels that run on the
 * simulated compute core.
 *
 * A fused elementwise chain
 *
 *     out[i] = f_n(... f_1(a[i]) ...)        (with optional b[i] aux)
 *
 * lowers to a loop over 512-bit tiles: load, apply the stages on the
 * vector/SPU engines, store, bump pointers, branch. The packetizer
 * co-issues scalar pointer arithmetic with vector/memory slots; the
 * register allocator spreads operands across the four vector-register
 * banks so no packet reads one bank twice. Both are switchable so
 * their benefit is measurable.
 */

#ifndef DTU_COMPILER_CODEGEN_HH
#define DTU_COMPILER_CODEGEN_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dtu
{

/** One stage of an elementwise chain. */
struct ElementwiseStage
{
    enum class Kind
    {
        AddAux, ///< value += b-tile
        MulAux, ///< value *= b-tile
        MaxAux, ///< value = max(value, b-tile)
        Relu,   ///< value = max(value, 0)
        Spu,    ///< value = func(value)
    };

    Kind kind = Kind::Relu;
    SpuFunc func = SpuFunc::Gelu;

    /** True when the stage consumes the auxiliary b operand. */
    bool
    usesAux() const
    {
        return kind == Kind::AddAux || kind == Kind::MulAux ||
               kind == Kind::MaxAux;
    }
};

/** Codegen switches (each one a Section V-B compiler feature). */
struct CodegenOptions
{
    /** Pack independent slots into VLIW packets. */
    bool packetize = true;
    /** Spread operands across vector-register banks. */
    bool avoidBankConflicts = true;
};

/**
 * Memory layout contract of the generated kernel: the a-tile stream
 * starts at L1 word aBase, the b stream at bBase, outputs at outBase;
 * each of @p tiles iterations advances by one 16-lane FP32 vector.
 */
struct ElementwiseLayout
{
    std::uint64_t aBase = 0;
    std::uint64_t bBase = 4096;
    std::uint64_t outBase = 8192;
    unsigned tiles = 1;
};

/**
 * Generate the microkernel for an elementwise chain.
 * @param name kernel name.
 * @param stages the chain, applied in order.
 * @param layout L1 addressing contract.
 */
Kernel generateElementwiseKernel(const std::string &name,
                                 const std::vector<ElementwiseStage> &stages,
                                 const ElementwiseLayout &layout,
                                 CodegenOptions options = {});

/** Host reference of the same chain for validation. */
double elementwiseReference(const std::vector<ElementwiseStage> &stages,
                            double a, double b);

} // namespace dtu

#endif // DTU_COMPILER_CODEGEN_HH
