/**
 * @file
 * The compiled execution plan.
 *
 * TopsInference + TopsEngine (Section V-B) lower a DNN graph into a
 * sequence of fused operators, each annotated with everything the
 * runtime needs to schedule it on the simulated hardware: work
 * amounts per engine, tensorization efficiency, tile geometry, DMA
 * pattern properties, and kernel-code footprint.
 */

#ifndef DTU_COMPILER_PLAN_HH
#define DTU_COMPILER_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dma/descriptor.hh"
#include "graph/graph.hh"

namespace dtu
{

/** One fused operator ready for execution. */
struct PlannedOp
{
    std::string name;
    /** Kind of the anchor (dominant) node. */
    OpKind anchor = OpKind::Conv2d;
    /** Graph node ids folded into this operator. */
    std::vector<int> nodes;

    //
    // Work
    //
    double macs = 0.0;
    /** SPU (transcendental) lane operations. */
    double spuOps = 0.0;
    /** Vector-engine lane operations. */
    double vecOps = 0.0;

    //
    // Tensorization (matrix-engine mapping)
    //
    /** Reduction length of one VMM chain. */
    std::int64_t dimK = 0;
    /** Output feature count. */
    std::int64_t dimN = 0;
    /** Output rows (batch x spatial). */
    std::int64_t dimM = 0;
    /** Fraction of matrix-engine peak the chosen VMM shapes reach. */
    double utilization = 1.0;
    /** Rows of the chosen VMM pattern. */
    unsigned vmmRows = 16;

    //
    // Data
    //
    std::uint64_t weightBytes = 0;
    std::uint64_t inputBytes = 0;
    std::uint64_t outputBytes = 0;
    /** Nonzero density of the input stream (sparse DMA eligible). */
    double inputDensity = 1.0;
    /**
     * Nonzero density of this operator's output. ReLU-family
     * activations zero roughly half the tensor — "data with high
     * sparsity is often observed in DNN's ... intermediate values"
     * (Table II) — which the next operator's sparse DMA load can
     * exploit when the tensor spills to L3.
     */
    double outputDensity = 1.0;
    /** Layout transform the DMA applies while loading. */
    TransformKind loadTransform = TransformKind::None;

    //
    // Tiling (per core)
    //
    unsigned tiles = 1;
    std::uint64_t tileInBytes = 0;
    std::uint64_t tileOutBytes = 0;
    /** The tile stream follows a regular strided pattern (Fig. 6). */
    bool repeatEligible = false;

    //
    // Kernel code
    //
    int kernelId = 0;
    std::uint64_t kernelBytes = 0;

    /** Total FLOPs of the fused operator. */
    double flops() const { return 2.0 * macs + spuOps + vecOps; }
    /** True when the matrix engine dominates. */
    bool matrixBound() const { return macs > 0.0; }
};

/** A fully lowered model. */
struct ExecutionPlan
{
    std::string model;
    DType dtype = DType::FP16;
    int batch = 1;
    std::vector<PlannedOp> ops;

    double
    totalMacs() const
    {
        double total = 0.0;
        for (const auto &op : ops)
            total += op.macs;
        return total;
    }

    std::uint64_t
    totalWeightBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &op : ops)
            total += op.weightBytes;
        return total;
    }
};

} // namespace dtu

#endif // DTU_COMPILER_PLAN_HH
