#include "compiler/codegen.hh"

#include <algorithm>
#include <cmath>

#include "core/spu.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace dtu
{

namespace
{

/**
 * Vector-register allocator. With conflict avoidance it hands out
 * registers round-robin across the four banks so consecutive values
 * never share one; without it, it allocates within bank 0 only
 * (registers 0, 4, 8, ...) — the pathological schedule a naive
 * allocator can produce.
 */
class VRegAllocator
{
  public:
    explicit VRegAllocator(bool avoid_conflicts)
        : avoidConflicts_(avoid_conflicts)
    {}

    int
    next()
    {
        int reg;
        if (avoidConflicts_) {
            reg = cursor_;
            cursor_ = (cursor_ + 1) % 32;
        } else {
            reg = (cursor_ * 4) % 32; // always bank 0
            ++cursor_;
        }
        return reg;
    }

  private:
    bool avoidConflicts_;
    int cursor_ = 0;
};

} // namespace

Kernel
generateElementwiseKernel(const std::string &name,
                          const std::vector<ElementwiseStage> &stages,
                          const ElementwiseLayout &layout,
                          CodegenOptions options)
{
    fatalIf(stages.empty(), "codegen: empty elementwise chain");
    fatalIf(stages.size() > 20,
            "codegen: chain too long for the register file");
    fatalIf(layout.tiles == 0, "codegen: zero tiles");
    bool needs_aux = std::any_of(stages.begin(), stages.end(),
                                 [](const ElementwiseStage &s) {
                                     return s.usesAux();
                                 });

    // Scalar register plan.
    constexpr int sA = 0, sB = 1, sOut = 2, sStride = 3, sCount = 4,
                  sLimit = 5;

    VRegAllocator vregs(options.avoidBankConflicts);
    const int vA = vregs.next();
    const int vB = needs_aux ? vregs.next() : -1;
    const int vZero = vregs.next(); // for Relu via vmax

    Assembler as(name);
    as.sli(sA, static_cast<double>(layout.aBase));
    as.sli(sB, static_cast<double>(layout.bBase));
    as.sli(sOut, static_cast<double>(layout.outBase));
    as.sli(sStride, 16.0); // one FP32 vector per iteration
    as.sli(sCount, 0.0);
    as.sli(sLimit, static_cast<double>(layout.tiles));
    as.vli(vZero, 0.0);

    std::size_t loop = as.here();

    // Loads. The packetizer co-issues the iteration-counter bump with
    // the first load (memory + scalar units).
    if (options.packetize) {
        as.pack().vload(vA, sA).saddi(sCount, sCount, 1).endPack();
    } else {
        as.vload(vA, sA);
        as.saddi(sCount, sCount, 1);
    }
    if (needs_aux) {
        if (options.packetize)
            as.pack().vload(vB, sB).sadd(sA, sA, sStride).endPack();
        else {
            as.vload(vB, sB);
            as.sadd(sA, sA, sStride);
        }
    } else if (options.packetize) {
        // No aux load: fold the a-pointer bump into the next packet
        // stream instead.
        as.sadd(sA, sA, sStride);
    } else {
        as.sadd(sA, sA, sStride);
    }

    // Stages. Each result goes to a fresh register; with conflict
    // avoidance the allocator guarantees the packet never reads two
    // registers from one bank.
    int value = vA;
    bool bumped_b = !needs_aux;
    for (const ElementwiseStage &stage : stages) {
        int dst = vregs.next();
        auto emit = [&](Instruction inst) {
            if (options.packetize && !bumped_b &&
                inst.unit() == UnitKind::Vector) {
                // Co-issue the b-pointer bump with a vector slot.
                bumped_b = true;
                as.pack();
                switch (inst.op) {
                  case Opcode::VAdd: as.vadd(inst.dst, inst.a, inst.b);
                    break;
                  case Opcode::VMul: as.vmul(inst.dst, inst.a, inst.b);
                    break;
                  case Opcode::VMax: as.vmax(inst.dst, inst.a, inst.b);
                    break;
                  default: panic("unexpected packed opcode");
                }
                as.sadd(sB, sB, sStride).endPack();
            } else {
                switch (inst.op) {
                  case Opcode::VAdd: as.vadd(inst.dst, inst.a, inst.b);
                    break;
                  case Opcode::VMul: as.vmul(inst.dst, inst.a, inst.b);
                    break;
                  case Opcode::VMax: as.vmax(inst.dst, inst.a, inst.b);
                    break;
                  case Opcode::SpuApply:
                    as.spu(inst.spuFunc, inst.dst, inst.a);
                    break;
                  default: panic("unexpected codegen opcode");
                }
            }
        };
        switch (stage.kind) {
          case ElementwiseStage::Kind::AddAux:
            emit({.op = Opcode::VAdd, .dst = dst, .a = value, .b = vB});
            break;
          case ElementwiseStage::Kind::MulAux:
            emit({.op = Opcode::VMul, .dst = dst, .a = value, .b = vB});
            break;
          case ElementwiseStage::Kind::MaxAux:
            emit({.op = Opcode::VMax, .dst = dst, .a = value, .b = vB});
            break;
          case ElementwiseStage::Kind::Relu:
            emit({.op = Opcode::VMax, .dst = dst, .a = value,
                  .b = vZero});
            break;
          case ElementwiseStage::Kind::Spu:
            emit({.op = Opcode::SpuApply, .dst = dst, .a = value,
                  .spuFunc = stage.func});
            break;
        }
        value = dst;
    }
    if (needs_aux && !bumped_b)
        as.sadd(sB, sB, sStride);

    // Store + out-pointer bump + loop.
    if (options.packetize) {
        as.pack().vstore(value, sOut).sadd(sOut, sOut, sStride).endPack();
    } else {
        as.vstore(value, sOut);
        as.sadd(sOut, sOut, sStride);
    }
    as.bne(sCount, sLimit, loop);
    return as.finish();
}

double
elementwiseReference(const std::vector<ElementwiseStage> &stages,
                     double a, double b)
{
    double value = a;
    Spu spu;
    for (const ElementwiseStage &stage : stages) {
        switch (stage.kind) {
          case ElementwiseStage::Kind::AddAux: value += b; break;
          case ElementwiseStage::Kind::MulAux: value *= b; break;
          case ElementwiseStage::Kind::MaxAux:
            value = std::max(value, b);
            break;
          case ElementwiseStage::Kind::Relu:
            value = std::max(value, 0.0);
            break;
          case ElementwiseStage::Kind::Spu:
            value = spu.evaluate(stage.func, value);
            break;
        }
    }
    return value;
}

} // namespace dtu
