#include "compiler/fusion.hh"

#include <map>
#include <set>

#include "sim/logging.hh"

namespace dtu
{

namespace
{

/** True when a node can be absorbed behind a compute anchor. */
bool
absorbable(OpKind kind)
{
    switch (kind) {
      case OpKind::Activation:
      case OpKind::BatchNorm:
      case OpKind::LayerNorm:
      case OpKind::Add:
      case OpKind::Mul:
      case OpKind::Softmax:
        return true;
      default:
        return false;
    }
}

/** True for nodes that anchor a fusion group. */
bool
isAnchor(OpKind kind)
{
    return opIsMatrix(kind) || kind == OpKind::Embedding ||
           kind == OpKind::MaxPool || kind == OpKind::AvgPool ||
           kind == OpKind::GlobalAvgPool;
}

/** SPU vs vector-engine attribution for an elementwise node. */
bool
usesSpu(const Node &node)
{
    if (node.kind == OpKind::Activation)
        return !node.attrs.cheapActivation;
    return node.kind == OpKind::Softmax;
}

/** Map a folded layout node onto the DMA transform it becomes. */
TransformKind
layoutTransform(OpKind kind)
{
    switch (kind) {
      case OpKind::Transpose:
      case OpKind::PixelShuffle:
        return TransformKind::Transpose;
      case OpKind::Pad:
      case OpKind::Upsample:
        return TransformKind::Pad;
      case OpKind::Slice:
        return TransformKind::Slice;
      case OpKind::Concat:
        return TransformKind::Concat;
      default:
        return TransformKind::None;
    }
}

/**
 * Structural signature of a fused group, used to share kernel code
 * between repeated blocks (e.g. the 16 identical SRResNet residual
 * blocks hit the same kernel in the instruction cache).
 */
std::string
groupSignature(const Graph &graph, const std::vector<int> &members)
{
    std::string sig;
    for (int id : members) {
        const Node &node = graph.node(id);
        sig += opKindName(node.kind);
        sig += ':';
        sig += node.shape.toString();
        sig += ';';
    }
    return sig;
}

} // namespace

std::vector<PlannedOp>
fuseGraph(const Graph &graph, DType dtype, FusionOptions options)
{
    graph.validate();
    auto consumers = graph.consumers();
    std::size_t elem = dtypeBytes(dtype);

    std::vector<bool> taken(graph.size(), false);
    std::vector<PlannedOp> ops;
    std::map<std::string, int> kernel_ids;

    // Layout nodes with a single consumer fold into that consumer's
    // load DMA; remember the pending transform per consumer.
    std::vector<TransformKind> pending(graph.size(), TransformKind::None);
    std::vector<bool> folded(graph.size(), false);
    if (options.enabled) {
        for (const Node &node : graph.nodes()) {
            if (!opIsLayout(node.kind))
                continue;
            const auto &users = consumers[static_cast<std::size_t>(
                node.id)];
            if (users.size() == 1) {
                TransformKind t = layoutTransform(node.kind);
                // Reshape is free (pure metadata); keep whatever
                // transform was already pending through it.
                if (node.kind == OpKind::Reshape)
                    t = pending[static_cast<std::size_t>(node.id)];
                if (t != TransformKind::None ||
                    node.kind == OpKind::Reshape) {
                    pending[static_cast<std::size_t>(users[0])] = t;
                    folded[static_cast<std::size_t>(node.id)] = true;
                }
            }
        }
    }

    for (const Node &node : graph.nodes()) {
        auto idx = static_cast<std::size_t>(node.id);
        if (taken[idx] || folded[idx])
            continue;
        if (node.kind == OpKind::Input || node.kind == OpKind::Output)
            continue;

        // Collect the fusion group.
        std::vector<int> members{node.id};
        taken[idx] = true;
        if (options.enabled &&
            (isAnchor(node.kind) || opIsElementwise(node.kind))) {
            int tail = node.id;
            while (members.size() < options.maxNodesPerFusion) {
                const auto &users =
                    consumers[static_cast<std::size_t>(tail)];
                if (users.size() != 1)
                    break;
                const Node &next = graph.node(users[0]);
                auto next_idx = static_cast<std::size_t>(next.id);
                if (taken[next_idx] || folded[next_idx])
                    break;
                if (!absorbable(next.kind))
                    break;
                // A binary op can fuse only when its other operand is
                // already materialized (produced before the anchor).
                bool ready = true;
                for (int in : next.inputs) {
                    if (in != tail && in > node.id)
                        ready = false;
                }
                if (!ready)
                    break;
                members.push_back(next.id);
                taken[next_idx] = true;
                tail = next.id;
            }
        }

        // Account the group.
        PlannedOp op;
        op.anchor = node.kind;
        op.name = node.name;
        op.nodes = members;
        std::set<int> inside(members.begin(), members.end());
        const Node &last = graph.node(members.back());
        op.outputBytes = static_cast<std::uint64_t>(last.shape.numel()) *
                         elem;
        op.loadTransform = pending[idx];
        op.inputDensity = node.attrs.inputDensity;

        for (int id : members) {
            const Node &member = graph.node(id);
            if (member.kind == OpKind::Activation &&
                member.attrs.cheapActivation) {
                // ReLU-family output: roughly half the values are
                // zeroed, making the tensor sparse-DMA friendly.
                op.outputDensity = 0.55;
            }
            op.macs += member.macs;
            if (usesSpu(member))
                op.spuOps += member.laneOps;
            else
                op.vecOps += member.laneOps;
            op.weightBytes += static_cast<std::uint64_t>(
                member.weightElems * static_cast<double>(elem));
            for (int in : member.inputs) {
                if (!inside.count(in)) {
                    op.inputBytes += static_cast<std::uint64_t>(
                        graph.node(in).shape.numel() *
                        static_cast<std::int64_t>(elem));
                }
            }
        }

        // Embedding is a gather: it reads only the looked-up rows,
        // and those rows stream sparsely from L3.
        if (node.kind == OpKind::Embedding) {
            op.weightBytes = op.outputBytes;
            op.inputBytes = 0;
        }

        // Tensorization dimensions of the anchor.
        switch (node.kind) {
          case OpKind::Conv2d:
            op.dimK = static_cast<std::int64_t>(
                graph.node(node.inputs[0]).shape.dim(1) /
                node.attrs.groups) *
                node.attrs.kernelH * node.attrs.kernelW;
            op.dimN = node.shape.dim(1);
            op.dimM = node.shape.dim(0) * node.shape.dim(2) *
                      node.shape.dim(3);
            break;
          case OpKind::DWConv2d:
            op.dimK = node.attrs.kernelH * node.attrs.kernelW;
            op.dimN = node.shape.dim(1);
            op.dimM = node.shape.dim(0) * node.shape.dim(2) *
                      node.shape.dim(3);
            break;
          case OpKind::MatMul:
          case OpKind::Linear: {
            const Shape &in_shape = graph.node(node.inputs[0]).shape;
            op.dimK = in_shape.dim(-1);
            op.dimN = node.shape.dim(-1);
            op.dimM = node.shape.numel() / node.shape.dim(-1);
            break;
          }
          case OpKind::Attention: {
            std::int64_t s = node.shape.dim(1);
            std::int64_t h = node.shape.dim(2);
            // Score/context free dimension: the key-value context —
            // the input's own sequence, extended by the KV-cache
            // depth on autoregressive decode steps (S=1, context=L).
            std::int64_t ctx = node.attrs.kvLen > 0
                                   ? node.attrs.kvLen + s
                                   : s;
            op.dimK = h / node.attrs.heads; // per-head reduction
            op.dimN = ctx;
            op.dimM = node.shape.dim(0) * node.attrs.heads * s;
            break;
          }
          default:
            break;
        }

        if (opIsLayout(node.kind)) {
            // A standalone (multi-consumer or unfused) layout node is
            // pure DMA work: no compute kernel to load.
            op.loadTransform = layoutTransform(node.kind);
            op.kernelBytes = 0;
            op.kernelId = -1;
        } else {
            // Kernel code: fused kernels grow with the member count;
            // structurally identical groups share one kernel image.
            op.kernelBytes = 8192 + 6144 * members.size();
            std::string sig = groupSignature(graph, members);
            auto it = kernel_ids.try_emplace(
                sig, static_cast<int>(kernel_ids.size())).first;
            op.kernelId = it->second;
        }

        ops.push_back(std::move(op));
    }

    return ops;
}

} // namespace dtu
