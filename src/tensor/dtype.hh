/**
 * @file
 * Numeric data types supported by the DTU.
 *
 * DTU 2.0 supports "a full range of widely used data types, i.e. from
 * 8-bit up to 32-bit integer and floating-point types" (Section IV-A)
 * and its peak rates differ per type (Table I): 32 TFLOPS FP32,
 * 128 TFLOPS TF32/FP16/BF16, 256 TOPS INT8.
 */

#ifndef DTU_TENSOR_DTYPE_HH
#define DTU_TENSOR_DTYPE_HH

#include <cstdint>
#include <string>

namespace dtu
{

/** Element data types the compute engines understand. */
enum class DType : std::uint8_t
{
    FP32,
    TF32,
    FP16,
    BF16,
    INT32,
    INT16,
    INT8,
};

/** Number of distinct DType values. */
constexpr int numDTypes = 7;

/** Storage size of one element in bytes. */
constexpr std::size_t
dtypeBytes(DType t)
{
    switch (t) {
      case DType::FP32:
      case DType::TF32: // TF32 is stored in 32-bit containers
      case DType::INT32:
        return 4;
      case DType::FP16:
      case DType::BF16:
      case DType::INT16:
        return 2;
      case DType::INT8:
        return 1;
    }
    return 4;
}

/** True for the floating-point family (incl. TF32/BF16). */
constexpr bool
dtypeIsFloat(DType t)
{
    switch (t) {
      case DType::FP32:
      case DType::TF32:
      case DType::FP16:
      case DType::BF16:
        return true;
      default:
        return false;
    }
}

/**
 * Throughput multiplier of a DTU 2.0 compute core for this type,
 * relative to FP32 (Table I: FP32 32T, TF32/FP16/BF16 128T, INT8 256T;
 * INT32/INT16 follow the FP32/FP16 rates respectively).
 */
constexpr double
dtypeRateFactorDtu2(DType t)
{
    switch (t) {
      case DType::FP32:
      case DType::INT32:
        return 1.0;
      case DType::TF32:
      case DType::FP16:
      case DType::BF16:
      case DType::INT16:
        return 4.0;
      case DType::INT8:
        return 8.0;
    }
    return 1.0;
}

/**
 * Same, for DTU 1.0 (Section II-A: 20/80/80 TFLOPS for FP32/FP16/BF16
 * and 20/80/80 TOPS for INT32/INT16/INT8 — note INT8 runs at the
 * INT16 rate; DTU 2.0 doubled it).
 */
constexpr double
dtypeRateFactorDtu1(DType t)
{
    switch (t) {
      case DType::FP32:
      case DType::TF32:
      case DType::INT32:
        return 1.0;
      case DType::FP16:
      case DType::BF16:
      case DType::INT16:
      case DType::INT8:
        return 4.0;
    }
    return 1.0;
}

/** Human-readable name, e.g. "fp16". */
std::string dtypeName(DType t);

/** Parse a dtype name; throws FatalError on unknown names. */
DType dtypeFromName(const std::string &name);

/**
 * Quantize a double to the representable precision of @p t.
 *
 * Used by the functional engines so numerical behaviour (e.g. SPU
 * polynomial accuracy in FP16) matches storage precision. Integer
 * types saturate at their representable range.
 */
double dtypeQuantize(DType t, double value);

/** Number of mantissa bits kept by @p t (0 for integer types). */
int dtypeMantissaBits(DType t);

} // namespace dtu

#endif // DTU_TENSOR_DTYPE_HH
