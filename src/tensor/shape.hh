/**
 * @file
 * Tensor shapes and row-major stride computation.
 */

#ifndef DTU_TENSOR_SHAPE_HH
#define DTU_TENSOR_SHAPE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace dtu
{

/** An N-dimensional tensor shape. Rank 0 denotes a scalar. */
class Shape
{
  public:
    Shape() = default;

    /** Construct from dimension sizes, e.g. Shape({1, 3, 224, 224}). */
    Shape(std::initializer_list<std::int64_t> dims);

    /** Construct from a vector of dimension sizes. */
    explicit Shape(std::vector<std::int64_t> dims);

    /** Number of dimensions. */
    std::size_t rank() const { return dims_.size(); }

    /** Size of dimension @p i; negative indices count from the back. */
    std::int64_t dim(std::int64_t i) const;

    /** All dimension sizes. */
    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** Total element count (1 for scalars). */
    std::int64_t numel() const;

    /** Row-major (C-order) strides in elements. */
    std::vector<std::int64_t> strides() const;

    /** Linear row-major offset of a coordinate. */
    std::int64_t linearize(const std::vector<std::int64_t> &coord) const;

    /** Inverse of linearize. */
    std::vector<std::int64_t> delinearize(std::int64_t offset) const;

    /** Shape with dimensions @p a and @p b swapped. */
    Shape transposed(std::size_t a, std::size_t b) const;

    /** Shape with a new size for dimension @p axis. */
    Shape withDim(std::size_t axis, std::int64_t size) const;

    bool operator==(const Shape &other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** e.g. "[1, 3, 224, 224]". */
    std::string toString() const;

  private:
    std::vector<std::int64_t> dims_;
};

} // namespace dtu

#endif // DTU_TENSOR_SHAPE_HH
