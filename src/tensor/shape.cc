#include "tensor/shape.hh"

#include <sstream>

#include "sim/logging.hh"

namespace dtu
{

Shape::Shape(std::initializer_list<std::int64_t> dims)
    : dims_(dims)
{
    for (auto d : dims_)
        fatalIf(d < 0, "negative dimension in shape");
}

Shape::Shape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims))
{
    for (auto d : dims_)
        fatalIf(d < 0, "negative dimension in shape");
}

std::int64_t
Shape::dim(std::int64_t i) const
{
    auto r = static_cast<std::int64_t>(rank());
    if (i < 0)
        i += r;
    fatalIf(i < 0 || i >= r, "shape dim index ", i, " out of range for rank ",
            r);
    return dims_[static_cast<std::size_t>(i)];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::vector<std::int64_t>
Shape::strides() const
{
    std::vector<std::int64_t> s(rank(), 1);
    for (std::size_t i = rank(); i-- > 1;)
        s[i - 1] = s[i] * dims_[i];
    return s;
}

std::int64_t
Shape::linearize(const std::vector<std::int64_t> &coord) const
{
    panicIf(coord.size() != rank(), "coordinate rank mismatch");
    auto s = strides();
    std::int64_t offset = 0;
    for (std::size_t i = 0; i < rank(); ++i) {
        panicIf(coord[i] < 0 || coord[i] >= dims_[i],
                "coordinate out of bounds in dim ", i);
        offset += coord[i] * s[i];
    }
    return offset;
}

std::vector<std::int64_t>
Shape::delinearize(std::int64_t offset) const
{
    panicIf(offset < 0 || offset >= numel(), "offset out of bounds");
    std::vector<std::int64_t> coord(rank(), 0);
    auto s = strides();
    for (std::size_t i = 0; i < rank(); ++i) {
        coord[i] = offset / s[i];
        offset %= s[i];
    }
    return coord;
}

Shape
Shape::transposed(std::size_t a, std::size_t b) const
{
    fatalIf(a >= rank() || b >= rank(), "transpose axis out of range");
    auto d = dims_;
    std::swap(d[a], d[b]);
    return Shape(std::move(d));
}

Shape
Shape::withDim(std::size_t axis, std::int64_t size) const
{
    fatalIf(axis >= rank(), "withDim axis out of range");
    fatalIf(size < 0, "withDim negative size");
    auto d = dims_;
    d[axis] = size;
    return Shape(std::move(d));
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < rank(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << "]";
    return os.str();
}

} // namespace dtu
