/**
 * @file
 * A functional tensor used by the simulator's data path.
 *
 * The timing model mostly works on descriptors (shape + dtype), but
 * the functional engines — DMA layout transforms, sparse codec, VMM,
 * SPU, sorting — operate on real values so their correctness can be
 * tested against references. Values are held as doubles and quantized
 * to the tensor's DType on store, mirroring how the hardware rounds
 * into its storage formats.
 */

#ifndef DTU_TENSOR_TENSOR_HH
#define DTU_TENSOR_TENSOR_HH

#include <functional>
#include <vector>

#include "sim/random.hh"
#include "tensor/dtype.hh"
#include "tensor/shape.hh"

namespace dtu
{

/** Dense tensor with row-major storage and dtype-faithful rounding. */
class Tensor
{
  public:
    /** An empty rank-0 FP32 tensor holding a single zero. */
    Tensor();

    /** Zero-filled tensor of a given shape/dtype. */
    explicit Tensor(Shape shape, DType dtype = DType::FP32);

    /** Tensor initialized from values (quantized to @p dtype). */
    Tensor(Shape shape, DType dtype, std::vector<double> values);

    const Shape &shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    std::int64_t numel() const { return shape_.numel(); }
    /** Total storage footprint in bytes. */
    std::size_t bytes() const
    {
        return static_cast<std::size_t>(numel()) * dtypeBytes(dtype_);
    }

    /** Element access by linear offset. */
    double at(std::int64_t i) const;
    /** Element access by coordinate. */
    double at(const std::vector<std::int64_t> &coord) const;
    /** Store, quantizing to this tensor's dtype. */
    void set(std::int64_t i, double v);
    void set(const std::vector<std::int64_t> &coord, double v);

    /** Raw (already quantized) storage. */
    const std::vector<double> &data() const { return data_; }

    /** Apply @p fn to every element in place (results quantized). */
    void apply(const std::function<double(double)> &fn);

    /** Fill with uniform random values in [lo, hi). */
    void fillRandom(Random &rng, double lo = -1.0, double hi = 1.0);

    /**
     * Fill with random values where a fraction @p density of elements
     * is nonzero (used to exercise the sparse codec).
     */
    void fillSparse(Random &rng, double density, double lo = -1.0,
                    double hi = 1.0);

    /** Fraction of nonzero elements. */
    double density() const;

    /** Reinterpret with a new shape of equal numel. */
    Tensor reshaped(const Shape &shape) const;

    /** Convert to another dtype (requantizing every element). */
    Tensor cast(DType dtype) const;

    /** Max absolute elementwise difference against another tensor. */
    double maxAbsDiff(const Tensor &other) const;

    //
    // Layout transformations, matching the DMA engine's on-the-fly
    // capabilities (Section IV-C: padding, slicing, transposing, and
    // concatenation on specified tensor dimensions).
    //

    /**
     * Zero-pad dimension @p axis with @p before leading and @p after
     * trailing elements.
     */
    Tensor padded(std::size_t axis, std::int64_t before,
                  std::int64_t after) const;

    /** Slice [start, start+length) of dimension @p axis. */
    Tensor sliced(std::size_t axis, std::int64_t start,
                  std::int64_t length) const;

    /** Strided slice: every @p step -th index of [start, stop). */
    Tensor slicedStrided(std::size_t axis, std::int64_t start,
                         std::int64_t stop, std::int64_t step) const;

    /** Swap two dimensions (physically rearranging storage). */
    Tensor transposed(std::size_t a, std::size_t b) const;

    /** Concatenate with @p other along @p axis. */
    Tensor concatenated(const Tensor &other, std::size_t axis) const;

  private:
    Shape shape_;
    DType dtype_;
    std::vector<double> data_;
};

} // namespace dtu

#endif // DTU_TENSOR_TENSOR_HH
