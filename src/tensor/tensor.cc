#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

Tensor::Tensor()
    : shape_(), dtype_(DType::FP32), data_(1, 0.0)
{}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0)
{}

Tensor::Tensor(Shape shape, DType dtype, std::vector<double> values)
    : shape_(std::move(shape)), dtype_(dtype), data_(std::move(values))
{
    fatalIf(static_cast<std::int64_t>(data_.size()) != shape_.numel(),
            "tensor value count ", data_.size(), " does not match shape ",
            shape_.toString());
    for (auto &v : data_)
        v = dtypeQuantize(dtype_, v);
}

double
Tensor::at(std::int64_t i) const
{
    panicIf(i < 0 || i >= numel(), "tensor index out of range");
    return data_[static_cast<std::size_t>(i)];
}

double
Tensor::at(const std::vector<std::int64_t> &coord) const
{
    return at(shape_.linearize(coord));
}

void
Tensor::set(std::int64_t i, double v)
{
    panicIf(i < 0 || i >= numel(), "tensor index out of range");
    data_[static_cast<std::size_t>(i)] = dtypeQuantize(dtype_, v);
}

void
Tensor::set(const std::vector<std::int64_t> &coord, double v)
{
    set(shape_.linearize(coord), v);
}

void
Tensor::apply(const std::function<double(double)> &fn)
{
    for (auto &v : data_)
        v = dtypeQuantize(dtype_, fn(v));
}

void
Tensor::fillRandom(Random &rng, double lo, double hi)
{
    for (auto &v : data_)
        v = dtypeQuantize(dtype_, rng.uniform(lo, hi));
}

void
Tensor::fillSparse(Random &rng, double density, double lo, double hi)
{
    fatalIf(density < 0.0 || density > 1.0,
            "sparsity density must be in [0, 1], got ", density);
    for (auto &v : data_) {
        if (rng.chance(density)) {
            double x = rng.uniform(lo, hi);
            // Avoid accidental zeros so density() matches the request.
            if (x == 0.0)
                x = (lo + hi) / 2.0 + 0.25 * (hi - lo);
            v = dtypeQuantize(dtype_, x);
        } else {
            v = 0.0;
        }
    }
}

double
Tensor::density() const
{
    if (data_.empty())
        return 0.0;
    std::int64_t nnz = 0;
    for (auto v : data_)
        nnz += v != 0.0 ? 1 : 0;
    return static_cast<double>(nnz) / static_cast<double>(data_.size());
}

Tensor
Tensor::reshaped(const Shape &shape) const
{
    fatalIf(shape.numel() != numel(), "reshape numel mismatch: ",
            shape_.toString(), " -> ", shape.toString());
    Tensor out(shape, dtype_);
    out.data_ = data_;
    return out;
}

Tensor
Tensor::cast(DType dtype) const
{
    Tensor out(shape_, dtype);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = dtypeQuantize(dtype, data_[i]);
    return out;
}

double
Tensor::maxAbsDiff(const Tensor &other) const
{
    fatalIf(shape_ != other.shape_, "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    return worst;
}

Tensor
Tensor::padded(std::size_t axis, std::int64_t before,
               std::int64_t after) const
{
    fatalIf(axis >= shape_.rank(), "pad axis out of range");
    fatalIf(before < 0 || after < 0, "negative padding");
    Shape out_shape = shape_.withDim(
        axis, shape_.dims()[axis] + before + after);
    Tensor out(out_shape, dtype_);
    for (std::int64_t i = 0; i < numel(); ++i) {
        auto coord = shape_.delinearize(i);
        coord[axis] += before;
        out.set(out_shape.linearize(coord), data_[
            static_cast<std::size_t>(i)]);
    }
    return out;
}

Tensor
Tensor::sliced(std::size_t axis, std::int64_t start,
               std::int64_t length) const
{
    fatalIf(axis >= shape_.rank(), "slice axis out of range");
    fatalIf(start < 0 || length < 0 ||
                start + length > shape_.dims()[axis],
            "slice [", start, ", ", start + length, ") out of range for dim ",
            shape_.dims()[axis]);
    Shape out_shape = shape_.withDim(axis, length);
    Tensor out(out_shape, dtype_);
    for (std::int64_t i = 0; i < out_shape.numel(); ++i) {
        auto coord = out_shape.delinearize(i);
        coord[axis] += start;
        out.set(i, at(shape_.linearize(coord)));
    }
    return out;
}

Tensor
Tensor::slicedStrided(std::size_t axis, std::int64_t start,
                      std::int64_t stop, std::int64_t step) const
{
    fatalIf(axis >= shape_.rank(), "slice axis out of range");
    fatalIf(step <= 0, "slice step must be positive");
    fatalIf(start < 0 || stop < start || stop > shape_.dims()[axis],
            "strided slice range invalid");
    std::int64_t length = (stop - start + step - 1) / step;
    Shape out_shape = shape_.withDim(axis, length);
    Tensor out(out_shape, dtype_);
    for (std::int64_t i = 0; i < out_shape.numel(); ++i) {
        auto coord = out_shape.delinearize(i);
        coord[axis] = start + coord[axis] * step;
        out.set(i, at(shape_.linearize(coord)));
    }
    return out;
}

Tensor
Tensor::transposed(std::size_t a, std::size_t b) const
{
    Shape out_shape = shape_.transposed(a, b);
    Tensor out(out_shape, dtype_);
    for (std::int64_t i = 0; i < numel(); ++i) {
        auto coord = shape_.delinearize(i);
        std::swap(coord[a], coord[b]);
        out.set(out_shape.linearize(coord),
                data_[static_cast<std::size_t>(i)]);
    }
    return out;
}

Tensor
Tensor::concatenated(const Tensor &other, std::size_t axis) const
{
    fatalIf(axis >= shape_.rank(), "concat axis out of range");
    fatalIf(shape_.rank() != other.shape_.rank(),
            "concat rank mismatch");
    fatalIf(dtype_ != other.dtype_, "concat dtype mismatch");
    for (std::size_t i = 0; i < shape_.rank(); ++i) {
        fatalIf(i != axis && shape_.dims()[i] != other.shape_.dims()[i],
                "concat non-axis dim mismatch at ", i);
    }
    std::int64_t mine = shape_.dims()[axis];
    Shape out_shape = shape_.withDim(axis, mine + other.shape_.dims()[axis]);
    Tensor out(out_shape, dtype_);
    for (std::int64_t i = 0; i < numel(); ++i) {
        auto coord = shape_.delinearize(i);
        out.set(out_shape.linearize(coord),
                data_[static_cast<std::size_t>(i)]);
    }
    for (std::int64_t i = 0; i < other.numel(); ++i) {
        auto coord = other.shape_.delinearize(i);
        coord[axis] += mine;
        out.set(out_shape.linearize(coord),
                other.data_[static_cast<std::size_t>(i)]);
    }
    return out;
}

} // namespace dtu
