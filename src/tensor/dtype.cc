#include "tensor/dtype.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::FP32: return "fp32";
      case DType::TF32: return "tf32";
      case DType::FP16: return "fp16";
      case DType::BF16: return "bf16";
      case DType::INT32: return "int32";
      case DType::INT16: return "int16";
      case DType::INT8: return "int8";
    }
    return "unknown";
}

DType
dtypeFromName(const std::string &name)
{
    if (name == "fp32") return DType::FP32;
    if (name == "tf32") return DType::TF32;
    if (name == "fp16") return DType::FP16;
    if (name == "bf16") return DType::BF16;
    if (name == "int32") return DType::INT32;
    if (name == "int16") return DType::INT16;
    if (name == "int8") return DType::INT8;
    fatal("unknown dtype name '", name, "'");
}

int
dtypeMantissaBits(DType t)
{
    switch (t) {
      case DType::FP32: return 23;
      case DType::TF32: return 10;
      case DType::FP16: return 10;
      case DType::BF16: return 7;
      default: return 0;
    }
}

namespace
{

/** Round a double to a float format with @p mantissa_bits mantissa bits. */
double
roundMantissa(double value, int mantissa_bits)
{
    if (value == 0.0 || !std::isfinite(value))
        return value;
    int exponent = 0;
    double mantissa = std::frexp(value, &exponent); // in [0.5, 1)
    double scale = std::ldexp(1.0, mantissa_bits + 1);
    mantissa = std::nearbyint(mantissa * scale) / scale;
    return std::ldexp(mantissa, exponent);
}

double
clampRange(double value, double lo, double hi)
{
    return std::clamp(value, lo, hi);
}

} // namespace

double
dtypeQuantize(DType t, double value)
{
    switch (t) {
      case DType::FP32:
        return static_cast<float>(value);
      case DType::TF32:
        return roundMantissa(static_cast<float>(value), 10);
      case DType::FP16:
        return clampRange(roundMantissa(value, 10), -65504.0, 65504.0);
      case DType::BF16:
        return roundMantissa(static_cast<float>(value), 7);
      case DType::INT32:
        return std::nearbyint(clampRange(value, -2147483648.0,
                                         2147483647.0));
      case DType::INT16:
        return std::nearbyint(clampRange(value, -32768.0, 32767.0));
      case DType::INT8:
        return std::nearbyint(clampRange(value, -128.0, 127.0));
    }
    return value;
}

} // namespace dtu
