#include "sim/tracer.hh"

#include <algorithm>
#include <fstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{

namespace
{

/** Chrome trace timestamps are microseconds; ticks are picoseconds. */
double
ticksToTraceUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

TrackId
Tracer::track(const std::string &process, const std::string &thread)
{
    auto [pit, pnew] = processes_.try_emplace(
        process, static_cast<std::uint32_t>(processes_.size() +
                                            counters_.size() + 1));
    (void)pnew;
    std::uint32_t pid = pit->second;
    auto [tit, tnew] = threads_.try_emplace(
        {pid, thread}, static_cast<std::uint32_t>(threads_.size() + 1));
    (void)tnew;
    return TrackId{pid, tit->second};
}

TrackId
Tracer::trackFor(const std::string &hierarchical_name)
{
    auto dot = hierarchical_name.rfind('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 == hierarchical_name.size())
        return track(hierarchical_name, "main");
    return track(hierarchical_name.substr(0, dot),
                 hierarchical_name.substr(dot + 1));
}

std::uint32_t
Tracer::counterPid(const std::string &counter_name)
{
    auto [it, fresh] = counters_.try_emplace(
        counter_name, static_cast<std::uint32_t>(processes_.size() +
                                                 counters_.size() + 1));
    (void)fresh;
    return it->second;
}

std::size_t
Tracer::trackCount() const
{
    return threads_.size() + counters_.size();
}

void
Tracer::span(TrackId track, const std::string &name,
             const std::string &category, Tick start, Tick end,
             TraceArgs args)
{
    if (!enabled_)
        return;
    if (end < start)
        end = start;
    TraceEvent e;
    e.kind = Kind::Span;
    e.pid = track.pid;
    e.tid = track.tid;
    e.name = name;
    e.category = category;
    e.start = start;
    e.end = end;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
Tracer::instant(TrackId track, const std::string &name,
                const std::string &category, Tick at, TraceArgs args)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.kind = Kind::Instant;
    e.pid = track.pid;
    e.tid = track.tid;
    e.name = name;
    e.category = category;
    e.start = at;
    e.end = at;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
Tracer::counter(const std::string &counter_name,
                const std::string &series_key, Tick at, double value)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.kind = Kind::Counter;
    e.pid = counterPid(counter_name);
    e.tid = 0;
    e.name = counter_name;
    e.start = at;
    e.end = at;
    e.value = value;
    e.seriesKey = series_key;
    events_.push_back(std::move(e));
}

void
Tracer::flow(TrackId track, const std::string &name,
             const std::string &category, Tick at, std::uint64_t flow_id,
             FlowPhase phase)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.kind = Kind::Flow;
    e.pid = track.pid;
    e.tid = track.tid;
    e.name = name;
    e.category = category;
    e.start = at;
    e.end = at;
    e.flowId = flow_id;
    e.flowPhase = phase;
    events_.push_back(std::move(e));
}

void
Tracer::writeTrackMetadata(JsonWriter &json, std::uint32_t pid_offset,
                           const std::string &label_prefix) const
{
    auto displayName = [&](const std::string &name) {
        return label_prefix.empty() ? name : label_prefix + "." + name;
    };

    // Track metadata: names and a stable sort order.
    for (const auto &[process, pid] : processes_) {
        json.beginObject()
            .field("ph", "M")
            .field("name", "process_name")
            .field("pid", static_cast<std::uint64_t>(pid + pid_offset))
            .key("args")
            .beginObject()
            .field("name", displayName(process))
            .endObject()
            .endObject();
        json.beginObject()
            .field("ph", "M")
            .field("name", "process_sort_index")
            .field("pid", static_cast<std::uint64_t>(pid + pid_offset))
            .key("args")
            .beginObject()
            .field("sort_index",
                   static_cast<std::uint64_t>(pid + pid_offset))
            .endObject()
            .endObject();
    }
    for (const auto &[key, tid] : threads_) {
        // Find the thread's display name from the (pid, name) key.
        json.beginObject()
            .field("ph", "M")
            .field("name", "thread_name")
            .field("pid",
                   static_cast<std::uint64_t>(key.first + pid_offset))
            .field("tid", static_cast<std::uint64_t>(tid))
            .key("args")
            .beginObject()
            .field("name", key.second)
            .endObject()
            .endObject();
    }
    for (const auto &[counter_name, pid] : counters_) {
        json.beginObject()
            .field("ph", "M")
            .field("name", "process_name")
            .field("pid", static_cast<std::uint64_t>(pid + pid_offset))
            .key("args")
            .beginObject()
            .field("name", displayName(counter_name))
            .endObject()
            .endObject();
    }
}

void
Tracer::writeEvent(JsonWriter &json, const TraceEvent &e,
                   std::uint32_t pid_offset)
{
    json.beginObject();
    switch (e.kind) {
      case Kind::Span:
        json.field("ph", "X")
            .field("name", e.name)
            .field("cat", e.category.empty() ? "span" : e.category)
            .field("pid", static_cast<std::uint64_t>(e.pid + pid_offset))
            .field("tid", static_cast<std::uint64_t>(e.tid))
            .field("ts", ticksToTraceUs(e.start))
            .field("dur", ticksToTraceUs(e.end - e.start));
        break;
      case Kind::Instant:
        json.field("ph", "i")
            .field("name", e.name)
            .field("cat", e.category.empty() ? "event" : e.category)
            .field("s", "t") // thread-scoped instant
            .field("pid", static_cast<std::uint64_t>(e.pid + pid_offset))
            .field("tid", static_cast<std::uint64_t>(e.tid))
            .field("ts", ticksToTraceUs(e.start));
        break;
      case Kind::Counter:
        json.field("ph", "C")
            .field("name", e.name)
            .field("pid", static_cast<std::uint64_t>(e.pid + pid_offset))
            .field("tid", std::uint64_t{0})
            .field("ts", ticksToTraceUs(e.start));
        break;
      case Kind::Flow:
        json.field("ph", e.flowPhase == FlowPhase::Start  ? "s"
                         : e.flowPhase == FlowPhase::Step ? "t"
                                                          : "f")
            .field("name", e.name)
            .field("cat", e.category.empty() ? "flow" : e.category)
            .field("id", e.flowId)
            .field("pid", static_cast<std::uint64_t>(e.pid + pid_offset))
            .field("tid", static_cast<std::uint64_t>(e.tid))
            .field("ts", ticksToTraceUs(e.start));
        // Bind to the slice *enclosing* the timestamp (default binds
        // steps/ends to the next slice, which detaches the arrow
        // when the target span starts at the same tick).
        if (e.flowPhase != FlowPhase::Start)
            json.field("bp", "e");
        break;
    }
    if (e.kind == Kind::Counter) {
        json.key("args")
            .beginObject()
            .field(e.seriesKey.empty() ? "value" : e.seriesKey, e.value)
            .endObject();
    } else if (!e.args.empty()) {
        json.key("args").beginObject();
        for (const auto &[k, v] : e.args)
            json.field(k, v);
        json.endObject();
    }
    json.endObject();
}

void
Tracer::exportChromeTrace(std::ostream &os) const
{
    exportMergedChromeTrace({{"", this}}, os);
}

void
Tracer::exportMergedChromeTrace(const std::vector<ExportPart> &parts,
                                std::ostream &os)
{
    // Each part's pids start at 1, so give part k a disjoint range
    // by offsetting with the running sum of earlier parts' maxPid().
    std::vector<std::uint32_t> offsets;
    offsets.reserve(parts.size());
    std::uint32_t next = 0;
    for (const ExportPart &part : parts) {
        offsets.push_back(next);
        next += part.tracer->maxPid();
    }

    // Sort by start tick (stable: part order then emission order
    // breaks ties) so the file is monotonic in `ts`, which
    // simplifies diffing and lets consumers stream it.
    std::vector<std::pair<const TraceEvent *, std::uint32_t>> ordered;
    for (std::size_t k = 0; k < parts.size(); ++k)
        for (const TraceEvent &e : parts[k].tracer->events_)
            ordered.emplace_back(&e, offsets[k]);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto &a, const auto &b) {
                         return a.first->start < b.first->start;
                     });

    JsonWriter json(os, 0);
    json.beginObject();
    json.key("displayTimeUnit").value("ns");
    json.key("traceEvents");
    json.beginArray();

    for (std::size_t k = 0; k < parts.size(); ++k)
        parts[k].tracer->writeTrackMetadata(json, offsets[k],
                                            parts[k].label);

    for (const auto &[e, offset] : ordered)
        writeEvent(json, *e, offset);

    json.endArray();
    json.endObject();
    os << "\n";
}

void
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream file(path);
    fatalIf(!file, "cannot open trace output file '", path, "'");
    exportChromeTrace(file);
    fatalIf(!file.good(), "error writing trace to '", path, "'");
    inform(csprintf("wrote timeline trace (", events_.size(),
                    " events, ", trackCount(), " tracks) to ", path));
}

void
Tracer::writeMergedChromeTrace(const std::vector<ExportPart> &parts,
                               const std::string &path)
{
    std::ofstream file(path);
    fatalIf(!file, "cannot open trace output file '", path, "'");
    exportMergedChromeTrace(parts, file);
    fatalIf(!file.good(), "error writing trace to '", path, "'");
    std::size_t events = 0;
    for (const ExportPart &part : parts)
        events += part.tracer->eventCount();
    inform(csprintf("wrote merged timeline trace (", parts.size(),
                    " tracers, ", events, " events) to ", path));
}

} // namespace dtu
