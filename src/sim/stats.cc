#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "sim/logging.hh"

namespace dtu
{

void
Stat::init(StatRegistry &registry, std::string name, std::string description)
{
    name_ = std::move(name);
    description_ = std::move(description);
    registry.add(this);
}

void
Histogram::init(StatRegistry &registry, std::string name,
                std::string description, double lo, double hi,
                std::size_t buckets)
{
    fatalIf(buckets == 0, "histogram '", name, "' needs at least 1 bucket");
    fatalIf(hi <= lo, "histogram '", name, "' needs hi > lo");
    name_ = std::move(name);
    description_ = std::move(description);
    lo_ = lo;
    hi_ = hi;
    counts_.assign(buckets, 0);
    registry.add(this);
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
StatRegistry::add(Stat *stat)
{
    panicIf(scalars_.count(stat->name()) != 0,
            "duplicate stat name '", stat->name(), "'");
    scalars_[stat->name()] = stat;
}

void
StatRegistry::add(Histogram *histogram)
{
    panicIf(histograms_.count(histogram->name()) != 0,
            "duplicate histogram name '", histogram->name(), "'");
    histograms_[histogram->name()] = histogram;
}

double
StatRegistry::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second->value();
}

bool
StatRegistry::has(const std::string &name) const
{
    return scalars_.count(name) != 0;
}

double
StatRegistry::sumMatching(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = scalars_.lower_bound(prefix); it != scalars_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : scalars_)
        stat->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::setprecision(12);
    for (const auto &[name, stat] : scalars_) {
        os << name << " " << stat->value();
        if (!stat->description().empty())
            os << " # " << stat->description();
        os << "\n";
    }
    for (const auto &[name, histogram] : histograms_) {
        os << name << ".count " << histogram->count() << "\n"
           << name << ".mean " << histogram->mean() << "\n"
           << name << ".min " << histogram->min() << "\n"
           << name << ".max " << histogram->max() << "\n";
    }
}

std::vector<std::string>
StatRegistry::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars_.size());
    for (const auto &[name, stat] : scalars_)
        names.push_back(name);
    return names;
}

} // namespace dtu
