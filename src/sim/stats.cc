#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{

double
StatSnapshot::value(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
}

double
StatSnapshot::delta(const StatSnapshot &earlier,
                    const std::string &name) const
{
    return value(name) - earlier.value(name);
}

double
StatSnapshot::ratePerSecond(const StatSnapshot &earlier,
                            const std::string &name) const
{
    if (at <= earlier.at)
        return 0.0;
    return delta(earlier, name) / ticksToSeconds(at - earlier.at);
}

void
Stat::init(StatRegistry &registry, std::string name, std::string description)
{
    name_ = std::move(name);
    description_ = std::move(description);
    registry.add(this);
}

void
Histogram::init(StatRegistry &registry, std::string name,
                std::string description, double lo, double hi,
                std::size_t buckets)
{
    name_ = std::move(name);
    description_ = std::move(description);
    init(lo, hi, buckets);
    registry.add(this);
}

void
Histogram::init(double lo, double hi, std::size_t buckets)
{
    fatalIf(buckets == 0, "histogram '", name_,
            "' needs at least 1 bucket");
    fatalIf(hi <= lo, "histogram '", name_, "' needs hi > lo");
    lo_ = lo;
    hi_ = hi;
    counts_.assign(buckets, 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Histogram::percentile(double fraction) const
{
    // An empty histogram has no order statistics: NaN is the defined
    // "no data" answer. Consumers that serialize it (ServingReport,
    // stat dumps) render it as JSON null via the non-finite rule
    // instead of reporting a fabricated 0.
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    fraction = std::clamp(fraction, 0.0, 1.0);
    // The extreme order statistics are tracked exactly; answering
    // from them keeps p == 1.0 correct even when out-of-range
    // samples were clamped into an edge bucket.
    if (fraction >= 1.0)
        return max_;
    if (count_ == 1)
        return min_;
    double target = fraction * static_cast<double>(count_);
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] > 0 &&
            static_cast<double>(cumulative + counts_[i]) >= target) {
            double within =
                (target - static_cast<double>(cumulative)) /
                static_cast<double>(counts_[i]);
            double v = lo_ + (static_cast<double>(i) + within) * width;
            return std::clamp(v, min_, max_);
        }
        cumulative += counts_[i];
    }
    return max_;
}

void
Histogram::sample(double v)
{
    if (std::isnan(v)) {
        warn(csprintf("histogram '", name_, "': NaN sample dropped"));
        return;
    }
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    // Out-of-range samples clamp into the edge buckets (see the
    // header); the explicit comparisons also keep +/-inf and values
    // whose scaled fraction would overflow the cast well-defined.
    std::size_t idx;
    if (v < lo_) {
        idx = 0;
    } else if (v >= hi_) {
        idx = counts_.size() - 1;
    } else {
        double frac = (v - lo_) / (hi_ - lo_);
        idx = std::min(counts_.size() - 1,
                       static_cast<std::size_t>(
                           frac * static_cast<double>(counts_.size())));
    }
    ++counts_[idx];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
StatRegistry::add(Stat *stat)
{
    panicIf(scalars_.count(stat->name()) != 0,
            "duplicate stat name '", stat->name(), "'");
    scalars_[stat->name()] = stat;
}

void
StatRegistry::add(Histogram *histogram)
{
    panicIf(histograms_.count(histogram->name()) != 0,
            "duplicate histogram name '", histogram->name(), "'");
    histograms_[histogram->name()] = histogram;
}

double
StatRegistry::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end()) {
        warn(csprintf("lookup of unknown stat '", name,
                      "' returns 0.0 (misspelled name?)"));
        return 0.0;
    }
    return it->second->value();
}

std::optional<double>
StatRegistry::tryLookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        return std::nullopt;
    return it->second->value();
}

bool
StatRegistry::has(const std::string &name) const
{
    return scalars_.count(name) != 0;
}

double
StatRegistry::sumMatching(const std::string &prefix) const
{
    double total = 0.0;
    for (auto it = scalars_.lower_bound(prefix); it != scalars_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

StatSnapshot
StatRegistry::snapshot(Tick at) const
{
    StatSnapshot snap;
    snap.at = at;
    for (const auto &[name, stat] : scalars_)
        snap.values[name] = stat->value();
    return snap;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : scalars_)
        stat->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << std::setprecision(12);
    for (const auto &[name, stat] : scalars_) {
        os << name << " " << stat->value();
        if (!stat->description().empty())
            os << " # " << stat->description();
        os << "\n";
    }
    for (const auto &[name, histogram] : histograms_) {
        os << name << ".count " << histogram->count() << "\n"
           << name << ".mean " << histogram->mean() << "\n"
           << name << ".min " << histogram->min() << "\n"
           << name << ".max " << histogram->max() << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("scalars").beginObject();
    for (const auto &[name, stat] : scalars_) {
        json.key(name).beginObject();
        json.field("value", stat->value());
        if (!stat->description().empty())
            json.field("description", stat->description());
        json.endObject();
    }
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, histogram] : histograms_) {
        json.key(name).beginObject();
        json.field("count", histogram->count())
            .field("sum", histogram->sum())
            .field("mean", histogram->mean())
            .field("min", histogram->min())
            .field("max", histogram->max())
            .field("lo", histogram->lo())
            .field("hi", histogram->hi());
        if (!histogram->description().empty())
            json.field("description", histogram->description());
        json.key("buckets").beginArray();
        for (std::uint64_t b : histogram->buckets())
            json.value(b);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
    os << "\n";
}

std::vector<std::string>
StatRegistry::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars_.size());
    for (const auto &[name, stat] : scalars_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
StatRegistry::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &[name, histogram] : histograms_)
        names.push_back(name);
    return names;
}

const Histogram *
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

const Stat *
StatRegistry::stat(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : it->second;
}

} // namespace dtu
