/**
 * @file
 * Statistics collection for dtusim.
 *
 * Engines expose their behaviour (bytes moved, stall cycles, VMM
 * operations, power-budget requests, ...) through named statistics
 * registered with a StatRegistry. Benchmarks and tests query stats by
 * hierarchical name; the registry can also dump everything in a
 * stable, diff-friendly text format.
 */

#ifndef DTU_SIM_STATS_HH
#define DTU_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{

class StatRegistry;

/**
 * A point-in-time capture of every scalar stat in a registry.
 *
 * Two snapshots bracket a window: delta() gives the counter movement
 * inside it and ratePerSecond() the per-second derivation — the
 * primitive the performance sampler (obs/perf_monitor.hh) and the
 * serving SLO monitor build their windowed series on.
 */
struct StatSnapshot
{
    /** Simulated time the snapshot was taken at. */
    Tick at = 0;
    /** Scalar stat values by name at that time. */
    std::map<std::string, double> values;

    /** Value of @p name, or 0.0 when the snapshot lacks it. */
    double value(const std::string &name) const;

    /**
     * Counter movement of @p name since @p earlier: value here minus
     * value there (either side missing reads as 0.0, so a stat
     * registered mid-window still yields its full count).
     */
    double delta(const StatSnapshot &earlier,
                 const std::string &name) const;

    /**
     * Per-second rate of change of @p name between @p earlier and
     * this snapshot. Returns 0.0 when the snapshots are not strictly
     * ordered in time (no window to derive over).
     */
    double ratePerSecond(const StatSnapshot &earlier,
                         const std::string &name) const;
};

/** A named scalar statistic (a counter or a gauge). */
class Stat
{
  public:
    Stat() = default;

    /** Register this stat under @p name with @p registry. */
    void init(StatRegistry &registry, std::string name,
              std::string description);

    /** Accumulate. */
    Stat &operator+=(double v) { value_ += v; return *this; }
    /** Increment by one. */
    Stat &operator++() { value_ += 1.0; return *this; }
    /** Set to an absolute value (gauge semantics). */
    void set(double v) { value_ = v; }
    /** Current value. */
    double value() const { return value_; }
    /** Reset to zero. */
    void reset() { value_ = 0.0; }

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

  private:
    std::string name_;
    std::string description_;
    double value_ = 0.0;
};

/** A histogram statistic with fixed-width buckets. */
class Histogram
{
  public:
    Histogram() = default;

    /**
     * Register and configure.
     * @param lo lower bound of the first bucket.
     * @param hi upper bound of the last bucket.
     * @param buckets number of equal-width buckets.
     */
    void init(StatRegistry &registry, std::string name,
              std::string description, double lo, double hi,
              std::size_t buckets);

    /**
     * Configure without registering: a standalone histogram for
     * ad-hoc aggregation (e.g. the serving runtime's latency
     * distribution, which outlives any one chip's StatRegistry).
     */
    void init(double lo, double hi, std::size_t buckets);

    /**
     * Record one sample.
     *
     * Out-of-range samples clamp into the edge buckets: v < lo counts
     * in the first bucket, v >= hi in the last. min()/max()/count()
     * and the sum still see the raw value, so the tails remain
     * visible even when the configured range was too narrow. NaN
     * samples are dropped with a warn() — they carry no position.
     */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /**
     * Estimate the value at quantile @p fraction (in [0, 1], e.g.
     * 0.99 for p99) by linear interpolation inside the bucket that
     * holds the target rank. The estimate is clamped to the observed
     * [min(), max()] so edge-bucket clamping of out-of-range samples
     * cannot place a percentile outside the data.
     *
     * Edge cases are defined: an empty histogram returns quiet NaN
     * (the "no data" value — JSON serializers render it null via the
     * non-finite rule); a single sample returns that sample for every
     * fraction; fraction == 1.0 returns max().
     */
    double percentile(double fraction) const;
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }
    /** Lower bound of the first bucket. */
    double lo() const { return lo_; }
    /** Upper bound of the last bucket. */
    double hi() const { return hi_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

    void reset();

  private:
    std::string name_;
    std::string description_;
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Registry of all statistics in one simulation instance.
 *
 * Not global: each simulated chip owns a registry so multiple
 * simulations can coexist (e.g. i20 and i10 side by side in one
 * benchmark binary).
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Add a scalar stat (called by Stat::init). */
    void add(Stat *stat);
    /** Add a histogram (called by Histogram::init). */
    void add(Histogram *histogram);

    /**
     * Look up a scalar stat by exact name.
     * @return the value, or 0.0 when absent (with a warn(), so a
     *         misspelled name cannot silently read zeros — prefer
     *         tryLookup() when absence is expected).
     */
    double lookup(const std::string &name) const;

    /**
     * Look up a scalar stat by exact name without warning.
     * @return the value, or nullopt when no such stat exists.
     */
    std::optional<double> tryLookup(const std::string &name) const;

    /** True when a scalar stat with this exact name exists. */
    bool has(const std::string &name) const;

    /** Sum of all scalar stats whose name begins with @p prefix. */
    double sumMatching(const std::string &prefix) const;

    /**
     * Capture every scalar stat at simulated time @p at. Histograms
     * are not captured: windowed tail estimation needs the raw
     * samples, which the serving monitor keeps itself.
     */
    StatSnapshot snapshot(Tick at) const;

    /** Reset every registered stat to zero. */
    void resetAll();

    /** Dump all stats sorted by name, "name value # description". */
    void dump(std::ostream &os) const;

    /**
     * Dump every stat as JSON: scalars with value + description, and
     * histograms in full (count, sum, mean, min, max, the configured
     * [lo, hi) range, and every bucket — which the text dump drops).
     */
    void dumpJson(std::ostream &os) const;

    /** Names of all registered scalar stats (sorted). */
    std::vector<std::string> scalarNames() const;

    /** Names of all registered histograms (sorted). */
    std::vector<std::string> histogramNames() const;

    /** Find a histogram by exact name, or nullptr. */
    const Histogram *histogram(const std::string &name) const;

    /** Find a scalar stat by exact name, or nullptr. */
    const Stat *stat(const std::string &name) const;

  private:
    std::map<std::string, Stat *> scalars_;
    std::map<std::string, Histogram *> histograms_;
};

} // namespace dtu

#endif // DTU_SIM_STATS_HH
