#include "sim/logging.hh"

#include <iostream>

namespace dtu
{

namespace
{
bool gLoggingEnabled = false;
} // namespace

bool
loggingEnabled()
{
    return gLoggingEnabled;
}

void
setLoggingEnabled(bool enabled)
{
    gLoggingEnabled = enabled;
}

void
warn(const std::string &msg)
{
    if (gLoggingEnabled)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (gLoggingEnabled)
        std::cout << "info: " << msg << "\n";
}

} // namespace dtu
