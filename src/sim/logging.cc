#include "sim/logging.hh"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "sim/event_queue.hh"

namespace dtu
{

namespace
{

bool gLoggingEnabled = false;
// Per-thread log sinks: in a parallel fleet each worker thread drives
// its own devices, and its warn()/inform() prefixes must follow the
// device it is stepping, not whatever another thread last registered.
thread_local const EventQueue *gLogClock = nullptr;
thread_local int gLogDevice = -1;

/** Parse DTU_LOG once; nullopt when unset or unrecognized. */
std::optional<bool>
envOverride()
{
    static const std::optional<bool> parsed = []() -> std::optional<bool> {
        const char *raw = std::getenv("DTU_LOG");
        if (!raw)
            return std::nullopt;
        std::string v(raw);
        for (char &c : v)
            c = static_cast<char>(std::tolower(c));
        if (v == "1" || v == "on" || v == "true" || v == "yes")
            return true;
        if (v == "0" || v == "off" || v == "false" || v == "no" ||
            v.empty())
            return false;
        return std::nullopt;
    }();
    return parsed;
}

/** "[WARN][t=1234ps] " style prefix for one severity. */
std::string
prefix(const char *severity)
{
    std::string p = "[";
    p += severity;
    p += "]";
    if (gLogDevice >= 0) {
        p += "[dev";
        p += std::to_string(gLogDevice);
        p += "]";
    }
    if (gLogClock) {
        p += "[t=";
        p += std::to_string(gLogClock->now());
        p += "ps]";
    }
    p += " ";
    return p;
}

} // namespace

bool
loggingEnabled()
{
    return envOverride().value_or(gLoggingEnabled);
}

void
setLoggingEnabled(bool enabled)
{
    gLoggingEnabled = enabled;
}

void
setLogClock(const EventQueue *queue)
{
    gLogClock = queue;
}

const EventQueue *
logClock()
{
    return gLogClock;
}

void
setLogDevice(int device)
{
    gLogDevice = device;
}

int
logDevice()
{
    return gLogDevice;
}

void
warn(const std::string &msg)
{
    if (loggingEnabled())
        std::cerr << prefix("WARN") << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (loggingEnabled())
        std::cout << prefix("INFO") << msg << "\n";
}

} // namespace dtu
