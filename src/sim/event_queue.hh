/**
 * @file
 * The event queue at the heart of the dtusim kernel.
 *
 * Every timed behaviour in the simulated DTU — instruction issue,
 * DMA transactions, HBM channel service, synchronization wakeups,
 * power-management observation windows — is an Event scheduled on a
 * single EventQueue. Events at the same tick execute in FIFO order of
 * scheduling (stable), which keeps runs deterministic.
 *
 * The queue is an indexed calendar queue (R. Brown, CACM 1988): time
 * is divided into fixed-width "days" hashed onto a power-of-two ring
 * of buckets, so schedule/deschedule/pop are O(1) amortized instead
 * of the O(log n) heap push plus O(n) lazy-deletion backlog of a
 * binary heap. Descheduling removes the entry eagerly, so the queue
 * never holds a pointer to an Event that may since have been
 * destroyed (the lazy-deletion scheme dereferenced stale Event
 * pointers at pop time). The bucket ring resizes with the live event
 * population and re-derives the day width from the observed event
 * span, keeping ~O(1) events per bucket across workload scales.
 */

#ifndef DTU_SIM_EVENT_QUEUE_HH
#define DTU_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{

class EventQueue;

/**
 * A schedulable unit of work. Events are owned by the caller and may
 * be rescheduled after they fire; an event can only be in the queue
 * once at a time. Destroying a still-scheduled event removes it from
 * its queue.
 */
class Event
{
  public:
    /** Construct an event around a callback. */
    explicit Event(std::function<void()> callback, std::string name = "");

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    ~Event();

    /** The tick this event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    /** True while the event sits in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

  private:
    friend class EventQueue;

    std::function<void()> callback_;
    std::string name_;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    bool scheduled_ = false;
    EventQueue *queue_ = nullptr;
};

/**
 * A deterministic discrete-event queue.
 *
 * The queue is not global: each simulation (each DTU instance, each
 * test) owns its own queue, so independent simulations can coexist in
 * one process — and, in a parallel fleet, each device's queue is
 * confined to the worker thread driving that device.
 */
class EventQueue
{
  public:
    /** Registers this queue as the log clock (see setLogClock). */
    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule an event at an absolute tick.
     * @param event the event to schedule; must not already be scheduled.
     * @param when absolute tick, must be >= now().
     */
    void schedule(Event &event, Tick when);

    /** Schedule an event @p delay ticks in the future. */
    void scheduleIn(Event &event, Tick delay) { schedule(event, now_ + delay); }

    /** Remove a scheduled event from the queue without running it. */
    void deschedule(Event &event);

    /** Move an already-scheduled event to a new absolute tick. */
    void reschedule(Event &event, Tick when);

    /** True when no events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return live_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue drains or @p limit ticks is reached.
     * @param limit absolute tick bound (inclusive); events scheduled
     *              beyond it stay queued.
     * @return the tick of the last executed event, or now() if none ran.
     */
    Tick run(Tick limit = maxTick);

    /** Execute exactly one event if any is pending. @return true if run. */
    bool step();

    /**
     * Advance simulated time to @p when without running any events.
     * Only valid when nothing is scheduled before @p when.
     */
    void advanceTo(Tick when);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t sequence;
        Event *event;
    };

    /** The earliest pending entry, or nullptr when empty. */
    const Entry *peekNext() const;

    /** Pop @p top (must be peekNext()'s result) and run its event. */
    void popAndRun(const Entry &top);

    /** Insert into the bucket for @p entry.when, keeping it sorted. */
    void insertEntry(const Entry &entry);

    /** Eagerly remove @p event's entry from its bucket. */
    void removeEntry(const Event &event);

    /** Rebuild onto @p nbuckets buckets, re-deriving the day width. */
    void resize(std::size_t nbuckets);

    /**
     * Bucket ring. Each bucket holds the entries of every day hashing
     * onto it, sorted ascending by (when, sequence); since a bucket
     * stays small (resize keeps load ~O(1)) the sorted-vector insert
     * and erase are effectively O(1).
     */
    std::vector<std::vector<Entry>> buckets_;
    /** Ticks per calendar day. */
    Tick width_ = 1024;
    /** buckets_.size() - 1; the size is a power of two. */
    std::size_t mask_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
};

} // namespace dtu

#endif // DTU_SIM_EVENT_QUEUE_HH
