/**
 * @file
 * Seeded, deterministic fault injection for the simulated chip.
 *
 * Cloud inference is judged on what it sustains when things go
 * wrong, not only on peak latency: ECC events in the HBM stacks,
 * transient DMA descriptor failures, and thermal-throttle episodes
 * all erode the QPS a box can promise. The FaultInjector schedules
 * those failure modes deterministically from one seed:
 *
 *  - ECC errors draw per HBM access with a probability proportional
 *    to the bytes moved. Correctable errors stall the access for a
 *    scrub interval; uncorrectable errors poison the execution that
 *    observed them (the serving scheduler retries or fails the
 *    batch).
 *  - Transient DMA faults draw per submitted descriptor. The engine
 *    retries with bounded exponential backoff; exhausted retries
 *    poison the execution like an uncorrectable ECC error.
 *  - Thermal-throttle episodes form a precomputed on/off schedule on
 *    the simulated timeline (exponential gaps and durations). While
 *    an episode is active the CPME caps the effective core clock.
 *
 * Every injected fault is appended to a replayable log, counted in
 * the chip's StatRegistry ("fault.*"), and emitted as a Tracer
 * instant, so a fault-injected run can be compared event-for-event
 * against a second run with the same seed. Injection is strictly
 * opt-in: a chip without an installed injector (or with all rates at
 * zero) draws nothing from the fault RNG streams and reproduces the
 * fault-free timing bit-for-bit.
 */

#ifndef DTU_SIM_FAULT_HH
#define DTU_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dtu
{

class Tracer;

/** The failure modes the injector can schedule. */
enum class FaultKind
{
    /** HBM ECC error corrected in place (adds a scrub stall). */
    EccCorrectable,
    /** HBM ECC error beyond correction (poisons the execution). */
    EccUncorrectable,
    /** One DMA descriptor failed transiently (engine retries). */
    DmaTransient,
    /** A DMA descriptor failed every bounded retry (poisons). */
    DmaRetryExhausted,
    /** A thermal-throttle episode began (caps the core clock). */
    ThermalThrottle,
};

/** Stable lowercase name for JSON/logs. */
const char *faultKindName(FaultKind kind);

/** Rates and shapes of the injected failure modes (all default off). */
struct FaultConfig
{
    /** Seed for the per-class RNG streams. */
    std::uint64_t seed = 1;

    //
    // HBM ECC. Rates are expected events per GiB moved, so the fault
    // pressure scales with memory traffic the way field failure
    // rates do. A rate of 0 disables the class (and its RNG draws).
    //
    double eccCorrectablePerGiB = 0.0;
    double eccUncorrectablePerGiB = 0.0;
    /** Stall added to an access hit by a correctable error. */
    Tick eccScrubTicks = 2'000'000; // 2 us

    //
    // DMA transients. Probability that one submitted descriptor
    // fails; the engine retries up to dmaMaxRetries times with
    // exponential backoff (backoff << attempt) between attempts.
    //
    double dmaTransientRate = 0.0;
    unsigned dmaMaxRetries = 3;
    Tick dmaRetryBackoffTicks = 1'000'000; // 1 us, doubling

    //
    // Thermal-throttle episodes. Gaps between episode starts and
    // episode durations are exponentially distributed around these
    // means; during an episode the effective core clock is capped at
    // thermalCapHz. An interval, duration, or cap of 0 disables the
    // class.
    //
    double thermalMeanIntervalS = 0.0;
    double thermalMeanDurationS = 0.0;
    double thermalCapHz = 0.0;

    /** True when any class can fire. */
    bool anyEnabled() const;
};

/** One scheduled fault, in injection order (the replay log). */
struct InjectedFault
{
    FaultKind kind = FaultKind::EccCorrectable;
    /** Simulated time the fault was observed (episode start for
     *  thermal). */
    Tick at = 0;
    /** Hierarchical name of the site that drew it ("thermal" for
     *  episodes). */
    std::string site;

    bool
    operator==(const InjectedFault &other) const
    {
        return kind == other.kind && at == other.at &&
               site == other.site;
    }
};

/** A closed thermal-throttle interval on the simulated timeline. */
struct ThermalEpisode
{
    Tick start = 0;
    Tick end = 0;
};

/**
 * Draws faults from seeded per-class RNG streams. One injector per
 * chip (see Dtu::installFaults); the hooks in Hbm, DmaEngine, and
 * Cpme consult it when wired.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config);
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Register the "fault.*" counters with the chip registry. */
    void registerStats(StatRegistry &stats);

    /** Attach the chip tracer (fault instants + episode spans). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Callback invoked for every injected fault, at injection time
     * (replaces any previous; empty detaches). The flight recorder
     * hooks this so a hardware fault snapshots the serving state
     * leading up to it.
     */
    using FaultCallback = std::function<void(const InjectedFault &)>;
    void onFault(FaultCallback callback)
    {
        callback_ = std::move(callback);
    }

    const FaultConfig &config() const { return config_; }

    //
    // HBM hook.
    //

    /**
     * Draw the ECC outcome of one HBM access of @p bytes finishing
     * at @p at.
     * @return extra stall ticks (the correctable scrub; 0 usually).
     */
    Tick eccAccess(Tick at, const std::string &site,
                   std::uint64_t bytes);

    //
    // DMA hooks.
    //

    /** True when descriptors should draw transient faults at all. */
    bool dmaEnabled() const { return config_.dmaTransientRate > 0.0; }

    /** Draw whether the descriptor that finished at @p at failed. */
    bool dmaTransient(Tick at, const std::string &site);

    /** Bounded retries per descriptor. */
    unsigned dmaMaxRetries() const { return config_.dmaMaxRetries; }

    /** Backoff before retry number @p attempt (exponential). */
    Tick
    dmaBackoff(unsigned attempt) const
    {
        return config_.dmaRetryBackoffTicks << attempt;
    }

    /** Count one retry the engine issued. */
    void recordDmaRetry();

    /** Count a descriptor whose bounded retries all failed. */
    void recordDmaExhausted(Tick at, const std::string &site);

    //
    // Thermal hook.
    //

    /**
     * Frequency ceiling active at @p at: config().thermalCapHz
     * inside an episode, 0 (uncapped) outside. Extends the episode
     * schedule on demand; the schedule depends only on the seed, so
     * out-of-order queries (overlapping serving batches) see one
     * consistent timeline.
     */
    double thermalCapHz(Tick at);

    /** Clamp @p hz against the episode active at @p at (counted). */
    double thermalClampHz(Tick at, double hz);

    /** Episodes scheduled so far (grows as queries advance). */
    const std::vector<ThermalEpisode> &episodes() const
    {
        return episodes_;
    }

    //
    // Degradation signal and replay log.
    //

    /**
     * Executions observing a growing poison count were corrupted
     * (uncorrectable ECC or exhausted DMA retries); the serving
     * scheduler snapshots this around each batch to decide retries.
     */
    std::uint64_t
    poisonCount() const
    {
        return uncorrectable_ + dmaExhausted_;
    }

    /** Every injected fault, in injection order. */
    const std::vector<InjectedFault> &log() const { return log_; }

    /** Injected faults of one kind. */
    std::uint64_t count(FaultKind kind) const;

    /** Serialize the replay log as a JSON array. */
    void writeLogJson(std::ostream &os) const;

  private:
    /** Append to the log, bump stats, emit the tracer instant. */
    void record(FaultKind kind, Tick at, const std::string &site);

    /** Grow the episode schedule until it covers @p upto. */
    void extendThermalSchedule(Tick upto);

    FaultConfig config_;
    // Independent streams per class: the draw order of one class
    // never shifts another's schedule.
    Random eccRng_;
    Random dmaRng_;
    Random thermalRng_;

    std::vector<InjectedFault> log_;
    std::vector<ThermalEpisode> episodes_;
    /** The schedule is decided up to here (exclusive). */
    Tick thermalCovered_ = 0;

    std::uint64_t uncorrectable_ = 0;
    std::uint64_t dmaExhausted_ = 0;

    Stat eccCorrectableStat_;
    Stat eccUncorrectableStat_;
    Stat dmaTransientStat_;
    Stat dmaRetryStat_;
    Stat dmaExhaustedStat_;
    Stat thermalEpisodeStat_;
    Stat thermalThrottledWindowStat_;

    Tracer *tracer_ = nullptr;
    FaultCallback callback_;
};

} // namespace dtu

#endif // DTU_SIM_FAULT_HH
