/**
 * @file
 * Base class for named, hierarchical simulation objects.
 *
 * Every modelled hardware structure (core, DMA engine, L2 slice, ...)
 * derives from SimObject. Objects form a naming hierarchy mirroring
 * the SoC floorplan, e.g. "dtu2.cluster0.pg1.core3.matrix_engine",
 * which statistics and traces use for attribution.
 */

#ifndef DTU_SIM_SIM_OBJECT_HH
#define DTU_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"

namespace dtu
{

class StatRegistry;
class Tracer;

/** A named component attached to an event queue and a stat registry. */
class SimObject
{
  public:
    /**
     * @param name fully qualified hierarchical name.
     * @param queue event queue driving this object.
     * @param stats registry this object's statistics register with
     *              (may be null for stat-less helpers).
     */
    SimObject(std::string name, EventQueue &queue,
              StatRegistry *stats = nullptr)
        : name_(std::move(name)), queue_(queue), stats_(stats)
    {}

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;
    virtual ~SimObject() = default;

    /** Fully qualified hierarchical name. */
    const std::string &name() const { return name_; }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() const { return queue_; }

    /** Current simulated time. */
    Tick curTick() const { return queue_.now(); }

    /** The stat registry, or null. */
    StatRegistry *statRegistry() const { return stats_; }

    /** The timeline tracer, or null (wired by the owning chip). */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    std::string name_;
    EventQueue &queue_;
    StatRegistry *stats_;
    Tracer *tracer_ = nullptr;
};

} // namespace dtu

#endif // DTU_SIM_SIM_OBJECT_HH
