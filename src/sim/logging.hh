/**
 * @file
 * Logging and error reporting for dtusim.
 *
 * Follows the gem5 convention:
 *  - panic():  an internal simulator bug; something that should never
 *              happen regardless of user input. Aborts.
 *  - fatal():  a user error (bad configuration, invalid arguments)
 *              that prevents the simulation from continuing. Throws a
 *              FatalError so library users and tests can recover.
 *  - warn():   functionality that may not behave as the user expects.
 *  - inform(): status messages with no negative connotation.
 */

#ifndef DTU_SIM_LOGGING_HH
#define DTU_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtu
{

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal simulator invariant broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    formatInto(os, rest...);
}

} // namespace detail

/** Concatenate all arguments into one string via operator<<. */
template <typename... Args>
std::string
csprintf(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/**
 * Report an unrecoverable internal error (a simulator bug) and throw.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError("panic: " + csprintf(args...));
}

/**
 * Report an unrecoverable user error (bad configuration) and throw.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError("fatal: " + csprintf(args...));
}

class EventQueue;

/**
 * True when warn()/inform() output is enabled (off during tests).
 *
 * The DTU_LOG environment variable overrides whatever
 * setLoggingEnabled() selected: DTU_LOG=1/on/true forces output on,
 * DTU_LOG=0/off/false forces it off. Useful to surface warnings from
 * test binaries or silence chatty benchmarks without recompiling.
 */
bool loggingEnabled();

/** Enable or disable warn()/inform() console output (see DTU_LOG). */
void setLoggingEnabled(bool enabled);

/**
 * Register the event queue whose now() timestamps log messages.
 * Pass nullptr to unregister. Each EventQueue registers itself on
 * construction (last one constructed wins — with several coexisting
 * simulations, timestamps follow the most recent chip). The
 * registration is per thread, so parallel fleet workers each stamp
 * log lines with their own device's clock.
 */
void setLogClock(const EventQueue *queue);

/** The currently registered log clock (may be null). */
const EventQueue *logClock();

/**
 * Set the fleet device id stamped into log prefixes, or -1 to clear
 * it. While set, warn()/inform() lines read
 * "[WARN][dev3][t=1234ps] ..." so interleaved multi-device output
 * stays attributable. Prefer ScopedLogDevice over calling this
 * directly.
 */
void setLogDevice(int device);

/** The current log device id, or -1 when none is set. */
int logDevice();

/**
 * Stamp log lines with a device id for a lexical scope — the fleet
 * loop wraps each per-device step so any warning the device emits
 * carries its id. Restores the previous id on exit (nesting safe).
 */
class ScopedLogDevice
{
  public:
    explicit ScopedLogDevice(int device) : saved_(logDevice())
    {
        setLogDevice(device);
    }

    ~ScopedLogDevice() { setLogDevice(saved_); }

    ScopedLogDevice(const ScopedLogDevice &) = delete;
    ScopedLogDevice &operator=(const ScopedLogDevice &) = delete;

  private:
    int saved_;
};

/**
 * Print a warning about possibly-incorrect behaviour, prefixed with
 * severity and, when a log clock is registered, the simulated time:
 * "[WARN][t=1234ps] ..." (with "[dev<N>]" after the severity when a
 * fleet device context is set, see ScopedLogDevice).
 */
void warn(const std::string &msg);

/** Print an informational status message (same format, [INFO]). */
void inform(const std::string &msg);

/**
 * Assert a condition that, if false, indicates a simulator bug.
 * @param cond condition expected to hold.
 */
template <typename... Args>
inline void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

/** Raise a fatal user error when the condition holds. */
template <typename... Args>
inline void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

} // namespace dtu

#endif // DTU_SIM_LOGGING_HH
