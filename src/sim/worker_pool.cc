#include "sim/worker_pool.hh"

#include "sim/logging.hh"

namespace dtu
{

WorkerPool::WorkerPool(unsigned threads)
    : threads_(threads)
{
    fatalIf(threads == 0, "a worker pool needs at least one thread");
    helpers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        helpers_.emplace_back([this, w] { workerMain(w); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_.notify_all();
    for (std::thread &helper : helpers_)
        helper.join();
}

void
WorkerPool::runStripe(unsigned worker)
{
    try {
        for (unsigned job = worker; job < jobs_; job += threads_)
            (*fn_)(job);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_ || worker < errorWorker_) {
            error_ = std::current_exception();
            errorWorker_ = worker;
        }
    }
}

void
WorkerPool::workerMain(unsigned worker)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_.wait(lock, [&] {
                return shutdown_ || round_ != seen;
            });
            if (shutdown_)
                return;
            seen = round_;
        }
        runStripe(worker);
        bool last;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last = --pending_ == 0;
        }
        if (last)
            done_.notify_one();
    }
}

void
WorkerPool::parallelFor(unsigned jobs,
                        const std::function<void(unsigned)> &fn)
{
    if (threads_ == 1) {
        // Inline fast path: no locks, exceptions propagate directly.
        for (unsigned job = 0; job < jobs; ++job)
            fn(job);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        jobs_ = jobs;
        error_ = nullptr;
        errorWorker_ = 0;
        pending_ = threads_ - 1;
        ++round_;
    }
    start_.notify_all();
    runStripe(0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        fn_ = nullptr;
    }
    if (error_)
        std::rethrow_exception(error_);
}

} // namespace dtu
