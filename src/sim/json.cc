#include "sim/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace dtu
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // %.17g round-trips every double; trim the common integral case
    // so counters and byte totals stay readable. The range check must
    // precede the int64 cast: casting an out-of-range double is UB.
    char buf[40];
    if (std::fabs(v) < 1e15 &&
        v == static_cast<double>(static_cast<std::int64_t>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{}

JsonWriter::~JsonWriter()
{
    // Do not throw from a destructor; an unbalanced writer is a
    // programming error surfaced during development runs.
    if (!stack_.empty() && loggingEnabled())
        warn("JsonWriter destroyed with unclosed containers");
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << std::string(static_cast<std::size_t>(indent_), ' ');
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty())
        return;
    Scope &top = stack_.back();
    if (top.isObject) {
        panicIf(!top.keyPending, "JSON value in object without a key");
        top.keyPending = false;
        return;
    }
    if (top.hasItems)
        os_ << ",";
    newline();
    top.hasItems = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << "{";
    stack_.push_back(Scope{true, false, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panicIf(stack_.empty() || !stack_.back().isObject,
            "endObject without matching beginObject");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        newline();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << "[";
    stack_.push_back(Scope{false, false, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panicIf(stack_.empty() || stack_.back().isObject,
            "endArray without matching beginArray");
    bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        newline();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    panicIf(stack_.empty() || !stack_.back().isObject,
            "JSON key outside of an object");
    Scope &top = stack_.back();
    panicIf(top.keyPending, "two JSON keys in a row");
    if (top.hasItems)
        os_ << ",";
    newline();
    top.hasItems = true;
    top.keyPending = true;
    os_ << "\"" << jsonEscape(k) << "\":";
    if (indent_ > 0)
        os_ << " ";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepareValue();
    os_ << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    os_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    prepareValue();
    os_ << json;
    return *this;
}

} // namespace dtu
