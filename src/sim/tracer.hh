/**
 * @file
 * Chip-wide timeline tracing for dtusim.
 *
 * Engines emit typed events into the chip's Tracer:
 *
 *  - duration spans (operator execution, DMA transfers, kernel code
 *    loads, semaphore waits) attributed to a two-level track
 *    hierarchy: a *process* for each hardware block (e.g.
 *    "dtu2.cluster0.pg1") and a *thread* for each engine inside it
 *    ("dma", "icache0", "sync"), mirroring the SimObject naming
 *    hierarchy;
 *  - instant events (DVFS ladder steps, power-budget grants);
 *  - counter tracks sampled over simulated time (core frequency in
 *    GHz, power in watts, HBM bandwidth utilization, throttle level).
 *
 * The collected timeline exports as Chrome trace-event JSON (the
 * "JSON Array Format"), which loads directly into Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing. Timestamps convert
 * from ticks (picoseconds) to the microseconds the format expects.
 *
 * Tracing is off by default and costs one branch per emission site
 * when disabled. The Tracer is owned by the Dtu, alongside the
 * StatRegistry, so independent simulated chips keep independent
 * timelines.
 */

#ifndef DTU_SIM_TRACER_HH
#define DTU_SIM_TRACER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{

class JsonWriter;

/** Identifies one (process, thread) timeline track. */
struct TrackId
{
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
};

/** Optional key/value annotations attached to a span or instant. */
using TraceArgs = std::vector<std::pair<std::string, double>>;

/**
 * Position of a flow event within its arrow chain. Chrome flow
 * events with the same id form one arrow sequence: exactly one
 * Start, any number of Steps, and one End; each binds to the slice
 * enclosing its timestamp on its track.
 */
enum class FlowPhase
{
    Start, ///< ph "s" — arrow tail
    Step,  ///< ph "t" — intermediate hop
    End,   ///< ph "f" — arrow head
};

/** Collects timeline events and exports Chrome trace-event JSON. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True when emission sites should record events. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Resolve (and lazily create) the track for @p process /
     * @p thread. Track ids are stable for the Tracer's lifetime.
     */
    TrackId track(const std::string &process, const std::string &thread);

    /**
     * Resolve a track from a hierarchical SimObject name by splitting
     * at the last '.': "dtu2.cluster0.pg1.dma" becomes process
     * "dtu2.cluster0.pg1", thread "dma".
     */
    TrackId trackFor(const std::string &hierarchical_name);

    /** Record a duration span [start, end] on @p track. */
    void span(TrackId track, const std::string &name,
              const std::string &category, Tick start, Tick end,
              TraceArgs args = {});

    /** Record an instantaneous event at @p at. */
    void instant(TrackId track, const std::string &name,
                 const std::string &category, Tick at,
                 TraceArgs args = {});

    /**
     * Record one sample of counter track @p counter_name. Each
     * counter name is its own Perfetto counter track; @p series_key
     * labels the value inside it (e.g. "GHz", "W").
     */
    void counter(const std::string &counter_name,
                 const std::string &series_key, Tick at, double value);

    /**
     * Record one hop of flow arrow @p flow_id at @p at on @p track.
     * The event binds to the slice enclosing @p at on the track, so
     * emit it inside (or at the start tick of) the span it should
     * attach to. Flow ids are preserved verbatim by the merged
     * export, letting arrows cross tracer boundaries (e.g. a fleet
     * request span linking to a chip operator span).
     */
    void flow(TrackId track, const std::string &name,
              const std::string &category, Tick at,
              std::uint64_t flow_id, FlowPhase phase);

    /** Events recorded so far (spans + instants + counter samples). */
    std::size_t eventCount() const { return events_.size(); }

    /** Distinct (process, thread) tracks created so far. */
    std::size_t trackCount() const;

    /** Drop all recorded events (track ids remain valid). */
    void clear() { events_.clear(); }

    /**
     * Export everything as Chrome trace-event JSON. Events are sorted
     * by timestamp; process/thread metadata records name the tracks.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace into a file; fatal() on I/O failure. */
    void writeChromeTrace(const std::string &path) const;

    /** One labeled contributor to a merged multi-tracer export. */
    struct ExportPart
    {
        /**
         * Prefix for the part's process names ("dev0" renders
         * "dtu2.cluster0" as "dev0.dtu2.cluster0"). Empty leaves
         * names unprefixed — only safe for a single part.
         */
        std::string label;
        const Tracer *tracer = nullptr;
    };

    /**
     * Export several tracers as one Chrome trace. Each part's pids
     * are remapped into a disjoint range (per-device tracers all
     * start their pids at 1, so a naive concatenation would collide
     * two devices' spans onto one track) and its process names get
     * the part label as a prefix. Flow ids pass through unchanged so
     * request arrows span devices. Events are globally sorted by
     * timestamp.
     */
    static void
    exportMergedChromeTrace(const std::vector<ExportPart> &parts,
                            std::ostream &os);

    /** exportMergedChromeTrace into a file; fatal() on I/O failure. */
    static void writeMergedChromeTrace(const std::vector<ExportPart> &parts,
                                       const std::string &path);

  private:
    enum class Kind
    {
        Span,
        Instant,
        Counter,
        Flow,
    };

    struct TraceEvent
    {
        Kind kind = Kind::Span;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::string name;
        std::string category;
        Tick start = 0;
        Tick end = 0;
        double value = 0.0; ///< counter sample value
        std::string seriesKey;
        std::uint64_t flowId = 0;
        FlowPhase flowPhase = FlowPhase::Start;
        TraceArgs args;
    };

    /** pid for a counter track, all grouped under one process. */
    std::uint32_t counterPid(const std::string &counter_name);

    /** Highest pid handed out so far (pids are 1..maxPid()). */
    std::uint32_t maxPid() const
    {
        return static_cast<std::uint32_t>(processes_.size() +
                                          counters_.size());
    }

    /** Track-naming metadata records, pids shifted by @p pid_offset. */
    void writeTrackMetadata(JsonWriter &json, std::uint32_t pid_offset,
                            const std::string &label_prefix) const;

    /** One event record, pids shifted by @p pid_offset. */
    static void writeEvent(JsonWriter &json, const TraceEvent &e,
                           std::uint32_t pid_offset);

    bool enabled_ = false;
    std::map<std::string, std::uint32_t> processes_;
    /** (pid, thread name) -> tid. */
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> threads_;
    std::map<std::string, std::uint32_t> counters_;
    std::vector<TraceEvent> events_;
};

/**
 * Force a Tracer on for a lexical scope, restoring the previous
 * state on exit. Used to capture chip-side spans only while a
 * sampled request's batch executes, so request-trace overhead scales
 * with the sampling rate instead of the full run.
 */
class ScopedTracerEnable
{
  public:
    explicit ScopedTracerEnable(Tracer &tracer, bool enable = true)
        : tracer_(tracer), saved_(tracer.enabled())
    {
        if (enable)
            tracer_.setEnabled(true);
    }

    ~ScopedTracerEnable() { tracer_.setEnabled(saved_); }

    ScopedTracerEnable(const ScopedTracerEnable &) = delete;
    ScopedTracerEnable &operator=(const ScopedTracerEnable &) = delete;

  private:
    Tracer &tracer_;
    bool saved_;
};

} // namespace dtu

#endif // DTU_SIM_TRACER_HH
