/**
 * @file
 * Chip-wide timeline tracing for dtusim.
 *
 * Engines emit typed events into the chip's Tracer:
 *
 *  - duration spans (operator execution, DMA transfers, kernel code
 *    loads, semaphore waits) attributed to a two-level track
 *    hierarchy: a *process* for each hardware block (e.g.
 *    "dtu2.cluster0.pg1") and a *thread* for each engine inside it
 *    ("dma", "icache0", "sync"), mirroring the SimObject naming
 *    hierarchy;
 *  - instant events (DVFS ladder steps, power-budget grants);
 *  - counter tracks sampled over simulated time (core frequency in
 *    GHz, power in watts, HBM bandwidth utilization, throttle level).
 *
 * The collected timeline exports as Chrome trace-event JSON (the
 * "JSON Array Format"), which loads directly into Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing. Timestamps convert
 * from ticks (picoseconds) to the microseconds the format expects.
 *
 * Tracing is off by default and costs one branch per emission site
 * when disabled. The Tracer is owned by the Dtu, alongside the
 * StatRegistry, so independent simulated chips keep independent
 * timelines.
 */

#ifndef DTU_SIM_TRACER_HH
#define DTU_SIM_TRACER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{

/** Identifies one (process, thread) timeline track. */
struct TrackId
{
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
};

/** Optional key/value annotations attached to a span or instant. */
using TraceArgs = std::vector<std::pair<std::string, double>>;

/** Collects timeline events and exports Chrome trace-event JSON. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True when emission sites should record events. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Resolve (and lazily create) the track for @p process /
     * @p thread. Track ids are stable for the Tracer's lifetime.
     */
    TrackId track(const std::string &process, const std::string &thread);

    /**
     * Resolve a track from a hierarchical SimObject name by splitting
     * at the last '.': "dtu2.cluster0.pg1.dma" becomes process
     * "dtu2.cluster0.pg1", thread "dma".
     */
    TrackId trackFor(const std::string &hierarchical_name);

    /** Record a duration span [start, end] on @p track. */
    void span(TrackId track, const std::string &name,
              const std::string &category, Tick start, Tick end,
              TraceArgs args = {});

    /** Record an instantaneous event at @p at. */
    void instant(TrackId track, const std::string &name,
                 const std::string &category, Tick at,
                 TraceArgs args = {});

    /**
     * Record one sample of counter track @p counter_name. Each
     * counter name is its own Perfetto counter track; @p series_key
     * labels the value inside it (e.g. "GHz", "W").
     */
    void counter(const std::string &counter_name,
                 const std::string &series_key, Tick at, double value);

    /** Events recorded so far (spans + instants + counter samples). */
    std::size_t eventCount() const { return events_.size(); }

    /** Distinct (process, thread) tracks created so far. */
    std::size_t trackCount() const;

    /** Drop all recorded events (track ids remain valid). */
    void clear() { events_.clear(); }

    /**
     * Export everything as Chrome trace-event JSON. Events are sorted
     * by timestamp; process/thread metadata records name the tracks.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace into a file; fatal() on I/O failure. */
    void writeChromeTrace(const std::string &path) const;

  private:
    enum class Kind
    {
        Span,
        Instant,
        Counter,
    };

    struct TraceEvent
    {
        Kind kind = Kind::Span;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::string name;
        std::string category;
        Tick start = 0;
        Tick end = 0;
        double value = 0.0; ///< counter sample value
        std::string seriesKey;
        TraceArgs args;
    };

    /** pid for a counter track, all grouped under one process. */
    std::uint32_t counterPid(const std::string &counter_name);

    bool enabled_ = false;
    std::map<std::string, std::uint32_t> processes_;
    /** (pid, thread name) -> tid. */
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> threads_;
    std::map<std::string, std::uint32_t> counters_;
    std::vector<TraceEvent> events_;
};

} // namespace dtu

#endif // DTU_SIM_TRACER_HH
