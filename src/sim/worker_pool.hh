/**
 * @file
 * A fixed pool of worker threads for barrier-style parallel loops.
 *
 * The parallel fleet driver (serve/fleet.cc) advances N share-nothing
 * device simulations through one synchronization window at a time:
 * every window is a parallelFor() over the devices, and the join at
 * the end of each call is the conservative time barrier. The pool
 * keeps its threads across calls (a serving run executes thousands of
 * windows, so per-window thread spawn cost would dominate), uses a
 * deterministic job-to-worker striping so a given device is always
 * stepped by the same thread (thread-local log sinks stay attached to
 * the device), and rethrows the first worker exception on the calling
 * thread.
 */

#ifndef DTU_SIM_WORKER_POOL_HH
#define DTU_SIM_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtu
{

class WorkerPool
{
  public:
    /**
     * @param threads total workers, >= 1. The calling thread acts as
     * worker 0; threads - 1 helper threads are spawned, so a pool of
     * 1 runs everything inline with no threads at all.
     */
    explicit WorkerPool(unsigned threads);

    /** Joins the helper threads. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total workers (including the calling thread). */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(job) for every job in [0, jobs), striped across workers
     * (worker w runs jobs w, w + threads, ...), and block until all
     * complete. fn must be safe to call concurrently for distinct
     * jobs. If any invocation throws, the first exception (lowest
     * worker index) is rethrown here after the barrier.
     */
    void parallelFor(unsigned jobs,
                     const std::function<void(unsigned)> &fn);

  private:
    /** Helper-thread main loop: wait for a round, run a stripe. */
    void workerMain(unsigned worker);

    /** Run worker @p worker's stripe of the current round. */
    void runStripe(unsigned worker);

    const unsigned threads_;
    std::vector<std::thread> helpers_;

    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    /** Round counter; a bump publishes a new parallelFor round. */
    std::uint64_t round_ = 0;
    /** Helpers still running the current round. */
    unsigned pending_ = 0;
    bool shutdown_ = false;
    const std::function<void(unsigned)> *fn_ = nullptr;
    unsigned jobs_ = 0;
    /** First (lowest worker index) exception of the round. */
    std::exception_ptr error_;
    unsigned errorWorker_ = 0;
};

} // namespace dtu

#endif // DTU_SIM_WORKER_POOL_HH
