/**
 * @file
 * Clock domains with runtime-adjustable frequency.
 *
 * DTU 2.0's power management dynamically scales compute-core
 * frequency between 1.0 and 1.4 GHz (Section IV-F of the paper), so
 * the clock abstraction must support changing the period mid-run
 * while keeping cycle accounting consistent. A ClockDomain anchors
 * its cycle counter whenever the frequency changes; cycle<->tick
 * conversion is exact from the last anchor.
 */

#ifndef DTU_SIM_CLOCKED_HH
#define DTU_SIM_CLOCKED_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dtu
{

/** A frequency source shared by one or more ClockedObjects. */
class ClockDomain
{
  public:
    /**
     * @param queue event queue providing the current tick.
     * @param frequency_hz initial frequency in Hz.
     */
    ClockDomain(EventQueue &queue, double frequency_hz)
        : queue_(queue)
    {
        setFrequency(frequency_hz);
    }

    /** Current frequency in Hz. */
    double frequency() const { return frequencyFromPeriod(period_); }

    /** Current clock period in ticks. */
    Tick period() const { return period_; }

    /**
     * Change the domain frequency, effective at the current tick.
     * Cycle numbering continues monotonically across the change.
     */
    void
    setFrequency(double frequency_hz)
    {
        fatalIf(frequency_hz <= 0.0,
                "clock frequency must be positive, got ", frequency_hz);
        anchorCycle_ = cyclesAt(queue_.now());
        anchorTick_ = queue_.now();
        period_ = periodFromFrequency(frequency_hz);
    }

    /** The cycle count of this domain at absolute tick @p t (t >= anchor). */
    Cycles
    cyclesAt(Tick t) const
    {
        if (period_ == 0 || t < anchorTick_)
            return anchorCycle_;
        return anchorCycle_ + (t - anchorTick_) / period_;
    }

    /** Current cycle count. */
    Cycles curCycle() const { return cyclesAt(queue_.now()); }

    /**
     * The tick at which cycle @p c begins (c must be >= the anchor cycle).
     */
    Tick
    cycleToTick(Cycles c) const
    {
        panicIf(c < anchorCycle_, "cycleToTick before frequency anchor");
        return anchorTick_ + (c - anchorCycle_) * period_;
    }

    /**
     * The first tick at or after now() that lies on a cycle boundary.
     * Engines use this to align event scheduling to clock edges.
     */
    Tick
    nextEdge() const
    {
        Tick now = queue_.now();
        Tick since = now - anchorTick_;
        Tick rem = since % period_;
        return rem == 0 ? now : now + (period_ - rem);
    }

    /** Ticks consumed by @p n cycles at the current frequency. */
    Tick ticksFor(Cycles n) const { return n * period_; }

  private:
    EventQueue &queue_;
    Tick period_ = 0;
    Tick anchorTick_ = 0;
    Cycles anchorCycle_ = 0;
};

} // namespace dtu

#endif // DTU_SIM_CLOCKED_HH
