/**
 * @file
 * Deterministic pseudo-random number generation for dtusim.
 *
 * The simulator must be reproducible run-to-run, so all stochastic
 * behaviour (workload generators, sparsity patterns, property tests)
 * draws from an explicitly seeded xoshiro256** generator rather than
 * any global implicit state.
 */

#ifndef DTU_SIM_RANDOM_HH
#define DTU_SIM_RANDOM_HH

#include <cstdint>

namespace dtu
{

/** A small, fast, deterministic PRNG (xoshiro256**). */
class Random
{
  public:
    /** Construct with a seed; identical seeds give identical streams. */
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dtu

#endif // DTU_SIM_RANDOM_HH
