/**
 * @file
 * Fundamental time types for the dtusim event-driven kernel.
 *
 * A Tick is one picosecond of simulated time. All engines in the
 * simulator (compute cores, DMA engines, HBM channels, power
 * management) schedule events on a shared picosecond timeline, which
 * lets clock domains with different and dynamically changing
 * frequencies (DVFS) interleave exactly.
 */

#ifndef DTU_SIM_TICKS_HH
#define DTU_SIM_TICKS_HH

#include <cstdint>

namespace dtu
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per second of simulated time (1 Tick == 1 ps). */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert a frequency in Hz to a clock period in ticks (rounded). */
constexpr Tick
periodFromFrequency(double hz)
{
    return hz <= 0.0 ? maxTick
                     : static_cast<Tick>(ticksPerSecond / hz + 0.5);
}

/** Convert a clock period in ticks back to a frequency in Hz. */
constexpr double
frequencyFromPeriod(Tick period)
{
    return period == 0 ? 0.0
                       : static_cast<double>(ticksPerSecond) /
                             static_cast<double>(period);
}

/**
 * Add two tick counts, saturating at maxTick instead of wrapping.
 * Deadline arithmetic ("arrival + timeout") uses this so a timeout
 * configured near maxTick means "effectively never" rather than
 * wrapping into the past and firing immediately.
 */
constexpr Tick
saturatingAddTicks(Tick a, Tick b)
{
    return a > maxTick - b ? maxTick : a + b;
}

/** Convert ticks to seconds (for reporting). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Convert seconds to ticks (rounded). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSecond) + 0.5);
}

/** Convert ticks to microseconds (for reporting). */
constexpr double
ticksToMicroSeconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert ticks to milliseconds (for reporting). */
constexpr double
ticksToMilliSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

} // namespace dtu

#endif // DTU_SIM_TICKS_HH
