#include "sim/fault.hh"

#include <algorithm>
#include <cmath>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{

namespace
{

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Per-class seed derivation: distinct, stable streams. */
constexpr std::uint64_t kEccStream = 0xE0CC'5EED'0000'0001ULL;
constexpr std::uint64_t kDmaStream = 0xD3A0'5EED'0000'0002ULL;
constexpr std::uint64_t kThermalStream = 0x7E30'5EED'0000'0003ULL;

/** Exponential draw with mean @p mean_seconds, as ticks (>= 1). */
Tick
expTicks(Random &rng, double mean_seconds)
{
    double seconds = -std::log(1.0 - rng.uniform()) * mean_seconds;
    return std::max<Tick>(1, secondsToTicks(seconds));
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::EccCorrectable: return "ecc_correctable";
      case FaultKind::EccUncorrectable: return "ecc_uncorrectable";
      case FaultKind::DmaTransient: return "dma_transient";
      case FaultKind::DmaRetryExhausted: return "dma_retry_exhausted";
      case FaultKind::ThermalThrottle: return "thermal_throttle";
    }
    return "?";
}

bool
FaultConfig::anyEnabled() const
{
    return eccCorrectablePerGiB > 0.0 || eccUncorrectablePerGiB > 0.0 ||
           dmaTransientRate > 0.0 ||
           (thermalMeanIntervalS > 0.0 && thermalMeanDurationS > 0.0 &&
            thermalCapHz > 0.0);
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), eccRng_(config.seed ^ kEccStream),
      dmaRng_(config.seed ^ kDmaStream),
      thermalRng_(config.seed ^ kThermalStream)
{
    fatalIf(config_.eccCorrectablePerGiB < 0.0 ||
                config_.eccUncorrectablePerGiB < 0.0,
            "ECC fault rates must be non-negative");
    fatalIf(config_.dmaTransientRate < 0.0 ||
                config_.dmaTransientRate > 1.0,
            "DMA transient rate must be in [0, 1], got ",
            config_.dmaTransientRate);
    fatalIf(config_.thermalMeanIntervalS < 0.0 ||
                config_.thermalMeanDurationS < 0.0 ||
                config_.thermalCapHz < 0.0,
            "thermal episode parameters must be non-negative");
}

void
FaultInjector::registerStats(StatRegistry &stats)
{
    eccCorrectableStat_.init(stats, "fault.ecc_correctable",
                             "correctable HBM ECC errors injected");
    eccUncorrectableStat_.init(stats, "fault.ecc_uncorrectable",
                               "uncorrectable HBM ECC errors injected");
    dmaTransientStat_.init(stats, "fault.dma_transient",
                           "transient DMA descriptor faults injected");
    dmaRetryStat_.init(stats, "fault.dma_retries",
                       "DMA retries issued after transient faults");
    dmaExhaustedStat_.init(stats, "fault.dma_exhausted",
                           "DMA descriptors that failed every retry");
    thermalEpisodeStat_.init(stats, "fault.thermal_episodes",
                             "thermal-throttle episodes scheduled");
    thermalThrottledWindowStat_.init(
        stats, "fault.thermal_throttled_windows",
        "observation windows clamped by a thermal episode");
}

void
FaultInjector::record(FaultKind kind, Tick at, const std::string &site)
{
    log_.push_back({kind, at, site});
    if (callback_)
        callback_(log_.back());
    if (tracer_ && tracer_->enabled()) {
        tracer_->instant(tracer_->track("faults", site),
                         faultKindName(kind), "fault", at);
    }
}

Tick
FaultInjector::eccAccess(Tick at, const std::string &site,
                         std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    double gib = static_cast<double>(bytes) / kGiB;
    Tick extra = 0;
    if (config_.eccCorrectablePerGiB > 0.0 &&
        eccRng_.chance(
            std::min(1.0, config_.eccCorrectablePerGiB * gib))) {
        ++eccCorrectableStat_;
        record(FaultKind::EccCorrectable, at, site);
        extra += config_.eccScrubTicks;
    }
    if (config_.eccUncorrectablePerGiB > 0.0 &&
        eccRng_.chance(
            std::min(1.0, config_.eccUncorrectablePerGiB * gib))) {
        ++eccUncorrectableStat_;
        ++uncorrectable_;
        record(FaultKind::EccUncorrectable, at, site);
    }
    return extra;
}

bool
FaultInjector::dmaTransient(Tick at, const std::string &site)
{
    if (!dmaEnabled())
        return false;
    if (!dmaRng_.chance(config_.dmaTransientRate))
        return false;
    ++dmaTransientStat_;
    record(FaultKind::DmaTransient, at, site);
    return true;
}

void
FaultInjector::recordDmaRetry()
{
    ++dmaRetryStat_;
}

void
FaultInjector::recordDmaExhausted(Tick at, const std::string &site)
{
    ++dmaExhaustedStat_;
    ++dmaExhausted_;
    record(FaultKind::DmaRetryExhausted, at, site);
}

void
FaultInjector::extendThermalSchedule(Tick upto)
{
    while (thermalCovered_ <= upto) {
        Tick gap = expTicks(thermalRng_, config_.thermalMeanIntervalS);
        Tick duration =
            expTicks(thermalRng_, config_.thermalMeanDurationS);
        ThermalEpisode episode;
        episode.start = thermalCovered_ + gap;
        episode.end = episode.start + duration;
        thermalCovered_ = episode.end;
        episodes_.push_back(episode);
        ++thermalEpisodeStat_;
        record(FaultKind::ThermalThrottle, episode.start, "thermal");
        if (tracer_ && tracer_->enabled()) {
            tracer_->span(tracer_->track("faults", "thermal"),
                          "thermal-throttle", "fault", episode.start,
                          episode.end,
                          {{"cap_ghz", config_.thermalCapHz / 1e9}});
        }
    }
}

double
FaultInjector::thermalCapHz(Tick at)
{
    if (config_.thermalMeanIntervalS <= 0.0 ||
        config_.thermalMeanDurationS <= 0.0 ||
        config_.thermalCapHz <= 0.0) {
        return 0.0;
    }
    extendThermalSchedule(at);
    // Episodes are disjoint and start-sorted by construction.
    auto it = std::upper_bound(
        episodes_.begin(), episodes_.end(), at,
        [](Tick t, const ThermalEpisode &e) { return t < e.start; });
    if (it == episodes_.begin())
        return 0.0;
    --it;
    return at < it->end ? config_.thermalCapHz : 0.0;
}

double
FaultInjector::thermalClampHz(Tick at, double hz)
{
    double cap = thermalCapHz(at);
    if (cap <= 0.0 || cap >= hz)
        return hz;
    ++thermalThrottledWindowStat_;
    return cap;
}

std::uint64_t
FaultInjector::count(FaultKind kind) const
{
    switch (kind) {
      case FaultKind::EccCorrectable:
        return static_cast<std::uint64_t>(eccCorrectableStat_.value());
      case FaultKind::EccUncorrectable:
        return uncorrectable_;
      case FaultKind::DmaTransient:
        return static_cast<std::uint64_t>(dmaTransientStat_.value());
      case FaultKind::DmaRetryExhausted:
        return dmaExhausted_;
      case FaultKind::ThermalThrottle:
        return static_cast<std::uint64_t>(thermalEpisodeStat_.value());
    }
    return 0;
}

void
FaultInjector::writeLogJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginArray();
    for (const InjectedFault &fault : log_) {
        json.beginObject()
            .field("kind", faultKindName(fault.kind))
            .field("at_ticks", fault.at)
            .field("site", fault.site)
            .endObject();
    }
    json.endArray();
    os << "\n";
}

} // namespace dtu
