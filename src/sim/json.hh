/**
 * @file
 * A minimal streaming JSON writer for dtusim's machine-readable
 * outputs (trace export, stats dumps, bench artifacts).
 *
 * The writer emits syntactically valid JSON directly into an
 * ostream: it tracks the open object/array nesting, inserts commas
 * and indentation, escapes strings, and renders doubles with full
 * round-trip precision (non-finite values become null, which keeps
 * the output parseable by strict consumers such as Perfetto).
 */

#ifndef DTU_SIM_JSON_HH
#define DTU_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dtu
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/** Render a double as a JSON token ("null" when not finite). */
std::string jsonNumber(double v);

/** Streaming JSON emitter with automatic commas and indentation. */
class JsonWriter
{
  public:
    /**
     * @param os destination stream.
     * @param indent spaces per nesting level (0 = compact one-line).
     */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    /** Destructor asserts the document was closed properly. */
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /**
     * Embed a pre-serialized JSON document as the next value. The
     * caller guarantees @p json is itself valid JSON (e.g. produced
     * by another JsonWriter); no escaping or validation happens.
     */
    JsonWriter &raw(const std::string &json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    struct Scope
    {
        bool isObject = false;
        bool hasItems = false;
        bool keyPending = false;
    };

    /** Comma/newline/indent bookkeeping before a new value or key. */
    void prepareValue();
    void newline();

    std::ostream &os_;
    int indent_;
    std::vector<Scope> stack_;
};

} // namespace dtu

#endif // DTU_SIM_JSON_HH
