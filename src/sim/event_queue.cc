#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtu
{

namespace
{

/** Smallest bucket-ring size (power of two). */
constexpr std::size_t kMinBuckets = 16;

} // namespace

Event::Event(std::function<void()> callback, std::string name)
    : callback_(std::move(callback)), name_(std::move(name))
{}

EventQueue::EventQueue()
    : buckets_(kMinBuckets), mask_(kMinBuckets - 1)
{
    // Timestamp warn()/inform() with this queue's simulated time.
    setLogClock(this);
}

EventQueue::~EventQueue()
{
    if (logClock() == this)
        setLogClock(nullptr);
}

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(*this);
}

void
EventQueue::insertEntry(const Entry &entry)
{
    std::vector<Entry> &bucket =
        buckets_[(entry.when / width_) & mask_];
    auto pos = std::upper_bound(
        bucket.begin(), bucket.end(), entry,
        [](const Entry &a, const Entry &b) {
            return a.when != b.when ? a.when < b.when
                                    : a.sequence < b.sequence;
        });
    bucket.insert(pos, entry);
}

void
EventQueue::removeEntry(const Event &event)
{
    std::vector<Entry> &bucket =
        buckets_[(event.when_ / width_) & mask_];
    auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), event.when_,
        [](const Entry &a, Tick when) { return a.when < when; });
    while (pos != bucket.end() && pos->when == event.when_ &&
           pos->event != &event)
        ++pos;
    panicIf(pos == bucket.end() || pos->event != &event,
            "event '", event.name_, "' missing from its bucket");
    bucket.erase(pos);
}

void
EventQueue::resize(std::size_t nbuckets)
{
    std::vector<Entry> entries;
    entries.reserve(live_);
    for (std::vector<Entry> &bucket : buckets_) {
        entries.insert(entries.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    // Re-derive the day width so one trip around the ring covers the
    // live span: average inter-event gap, never below one tick.
    if (entries.size() >= 2) {
        Tick lo = maxTick, hi = 0;
        for (const Entry &e : entries) {
            lo = std::min(lo, e.when);
            hi = std::max(hi, e.when);
        }
        width_ = std::max<Tick>(1, (hi - lo) / nbuckets + 1);
    }
    buckets_.resize(nbuckets);
    mask_ = nbuckets - 1;
    for (const Entry &e : entries)
        insertEntry(e);
}

const EventQueue::Entry *
EventQueue::peekNext() const
{
    if (live_ == 0)
        return nullptr;
    // Scan days from the current one: every live event's day is
    // >= now's (pop order is monotonic and schedule requires
    // when >= now), and a bucket is ascending-sorted, so its front
    // carries the bucket's smallest day — front matching the probed
    // day is the global minimum.
    const std::size_t n = buckets_.size();
    std::uint64_t day = now_ / width_;
    for (std::size_t i = 0; i < n; ++i, ++day) {
        const std::vector<Entry> &bucket = buckets_[day & mask_];
        if (!bucket.empty() && bucket.front().when / width_ == day)
            return &bucket.front();
    }
    // Everything pending is more than one trip around the ring out
    // (sparse far-future events): direct scan of the bucket minima.
    const Entry *best = nullptr;
    for (const std::vector<Entry> &bucket : buckets_) {
        if (bucket.empty())
            continue;
        const Entry &front = bucket.front();
        if (!best || front.when < best->when ||
            (front.when == best->when &&
             front.sequence < best->sequence))
            best = &front;
    }
    return best;
}

void
EventQueue::schedule(Event &event, Tick when)
{
    panicIf(event.scheduled_,
            "event '", event.name_, "' scheduled while already queued");
    panicIf(when < now_, "event '", event.name_, "' scheduled in the past (",
            when, " < ", now_, ")");
    event.when_ = when;
    event.sequence_ = nextSequence_++;
    event.scheduled_ = true;
    event.queue_ = this;
    insertEntry(Entry{when, event.sequence_, &event});
    ++live_;
    if (live_ > buckets_.size() * 2)
        resize(buckets_.size() * 2);
}

void
EventQueue::deschedule(Event &event)
{
    panicIf(!event.scheduled_ || event.queue_ != this,
            "descheduling event '", event.name_, "' not in this queue");
    removeEntry(event);
    event.scheduled_ = false;
    --live_;
    if (buckets_.size() > kMinBuckets && live_ < buckets_.size() / 4)
        resize(buckets_.size() / 2);
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::popAndRun(const Entry &top)
{
    Entry entry = top;
    std::vector<Entry> &bucket =
        buckets_[(entry.when / width_) & mask_];
    bucket.erase(bucket.begin());
    --live_;
    if (buckets_.size() > kMinBuckets && live_ < buckets_.size() / 4)
        resize(buckets_.size() / 2);
    now_ = entry.when;
    entry.event->scheduled_ = false;
    ++executed_;
    entry.event->callback_();
}

bool
EventQueue::step()
{
    const Entry *top = peekNext();
    if (!top)
        return false;
    popAndRun(*top);
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    const Entry *top;
    while ((top = peekNext()) && top->when <= limit)
        popAndRun(*top);
    return now_;
}

void
EventQueue::advanceTo(Tick when)
{
    panicIf(when < now_, "cannot advance time backwards");
    if (const Entry *top = peekNext()) {
        panicIf(top->when < when,
                "advanceTo(", when, ") would skip event '",
                top->event->name_, "' at ", top->when);
    }
    now_ = when;
}

} // namespace dtu
