#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace dtu
{

Event::Event(std::function<void()> callback, std::string name)
    : callback_(std::move(callback)), name_(std::move(name))
{}

EventQueue::EventQueue()
{
    // Timestamp warn()/inform() with this queue's simulated time.
    setLogClock(this);
}

EventQueue::~EventQueue()
{
    if (logClock() == this)
        setLogClock(nullptr);
}

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(*this);
}

void
EventQueue::schedule(Event &event, Tick when)
{
    panicIf(event.scheduled_,
            "event '", event.name_, "' scheduled while already queued");
    panicIf(when < now_, "event '", event.name_, "' scheduled in the past (",
            when, " < ", now_, ")");
    event.when_ = when;
    event.sequence_ = nextSequence_++;
    event.scheduled_ = true;
    event.queue_ = this;
    queue_.push(Entry{when, event.sequence_, &event});
    ++live_;
}

void
EventQueue::deschedule(Event &event)
{
    panicIf(!event.scheduled_ || event.queue_ != this,
            "descheduling event '", event.name_, "' not in this queue");
    // Lazy deletion: mark the event descheduled; the stale queue entry
    // is discarded when popped. The sequence number distinguishes a
    // stale entry from a re-scheduled incarnation of the same event.
    event.scheduled_ = false;
    --live_;
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.scheduled_)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        Entry top = queue_.top();
        queue_.pop();
        Event *event = top.event;
        if (!event->scheduled_ || event->sequence_ != top.sequence)
            continue; // stale entry from deschedule/reschedule
        now_ = top.when;
        event->scheduled_ = false;
        --live_;
        ++executed_;
        event->callback_();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (!top.event->scheduled_ || top.event->sequence_ != top.sequence) {
            queue_.pop();
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    return now_;
}

void
EventQueue::advanceTo(Tick when)
{
    panicIf(when < now_, "cannot advance time backwards");
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (!top.event->scheduled_ || top.event->sequence_ != top.sequence) {
            queue_.pop();
            continue;
        }
        panicIf(top.when < when,
                "advanceTo(", when, ") would skip event '",
                top.event->name_, "' at ", top.when);
        break;
    }
    now_ = when;
}

} // namespace dtu
