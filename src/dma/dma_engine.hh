/**
 * @file
 * The DMA engine (Section IV-C).
 *
 * One DMA engine serves each processing group (4 compute cores). It
 * moves data between any two levels of the memory hierarchy while
 * applying tensor layout transformations on the fly, and implements
 * the DTU 2.0 bandwidth optimizations:
 *
 *  - sparse decompression during transfer,
 *  - broadcast into the L2 slices of all processing groups,
 *  - repeat mode (one configuration, many transactions),
 *  - direct L1 <-> L3 transfers that bypass L2.
 *
 * A feature mask lets the same engine model DTU 1.0, where none of
 * these exist and L1 traffic must route through L2.
 */

#ifndef DTU_DMA_DMA_ENGINE_HH
#define DTU_DMA_DMA_ENGINE_HH

#include <memory>
#include <vector>

#include "dma/descriptor.hh"
#include "mem/bandwidth.hh"
#include "mem/hbm.hh"
#include "mem/sram.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace dtu
{

class FaultInjector;

/** Optional DTU 2.0 DMA capabilities (all false models DTU 1.0). */
struct DmaFeatures
{
    bool sparseDecompress = true;
    bool broadcast = true;
    bool repeatMode = true;
    bool l1L3Direct = true;
};

/** The memory endpoints a DMA engine can reach. */
struct DmaFabric
{
    /** The chip's L3 HBM. */
    Hbm *hbm = nullptr;
    /** This processing group's L2 slice. */
    Sram *localL2 = nullptr;
    /** Every L2 slice in the cluster (broadcast targets). */
    std::vector<Sram *> clusterL2;
    /** The L1 buffers of this group's compute cores. */
    std::vector<Sram *> coreL1;
    /** Host link (PCIe), for Host endpoints. May be null. */
    BandwidthResource *pcie = nullptr;
};

/** Result of one DMA request. */
struct DmaResult
{
    /** Tick at which the last byte landed. */
    Tick done = 0;
    /** Bytes that crossed the source interface (after compression). */
    std::uint64_t srcBytes = 0;
    /** Bytes written at the destination(s). */
    std::uint64_t dstBytes = 0;
    /** Configuration operations performed. */
    unsigned configs = 0;
    /** Transient-fault retries the engine issued for this request. */
    unsigned retries = 0;
};

/** A per-processing-group DMA engine. */
class DmaEngine : public SimObject
{
  public:
    /**
     * @param clock engine clock domain (configuration overhead is
     *        measured in engine cycles).
     * @param fabric reachable memory endpoints.
     * @param features DTU 2.0 capability mask.
     * @param datapath_bytes_per_cycle internal pipe width.
     * @param config_cycles cycles per descriptor configuration.
     */
    DmaEngine(std::string name, EventQueue &queue, StatRegistry *stats,
              ClockDomain &clock, DmaFabric fabric, DmaFeatures features,
              unsigned datapath_bytes_per_cycle = 512,
              unsigned config_cycles = 128);

    /**
     * Late-bind the broadcast fan-out: the L2 slices of every
     * processing group in the cluster. Called once the cluster is
     * fully constructed.
     */
    void
    setBroadcastTargets(std::vector<Sram *> slices)
    {
        fabric_.clusterL2 = std::move(slices);
    }

    /** Submit a request at the current tick. */
    DmaResult submit(const DmaDescriptor &desc);

    /** Submit a request that enters the engine no earlier than @p at. */
    DmaResult submitAt(Tick at, const DmaDescriptor &desc);

    /** Tick at which the engine datapath next idles. */
    Tick freeAt() const { return pipe_->freeAt(); }

    const DmaFeatures &features() const { return features_; }

    /** Cycles one configuration costs. */
    unsigned configCycles() const { return configCycles_; }

    /** Fraction of wall-clock the datapath was busy. */
    double utilization() const { return pipe_->utilization(); }

    /** Duty-cycle style busy ratio within a window, for the LPME. */
    double totalBytes() const { return pipe_->totalBytes(); }

    /**
     * Attach (or detach, with nullptr) the chip fault injector: each
     * submitted request then draws a transient fault per attempt and
     * the engine retries with bounded exponential backoff.
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

  private:
    /** One fault-free attempt at a request (the pre-fault submitAt). */
    DmaResult submitOnce(Tick at, const DmaDescriptor &desc);

    /** Charge one endpoint and return its completion tick. */
    Tick endpointAccess(Tick at, MemLevel level, Addr addr, unsigned port,
                        std::uint64_t bytes, bool fill_port);

    /** L2 access: pinned to @p port, striped, or via the fill port. */
    Tick l2AccessAt(Tick at, Sram *l2, unsigned port, std::uint64_t bytes,
                    bool fill_port);

    ClockDomain &clock_;
    DmaFabric fabric_;
    DmaFeatures features_;
    unsigned configCycles_;
    std::unique_ptr<BandwidthResource> pipe_;
    FaultInjector *faults_ = nullptr;

    Stat transactions_;
    Stat configOps_;
    Stat configTicks_;
    Stat sparseSavedBytes_;
    Stat broadcastCopies_;
};

} // namespace dtu

#endif // DTU_DMA_DMA_ENGINE_HH
