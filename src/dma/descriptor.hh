/**
 * @file
 * DMA transfer descriptors.
 *
 * A descriptor tells a DMA engine what to move, between which levels,
 * with which on-the-fly tensor layout transformation, and with which
 * of the DTU 2.0 optimizations enabled: sparse decompression, L2
 * broadcast, and repeat mode (Section IV-C).
 */

#ifndef DTU_DMA_DESCRIPTOR_HH
#define DTU_DMA_DESCRIPTOR_HH

#include <cstdint>
#include <string>

#include "mem/mem_types.hh"
#include "tensor/dtype.hh"

namespace dtu
{

/** On-the-fly layout transformation performed during a transfer. */
enum class TransformKind : std::uint8_t
{
    None,
    Pad,
    Slice,
    Transpose,
    Concat,
};

/** Printable transform name. */
std::string transformName(TransformKind kind);

/**
 * Relative engine throughput while applying the transform. Transposes
 * gather/scatter across strides and run below streaming rate; the
 * other transforms are address arithmetic only.
 */
double transformRateFactor(TransformKind kind);

/** One DMA transfer request. */
struct DmaDescriptor
{
    /** Source memory level. */
    MemLevel src = MemLevel::L3;
    /** Destination memory level. */
    MemLevel dst = MemLevel::L2;
    /** Source base address within the level's region. */
    Addr srcAddr = 0;
    /** Destination base address. */
    Addr dstAddr = 0;
    /** Logical (dense) payload size per transaction in bytes. */
    std::uint64_t bytes = 0;
    /** Sentinel port value: stripe bulk L2 traffic over all ports. */
    static constexpr unsigned anyPort = ~0u;
    /**
     * Route unpinned L2 traffic through the dedicated DMA fill port
     * (background weight streaming) instead of striping the
     * core-bonded ports. Keeps prefetch from stealing core cycles.
     */
    bool useFillPort = false;
    /**
     * L2 port / core index on the source side. For L1 endpoints this
     * selects the core whose local buffer is addressed; for L2 it
     * pins a port (anyPort stripes across all four).
     */
    unsigned srcPort = anyPort;
    /** L2 port / core index on the destination side. */
    unsigned dstPort = anyPort;
    /** Layout transformation applied on the fly. */
    TransformKind transform = TransformKind::None;
    /**
     * Source data is stored in the hardware sparse format with this
     * nonzero density; the engine decompresses while storing. Only
     * meaningful when sparse is true.
     */
    bool sparse = false;
    double density = 1.0;
    /** Element type (affects sparse mask overhead). */
    DType dtype = DType::FP16;
    /**
     * Broadcast to all processing groups in the cluster: the engine
     * writes identical copies into every group's L2 slice at once
     * (destination must be L2).
     */
    bool broadcast = false;
    /**
     * Number of transactions in this request. With repeatMode the
     * engine is configured once and replays the pattern; without it
     * each transaction pays the configuration overhead (Fig. 6).
     */
    unsigned repeatCount = 1;
    bool repeatMode = false;
    /** Stride between repeated transactions (address bookkeeping). */
    std::uint64_t repeatStride = 0;
};

} // namespace dtu

#endif // DTU_DMA_DESCRIPTOR_HH
