/**
 * @file
 * The hardware sparse compression format.
 *
 * DTU 2.0's DMA engines "support automatic data decompression: given
 * the data compressed in hardware-defined formats, DMA engines
 * decompress the data while storing them at the destination memory
 * locations" (Section IV-C). The hardware-defined format modelled
 * here is a block-bitmask scheme: elements are grouped into blocks of
 * 64; each block stores a 64-bit occupancy mask followed by the
 * packed nonzero values. Dense data therefore costs a ~1.6-12.5%
 * mask overhead (dtype-dependent) while sparse data shrinks towards
 * the mask floor.
 */

#ifndef DTU_DMA_SPARSE_CODEC_HH
#define DTU_DMA_SPARSE_CODEC_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace dtu
{

/** Elements per occupancy-mask block. */
constexpr std::uint64_t sparseBlockElems = 64;

/** A compressed tensor blob in the hardware format. */
struct CompressedBlob
{
    Shape shape;
    DType dtype = DType::FP32;
    /** One 64-bit mask per block of 64 elements. */
    std::vector<std::uint64_t> masks;
    /** Nonzero values in block order. */
    std::vector<double> values;

    /** Encoded size in bytes (masks + packed values). */
    std::uint64_t bytes() const
    {
        return masks.size() * 8 +
               values.size() * dtypeBytes(dtype);
    }
};

/** Compress a tensor into the hardware bitmask format. */
CompressedBlob sparseCompress(const Tensor &tensor);

/** Decompress a blob back into a dense tensor (exact inverse). */
Tensor sparseDecompress(const CompressedBlob &blob);

/**
 * Encoded size for a hypothetical tensor without materializing it.
 * @param numel element count.
 * @param density fraction of nonzero elements.
 * @param dtype element type.
 */
std::uint64_t sparseEncodedBytes(std::uint64_t numel, double density,
                                 DType dtype);

/**
 * Compression ratio (encoded/dense); > 1 means compression hurts.
 * The DMA engine only uses the compressed stream when it is smaller.
 */
double sparseRatio(std::uint64_t numel, double density, DType dtype);

} // namespace dtu

#endif // DTU_DMA_SPARSE_CODEC_HH
