#include "dma/dma_engine.hh"

#include <algorithm>

#include "dma/sparse_codec.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{

std::string
transformName(TransformKind kind)
{
    switch (kind) {
      case TransformKind::None: return "none";
      case TransformKind::Pad: return "pad";
      case TransformKind::Slice: return "slice";
      case TransformKind::Transpose: return "transpose";
      case TransformKind::Concat: return "concat";
    }
    return "?";
}

double
transformRateFactor(TransformKind kind)
{
    switch (kind) {
      case TransformKind::None:
      case TransformKind::Concat:
        return 1.0;
      case TransformKind::Pad:
      case TransformKind::Slice:
        return 0.9; // address generation gaps on row boundaries
      case TransformKind::Transpose:
        return 0.5; // strided gather/scatter halves streaming rate
    }
    return 1.0;
}

DmaEngine::DmaEngine(std::string name, EventQueue &queue,
                     StatRegistry *stats, ClockDomain &clock,
                     DmaFabric fabric, DmaFeatures features,
                     unsigned datapath_bytes_per_cycle,
                     unsigned config_cycles)
    : SimObject(std::move(name), queue, stats), clock_(clock),
      fabric_(std::move(fabric)), features_(features),
      configCycles_(config_cycles)
{
    double bytes_per_second =
        static_cast<double>(datapath_bytes_per_cycle) * clock.frequency();
    pipe_ = std::make_unique<BandwidthResource>(
        this->name() + ".pipe", queue, stats, bytes_per_second);
    if (stats) {
        transactions_.init(*stats, this->name() + ".transactions",
                           "DMA transactions completed");
        configOps_.init(*stats, this->name() + ".configs",
                        "descriptor configurations performed");
        configTicks_.init(*stats, this->name() + ".config_ticks",
                          "ticks spent on configuration");
        sparseSavedBytes_.init(*stats, this->name() + ".sparse_saved_bytes",
                               "bytes saved by sparse compression");
        broadcastCopies_.init(*stats, this->name() + ".broadcast_copies",
                              "extra L2 copies written by broadcast");
    }
}

Tick
DmaEngine::l2AccessAt(Tick at, Sram *l2, unsigned port,
                      std::uint64_t bytes, bool fill_port)
{
    // When the caller pins a port (core-affine data) the engine
    // honours it. Background streams (weight prefetch) take the
    // dedicated DMA-side fill port so they never steal core-bonded
    // port cycles; other unpinned traffic stripes the core ports.
    if (port < l2->numPorts())
        return l2->accessAt(at, port, port, bytes);
    if (fill_port && l2->hasDmaPort())
        return l2->dmaAccessAt(at, bytes);
    unsigned nports = l2->numPorts();
    std::uint64_t chunk = bytes / nports;
    std::uint64_t rem = bytes % nports;
    Tick done = at;
    for (unsigned p = 0; p < nports; ++p) {
        std::uint64_t b = chunk + (p < rem ? 1 : 0);
        if (b)
            done = std::max(done, l2->accessAt(at, p, p, b));
    }
    return done;
}

Tick
DmaEngine::endpointAccess(Tick at, MemLevel level, Addr addr, unsigned port,
                          std::uint64_t bytes, bool fill_port)
{
    switch (level) {
      case MemLevel::L3:
        panicIf(!fabric_.hbm, "DMA '", name(), "' has no L3 endpoint");
        return fabric_.hbm->accessAt(at, addr, bytes);
      case MemLevel::L2:
        panicIf(!fabric_.localL2, "DMA '", name(), "' has no L2 endpoint");
        return l2AccessAt(at, fabric_.localL2, port, bytes, fill_port);
      case MemLevel::L1: {
        if (port == DmaDescriptor::anyPort)
            port = 0;
        panicIf(port >= fabric_.coreL1.size(), "DMA '", name(),
                "' L1 port ", port, " out of range");
        return fabric_.coreL1[port]->accessAt(at, 0, 0, bytes);
      }
      case MemLevel::Host:
        panicIf(!fabric_.pcie, "DMA '", name(), "' has no host link");
        return fabric_.pcie->transferAt(at, bytes);
    }
    panic("unreachable DMA endpoint");
}

DmaResult
DmaEngine::submit(const DmaDescriptor &desc)
{
    return submitAt(curTick(), desc);
}

DmaResult
DmaEngine::submitAt(Tick at, const DmaDescriptor &desc)
{
    if (!faults_ || !faults_->dmaEnabled())
        return submitOnce(at, desc);

    // Each attempt is one full pass through the engine; a transient
    // fault discards the attempt's data (but not the time and wire
    // traffic it burned) and the engine retries after an exponential
    // backoff. Exhausted retries poison the execution that issued the
    // request — the serving layer decides whether to rerun the batch.
    DmaResult total;
    Tick t = at;
    unsigned attempt = 0;
    for (;;) {
        DmaResult r = submitOnce(t, desc);
        total.done = r.done;
        total.srcBytes += r.srcBytes;
        total.dstBytes += r.dstBytes;
        total.configs += r.configs;
        if (!faults_->dmaTransient(r.done, name()))
            break;
        if (attempt >= faults_->dmaMaxRetries()) {
            faults_->recordDmaExhausted(r.done, name());
            break;
        }
        t = r.done + faults_->dmaBackoff(attempt);
        ++attempt;
        total.retries = attempt;
        faults_->recordDmaRetry();
    }
    return total;
}

DmaResult
DmaEngine::submitOnce(Tick at, const DmaDescriptor &desc)
{
    fatalIf(desc.repeatCount == 0, "DMA repeatCount must be >= 1");
    fatalIf(desc.broadcast && desc.dst != MemLevel::L2,
            "DMA broadcast destination must be L2");
    fatalIf(desc.broadcast && !features_.broadcast,
            "broadcast requested but not supported by this DMA engine");
    fatalIf(desc.sparse && !features_.sparseDecompress,
            "sparse transfer requested but not supported");

    bool use_repeat = desc.repeatMode && features_.repeatMode &&
                      desc.repeatCount > 1;
    Tick config_ticks = clock_.ticksFor(configCycles_);

    // Indirect routing on DTU 1.0: L1 <-> L3 must stage through L2.
    if (!features_.l1L3Direct &&
        ((desc.src == MemLevel::L1 && desc.dst == MemLevel::L3) ||
         (desc.src == MemLevel::L3 && desc.dst == MemLevel::L1))) {
        DmaDescriptor hop1 = desc;
        DmaDescriptor hop2 = desc;
        hop1.dst = MemLevel::L2;
        hop1.dstPort = desc.src == MemLevel::L1 ? desc.srcPort
                                                : desc.dstPort;
        hop2.src = MemLevel::L2;
        hop2.srcPort = hop1.dstPort;
        // Hops stay inside this attempt: the fault wrapper draws once
        // per submitted request, not once per staging hop.
        DmaResult first = submitOnce(at, hop1);
        DmaResult second = submitOnce(first.done, hop2);
        second.srcBytes += first.srcBytes;
        second.dstBytes += first.dstBytes;
        second.configs += first.configs;
        return second;
    }

    // Effective wire bytes per transaction on each side. Sparse data
    // travels compressed on the L3 side and is expanded on the fly.
    std::uint64_t elem = dtypeBytes(desc.dtype);
    std::uint64_t numel = elem ? desc.bytes / elem : desc.bytes;
    std::uint64_t compressed =
        desc.sparse ? sparseEncodedBytes(numel, desc.density, desc.dtype)
                    : desc.bytes;
    // The engine never sends a compressed stream bigger than dense.
    compressed = std::min<std::uint64_t>(compressed, desc.bytes);

    std::uint64_t src_bytes =
        desc.sparse && desc.src == MemLevel::L3 ? compressed : desc.bytes;
    std::uint64_t dst_bytes =
        desc.sparse && desc.dst == MemLevel::L3 ? compressed : desc.bytes;

    // The engine datapath sits upstream of the (de)compressor at the
    // destination port, so it carries the source-side byte stream.
    double rate_factor = transformRateFactor(desc.transform);
    auto pipe_bytes = static_cast<std::uint64_t>(
        static_cast<double>(src_bytes) / rate_factor + 0.5);

    DmaResult result;
    Tick t = std::max(at, curTick());
    for (unsigned i = 0; i < desc.repeatCount; ++i) {
        bool pay_config = i == 0 || !use_repeat;
        if (pay_config) {
            t += config_ticks;
            ++result.configs;
            ++configOps_;
            configTicks_ += static_cast<double>(config_ticks);
        }
        Addr src_addr = desc.srcAddr + i * desc.repeatStride;
        Addr dst_addr = desc.dstAddr + i * desc.repeatStride;

        Tick engine_done = pipe_->transferAt(t, pipe_bytes);
        Tick src_done =
            endpointAccess(t, desc.src, src_addr, desc.srcPort, src_bytes,
                           desc.useFillPort);
        Tick dst_done = 0;
        if (desc.broadcast) {
            for (std::size_t g = 0; g < fabric_.clusterL2.size(); ++g) {
                dst_done = std::max(
                    dst_done, l2AccessAt(t, fabric_.clusterL2[g],
                                         DmaDescriptor::anyPort,
                                         dst_bytes, desc.useFillPort));
            }
            broadcastCopies_ += static_cast<double>(
                fabric_.clusterL2.size() > 0 ? fabric_.clusterL2.size() - 1
                                             : 0);
            result.dstBytes += dst_bytes * fabric_.clusterL2.size();
        } else {
            dst_done = endpointAccess(t, desc.dst, dst_addr, desc.dstPort,
                                      dst_bytes, desc.useFillPort);
            result.dstBytes += dst_bytes;
        }
        result.srcBytes += src_bytes;
        ++transactions_;
        if (desc.sparse)
            sparseSavedBytes_ +=
                static_cast<double>(desc.bytes - compressed);

        Tick txn_done = std::max({engine_done, src_done, dst_done});
        result.done = txn_done;
        // Back-to-back transactions pipeline behind the engine
        // datapath; memory-side stalls surface through the endpoints'
        // own queues on the next transaction.
        t = std::max(engine_done, t);
    }

    // One span covers the whole request (all repeat transactions);
    // per-transaction spans would swamp the timeline at no insight.
    if (Tracer *tr = tracer(); tr && tr->enabled()) {
        std::string label = memLevelName(desc.src);
        label += "->";
        label += memLevelName(desc.dst);
        if (desc.broadcast)
            label += " bcast";
        if (desc.sparse)
            label += " sparse";
        if (desc.transform != TransformKind::None) {
            label += " ";
            label += transformName(desc.transform);
        }
        tr->span(tr->trackFor(name()), label, "dma",
                 std::max(at, curTick()), result.done,
                 {{"bytes", static_cast<double>(desc.bytes *
                                               desc.repeatCount)},
                  {"src_bytes", static_cast<double>(result.srcBytes)},
                  {"dst_bytes", static_cast<double>(result.dstBytes)},
                  {"repeats", static_cast<double>(desc.repeatCount)},
                  {"configs", static_cast<double>(result.configs)}});
    }
    return result;
}

} // namespace dtu
