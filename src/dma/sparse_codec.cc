#include "dma/sparse_codec.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

CompressedBlob
sparseCompress(const Tensor &tensor)
{
    CompressedBlob blob;
    blob.shape = tensor.shape();
    blob.dtype = tensor.dtype();
    std::int64_t n = tensor.numel();
    std::int64_t blocks =
        (n + static_cast<std::int64_t>(sparseBlockElems) - 1) /
        static_cast<std::int64_t>(sparseBlockElems);
    blob.masks.assign(static_cast<std::size_t>(blocks), 0);
    for (std::int64_t i = 0; i < n; ++i) {
        double v = tensor.at(i);
        if (v != 0.0) {
            auto block = static_cast<std::size_t>(
                i / static_cast<std::int64_t>(sparseBlockElems));
            auto bit = static_cast<unsigned>(
                i % static_cast<std::int64_t>(sparseBlockElems));
            blob.masks[block] |= (1ULL << bit);
            blob.values.push_back(v);
        }
    }
    return blob;
}

Tensor
sparseDecompress(const CompressedBlob &blob)
{
    Tensor out(blob.shape, blob.dtype);
    std::size_t next_value = 0;
    std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        auto block = static_cast<std::size_t>(
            i / static_cast<std::int64_t>(sparseBlockElems));
        auto bit = static_cast<unsigned>(
            i % static_cast<std::int64_t>(sparseBlockElems));
        if (blob.masks[block] & (1ULL << bit)) {
            panicIf(next_value >= blob.values.size(),
                    "sparse blob value stream underflow");
            out.set(i, blob.values[next_value++]);
        }
    }
    panicIf(next_value != blob.values.size(),
            "sparse blob value stream has trailing values");
    return out;
}

std::uint64_t
sparseEncodedBytes(std::uint64_t numel, double density, DType dtype)
{
    fatalIf(density < 0.0 || density > 1.0,
            "density must be in [0, 1], got ", density);
    std::uint64_t blocks =
        (numel + sparseBlockElems - 1) / sparseBlockElems;
    auto nnz = static_cast<std::uint64_t>(
        std::llround(density * static_cast<double>(numel)));
    return blocks * 8 + nnz * dtypeBytes(dtype);
}

double
sparseRatio(std::uint64_t numel, double density, DType dtype)
{
    if (numel == 0)
        return 1.0;
    double dense = static_cast<double>(numel * dtypeBytes(dtype));
    return static_cast<double>(sparseEncodedBytes(numel, density, dtype)) /
           dense;
}

} // namespace dtu
