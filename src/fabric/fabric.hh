/**
 * @file
 * Simulated multi-chip interconnect fabric.
 *
 * The fleet's devices talk to the host and to each other over PCIe-class
 * links modelled as first-class discrete-event resources: every link is a
 * paged capacity ledger (same algorithm as mem/bandwidth) with a fixed
 * byte rate plus a per-hop propagation latency, so concurrent transfers
 * on a shared link contend instead of each enjoying full bandwidth.
 *
 * Three topologies are supported per fleet:
 *  - SharedRoot: all devices hang off one host root complex; every
 *    transfer (weight loads, collectives, activations) crosses the one
 *    shared root link.
 *  - Ring: each placement group gets a unidirectional ring of peer
 *    links (the classic ring all-reduce substrate).
 *  - FullMesh: each placement group gets a dedicated link per device
 *    pair.
 * Host-side weight loads always cross the shared root-complex link,
 * regardless of topology — that is what makes concurrent placements
 * contend (and what the scalar weightLoadGbps cost model got wrong).
 *
 * Thread-safety contract (mirrors the conservative time-window fleet
 * loop): the root-complex link is only touched from the fleet thread
 * (admission barriers). Peer links belong to exactly one placement
 * group, and each group is driven by exactly one scheduler, i.e. one
 * worker thread. Under SharedRoot, peer traffic from group schedulers
 * would hit the shared root link from worker threads, so the fleet
 * falls back to serial execution for that combination.
 */

#ifndef DTU_FABRIC_FABRIC_HH
#define DTU_FABRIC_FABRIC_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{
namespace fabric
{

/** How a fleet's devices are wired together. */
enum class Topology
{
    /** Every device behind one host root complex; all traffic shares it. */
    SharedRoot,
    /** Per-group unidirectional ring of peer links. */
    Ring,
    /** Per-group dedicated link for every device pair. */
    FullMesh,
};

const char *topologyName(Topology t);

/** Parse a topology name ("shared-root", "ring", "full-mesh"). */
Topology parseTopology(const std::string &name);

/** Per-fleet interconnect configuration. */
struct FabricConfig
{
    /** Model the interconnect at all. Off keeps the scalar cost model. */
    bool enabled = false;

    Topology topology = Topology::SharedRoot;

    /** Peer (device-to-device) link bandwidth, GB/s. */
    double linkGbps = 64.0;

    /** Host root-complex bandwidth, GB/s (weight-load DMA path). */
    double hostGbps = 64.0;

    /** Per-hop propagation latency in ticks (default 500 ns). */
    Tick linkLatency = 500'000;

    /** Fatal on non-physical settings (zero/negative bandwidth). */
    void validate() const;
};

/**
 * One interconnect link: a standalone paged capacity ledger.
 *
 * Same fair-sharing algorithm as BandwidthResource — time is divided
 * into fixed buckets holding rate x width bytes each, and a transfer
 * starting at tick t consumes idle capacity from bucket(t) forward —
 * but with no SimObject/EventQueue dependency, because fabric links
 * are fleet-level resources that outlive any single device timeline.
 * All completion arithmetic saturates at maxTick instead of wrapping.
 */
class Link
{
  public:
    Link(std::string name, double gbps);

    /**
     * Occupy the link for @p bytes starting no earlier than @p at.
     * @return the tick the last byte is delivered (no hop latency).
     */
    Tick transferAt(Tick at, std::uint64_t bytes);

    const std::string &name() const { return name_; }

    /** Configured bandwidth in GB/s. */
    double gbps() const { return gbps_; }

    /** Tick at which the link next becomes idle. */
    Tick freeAt() const { return freeAt_; }

    double totalBytes() const { return bytesMoved_; }
    std::uint64_t transfers() const { return transfers_; }

    /** Ticks transfers spent queued behind earlier traffic. */
    Tick totalWaitTicks() const { return waitTicks_; }

    /** Busy time as a fraction of [0, max(now, freeAt)]. */
    double utilizationAt(Tick now) const;

  private:
    double bucketBytes() const;

    static constexpr std::uint64_t kPageBuckets = 4096;
    using Page = std::array<double, kPageBuckets>;
    double &usedAt(std::uint64_t idx);

    std::string name_;
    double gbps_;
    double bytesPerSecond_;
    Tick bucketTicks_ = 50'000; // 50 ns
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    std::uint64_t cachedPageNo_ = ~std::uint64_t{0};
    Page *cachedPage_ = nullptr;
    Tick freeAt_ = 0;
    double bytesMoved_ = 0.0;
    std::uint64_t transfers_ = 0;
    Tick waitTicks_ = 0;
};

/** Read-only per-link snapshot for reports and Prometheus export. */
struct LinkStats
{
    std::string name;
    double gbps = 0.0;
    double bytes = 0.0;
    std::uint64_t transfers = 0;
    double waitMs = 0.0;
    double utilization = 0.0;
};

/** Aggregate fabric traffic (summed over groups + the host link). */
struct FabricTotals
{
    std::uint64_t collectives = 0;
    double collectiveBytes = 0.0;
    std::uint64_t activationSends = 0;
    double activationBytes = 0.0;
    std::uint64_t weightLoads = 0;
    double weightLoadBytes = 0.0;
};

/**
 * The fleet interconnect: one shared host root-complex link plus
 * per-placement-group peer links laid out by the configured topology.
 */
class Fabric
{
  public:
    /**
     * @param config validated fabric configuration.
     * @param devices total physical devices in the fleet.
     * @param group_size devices per placement group (1 = data parallel).
     */
    Fabric(const FabricConfig &config, unsigned devices,
           unsigned group_size);

    const FabricConfig &config() const { return config_; }
    unsigned groups() const { return groups_; }
    unsigned groupSize() const { return groupSize_; }

    /**
     * Host-to-device weight-load DMA over the shared root complex.
     * Fleet-thread only (called from admission barriers).
     * @return delivery tick including one hop of latency.
     */
    Tick hostLoadAt(Tick at, std::uint64_t bytes);

    /**
     * Ring all-reduce of @p bytes across group @p group's devices.
     * Each device pushes 2(d-1)/d of the payload around the ring
     * (reduce-scatter + all-gather), paying 2(d-1) latency hops.
     * @return the tick the reduced tensor is resident everywhere.
     */
    Tick allReduceAt(unsigned group, Tick at, std::uint64_t bytes);

    /**
     * Point-to-point activation send from pipeline stage @p from_stage
     * to stage from_stage+1 within @p group.
     */
    Tick sendAt(unsigned group, unsigned from_stage, Tick at,
                std::uint64_t bytes);

    /**
     * True when group peer traffic would cross the shared root link
     * from worker threads — the fleet must then run serially.
     */
    bool peerTrafficSharesRoot() const
    {
        return config_.topology == Topology::SharedRoot && groupSize_ > 1;
    }

    std::vector<LinkStats> linkStats(Tick now) const;
    FabricTotals totals() const;

  private:
    /** Peer links owned by one placement group (worker-thread private). */
    struct Group
    {
        std::vector<std::unique_ptr<Link>> links;
        std::uint64_t collectives = 0;
        double collectiveBytes = 0.0;
        std::uint64_t sends = 0;
        double sendBytes = 0.0;
    };

    Link &pairLink(Group &g, unsigned a, unsigned b);

    FabricConfig config_;
    unsigned groupSize_;
    unsigned groups_;
    Link root_;
    std::vector<Group> peer_;
    std::uint64_t weightLoads_ = 0;
    double weightLoadBytes_ = 0.0;
};

} // namespace fabric
} // namespace dtu

#endif // DTU_FABRIC_FABRIC_HH
