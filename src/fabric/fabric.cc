#include "fabric/fabric.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{
namespace fabric
{

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::SharedRoot:
        return "shared-root";
      case Topology::Ring:
        return "ring";
      case Topology::FullMesh:
        return "full-mesh";
    }
    return "unknown";
}

Topology
parseTopology(const std::string &name)
{
    if (name == "shared-root")
        return Topology::SharedRoot;
    if (name == "ring")
        return Topology::Ring;
    if (name == "full-mesh")
        return Topology::FullMesh;
    fatal("unknown fabric topology '", name,
          "' (expected shared-root, ring, or full-mesh)");
    return Topology::SharedRoot;
}

void
FabricConfig::validate() const
{
    fatalIf(linkGbps <= 0.0, "fabric link bandwidth must be positive (got ",
            linkGbps, " GB/s)");
    fatalIf(hostGbps <= 0.0,
            "fabric host root-complex bandwidth must be positive (got ",
            hostGbps, " GB/s)");
    fatalIf(!std::isfinite(linkGbps) || !std::isfinite(hostGbps),
            "fabric bandwidth must be finite");
}

Link::Link(std::string name, double gbps)
    : name_(std::move(name)), gbps_(gbps), bytesPerSecond_(gbps * 1e9)
{
    fatalIf(gbps <= 0.0 || !std::isfinite(gbps), "bandwidth of fabric link '",
            name_, "' must be positive (got ", gbps, " GB/s)");
}

double
Link::bucketBytes() const
{
    return bytesPerSecond_ * ticksToSeconds(bucketTicks_);
}

double &
Link::usedAt(std::uint64_t idx)
{
    std::uint64_t page_no = idx / kPageBuckets;
    if (page_no != cachedPageNo_) {
        std::unique_ptr<Page> &page = pages_[page_no];
        if (!page)
            page = std::make_unique<Page>();
        cachedPageNo_ = page_no;
        cachedPage_ = page.get();
    }
    return (*cachedPage_)[idx % kPageBuckets];
}

Tick
Link::transferAt(Tick at, std::uint64_t bytes)
{
    bytesMoved_ += static_cast<double>(bytes);
    ++transfers_;
    if (bytes == 0)
        return at;

    // Walk the capacity ledger from the start bucket, consuming idle
    // capacity until all bytes are scheduled. A transfer submitted near
    // maxTick saturates ("never completes") instead of wrapping.
    const std::uint64_t max_bucket = maxTick / bucketTicks_;
    const double cap = bucketBytes();
    double remaining = static_cast<double>(bytes);
    std::uint64_t idx = at / bucketTicks_;
    double first_frac =
        1.0 - static_cast<double>(at - idx * bucketTicks_) /
                  static_cast<double>(bucketTicks_);
    Tick done = at;
    while (remaining > 0.0) {
        if (idx >= max_bucket) {
            done = maxTick;
            break;
        }
        double bucket_cap = cap * (idx == at / bucketTicks_ ? first_frac
                                                            : 1.0);
        double &used = usedAt(idx);
        double avail = bucket_cap - used;
        if (avail > 1e-12) {
            double take = std::min(avail, remaining);
            used += take;
            remaining -= take;
            double filled_frac = used / cap;
            done = saturatingAddTicks(
                idx * bucketTicks_,
                static_cast<Tick>(filled_frac *
                                      static_cast<double>(bucketTicks_) +
                                  0.5));
        }
        if (remaining > 0.0)
            ++idx;
    }
    done = std::max(done, at);
    freeAt_ = std::max(freeAt_, done);
    Tick pure = secondsToTicks(static_cast<double>(bytes) /
                               bytesPerSecond_);
    Tick unqueued = saturatingAddTicks(at, pure);
    if (done > unqueued)
        waitTicks_ = saturatingAddTicks(waitTicks_, done - unqueued);
    return done;
}

double
Link::utilizationAt(Tick now) const
{
    Tick horizon = std::max(now, freeAt_);
    if (horizon == 0)
        return 0.0;
    double capacity = bytesPerSecond_ * ticksToSeconds(horizon);
    return capacity > 0.0 ? std::min(1.0, bytesMoved_ / capacity) : 0.0;
}

Fabric::Fabric(const FabricConfig &config, unsigned devices,
               unsigned group_size)
    : config_(config), groupSize_(group_size),
      groups_(group_size ? devices / group_size : 0),
      root_("fabric.root", config.hostGbps)
{
    config_.validate();
    fatalIf(group_size == 0, "fabric placement group size must be > 0");
    fatalIf(devices % group_size != 0, "fleet of ", devices,
            " devices cannot be split into groups of ", group_size);
    peer_.resize(groups_);
    if (groupSize_ < 2)
        return;
    for (unsigned g = 0; g < groups_; ++g) {
        Group &grp = peer_[g];
        const std::string prefix = "fabric.g" + std::to_string(g);
        switch (config_.topology) {
          case Topology::SharedRoot:
            // Peer traffic rides the shared root link; no private links.
            break;
          case Topology::Ring:
            for (unsigned i = 0; i < groupSize_; ++i)
                grp.links.push_back(std::make_unique<Link>(
                    prefix + ".ring" + std::to_string(i),
                    config_.linkGbps));
            break;
          case Topology::FullMesh:
            for (unsigned a = 0; a < groupSize_; ++a)
                for (unsigned b = a + 1; b < groupSize_; ++b)
                    grp.links.push_back(std::make_unique<Link>(
                        prefix + ".d" + std::to_string(a) + "d" +
                            std::to_string(b),
                        config_.linkGbps));
            break;
        }
    }
}

Link &
Fabric::pairLink(Group &g, unsigned a, unsigned b)
{
    if (a > b)
        std::swap(a, b);
    // Upper-triangular pair index for d devices.
    const std::uint64_t d = groupSize_;
    std::uint64_t idx = a * (2 * d - a - 1) / 2 + (b - a - 1);
    return *g.links[idx];
}

Tick
Fabric::hostLoadAt(Tick at, std::uint64_t bytes)
{
    ++weightLoads_;
    weightLoadBytes_ += static_cast<double>(bytes);
    Tick done = root_.transferAt(at, bytes);
    return saturatingAddTicks(done, config_.linkLatency);
}

Tick
Fabric::allReduceAt(unsigned group, Tick at, std::uint64_t bytes)
{
    panicIf(group >= groups_, "fabric group out of range");
    if (groupSize_ < 2)
        return at;
    Group &grp = peer_[group];
    ++grp.collectives;
    grp.collectiveBytes += static_cast<double>(bytes);
    const double d = static_cast<double>(groupSize_);
    Tick done = at;
    Tick hops = 0;
    switch (config_.topology) {
      case Topology::SharedRoot: {
        // Reduce-scatter then all-gather, every shard crossing the
        // root complex twice: 2(d-1) x payload on the shared link.
        std::uint64_t wire = static_cast<std::uint64_t>(
            2.0 * (d - 1.0) * static_cast<double>(bytes) + 0.5);
        done = root_.transferAt(at, wire);
        hops = 4; // up + down per phase
        break;
      }
      case Topology::Ring: {
        // Ring algorithm: every link carries 2(d-1)/d of the payload.
        std::uint64_t wire = static_cast<std::uint64_t>(
            2.0 * (d - 1.0) / d * static_cast<double>(bytes) + 0.5);
        for (auto &link : grp.links)
            done = std::max(done, link->transferAt(at, wire));
        hops = 2 * (groupSize_ - 1);
        break;
      }
      case Topology::FullMesh: {
        // Direct algorithm: each pair exchanges its shard in both
        // phases and both directions: 4/d x payload per pair link.
        std::uint64_t wire = static_cast<std::uint64_t>(
            4.0 / d * static_cast<double>(bytes) + 0.5);
        for (auto &link : grp.links)
            done = std::max(done, link->transferAt(at, wire));
        hops = 2;
        break;
      }
    }
    return saturatingAddTicks(done, hops * config_.linkLatency);
}

Tick
Fabric::sendAt(unsigned group, unsigned from_stage, Tick at,
               std::uint64_t bytes)
{
    panicIf(group >= groups_, "fabric group out of range");
    panicIf(groupSize_ < 2 || from_stage + 1 >= groupSize_,
            "fabric activation send needs a downstream stage");
    Group &grp = peer_[group];
    ++grp.sends;
    grp.sendBytes += static_cast<double>(bytes);
    Tick done = at;
    Tick hops = 1;
    switch (config_.topology) {
      case Topology::SharedRoot:
        done = root_.transferAt(at, bytes);
        hops = 2; // up through the root complex and back down
        break;
      case Topology::Ring:
        done = grp.links[from_stage]->transferAt(at, bytes);
        break;
      case Topology::FullMesh:
        done = pairLink(grp, from_stage, from_stage + 1)
                   .transferAt(at, bytes);
        break;
    }
    return saturatingAddTicks(done, hops * config_.linkLatency);
}

std::vector<LinkStats>
Fabric::linkStats(Tick now) const
{
    auto snap = [now](const Link &l) {
        LinkStats s;
        s.name = l.name();
        s.gbps = l.gbps();
        s.bytes = l.totalBytes();
        s.transfers = l.transfers();
        s.waitMs = ticksToMilliSeconds(l.totalWaitTicks());
        s.utilization = l.utilizationAt(now);
        return s;
    };
    std::vector<LinkStats> out;
    out.push_back(snap(root_));
    for (const Group &g : peer_)
        for (const auto &link : g.links)
            out.push_back(snap(*link));
    return out;
}

FabricTotals
Fabric::totals() const
{
    FabricTotals t;
    t.weightLoads = weightLoads_;
    t.weightLoadBytes = weightLoadBytes_;
    for (const Group &g : peer_) {
        t.collectives += g.collectives;
        t.collectiveBytes += g.collectiveBytes;
        t.activationSends += g.sends;
        t.activationBytes += g.sendBytes;
    }
    return t;
}

} // namespace fabric
} // namespace dtu
