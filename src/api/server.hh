/**
 * @file
 * The inference-server facade — the top of the redesigned host API.
 *
 * A Server owns the serving pipeline over an open Device: clients
 * submit timestamped requests (or whole arrival traces from
 * serve/arrival.hh), serve() drains them through the dynamic batcher
 * onto the device's processing-group leases, and the returned
 * ServingReport carries the SLO picture (p50/p95/p99, goodput,
 * deadline misses, energy per request).
 *
 *   Device device;
 *   Server server(device, {.batching = {.maxBatch = 8,
 *                                       .maxQueueDelay =
 *                                           secondsToTicks(2e-3)}});
 *   server.submit("resnet50", arrival, deadline);
 *   server.submit(serve::poissonTrace("bert_large", 200, 64, seed));
 *   serve::ServingReport report = server.serve();
 *
 * The Server shares the device's ResourceManager with any live
 * Streams: streams keep their leases, the batcher works in whatever
 * capacity remains.
 */

#ifndef DTU_API_SERVER_HH
#define DTU_API_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/tops_runtime.hh"
#include "obs/slo_monitor.hh"
#include "serve/scheduler.hh"

namespace dtu
{

/** Request-level serving on top of a Device. */
class Server
{
  public:
    explicit Server(Device &device, serve::ServingConfig config = {});

    /**
     * Submit one request.
     * @param deadline absolute completion deadline (0 = no SLO).
     * @return the assigned request id.
     */
    std::uint64_t submit(const std::string &model, Tick arrival,
                         Tick deadline = 0);

    /**
     * Submit a whole arrival trace (ids are reassigned so the
     * combined submission stream stays uniquely identified).
     */
    void submit(const std::vector<serve::Request> &trace);

    /** Requests submitted and not yet served. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Drain everything submitted so far and return the aggregated
     * report (also retained; see lastReport()). Subsequent submits
     * start a fresh trace.
     */
    const serve::ServingReport &serve();

    /** Report of the most recent serve(). */
    const serve::ServingReport &lastReport() const { return last_; }

    const serve::ServingConfig &config() const { return config_; }

    /**
     * Attach a live SLO monitor to the serving pipeline: tumbling
     * windows of p50/p95/p99, goodput, and SLO burn rate, with
     * threshold alert callbacks firing mid-serve at the simulated
     * time of the crossing (see obs/slo_monitor.hh). Enabling twice
     * is a configuration error; without it serving is bit-for-bit
     * unchanged.
     */
    obs::SloMonitor &enableSloMonitor(obs::SloConfig config = {});

    /** The attached monitor, or nullptr. */
    obs::SloMonitor *sloMonitor() { return sloMon_.get(); }

  private:
    Device &device_;
    serve::ServingConfig config_;
    serve::Scheduler scheduler_;
    std::vector<serve::Request> pending_;
    std::uint64_t nextId_ = 1;
    serve::ServingReport last_;
    std::unique_ptr<obs::SloMonitor> sloMon_;
};

} // namespace dtu

#endif // DTU_API_SERVER_HH
