/**
 * @file
 * The inference-server facade — the top of the redesigned host API.
 *
 * A Server owns the serving pipeline over an open Device: clients
 * submit timestamped requests (or whole arrival traces from
 * serve/arrival.hh), serve() drains them through the dynamic batcher
 * onto the device's processing-group leases, and the returned
 * ServingReport carries the SLO picture (p50/p95/p99, goodput,
 * deadline misses, energy per request).
 *
 *   Device device;
 *   Server server(device, {.batching = {.maxBatch = 8,
 *                                       .maxQueueDelay =
 *                                           secondsToTicks(2e-3)}});
 *   server.submit("resnet50", arrival, deadline);
 *   server.submit(serve::poissonTrace("bert_large", 200, 64, seed));
 *   serve::ServingReport report = server.serve();
 *
 * The Server shares the device's ResourceManager with any live
 * Streams: streams keep their leases, the batcher works in whatever
 * capacity remains.
 */

#ifndef DTU_API_SERVER_HH
#define DTU_API_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/tops_runtime.hh"
#include "obs/flight_recorder.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "serve/fleet.hh"
#include "serve/scheduler.hh"

namespace dtu
{

/** Request-level serving on top of a Device. */
class Server
{
  public:
    explicit Server(Device &device, serve::ServingConfig config = {});

    /**
     * Submit one request.
     * @param deadline absolute completion deadline (0 = no SLO).
     * @return the assigned request id.
     */
    std::uint64_t submit(const std::string &model, Tick arrival,
                         Tick deadline = 0);

    /**
     * Submit a whole arrival trace (ids are reassigned so the
     * combined submission stream stays uniquely identified).
     */
    void submit(const std::vector<serve::Request> &trace);

    /** Requests submitted and not yet served. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Drain everything submitted so far and return the aggregated
     * report (also retained; see lastReport()). Subsequent submits
     * start a fresh trace.
     */
    const serve::ServingReport &serve();

    /** Report of the most recent serve(). */
    const serve::ServingReport &lastReport() const { return last_; }

    const serve::ServingConfig &config() const { return config_; }

    /**
     * Attach a live SLO monitor to the serving pipeline: tumbling
     * windows of p50/p95/p99, goodput, and SLO burn rate, with
     * threshold alert callbacks firing mid-serve at the simulated
     * time of the crossing (see obs/slo_monitor.hh). Enabling twice
     * is a configuration error; without it serving is bit-for-bit
     * unchanged.
     */
    obs::SloMonitor &enableSloMonitor(obs::SloConfig config = {});

    /** The attached monitor, or nullptr. */
    obs::SloMonitor *sloMonitor() { return sloMon_.get(); }

    /**
     * Attach a request-lifecycle tracer (obs/request_tracer.hh):
     * sampled requests become causally-linked queue/execute/lifecycle
     * spans flow-linked to the chip's operator timeline, and the
     * scheduler samples the periodic metric time-series. Enabling
     * twice is a configuration error; without it serving is
     * bit-for-bit unchanged.
     */
    obs::RequestTracer &
    enableRequestTracing(obs::RequestTraceConfig config = {});

    /** The attached tracer, or nullptr. */
    obs::RequestTracer *requestTracer() { return reqTracer_.get(); }

    /**
     * Write the merged request + chip Chrome trace (requires
     * enableRequestTracing()).
     */
    void writeRequestTrace(const std::string &path);

  private:
    Device &device_;
    serve::ServingConfig config_;
    serve::Scheduler scheduler_;
    std::vector<serve::Request> pending_;
    std::uint64_t nextId_ = 1;
    serve::ServingReport last_;
    std::unique_ptr<obs::SloMonitor> sloMon_;
    std::unique_ptr<obs::RequestTracer> reqTracer_;
};

/**
 * Data-parallel serving across a fleet of devices — the multi-card
 * deployment facade. Owns N identically configured Devices and a
 * serve::Fleet that routes one submission stream across them:
 *
 *   FleetServer fleet({.devices = 4,
 *                      .routing =
 *                          serve::RoutingPolicy::LeastOutstanding,
 *                      .serving = {.batching = {.maxBatch = 8}}});
 *   fleet.submit(serve::poissonTrace("resnet50", 2000, 512, seed));
 *   serve::FleetReport report = fleet.serve();
 *
 * A size-1 fleet reproduces Server::serve() bit-for-bit.
 */
class FleetServer
{
  public:
    /** Open @p config.devices devices of @p chip and front them. */
    explicit FleetServer(serve::FleetConfig config = {},
                         const DtuConfig &chip = dtu2Config());

    /**
     * Submit one request (routed at serve() time).
     * @param deadline absolute completion deadline (0 = no SLO).
     * @return the assigned request id.
     */
    std::uint64_t submit(const std::string &model, Tick arrival,
                         Tick deadline = 0);

    /** Submit a whole arrival trace (ids are reassigned). */
    void submit(const std::vector<serve::Request> &trace);

    /** Requests submitted and not yet served. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Drain everything submitted so far across the fleet and return
     * the aggregated report (also retained; see lastReport()).
     */
    const serve::FleetReport &serve();

    /** Report of the most recent serve(). */
    const serve::FleetReport &lastReport() const { return last_; }

    /** Devices in the fleet. */
    unsigned size() const
    {
        return static_cast<unsigned>(devices_.size());
    }

    /** Device @p i (tracing, faults, perf sampling, stats). */
    Device &device(unsigned i) { return *devices_[i]; }

    /** The routing/serving coordinator. */
    serve::Fleet &fleet() { return *fleet_; }

    const serve::FleetConfig &config() const { return config_; }

    /**
     * Attach one live SLO monitor fleet-wide: completions and drops
     * from every device feed it in global event order. Enabling
     * twice is a configuration error.
     */
    obs::SloMonitor &enableSloMonitor(obs::SloConfig config = {});

    /** The attached monitor, or nullptr. */
    obs::SloMonitor *sloMonitor() { return sloMon_.get(); }

    /**
     * Attach a request-lifecycle tracer fleet-wide: router choices,
     * per-device admission/batch/terminal spans, flow links into each
     * device's chip timeline, and the periodic fleet metric
     * time-series. Enabling twice is a configuration error; without
     * it serving is bit-for-bit unchanged.
     */
    obs::RequestTracer &
    enableRequestTracing(obs::RequestTraceConfig config = {});

    /** The attached tracer, or nullptr. */
    obs::RequestTracer *requestTracer() { return reqTracer_.get(); }

    /**
     * Attach the SLO flight recorder: a bounded ring of recent
     * sampled request lifecycles and metric snapshots (fed by the
     * request tracer) that dumps a retrospective JSON incident report
     * the first time an SloMonitor burn-rate alert fires or an
     * installed fault injector reports a fault. Works with either
     * enable order relative to enableSloMonitor()/
     * enableRequestTracing(); fault injectors are (re)hooked at
     * serve() time so installFaults() can come later. Enabling twice
     * is a configuration error.
     */
    obs::FlightRecorder &
    enableFlightRecorder(obs::FlightRecorderConfig config = {});

    /** The attached recorder, or nullptr. */
    obs::FlightRecorder *flightRecorder() { return flightRec_.get(); }

    /**
     * Export the merged fleet Chrome trace — request lanes plus every
     * device's chip timeline on disjoint pids, flow arrows crossing
     * between them (requires enableRequestTracing()).
     */
    void exportFleetTrace(std::ostream &os);

    /** exportFleetTrace() into a file; fatal() on I/O failure. */
    void writeFleetTrace(const std::string &path);

    /**
     * Export the whole fleet in Prometheus text exposition format:
     * every device's chip registry under a "dtusim_dev<i>" prefix,
     * then fleet-aggregate and per-device serving gauges (labeled by
     * device) from the most recent serve().
     */
    void writePrometheus(std::ostream &os);

  private:
    serve::FleetConfig config_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unique_ptr<serve::Fleet> fleet_;
    std::vector<serve::Request> pending_;
    std::uint64_t nextId_ = 1;
    serve::FleetReport last_;
    bool served_ = false;
    std::unique_ptr<obs::SloMonitor> sloMon_;
    std::unique_ptr<obs::RequestTracer> reqTracer_;
    std::unique_ptr<obs::FlightRecorder> flightRec_;

    /** Hook the SLO monitor's alert stream into the recorder once. */
    void wireFlightAlerts();
    bool flightAlertsWired_ = false;
};

} // namespace dtu

#endif // DTU_API_SERVER_HH
