/**
 * @file
 * The inference-server facades — the top of the redesigned host API.
 *
 * Both facades implement the one generation-aware ServingFrontend
 * interface: clients describe a request with a serve::RequestSpec
 * (model, tenant, arrival, deadline, and optional GenerationParams —
 * maxNewTokens == 0 is the classic one-shot case) and submit it the
 * same way whether the backend is a single Device or a routed fleet.
 *
 *   Device device;
 *   Server server(device, {.batching = {.maxBatch = 8,
 *                                       .maxQueueDelay =
 *                                           secondsToTicks(2e-3)}});
 *   server.submit({.model = "resnet50", .arrival = a, .deadline = d});
 *   server.submit({.model = "gpt_tiny", .arrival = a,
 *                  .gen = {.promptLen = 128, .maxNewTokens = 64}});
 *   server.submit(serve::poissonTrace("bert_large", 200, 64, seed));
 *   serve::ServingReport report = server.serve();
 *
 * The Server shares the device's ResourceManager with any live
 * Streams: streams keep their leases, the batcher works in whatever
 * capacity remains.
 */

#ifndef DTU_API_SERVER_HH
#define DTU_API_SERVER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "api/tops_runtime.hh"
#include "obs/energy_monitor.hh"
#include "obs/flight_recorder.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "serve/fleet.hh"
#include "serve/scheduler.hh"

namespace dtu
{

/**
 * The unified serving frontend: everything a client does to an
 * inference service, independent of whether one Device or a routed
 * fleet backs it. Both facades (Server, FleetServer) implement it,
 * so load generators, benches, and tests drive either through the
 * same handle — and a size-1 fleet is golden-tested to reproduce the
 * single-device Server bit-for-bit through this interface.
 */
class ServingFrontend
{
  public:
    virtual ~ServingFrontend() = default;

    /** Submit one request described by @p spec; returns its id. */
    virtual std::uint64_t submit(const serve::RequestSpec &spec) = 0;

    /**
     * Submit a whole arrival trace (ids are reassigned so the
     * combined submission stream stays uniquely identified).
     */
    virtual void submit(const std::vector<serve::Request> &trace) = 0;

    /** Requests submitted and not yet served. */
    virtual std::size_t pending() const = 0;

    /**
     * Drain everything submitted so far and return the aggregated
     * serving report (the fleet facade aggregates across devices).
     * Subsequent submits start a fresh trace.
     */
    virtual const serve::ServingReport &serve() = 0;

    /**
     * Attach a live SLO monitor to the serving pipeline: tumbling
     * windows of p50/p95/p99, goodput, and SLO burn rate, with
     * threshold alert callbacks firing mid-serve at the simulated
     * time of the crossing (see obs/slo_monitor.hh). Enabling twice
     * is a configuration error; without it serving is bit-for-bit
     * unchanged.
     */
    virtual obs::SloMonitor &
    enableSloMonitor(obs::SloConfig config = {}) = 0;

    /** The attached monitor, or nullptr. */
    virtual obs::SloMonitor *sloMonitor() = 0;

    /**
     * Attach a request-lifecycle tracer (obs/request_tracer.hh):
     * sampled requests become causally-linked queue/execute/lifecycle
     * spans flow-linked to the chip's operator timeline, and the
     * scheduler samples the periodic metric time-series. Enabling
     * twice is a configuration error; without it serving is
     * bit-for-bit unchanged.
     */
    virtual obs::RequestTracer &
    enableRequestTracing(obs::RequestTraceConfig config = {}) = 0;

    /** The attached tracer, or nullptr. */
    virtual obs::RequestTracer *requestTracer() = 0;

    /**
     * Attach an energy monitor (obs/energy_monitor.hh): serving
     * reports gain per-component energy attribution and J/token,
     * metric samples carry power telemetry, every chip records its
     * CPME/LPME decision audit trail, and writePrometheus() exports
     * the dtusim_power_* / dtusim_energy_* families. Enabling twice
     * is a configuration error; without it serving is bit-for-bit
     * unchanged.
     */
    virtual obs::EnergyMonitor &
    enableEnergyMonitor(obs::EnergyMonitorConfig config = {}) = 0;

    /** The attached energy monitor, or nullptr. */
    virtual obs::EnergyMonitor *energyMonitor() = 0;

    /**
     * Write the EnergyReport JSON artifact of the most recent
     * serve() to @p path (requires enableEnergyMonitor()).
     */
    virtual void writeEnergyReport(const std::string &path) = 0;

    /**
     * Export chip stats plus serving gauges from the most recent
     * serve() in Prometheus text exposition format.
     */
    virtual void writePrometheus(std::ostream &os) = 0;
};

/** Request-level serving on top of a Device. */
class Server : public ServingFrontend
{
  public:
    explicit Server(Device &device, serve::ServingConfig config = {});

    /** Submit one request described by @p spec; returns its id. */
    std::uint64_t submit(const serve::RequestSpec &spec) override;

    /**
     * @deprecated Positional one-shot submit, kept for source
     * compatibility; use submit(RequestSpec) instead.
     */
    std::uint64_t submit(const std::string &model, Tick arrival,
                         Tick deadline = 0);

    /**
     * Submit a whole arrival trace (ids are reassigned so the
     * combined submission stream stays uniquely identified).
     */
    void submit(const std::vector<serve::Request> &trace) override;

    /** Requests submitted and not yet served. */
    std::size_t pending() const override { return pending_.size(); }

    /**
     * Drain everything submitted so far and return the aggregated
     * report (also retained; see lastReport()). Subsequent submits
     * start a fresh trace.
     */
    const serve::ServingReport &serve() override;

    /** Report of the most recent serve(). */
    const serve::ServingReport &lastReport() const { return last_; }

    const serve::ServingConfig &config() const { return config_; }

    obs::SloMonitor &
    enableSloMonitor(obs::SloConfig config = {}) override;

    /** The attached monitor, or nullptr. */
    obs::SloMonitor *sloMonitor() override { return sloMon_.get(); }

    obs::RequestTracer &
    enableRequestTracing(obs::RequestTraceConfig config = {}) override;

    /** The attached tracer, or nullptr. */
    obs::RequestTracer *requestTracer() override
    {
        return reqTracer_.get();
    }

    obs::EnergyMonitor &
    enableEnergyMonitor(obs::EnergyMonitorConfig config = {}) override;

    /** The attached energy monitor, or nullptr. */
    obs::EnergyMonitor *energyMonitor() override
    {
        return energyMon_.get();
    }

    void writeEnergyReport(const std::string &path) override;

    /**
     * Write the merged request + chip Chrome trace (requires
     * enableRequestTracing()).
     */
    void writeRequestTrace(const std::string &path);

    /**
     * Export the device's chip registry plus serving gauges (latency,
     * goodput, and — when the run generated — tokens/s, TTFT/ITL
     * tails, KV-cache occupancy) from the most recent serve().
     */
    void writePrometheus(std::ostream &os) override;

  private:
    Device &device_;
    serve::ServingConfig config_;
    serve::Scheduler scheduler_;
    std::vector<serve::Request> pending_;
    std::uint64_t nextId_ = 1;
    serve::ServingReport last_;
    bool served_ = false;
    std::unique_ptr<obs::SloMonitor> sloMon_;
    std::unique_ptr<obs::RequestTracer> reqTracer_;
    std::unique_ptr<obs::EnergyMonitor> energyMon_;
};

/**
 * Data-parallel serving across a fleet of devices — the multi-card
 * deployment facade. Owns N identically configured Devices and a
 * serve::Fleet that routes one submission stream across them:
 *
 *   FleetServer fleet({.devices = 4,
 *                      .routing =
 *                          serve::RoutingPolicy::LeastOutstanding,
 *                      .serving = {.batching = {.maxBatch = 8}}});
 *   fleet.submit(serve::poissonTrace("resnet50", 2000, 512, seed));
 *   serve::FleetReport report = fleet.serve();
 *
 * A size-1 fleet reproduces Server::serve() bit-for-bit.
 */
class FleetServer : public ServingFrontend
{
  public:
    /** Open @p config.devices devices of @p chip and front them. */
    explicit FleetServer(serve::FleetConfig config = {},
                         const DtuConfig &chip = dtu2Config());

    /** Submit one request described by @p spec (routed at serve()
     *  time); returns its id. */
    std::uint64_t submit(const serve::RequestSpec &spec) override;

    /**
     * @deprecated Positional one-shot submit, kept for source
     * compatibility; use submit(RequestSpec) instead.
     */
    std::uint64_t submit(const std::string &model, Tick arrival,
                         Tick deadline = 0);

    /** Submit a whole arrival trace (ids are reassigned). */
    void submit(const std::vector<serve::Request> &trace) override;

    /** Requests submitted and not yet served. */
    std::size_t pending() const override { return pending_.size(); }

    /**
     * Drain everything submitted so far across the fleet and return
     * the full per-device report (also retained; see lastReport()).
     */
    const serve::FleetReport &serveFleet();

    /** ServingFrontend view of serveFleet(): the fleet aggregate. */
    const serve::ServingReport &serve() override
    {
        return serveFleet().fleet;
    }

    /** Report of the most recent serve(). */
    const serve::FleetReport &lastReport() const { return last_; }

    /** Devices in the fleet. */
    unsigned size() const
    {
        return static_cast<unsigned>(devices_.size());
    }

    /** Device @p i (tracing, faults, perf sampling, stats). */
    Device &device(unsigned i) { return *devices_[i]; }

    /** The routing/serving coordinator. */
    serve::Fleet &fleet() { return *fleet_; }

    const serve::FleetConfig &config() const { return config_; }

    /**
     * Attach one live SLO monitor fleet-wide: completions and drops
     * from every device feed it in global event order. Enabling
     * twice is a configuration error.
     */
    obs::SloMonitor &
    enableSloMonitor(obs::SloConfig config = {}) override;

    /** The attached monitor, or nullptr. */
    obs::SloMonitor *sloMonitor() override { return sloMon_.get(); }

    /**
     * Attach a request-lifecycle tracer fleet-wide: router choices,
     * per-device admission/batch/terminal spans, flow links into each
     * device's chip timeline, and the periodic fleet metric
     * time-series. Enabling twice is a configuration error; without
     * it serving is bit-for-bit unchanged.
     */
    obs::RequestTracer &
    enableRequestTracing(obs::RequestTraceConfig config = {}) override;

    /** The attached tracer, or nullptr. */
    obs::RequestTracer *requestTracer() override
    {
        return reqTracer_.get();
    }

    /**
     * Attach one energy monitor fleet-wide: every chip is watched
     * under its fleet index (each gets its PowerAuditTrail
     * installed), the fleet loop's metric samples carry power
     * telemetry, and the flight recorder (either enable order)
     * receives the CPME/LPME decision stream. Enabling twice is a
     * configuration error; without it serving is bit-for-bit
     * unchanged.
     */
    obs::EnergyMonitor &
    enableEnergyMonitor(obs::EnergyMonitorConfig config = {}) override;

    /** The attached energy monitor, or nullptr. */
    obs::EnergyMonitor *energyMonitor() override
    {
        return energyMon_.get();
    }

    void writeEnergyReport(const std::string &path) override;

    /**
     * Attach the SLO flight recorder: a bounded ring of recent
     * sampled request lifecycles and metric snapshots (fed by the
     * request tracer) that dumps a retrospective JSON incident report
     * the first time an SloMonitor burn-rate alert fires or an
     * installed fault injector reports a fault. Works with either
     * enable order relative to enableSloMonitor()/
     * enableRequestTracing(); fault injectors are (re)hooked at
     * serve() time so installFaults() can come later. Enabling twice
     * is a configuration error.
     */
    obs::FlightRecorder &
    enableFlightRecorder(obs::FlightRecorderConfig config = {});

    /** The attached recorder, or nullptr. */
    obs::FlightRecorder *flightRecorder() { return flightRec_.get(); }

    /**
     * Export the merged fleet Chrome trace — request lanes plus every
     * device's chip timeline on disjoint pids, flow arrows crossing
     * between them (requires enableRequestTracing()).
     */
    void exportFleetTrace(std::ostream &os);

    /** exportFleetTrace() into a file; fatal() on I/O failure. */
    void writeFleetTrace(const std::string &path);

    /**
     * Export the whole fleet in Prometheus text exposition format:
     * every device's chip registry under a "dtusim_dev<i>" prefix,
     * then fleet-aggregate and per-device serving gauges (labeled by
     * device) from the most recent serve().
     */
    void writePrometheus(std::ostream &os) override;

  private:
    serve::FleetConfig config_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unique_ptr<serve::Fleet> fleet_;
    std::vector<serve::Request> pending_;
    std::uint64_t nextId_ = 1;
    serve::FleetReport last_;
    bool served_ = false;
    std::unique_ptr<obs::SloMonitor> sloMon_;
    std::unique_ptr<obs::RequestTracer> reqTracer_;
    std::unique_ptr<obs::EnergyMonitor> energyMon_;
    std::unique_ptr<obs::FlightRecorder> flightRec_;

    /** Hook the SLO monitor's alert stream into the recorder once. */
    void wireFlightAlerts();
    bool flightAlertsWired_ = false;
};

} // namespace dtu

#endif // DTU_API_SERVER_HH
