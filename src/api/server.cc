#include "api/server.hh"

#include "sim/logging.hh"

namespace dtu
{

Server::Server(Device &device, serve::ServingConfig config)
    : device_(device), config_(config),
      scheduler_(device.chip(), device.resources(), config)
{}

std::uint64_t
Server::submit(const std::string &model, Tick arrival, Tick deadline)
{
    serve::Request r;
    r.id = nextId_++;
    r.model = model;
    r.arrival = arrival;
    r.deadline = deadline;
    pending_.push_back(std::move(r));
    return pending_.back().id;
}

void
Server::submit(const std::vector<serve::Request> &trace)
{
    pending_.reserve(pending_.size() + trace.size());
    for (serve::Request r : trace) {
        r.id = nextId_++;
        pending_.push_back(std::move(r));
    }
}

const serve::ServingReport &
Server::serve()
{
    last_ = scheduler_.serve(std::move(pending_));
    pending_.clear();
    return last_;
}

obs::SloMonitor &
Server::enableSloMonitor(obs::SloConfig config)
{
    fatalIf(sloMon_ != nullptr, "server already has an SLO monitor");
    sloMon_ = std::make_unique<obs::SloMonitor>(config);
    scheduler_.setSloMonitor(sloMon_.get());
    return *sloMon_;
}

} // namespace dtu
