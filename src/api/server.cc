#include "api/server.hh"

#include <cmath>
#include <fstream>

#include "obs/prometheus.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{

namespace
{

void
servingGauge(std::ostream &os, const std::string &metric,
             const std::string &help, double v)
{
    os << "# HELP " << metric << " " << help << "\n";
    os << "# TYPE " << metric << " gauge\n";
    os << metric << " " << obs::promSampleValue(v) << "\n";
}

/** Generation gauges under @p prefix, when the last run generated. */
void
writeGenerationGauges(std::ostream &os, const std::string &prefix,
                      const serve::ServingReport &r)
{
    if (!r.hasGeneration)
        return;
    const serve::GenerationReport &g = r.generation;
    servingGauge(os, prefix + "_tokens_per_second",
                 "emitted tokens per second of serving makespan",
                 g.tokensPerSecond);
    servingGauge(os, prefix + "_ttft_p99_ms",
                 "p99 time-to-first-token", g.ttftP99Ms);
    servingGauge(os, prefix + "_itl_p99_ms",
                 "p99 inter-token latency", g.itlP99Ms);
    servingGauge(os, prefix + "_kv_peak_occupancy",
                 "peak KV-cache page occupancy (0..1)",
                 g.kvPeakOccupancy);
    servingGauge(os, prefix + "_kv_pages_in_use",
                 "KV pages still held at end of run (0 == no leak)",
                 static_cast<double>(g.kvPagesInUseAtEnd));
}

} // namespace

Server::Server(Device &device, serve::ServingConfig config)
    : device_(device), config_(config),
      scheduler_(device.chip(), device.resources(), config)
{}

std::uint64_t
Server::submit(const serve::RequestSpec &spec)
{
    pending_.push_back(serve::makeRequest(spec, nextId_++));
    return pending_.back().id;
}

std::uint64_t
Server::submit(const std::string &model, Tick arrival, Tick deadline)
{
    return submit(serve::RequestSpec{model, {}, arrival, deadline, {}});
}

void
Server::submit(const std::vector<serve::Request> &trace)
{
    pending_.reserve(pending_.size() + trace.size());
    for (serve::Request r : trace) {
        r.id = nextId_++;
        pending_.push_back(std::move(r));
    }
}

const serve::ServingReport &
Server::serve()
{
    last_ = scheduler_.serve(std::move(pending_));
    pending_.clear();
    served_ = true;
    return last_;
}

obs::SloMonitor &
Server::enableSloMonitor(obs::SloConfig config)
{
    fatalIf(sloMon_ != nullptr, "server already has an SLO monitor");
    sloMon_ = std::make_unique<obs::SloMonitor>(config);
    scheduler_.setSloMonitor(sloMon_.get());
    return *sloMon_;
}

obs::RequestTracer &
Server::enableRequestTracing(obs::RequestTraceConfig config)
{
    fatalIf(reqTracer_ != nullptr,
            "server already has a request tracer");
    reqTracer_ = std::make_unique<obs::RequestTracer>(config);
    scheduler_.setRequestTracer(reqTracer_.get(), 0);
    return *reqTracer_;
}

obs::EnergyMonitor &
Server::enableEnergyMonitor(obs::EnergyMonitorConfig config)
{
    fatalIf(energyMon_ != nullptr,
            "server already has an energy monitor");
    energyMon_ = std::make_unique<obs::EnergyMonitor>(config);
    energyMon_->attach(0, device_.chip());
    scheduler_.setEnergyMonitor(energyMon_.get(), 0);
    return *energyMon_;
}

void
Server::writeEnergyReport(const std::string &path)
{
    fatalIf(energyMon_ == nullptr,
            "writeEnergyReport() needs enableEnergyMonitor()");
    std::ofstream file(path);
    fatalIf(!file, "cannot open energy report '", path, "'");
    energyMon_->writeJson(file);
    fatalIf(!file.good(), "error writing energy report '", path, "'");
}

void
Server::writeRequestTrace(const std::string &path)
{
    fatalIf(reqTracer_ == nullptr,
            "writeRequestTrace() needs enableRequestTracing()");
    reqTracer_->writeTrace({&device_.chip().tracer()}, path);
}

void
Server::writePrometheus(std::ostream &os)
{
    obs::writePrometheusText(device_.chip().stats(), os, "dtusim");
    if (!served_)
        return;
    const serve::ServingReport &r = last_;
    servingGauge(os, "dtusim_serve_submitted",
                 "requests the last serve submitted",
                 static_cast<double>(r.submitted));
    servingGauge(os, "dtusim_serve_requests",
                 "requests the last serve completed",
                 static_cast<double>(r.requests));
    servingGauge(os, "dtusim_serve_achieved_qps",
                 "sustained throughput", r.achievedQps);
    servingGauge(os, "dtusim_serve_goodput_qps",
                 "in-deadline throughput", r.goodputQps);
    servingGauge(os, "dtusim_serve_latency_p50_ms", "median latency",
                 r.p50Ms);
    servingGauge(os, "dtusim_serve_latency_p99_ms", "tail latency",
                 r.p99Ms);
    servingGauge(os, "dtusim_serve_availability",
                 "completed / submitted", r.availability);
    writeGenerationGauges(os, "dtusim_serve", r);
    if (energyMon_)
        energyMon_->writePrometheus(os);
}

FleetServer::FleetServer(serve::FleetConfig config,
                         const DtuConfig &chip)
    : config_(std::move(config))
{
    fatalIf(config_.devices == 0, "a fleet needs at least one device");
    std::vector<serve::Fleet::Member> members;
    for (unsigned i = 0; i < config_.devices; ++i) {
        devices_.push_back(std::make_unique<Device>(chip));
        members.push_back({&devices_.back()->chip(),
                           &devices_.back()->resources()});
    }
    fleet_ = std::make_unique<serve::Fleet>(std::move(members),
                                            config_);
}

std::uint64_t
FleetServer::submit(const serve::RequestSpec &spec)
{
    pending_.push_back(serve::makeRequest(spec, nextId_++));
    return pending_.back().id;
}

std::uint64_t
FleetServer::submit(const std::string &model, Tick arrival,
                    Tick deadline)
{
    return submit(serve::RequestSpec{model, {}, arrival, deadline, {}});
}

void
FleetServer::submit(const std::vector<serve::Request> &trace)
{
    pending_.reserve(pending_.size() + trace.size());
    for (serve::Request r : trace) {
        r.id = nextId_++;
        pending_.push_back(std::move(r));
    }
}

const serve::FleetReport &
FleetServer::serveFleet()
{
    // (Re)hook every installed fault injector into the recorder here
    // rather than at enableFlightRecorder() time, so installFaults()
    // may come in either order.
    if (flightRec_) {
        for (unsigned i = 0; i < size(); ++i) {
            FaultInjector *inj = devices_[i]->faults();
            if (!inj)
                continue;
            obs::FlightRecorder *rec = flightRec_.get();
            inj->onFault([rec, i](const InjectedFault &f) {
                rec->trigger("fault:" +
                                 std::string(faultKindName(f.kind)) +
                                 " dev" + std::to_string(i),
                             f.at);
            });
        }
    }
    last_ = fleet_->serve(std::move(pending_));
    pending_.clear();
    served_ = true;
    return last_;
}

obs::SloMonitor &
FleetServer::enableSloMonitor(obs::SloConfig config)
{
    fatalIf(sloMon_ != nullptr, "fleet already has an SLO monitor");
    sloMon_ = std::make_unique<obs::SloMonitor>(config);
    fleet_->setSloMonitor(sloMon_.get());
    wireFlightAlerts();
    return *sloMon_;
}

obs::RequestTracer &
FleetServer::enableRequestTracing(obs::RequestTraceConfig config)
{
    fatalIf(reqTracer_ != nullptr,
            "fleet already has a request tracer");
    reqTracer_ = std::make_unique<obs::RequestTracer>(config);
    fleet_->setRequestTracer(reqTracer_.get());
    if (flightRec_)
        reqTracer_->setFlightRecorder(flightRec_.get());
    return *reqTracer_;
}

obs::EnergyMonitor &
FleetServer::enableEnergyMonitor(obs::EnergyMonitorConfig config)
{
    fatalIf(energyMon_ != nullptr,
            "fleet already has an energy monitor");
    energyMon_ = std::make_unique<obs::EnergyMonitor>(config);
    for (unsigned i = 0; i < size(); ++i)
        energyMon_->attach(i, devices_[i]->chip());
    fleet_->setEnergyMonitor(energyMon_.get());
    if (flightRec_)
        energyMon_->setFlightRecorder(flightRec_.get());
    return *energyMon_;
}

void
FleetServer::writeEnergyReport(const std::string &path)
{
    fatalIf(energyMon_ == nullptr,
            "writeEnergyReport() needs enableEnergyMonitor()");
    std::ofstream file(path);
    fatalIf(!file, "cannot open energy report '", path, "'");
    energyMon_->writeJson(file);
    fatalIf(!file.good(), "error writing energy report '", path, "'");
}

obs::FlightRecorder &
FleetServer::enableFlightRecorder(obs::FlightRecorderConfig config)
{
    fatalIf(flightRec_ != nullptr,
            "fleet already has a flight recorder");
    flightRec_ = std::make_unique<obs::FlightRecorder>(config);
    if (reqTracer_)
        reqTracer_->setFlightRecorder(flightRec_.get());
    if (energyMon_)
        energyMon_->setFlightRecorder(flightRec_.get());
    wireFlightAlerts();
    return *flightRec_;
}

void
FleetServer::wireFlightAlerts()
{
    // The ISSUE's incident sources are SLO *burn-rate* alerts and
    // injected faults; p99 alerts still land in SloMonitor::alerts().
    if (!sloMon_ || !flightRec_ || flightAlertsWired_)
        return;
    flightAlertsWired_ = true;
    obs::FlightRecorder *rec = flightRec_.get();
    sloMon_->addAlertListener([rec](const obs::SloAlert &alert) {
        if (alert.kind == "slo_burn_rate")
            rec->trigger("slo:" + alert.kind, alert.at);
    });
}

void
FleetServer::exportFleetTrace(std::ostream &os)
{
    fatalIf(reqTracer_ == nullptr,
            "exportFleetTrace() needs enableRequestTracing()");
    std::vector<const Tracer *> chips;
    for (unsigned i = 0; i < size(); ++i)
        chips.push_back(&devices_[i]->chip().tracer());
    reqTracer_->exportTrace(chips, os);
}

void
FleetServer::writeFleetTrace(const std::string &path)
{
    fatalIf(reqTracer_ == nullptr,
            "writeFleetTrace() needs enableRequestTracing()");
    std::vector<const Tracer *> chips;
    for (unsigned i = 0; i < size(); ++i)
        chips.push_back(&devices_[i]->chip().tracer());
    reqTracer_->writeTrace(chips, path);
}

void
FleetServer::writePrometheus(std::ostream &os)
{
    for (unsigned i = 0; i < size(); ++i) {
        obs::writePrometheusText(devices_[i]->chip().stats(), os,
                                 "dtusim_dev" + std::to_string(i));
    }
    if (!served_)
        return;

    const serve::FleetReport &r = last_;
    servingGauge(os, "dtusim_fleet_devices", "devices in the fleet",
               static_cast<double>(r.devices));
    servingGauge(os, "dtusim_fleet_submitted",
               "requests the last serve submitted",
               static_cast<double>(r.fleet.submitted));
    servingGauge(os, "dtusim_fleet_requests",
               "requests the last serve completed",
               static_cast<double>(r.fleet.requests));
    servingGauge(os, "dtusim_fleet_achieved_qps",
               "fleet-wide sustained throughput",
               r.fleet.achievedQps);
    servingGauge(os, "dtusim_fleet_goodput_qps",
               "fleet-wide in-deadline throughput",
               r.fleet.goodputQps);
    servingGauge(os, "dtusim_fleet_latency_p50_ms",
               "fleet-wide median latency", r.fleet.p50Ms);
    servingGauge(os, "dtusim_fleet_latency_p99_ms",
               "fleet-wide tail latency", r.fleet.p99Ms);
    servingGauge(os, "dtusim_fleet_availability",
               "completed / submitted", r.fleet.availability);
    writeGenerationGauges(os, "dtusim_fleet", r.fleet);

    const struct
    {
        const char *metric;
        const char *help;
        double (*get)(const serve::DeviceReport &);
    } per_device[] = {
        {"dtusim_fleet_device_routed",
         "arrivals routed to the device",
         [](const serve::DeviceReport &d) {
             return static_cast<double>(d.routed);
         }},
        {"dtusim_fleet_device_requests",
         "requests the device completed",
         [](const serve::DeviceReport &d) {
             return static_cast<double>(d.report.requests);
         }},
        {"dtusim_fleet_device_peak_queue_depth",
         "highest arrival-queue depth the device saw",
         [](const serve::DeviceReport &d) {
             return static_cast<double>(d.peakQueueDepth);
         }},
        {"dtusim_fleet_device_weight_load_ms",
         "modeled PCIe weight-load time the device paid",
         [](const serve::DeviceReport &d) {
             return ticksToMilliSeconds(d.weightLoadTicks);
         }},
        {"dtusim_fleet_device_latency_p99_ms",
         "the device's tail latency",
         [](const serve::DeviceReport &d) { return d.report.p99Ms; }},
        {"dtusim_fleet_device_group_utilization",
         "time-weighted fraction of the device's groups leased",
         [](const serve::DeviceReport &d) {
             return d.report.groupUtilization;
         }},
    };
    for (const auto &g : per_device) {
        os << "# HELP " << g.metric << " " << g.help << "\n";
        os << "# TYPE " << g.metric << " gauge\n";
        for (const serve::DeviceReport &d : r.perDevice) {
            os << g.metric << "{device=\"" << d.device << "\"} "
               << obs::promSampleValue(g.get(d)) << "\n";
        }
    }

    // Interconnect traffic (dtusim_fabric_*) when the fleet fabric
    // is enabled: totals plus one labeled sample per link.
    if (const fabric::Fabric *fab = fleet_->fabricPtr()) {
        const fabric::FabricTotals t = fab->totals();
        servingGauge(os, "dtusim_fabric_collectives_total",
                     "all-reduce collectives the fabric carried",
                     static_cast<double>(t.collectives));
        servingGauge(os, "dtusim_fabric_collective_bytes_total",
                     "tensor bytes all-reduced across groups",
                     t.collectiveBytes);
        servingGauge(os, "dtusim_fabric_activation_sends_total",
                     "pipeline activation sends the fabric carried",
                     static_cast<double>(t.activationSends));
        servingGauge(os, "dtusim_fabric_activation_bytes_total",
                     "activation bytes streamed between stages",
                     t.activationBytes);
        servingGauge(os, "dtusim_fabric_weight_loads_total",
                     "weight loads routed over the host root complex",
                     static_cast<double>(t.weightLoads));
        servingGauge(os, "dtusim_fabric_weight_load_bytes_total",
                     "weight bytes the host root complex moved",
                     t.weightLoadBytes);

        const struct
        {
            const char *metric;
            const char *help;
            double (*get)(const fabric::LinkStats &);
        } per_link[] = {
            {"dtusim_fabric_link_bytes_total",
             "bytes the link carried",
             [](const fabric::LinkStats &l) { return l.bytes; }},
            {"dtusim_fabric_link_transfers_total",
             "transfers the link carried",
             [](const fabric::LinkStats &l) {
                 return static_cast<double>(l.transfers);
             }},
            {"dtusim_fabric_link_wait_ms",
             "time transfers queued behind earlier link traffic",
             [](const fabric::LinkStats &l) { return l.waitMs; }},
            {"dtusim_fabric_link_utilization",
             "busy fraction of the link's active horizon",
             [](const fabric::LinkStats &l) { return l.utilization; }},
        };
        const std::vector<fabric::LinkStats> links = fab->linkStats(0);
        for (const auto &g : per_link) {
            os << "# HELP " << g.metric << " " << g.help << "\n";
            os << "# TYPE " << g.metric << " gauge\n";
            for (const fabric::LinkStats &l : links) {
                os << g.metric << "{link=\""
                   << obs::promLabelEscape(l.name) << "\"} "
                   << obs::promSampleValue(g.get(l)) << "\n";
            }
        }
    }

    // The periodic fleet time-series (dtusim_fleet_queue_depth{...}
    // and friends) when request tracing sampled it.
    if (reqTracer_ && reqTracer_->metrics().latest())
        reqTracer_->metrics().writePrometheus(os);

    // Power & energy telemetry (dtusim_power_*, dtusim_energy_*).
    if (energyMon_)
        energyMon_->writePrometheus(os);
}

} // namespace dtu
