/**
 * @file
 * The host-side runtime API — dtusim's TopsRuntime (Fig. 11).
 *
 * Section V-B: "Similar to CUDA, the developer needs to allocate
 * device memory and launch the kernel to interact with accelerator
 * from the host CPU." This header provides that programming model on
 * top of the simulator:
 *
 *   Device device;                        // open the (simulated) i20
 *   DeviceBuffer in = device.malloc(n);   // L3 allocation
 *   auto stream = device.createStream(1); // optional<Stream>
 *   stream->memcpyH2D(in, bytes);         // PCIe transfer
 *   stream->launch(kernel, core);         // microkernel launch
 *   stream->run(plan);                    // compiled-model launch
 *   StreamEvent done = stream->record();  // async completion marker
 *   stream->synchronize();                // join the timeline
 *
 * Streams are backed by processing-group leases (the Fig. 7 resource
 * abstraction), so two streams with disjoint leases run concurrently
 * and in isolation, exactly like the multi-tenancy path. Events
 * (record()/wait()/query()) order work across streams without
 * blocking, the cudaEvent analogue in simulated time.
 */

#ifndef DTU_API_TOPS_RUNTIME_HH
#define DTU_API_TOPS_RUNTIME_HH

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compiler/plan.hh"
#include "isa/instruction.hh"
#include "runtime/executor.hh"
#include "soc/resource_manager.hh"

namespace dtu
{

class Device;
class Stream;

/** A device (L3) memory allocation. */
class DeviceBuffer
{
  public:
    DeviceBuffer() = default;

    Addr address() const { return address_; }
    std::uint64_t bytes() const { return bytes_; }
    bool valid() const { return bytes_ != 0; }

  private:
    friend class Device;
    Addr address_ = 0;
    std::uint64_t bytes_ = 0;
};

/**
 * A recorded point on a stream's timeline — the cudaEvent analogue
 * in simulated time. Record one on a stream, then make another
 * stream wait() on it (cross-stream ordering) or query() it against
 * a simulated timestamp without blocking. (Named StreamEvent to stay
 * clear of the sim kernel's scheduling Event.)
 */
class StreamEvent
{
  public:
    StreamEvent() = default;

    /** True once Stream::record() filled this event. */
    bool recorded() const { return recorded_; }

    /** Completion time of the work that preceded record(). */
    Tick tick() const { return tick_; }

    /** Non-blocking: has the event completed by simulated @p at? */
    bool query(Tick at) const { return recorded_ && at >= tick_; }

  private:
    friend class Stream;
    Tick tick_ = 0;
    bool recorded_ = false;
};

/**
 * An in-order execution queue bound to a processing-group lease.
 * Operations enqueue at the stream's cursor and complete in order;
 * synchronize() returns the completion time.
 */
class Stream
{
  public:
    Stream(Stream &&other) noexcept;
    /**
     * Move-assignment releases the destination's own lease (if any)
     * back to the device before adopting the source's, so assigning
     * over a live stream cannot strand processing groups.
     */
    Stream &operator=(Stream &&other) noexcept;
    ~Stream();

    /** Host-to-device copy into @p dst (PCIe -> L3). */
    Stream &memcpyH2D(const DeviceBuffer &dst, std::uint64_t bytes);

    /** Device-to-host copy from @p src (L3 -> PCIe). */
    Stream &memcpyD2H(const DeviceBuffer &src, std::uint64_t bytes);

    /**
     * Launch a microkernel on core @p core_index of the lease (the
     * low-level DSL path). The kernel executes functionally.
     */
    Stream &launch(const Kernel &kernel, unsigned core_index = 0);

    /**
     * Launch a compiled model (the graph-compiler path), optionally
     * with explicit runtime options, e.g. {.trace = true,
     * .timeline = true} to record the per-operator profile and emit
     * timeline events (see Device::writeTimeline).
     * @return the run's result (also retained; see lastRunResult()).
     */
    const ExecResult &run(const ExecutionPlan &plan,
                          const ExecOptions &options = {});

    /**
     * Record an event at the stream's current cursor: it completes
     * exactly when all work enqueued so far completes.
     */
    StreamEvent record() const;

    /**
     * Make subsequent work on this stream start no earlier than
     * @p event's completion (cross-stream dependency).
     */
    Stream &wait(const StreamEvent &event);

    /**
     * Non-blocking completion check: true when everything enqueued
     * so far has completed by simulated time @p at.
     */
    bool query(Tick at) const { return at >= cursor_; }

    /** Block until everything enqueued so far has completed. */
    Tick synchronize();

    /** Current stream cursor (simulated time of the last op). */
    Tick cursor() const { return cursor_; }

    /** The leased group ids backing this stream. */
    const std::vector<unsigned> &groups() const { return groups_; }

    /**
     * Result of the most recent run() on this stream — a thin alias
     * for the reference the last run() call returned.
     */
    const ExecResult &lastRunResult() const { return lastRun_; }

  private:
    friend class Device;
    Stream(Device &device, int tenant_id, std::vector<unsigned> groups);

    /** Return the lease to the device (idempotent). */
    void releaseLease();

    Device *device_ = nullptr;
    int tenantId_ = -1;
    std::vector<unsigned> groups_;
    Tick cursor_ = 0;
    ExecResult lastRun_;
    int nextKernelId_ = 1'000'000; // avoid model kernel-id collisions
};

/** The device handle: owns the simulated chip and its leases. */
class Device
{
  public:
    /** Open a device with the given configuration (default: i20). */
    explicit Device(DtuConfig config = dtu2Config());

    /** Device properties (the cudaGetDeviceProperties analogue). */
    const DtuConfig &properties() const { return dtu_.config(); }

    /** Allocate @p bytes of device (L3) memory. */
    DeviceBuffer malloc(std::uint64_t bytes);

    /** Release a buffer. */
    void free(DeviceBuffer &buffer);

    /** Bytes currently allocated on the device. */
    std::uint64_t bytesAllocated() const { return allocated_; }

    /**
     * Create a stream backed by @p groups processing groups
     * (1..groupsPerCluster, co-located in one cluster).
     * @return the stream, or std::nullopt when no cluster has that
     *         much free capacity — capacity exhaustion is an
     *         expected serving-time condition, not a fatal error.
     *         (Requesting 0 or more than groupsPerCluster groups is
     *         still a FatalError: that is a programming mistake.)
     */
    std::optional<Stream> createStream(unsigned groups = 1);

    /** The lease book-keeper backing createStream (accounting). */
    ResourceManager &resources() { return manager_; }

    /** Total energy drawn by the device so far. */
    double joules() { return dtu_.energy().joules(); }

    //
    // Observability (see sim/tracer.hh and the README's
    // "Observability" section).
    //

    /** The device's timeline tracer. */
    Tracer &tracer() { return dtu_.tracer(); }

    /** Start recording timeline events from every engine. */
    void startTimeline() { dtu_.tracer().setEnabled(true); }

    /** Stop recording (already-recorded events are kept). */
    void stopTimeline() { dtu_.tracer().setEnabled(false); }

    /**
     * Write everything recorded so far as Chrome trace-event JSON,
     * loadable in Perfetto (https://ui.perfetto.dev).
     */
    void writeTimeline(const std::string &path)
    {
        dtu_.tracer().writeChromeTrace(path);
    }

    /** Dump the device's full stat registry as JSON. */
    void dumpStatsJson(std::ostream &os) { dtu_.stats().dumpJson(os); }

    /**
     * Install the PMU-style performance sampler on the chip (once):
     * every @p period ticks the monitor snapshots the key hardware
     * counters into in-memory time series and mirrors them onto the
     * timeline as "pmu.*" counter tracks (see obs/perf_monitor.hh).
     * Strictly opt-in; timing results are unchanged.
     */
    obs::PerfMonitor &enablePerfSampling(Tick period);

    /** The installed sampler, or nullptr. */
    obs::PerfMonitor *perfMonitor() { return dtu_.perfMonitor(); }

    /**
     * Export every device stat in Prometheus text exposition format
     * (version 0.0.4): scalars as gauges, histograms with cumulative
     * le-buckets (see obs/prometheus.hh).
     */
    void writePrometheus(std::ostream &os);

    //
    // Fault injection (see sim/fault.hh and the README's "Fault
    // tolerance" section). Strictly opt-in: a device without
    // installFaults() behaves bit-for-bit like one built before the
    // subsystem existed.
    //

    /** Install a seeded fault injector on the chip (once). */
    FaultInjector &installFaults(const FaultConfig &config)
    {
        return dtu_.installFaults(config);
    }

    /** The installed injector, or nullptr. */
    FaultInjector *faults() { return dtu_.faults(); }

    /** Direct access for advanced use (profiling, stats). */
    Dtu &chip() { return dtu_; }

  private:
    friend class Stream;
    Dtu dtu_;
    ResourceManager manager_;
    std::uint64_t allocated_ = 0;
    Addr nextAddress_ = 0x1000'0000;
    int nextTenant_ = 0;
};

} // namespace dtu

#endif // DTU_API_TOPS_RUNTIME_HH
