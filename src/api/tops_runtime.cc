#include "api/tops_runtime.hh"

#include "sim/logging.hh"

namespace dtu
{

Device::Device(DtuConfig config)
    : dtu_(config), manager_(dtu_)
{}

DeviceBuffer
Device::malloc(std::uint64_t bytes)
{
    fatalIf(bytes == 0, "device malloc of zero bytes");
    fatalIf(allocated_ + bytes > dtu_.config().l3Bytes,
            "device out of memory: ", allocated_, " + ", bytes, " > ",
            dtu_.config().l3Bytes);
    DeviceBuffer buffer;
    buffer.address_ = nextAddress_;
    buffer.bytes_ = bytes;
    nextAddress_ += bytes;
    allocated_ += bytes;
    return buffer;
}

void
Device::free(DeviceBuffer &buffer)
{
    fatalIf(buffer.bytes_ > allocated_, "double free or corruption");
    allocated_ -= buffer.bytes_;
    buffer = DeviceBuffer{};
}

Stream
Device::createStream(unsigned groups)
{
    int tenant = nextTenant_++;
    auto lease = manager_.allocate(tenant, groups);
    fatalIf(!lease.has_value(),
            "no cluster has ", groups, " free processing groups");
    return Stream(*this, tenant, lease->groups);
}

Stream::Stream(Device &device, int tenant_id, std::vector<unsigned> groups)
    : device_(&device), tenantId_(tenant_id), groups_(std::move(groups))
{}

Stream::~Stream()
{
    if (device_ && tenantId_ >= 0) {
        // Return the lease; moved-from streams skip this.
        device_->manager_.release(tenantId_);
    }
}

Stream &
Stream::memcpyH2D(const DeviceBuffer &dst, std::uint64_t bytes)
{
    fatalIf(!dst.valid(), "memcpyH2D into an invalid buffer");
    fatalIf(bytes > dst.bytes(), "memcpyH2D overflows the buffer");
    DmaDescriptor desc;
    desc.src = MemLevel::Host;
    desc.dst = MemLevel::L3;
    desc.dstAddr = dst.address();
    desc.bytes = bytes;
    cursor_ = device_->dtu_.group(groups_[0])
                  .dma()
                  .submitAt(cursor_, desc)
                  .done;
    return *this;
}

Stream &
Stream::memcpyD2H(const DeviceBuffer &src, std::uint64_t bytes)
{
    fatalIf(!src.valid(), "memcpyD2H from an invalid buffer");
    fatalIf(bytes > src.bytes(), "memcpyD2H overflows the buffer");
    DmaDescriptor desc;
    desc.src = MemLevel::L3;
    desc.dst = MemLevel::Host;
    desc.srcAddr = src.address();
    desc.bytes = bytes;
    cursor_ = device_->dtu_.group(groups_[0])
                  .dma()
                  .submitAt(cursor_, desc)
                  .done;
    return *this;
}

Stream &
Stream::launch(const Kernel &kernel, unsigned core_index)
{
    unsigned per_group = device_->dtu_.config().coresPerGroup;
    fatalIf(core_index >= groups_.size() * per_group,
            "core index ", core_index, " outside this stream's lease");
    unsigned gid = groups_[core_index / per_group];
    ComputeCore &core =
        device_->dtu_.group(gid).core(core_index % per_group);
    RunResult result = core.run(kernel, nextKernelId_++, cursor_);
    cursor_ = result.endTick;
    return *this;
}

Stream &
Stream::run(const ExecutionPlan &plan)
{
    return run(plan, ExecOptions{});
}

Stream &
Stream::run(const ExecutionPlan &plan, const ExecOptions &options)
{
    Executor executor(device_->dtu_, groups_, options);
    lastRun_ = executor.run(plan, cursor_);
    cursor_ = lastRun_.end;
    return *this;
}

Tick
Stream::synchronize()
{
    return cursor_;
}

} // namespace dtu
