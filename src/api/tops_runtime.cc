#include "api/tops_runtime.hh"

#include <algorithm>

#include "obs/perf_monitor.hh"
#include "obs/prometheus.hh"
#include "sim/logging.hh"

namespace dtu
{

Device::Device(DtuConfig config)
    : dtu_(config), manager_(dtu_)
{}

DeviceBuffer
Device::malloc(std::uint64_t bytes)
{
    fatalIf(bytes == 0, "device malloc of zero bytes");
    fatalIf(allocated_ + bytes > dtu_.config().l3Bytes,
            "device out of memory: ", allocated_, " + ", bytes, " > ",
            dtu_.config().l3Bytes);
    DeviceBuffer buffer;
    buffer.address_ = nextAddress_;
    buffer.bytes_ = bytes;
    nextAddress_ += bytes;
    allocated_ += bytes;
    return buffer;
}

void
Device::free(DeviceBuffer &buffer)
{
    fatalIf(buffer.bytes_ > allocated_, "double free or corruption");
    allocated_ -= buffer.bytes_;
    buffer = DeviceBuffer{};
}

obs::PerfMonitor &
Device::enablePerfSampling(Tick period)
{
    return dtu_.enablePerfSampling(period);
}

void
Device::writePrometheus(std::ostream &os)
{
    obs::writePrometheusText(dtu_.stats(), os);
}

std::optional<Stream>
Device::createStream(unsigned groups)
{
    auto lease = manager_.allocate(nextTenant_, groups);
    if (!lease.has_value())
        return std::nullopt;
    return Stream(*this, nextTenant_++, lease->groups);
}

Stream::Stream(Device &device, int tenant_id, std::vector<unsigned> groups)
    : device_(&device), tenantId_(tenant_id), groups_(std::move(groups))
{}

Stream::Stream(Stream &&other) noexcept
{
    *this = std::move(other);
}

Stream &
Stream::operator=(Stream &&other) noexcept
{
    if (this == &other)
        return *this;
    releaseLease(); // do not strand the destination's groups
    device_ = other.device_;
    tenantId_ = other.tenantId_;
    groups_ = std::move(other.groups_);
    cursor_ = other.cursor_;
    lastRun_ = std::move(other.lastRun_);
    nextKernelId_ = other.nextKernelId_;
    other.device_ = nullptr; // moved-from: no lease to release
    other.tenantId_ = -1;
    return *this;
}

Stream::~Stream()
{
    releaseLease();
}

void
Stream::releaseLease()
{
    if (device_ && tenantId_ >= 0) {
        // Return the lease; moved-from streams skip this.
        device_->manager_.release(tenantId_);
        device_ = nullptr;
        tenantId_ = -1;
    }
}

Stream &
Stream::memcpyH2D(const DeviceBuffer &dst, std::uint64_t bytes)
{
    fatalIf(!dst.valid(), "memcpyH2D into an invalid buffer");
    fatalIf(bytes > dst.bytes(), "memcpyH2D overflows the buffer");
    DmaDescriptor desc;
    desc.src = MemLevel::Host;
    desc.dst = MemLevel::L3;
    desc.dstAddr = dst.address();
    desc.bytes = bytes;
    cursor_ = device_->dtu_.group(groups_[0])
                  .dma()
                  .submitAt(cursor_, desc)
                  .done;
    return *this;
}

Stream &
Stream::memcpyD2H(const DeviceBuffer &src, std::uint64_t bytes)
{
    fatalIf(!src.valid(), "memcpyD2H from an invalid buffer");
    fatalIf(bytes > src.bytes(), "memcpyD2H overflows the buffer");
    DmaDescriptor desc;
    desc.src = MemLevel::L3;
    desc.dst = MemLevel::Host;
    desc.srcAddr = src.address();
    desc.bytes = bytes;
    cursor_ = device_->dtu_.group(groups_[0])
                  .dma()
                  .submitAt(cursor_, desc)
                  .done;
    return *this;
}

Stream &
Stream::launch(const Kernel &kernel, unsigned core_index)
{
    unsigned per_group = device_->dtu_.config().coresPerGroup;
    fatalIf(core_index >= groups_.size() * per_group,
            "core index ", core_index, " outside this stream's lease");
    unsigned gid = groups_[core_index / per_group];
    ComputeCore &core =
        device_->dtu_.group(gid).core(core_index % per_group);
    RunResult result = core.run(kernel, nextKernelId_++, cursor_);
    cursor_ = result.endTick;
    return *this;
}

const ExecResult &
Stream::run(const ExecutionPlan &plan, const ExecOptions &options)
{
    Executor executor(device_->dtu_, groups_, options);
    lastRun_ = executor.run(plan, cursor_);
    cursor_ = lastRun_.end;
    return lastRun_;
}

StreamEvent
Stream::record() const
{
    StreamEvent event;
    event.tick_ = cursor_;
    event.recorded_ = true;
    return event;
}

Stream &
Stream::wait(const StreamEvent &event)
{
    fatalIf(!event.recorded(), "waiting on an unrecorded event");
    cursor_ = std::max(cursor_, event.tick());
    return *this;
}

Tick
Stream::synchronize()
{
    return cursor_;
}

} // namespace dtu
