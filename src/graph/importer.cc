#include "graph/importer.hh"

#include <map>
#include <sstream>

#include "sim/logging.hh"

namespace dtu
{

namespace
{

/** Parse "1x3x224x224" into a Shape. */
Shape
parseShape(const std::string &text)
{
    std::vector<std::int64_t> dims;
    std::string token;
    std::istringstream is(text);
    while (std::getline(is, token, 'x')) {
        fatalIf(token.empty(), "importer: empty dimension in '", text,
                "'");
        dims.push_back(std::stoll(token));
    }
    return Shape(dims);
}

/** Operator keyword -> OpKind (with relu/gelu sugar via Activation). */
OpKind
parseKind(const std::string &kw)
{
    static const std::map<std::string, OpKind> kinds = {
        {"conv2d", OpKind::Conv2d},   {"dwconv2d", OpKind::DWConv2d},
        {"matmul", OpKind::MatMul},   {"linear", OpKind::Linear},
        {"maxpool", OpKind::MaxPool}, {"avgpool", OpKind::AvgPool},
        {"gap", OpKind::GlobalAvgPool},
        {"activation", OpKind::Activation},
        {"batchnorm", OpKind::BatchNorm},
        {"layernorm", OpKind::LayerNorm},
        {"add", OpKind::Add},         {"mul", OpKind::Mul},
        {"concat", OpKind::Concat},   {"softmax", OpKind::Softmax},
        {"attention", OpKind::Attention},
        {"embedding", OpKind::Embedding},
        {"upsample", OpKind::Upsample},
        {"pixelshuffle", OpKind::PixelShuffle},
        {"transpose", OpKind::Transpose},
        {"reshape", OpKind::Reshape}, {"slice", OpKind::Slice},
        {"pad", OpKind::Pad},
        // sugar
        {"relu", OpKind::Activation}, {"gelu", OpKind::Activation},
        {"sigmoid", OpKind::Activation},
        {"tanh", OpKind::Activation}, {"swish", OpKind::Activation},
    };
    auto it = kinds.find(kw);
    fatalIf(it == kinds.end(), "importer: unknown operator '", kw, "'");
    return it->second;
}

void
applyActivationSugar(const std::string &kw, OpAttrs &attrs)
{
    if (kw == "relu") {
        attrs.cheapActivation = true;
    } else if (kw == "gelu") {
        attrs.func = SpuFunc::Gelu;
    } else if (kw == "sigmoid") {
        attrs.func = SpuFunc::Sigmoid;
    } else if (kw == "tanh") {
        attrs.func = SpuFunc::Tanh;
    } else if (kw == "swish") {
        attrs.func = SpuFunc::Swish;
    }
}

void
applyAttr(OpAttrs &attrs, const std::string &key,
          const std::string &value, int line_no)
{
    auto as_int = [&] { return std::stoi(value); };
    if (key == "k") {
        attrs.kernelH = attrs.kernelW = as_int();
    } else if (key == "kh") {
        attrs.kernelH = as_int();
    } else if (key == "kw") {
        attrs.kernelW = as_int();
    } else if (key == "s") {
        attrs.strideH = attrs.strideW = as_int();
    } else if (key == "sh") {
        attrs.strideH = as_int();
    } else if (key == "sw") {
        attrs.strideW = as_int();
    } else if (key == "p") {
        attrs.padH = attrs.padW = as_int();
    } else if (key == "ph") {
        attrs.padH = as_int();
    } else if (key == "pw") {
        attrs.padW = as_int();
    } else if (key == "g") {
        attrs.groups = as_int();
    } else if (key == "oc") {
        attrs.outChannels = as_int();
    } else if (key == "of") {
        attrs.outFeatures = as_int();
    } else if (key == "axis") {
        attrs.axis = as_int();
    } else if (key == "factor") {
        attrs.factor = as_int();
    } else if (key == "heads") {
        attrs.heads = as_int();
    } else if (key == "vocab") {
        attrs.vocab = std::stoll(value);
    } else if (key == "len") {
        attrs.sliceLen = std::stoll(value);
    } else if (key == "density") {
        attrs.inputDensity = std::stod(value);
    } else if (key == "shape") {
        attrs.targetShape = parseShape(value).dims();
    } else if (key == "func") {
        if (value == "relu") {
            attrs.cheapActivation = true;
        } else {
            bool found = false;
            for (int f = 0; f < numSpuFuncs; ++f) {
                if (spuFuncName(static_cast<SpuFunc>(f)) == value) {
                    attrs.func = static_cast<SpuFunc>(f);
                    found = true;
                }
            }
            fatalIf(!found, "importer: unknown activation '", value,
                    "' on line ", line_no);
        }
    } else {
        fatal("importer: unknown attribute '", key, "' on line ",
              line_no);
    }
}

} // namespace

Graph
importGraphText(std::istream &in)
{
    Graph graph("imported");
    std::map<std::string, int> names;
    std::string line;
    int line_no = 0;
    bool have_graph = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream is(line);
        std::string kw;
        if (!(is >> kw))
            continue;

        if (kw == "graph") {
            std::string name;
            fatalIf(!(is >> name), "importer: 'graph' needs a name on "
                                   "line ",
                    line_no);
            graph = Graph(name);
            names.clear();
            have_graph = true;
            continue;
        }
        fatalIf(!have_graph,
                "importer: file must start with a 'graph' line");

        if (kw == "input") {
            std::string name, shape;
            fatalIf(!(is >> name >> shape),
                    "importer: 'input <name> <shape>' on line ", line_no);
            names[name] = graph.addInput(name, parseShape(shape));
            continue;
        }
        if (kw == "output") {
            std::string name;
            fatalIf(!(is >> name), "importer: 'output <name>' on line ",
                    line_no);
            auto it = names.find(name);
            fatalIf(it == names.end(), "importer: unknown tensor '",
                    name, "' on line ", line_no);
            graph.markOutput(it->second);
            continue;
        }

        // Operator line: <kind> <name> <inputs> [attrs].
        OpKind kind = parseKind(kw);
        std::string name, inputs_csv;
        fatalIf(!(is >> name >> inputs_csv),
                "importer: '", kw, " <name> <inputs>' on line ", line_no);
        std::vector<int> inputs;
        {
            std::istringstream csv(inputs_csv);
            std::string input;
            while (std::getline(csv, input, ',')) {
                auto it = names.find(input);
                fatalIf(it == names.end(), "importer: unknown tensor '",
                        input, "' on line ", line_no);
                inputs.push_back(it->second);
            }
        }
        OpAttrs attrs;
        applyActivationSugar(kw, attrs);
        std::string attr;
        while (is >> attr) {
            auto eq = attr.find('=');
            fatalIf(eq == std::string::npos,
                    "importer: attribute '", attr,
                    "' must be key=value on line ", line_no);
            applyAttr(attrs, attr.substr(0, eq), attr.substr(eq + 1),
                      line_no);
        }
        fatalIf(names.count(name) != 0, "importer: duplicate tensor '",
                name, "' on line ", line_no);
        names[name] = graph.add(kind, name, std::move(inputs), attrs);
    }
    graph.validate();
    return graph;
}

Graph
importGraphText(const std::string &text)
{
    std::istringstream is(text);
    return importGraphText(is);
}

std::string
exportGraphText(const Graph &graph)
{
    std::ostringstream os;
    os << "graph " << graph.name() << "\n";
    for (const Node &node : graph.nodes()) {
        if (node.kind == OpKind::Input) {
            os << "input " << node.name << " ";
            for (std::size_t i = 0; i < node.shape.rank(); ++i)
                os << (i ? "x" : "") << node.shape.dims()[i];
            os << "\n";
            continue;
        }
        os << opKindName(node.kind) << " " << node.name << " ";
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            os << (i ? "," : "")
               << graph.node(node.inputs[i]).name;
        }
        const OpAttrs &a = node.attrs;
        OpAttrs defaults;
        auto emit = [&](const char *key, int value, int fallback) {
            if (value != fallback)
                os << " " << key << "=" << value;
        };
        emit("kh", a.kernelH, defaults.kernelH);
        emit("kw", a.kernelW, defaults.kernelW);
        emit("sh", a.strideH, defaults.strideH);
        emit("sw", a.strideW, defaults.strideW);
        emit("ph", a.padH, defaults.padH);
        emit("pw", a.padW, defaults.padW);
        emit("g", a.groups, defaults.groups);
        emit("oc", a.outChannels, defaults.outChannels);
        emit("of", a.outFeatures, defaults.outFeatures);
        emit("axis", a.axis, defaults.axis);
        emit("factor", a.factor, defaults.factor);
        emit("heads", a.heads, defaults.heads);
        if (a.vocab != defaults.vocab)
            os << " vocab=" << a.vocab;
        if (a.sliceLen != defaults.sliceLen)
            os << " len=" << a.sliceLen;
        if (!a.targetShape.empty()) {
            os << " shape=";
            for (std::size_t i = 0; i < a.targetShape.size(); ++i)
                os << (i ? "x" : "") << a.targetShape[i];
        }
        if (node.kind == OpKind::Activation) {
            os << " func="
               << (a.cheapActivation ? "relu" : spuFuncName(a.func));
        }
        os << "\n";
    }
    for (int out : graph.outputs())
        os << "output " << graph.node(out).name << "\n";
    return os.str();
}

} // namespace dtu
