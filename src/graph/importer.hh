/**
 * @file
 * A text-format graph importer.
 *
 * TopsInference "leverages ONNX to import/convert DNN models
 * developed with various frameworks" (Section V-B). dtusim's
 * equivalent is a small line-oriented text format so users can run
 * custom networks without recompiling:
 *
 *     # comments and blank lines are ignored
 *     graph mynet
 *     input x 1x3x224x224
 *     conv2d c1 x k=7 s=2 p=3 oc=64
 *     batchnorm b1 c1
 *     relu r1 b1
 *     maxpool p1 r1 k=3 s=2 p=1
 *     linear fc p1 of=1000
 *     softmax sm fc axis=1
 *     output sm
 *
 * Each operator line is: <kind> <name> <input>[,<input>...] [attrs].
 * Attribute keys: k/kh/kw (kernel), s/sh/sw (stride), p/ph/pw (pad),
 * g (groups), oc (out channels), of (out features), axis, factor,
 * heads, vocab, len (slice), shape=AxBxC (reshape target),
 * func=<spu function or relu>.
 */

#ifndef DTU_GRAPH_IMPORTER_HH
#define DTU_GRAPH_IMPORTER_HH

#include <istream>
#include <string>

#include "graph/graph.hh"

namespace dtu
{

/** Parse a graph from the text format. Throws FatalError on errors. */
Graph importGraphText(std::istream &in);

/** Parse a graph from a string. */
Graph importGraphText(const std::string &text);

/** Serialize a graph back to the text format (round-trippable). */
std::string exportGraphText(const Graph &graph);

} // namespace dtu

#endif // DTU_GRAPH_IMPORTER_HH
