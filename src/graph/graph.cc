#include "graph/graph.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "input";
      case OpKind::Conv2d: return "conv2d";
      case OpKind::DWConv2d: return "dwconv2d";
      case OpKind::MatMul: return "matmul";
      case OpKind::Linear: return "linear";
      case OpKind::MaxPool: return "maxpool";
      case OpKind::AvgPool: return "avgpool";
      case OpKind::GlobalAvgPool: return "gap";
      case OpKind::Activation: return "activation";
      case OpKind::BatchNorm: return "batchnorm";
      case OpKind::LayerNorm: return "layernorm";
      case OpKind::Add: return "add";
      case OpKind::Mul: return "mul";
      case OpKind::Concat: return "concat";
      case OpKind::Softmax: return "softmax";
      case OpKind::Attention: return "attention";
      case OpKind::Embedding: return "embedding";
      case OpKind::Upsample: return "upsample";
      case OpKind::PixelShuffle: return "pixelshuffle";
      case OpKind::Transpose: return "transpose";
      case OpKind::Reshape: return "reshape";
      case OpKind::Slice: return "slice";
      case OpKind::Pad: return "pad";
      case OpKind::Output: return "output";
    }
    return "?";
}

bool
opIsMatrix(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv2d:
      case OpKind::DWConv2d:
      case OpKind::MatMul:
      case OpKind::Linear:
      case OpKind::Attention:
        return true;
      default:
        return false;
    }
}

bool
opIsElementwise(OpKind kind)
{
    switch (kind) {
      case OpKind::Activation:
      case OpKind::BatchNorm:
      case OpKind::LayerNorm:
      case OpKind::Add:
      case OpKind::Mul:
      case OpKind::Softmax:
      case OpKind::MaxPool:
      case OpKind::AvgPool:
      case OpKind::GlobalAvgPool:
        return true;
      default:
        return false;
    }
}

bool
opIsLayout(OpKind kind)
{
    switch (kind) {
      case OpKind::Concat:
      case OpKind::Upsample:
      case OpKind::PixelShuffle:
      case OpKind::Transpose:
      case OpKind::Reshape:
      case OpKind::Slice:
      case OpKind::Pad:
        return true;
      default:
        return false;
    }
}

int
Graph::addInput(const std::string &name, Shape shape)
{
    Node node;
    node.id = static_cast<int>(nodes_.size());
    node.kind = OpKind::Input;
    node.name = name;
    node.shape = std::move(shape);
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

int
Graph::add(OpKind kind, const std::string &name, std::vector<int> inputs,
           OpAttrs attrs)
{
    fatalIf(kind == OpKind::Input, "use addInput for inputs");
    for (int in : inputs) {
        fatalIf(in < 0 || in >= static_cast<int>(nodes_.size()),
                "node '", name, "' references undefined input ", in);
    }
    Node node;
    node.id = static_cast<int>(nodes_.size());
    node.kind = kind;
    node.name = name;
    node.inputs = std::move(inputs);
    node.attrs = attrs;
    infer(node);
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

void
Graph::markOutput(int id)
{
    fatalIf(id < 0 || id >= static_cast<int>(nodes_.size()),
            "output id out of range");
    outputs_.push_back(id);
}

namespace
{

std::int64_t
convOut(std::int64_t in, int kernel, int pad, int stride)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

void
Graph::infer(Node &node)
{
    auto in_shape = [&](std::size_t i) -> const Shape & {
        fatalIf(i >= node.inputs.size(), "node '", node.name,
                "' missing input ", i);
        return nodes_[static_cast<std::size_t>(node.inputs[i])].shape;
    };

    switch (node.kind) {
      case OpKind::Input:
        break;

      case OpKind::Conv2d:
      case OpKind::DWConv2d: {
        const Shape &x = in_shape(0); // [N, C, H, W]
        fatalIf(x.rank() != 4, "conv input must be NCHW, got ",
                x.toString());
        std::int64_t n = x.dim(0), c = x.dim(1);
        std::int64_t oh = convOut(x.dim(2), node.attrs.kernelH,
                                  node.attrs.padH, node.attrs.strideH);
        std::int64_t ow = convOut(x.dim(3), node.attrs.kernelW,
                                  node.attrs.padW, node.attrs.strideW);
        fatalIf(oh <= 0 || ow <= 0, "conv '", node.name,
                "' produces empty output");
        std::int64_t oc;
        std::int64_t groups;
        if (node.kind == OpKind::DWConv2d) {
            oc = c;
            groups = c;
        } else {
            oc = node.attrs.outChannels;
            groups = node.attrs.groups;
            fatalIf(oc <= 0, "conv '", node.name, "' needs outChannels");
            fatalIf(c % groups != 0, "conv '", node.name,
                    "' groups do not divide channels");
        }
        node.shape = Shape({n, oc, oh, ow});
        double k_elems = static_cast<double>(c / groups) *
                         node.attrs.kernelH * node.attrs.kernelW;
        node.macs = static_cast<double>(n * oc * oh * ow) * k_elems;
        node.weightElems = static_cast<double>(oc) * k_elems +
                           static_cast<double>(oc); // + bias
        break;
      }

      case OpKind::MatMul: {
        const Shape &a = in_shape(0);
        const Shape &b = in_shape(1);
        fatalIf(a.rank() < 2 || b.rank() < 2, "matmul needs rank>=2");
        std::int64_t k = a.dim(-1);
        fatalIf(b.dim(-2) != k, "matmul K mismatch: ", a.toString(),
                " x ", b.toString());
        auto dims = a.dims();
        dims.back() = b.dim(-1);
        node.shape = Shape(dims);
        double batch = 1.0;
        for (std::size_t i = 0; i + 2 < a.rank(); ++i)
            batch *= static_cast<double>(a.dims()[i]);
        node.macs = batch * static_cast<double>(a.dim(-2)) *
                    static_cast<double>(k) * static_cast<double>(b.dim(-1));
        break;
      }

      case OpKind::Linear: {
        const Shape &x = in_shape(0);
        std::int64_t k = x.dim(-1);
        std::int64_t n = node.attrs.outFeatures;
        fatalIf(n <= 0, "linear '", node.name, "' needs outFeatures");
        auto dims = x.dims();
        dims.back() = n;
        node.shape = Shape(dims);
        double rows = static_cast<double>(x.numel()) /
                      static_cast<double>(k);
        node.macs = rows * static_cast<double>(k) * static_cast<double>(n);
        node.weightElems =
            static_cast<double>(k) * n + static_cast<double>(n);
        break;
      }

      case OpKind::MaxPool:
      case OpKind::AvgPool: {
        const Shape &x = in_shape(0);
        fatalIf(x.rank() != 4, "pool input must be NCHW");
        std::int64_t oh = convOut(x.dim(2), node.attrs.kernelH,
                                  node.attrs.padH, node.attrs.strideH);
        std::int64_t ow = convOut(x.dim(3), node.attrs.kernelW,
                                  node.attrs.padW, node.attrs.strideW);
        node.shape = Shape({x.dim(0), x.dim(1), oh, ow});
        node.laneOps = static_cast<double>(node.shape.numel()) *
                       node.attrs.kernelH * node.attrs.kernelW;
        break;
      }

      case OpKind::GlobalAvgPool: {
        const Shape &x = in_shape(0);
        fatalIf(x.rank() != 4, "gap input must be NCHW");
        node.shape = Shape({x.dim(0), x.dim(1), 1, 1});
        node.laneOps = static_cast<double>(x.numel());
        break;
      }

      case OpKind::Activation: {
        node.shape = in_shape(0);
        // A transcendental costs several lane operations' worth of
        // SPU work (the LUT+Taylor pipeline); ReLU-family functions
        // are single vector-engine operations.
        node.laneOps = (node.attrs.cheapActivation ? 1.0 : 4.0) *
                       static_cast<double>(node.shape.numel());
        break;
      }

      case OpKind::BatchNorm: {
        node.shape = in_shape(0);
        node.laneOps = 2.0 * static_cast<double>(node.shape.numel());
        node.weightElems = 2.0 * static_cast<double>(node.shape.dim(1));
        break;
      }

      case OpKind::LayerNorm: {
        node.shape = in_shape(0);
        node.laneOps = 5.0 * static_cast<double>(node.shape.numel());
        node.weightElems = 2.0 * static_cast<double>(node.shape.dim(-1));
        break;
      }

      case OpKind::Add:
      case OpKind::Mul: {
        const Shape &a = in_shape(0);
        fatalIf(node.inputs.size() != 2, "binary op needs two inputs");
        fatalIf(in_shape(1) != a, "elementwise shape mismatch on '",
                node.name, "': ", a.toString(), " vs ",
                in_shape(1).toString());
        node.shape = a;
        node.laneOps = static_cast<double>(a.numel());
        break;
      }

      case OpKind::Concat: {
        fatalIf(node.inputs.empty(), "concat needs inputs");
        Shape out = in_shape(0);
        auto axis = static_cast<std::size_t>(node.attrs.axis);
        std::int64_t total = out.dims()[axis];
        for (std::size_t i = 1; i < node.inputs.size(); ++i) {
            const Shape &s = in_shape(i);
            fatalIf(s.rank() != out.rank(), "concat rank mismatch");
            total += s.dims()[axis];
        }
        node.shape = out.withDim(axis, total);
        break;
      }

      case OpKind::Softmax: {
        node.shape = in_shape(0);
        node.laneOps = 6.0 * static_cast<double>(node.shape.numel());
        break;
      }

      case OpKind::Attention: {
        // Input [B, S, H]; multi-head self-attention with output
        // projection. QKV and output projections are separate Linear
        // nodes in our builders; this node is scores + softmax +
        // context.
        const Shape &x = in_shape(0);
        fatalIf(x.rank() != 3, "attention input must be [B, S, H]");
        std::int64_t b = x.dim(0), s = x.dim(1), h = x.dim(2);
        node.shape = x;
        // Context length: the input's own sequence, or the KV-cache
        // depth for autoregressive decode steps (where S is 1 but
        // every past token's K/V participates).
        const std::int64_t kv = node.attrs.kvLen > 0
                                    ? node.attrs.kvLen + s
                                    : s;
        // scores: B*heads*S*KV*(H/heads); context: same again.
        node.macs = 2.0 * static_cast<double>(b) * s * kv * h;
        node.laneOps =
            6.0 * static_cast<double>(b) * node.attrs.heads * s * kv;
        if (node.attrs.kvLen > 0) {
            // The cached K and V tensors live in HBM and re-stream on
            // every decode step; charging them as weightElems routes
            // them through the executor's L3->L2 weight-fill path
            // (per-execution streaming, stalls visible as DMA wait)
            // rather than the L2-resident activation path.
            node.weightElems =
                2.0 * static_cast<double>(b) * node.attrs.kvLen * h;
        }
        break;
      }

      case OpKind::Embedding: {
        const Shape &ids = in_shape(0); // [B, S]
        fatalIf(node.attrs.outFeatures <= 0,
                "embedding needs outFeatures");
        auto dims = ids.dims();
        dims.push_back(node.attrs.outFeatures);
        node.shape = Shape(dims);
        node.weightElems = static_cast<double>(node.attrs.vocab) *
                           node.attrs.outFeatures;
        break;
      }

      case OpKind::Upsample: {
        const Shape &x = in_shape(0);
        fatalIf(x.rank() != 4, "upsample input must be NCHW");
        node.shape = Shape({x.dim(0), x.dim(1),
                            x.dim(2) * node.attrs.factor,
                            x.dim(3) * node.attrs.factor});
        node.laneOps = static_cast<double>(node.shape.numel());
        break;
      }

      case OpKind::PixelShuffle: {
        const Shape &x = in_shape(0);
        fatalIf(x.rank() != 4, "pixelshuffle input must be NCHW");
        std::int64_t r = node.attrs.factor;
        fatalIf(x.dim(1) % (r * r) != 0,
                "pixelshuffle channels not divisible by factor^2");
        node.shape = Shape({x.dim(0), x.dim(1) / (r * r), x.dim(2) * r,
                            x.dim(3) * r});
        break;
      }

      case OpKind::Transpose: {
        const Shape &x = in_shape(0);
        fatalIf(x.rank() < 2, "transpose needs rank >= 2");
        node.shape = x.transposed(x.rank() - 2, x.rank() - 1);
        break;
      }

      case OpKind::Reshape: {
        Shape target(node.attrs.targetShape);
        fatalIf(target.numel() != in_shape(0).numel(),
                "reshape numel mismatch on '", node.name, "'");
        node.shape = target;
        break;
      }

      case OpKind::Slice: {
        const Shape &x = in_shape(0);
        auto axis = static_cast<std::size_t>(node.attrs.axis);
        fatalIf(axis >= x.rank(), "slice axis out of range");
        fatalIf(node.attrs.sliceLen <= 0 ||
                    node.attrs.sliceLen > x.dims()[axis],
                "slice length invalid on '", node.name, "'");
        node.shape = x.withDim(axis, node.attrs.sliceLen);
        break;
      }

      case OpKind::Pad: {
        const Shape &x = in_shape(0);
        auto axis = static_cast<std::size_t>(node.attrs.axis);
        node.shape = x.withDim(
            axis, x.dims()[axis] + node.attrs.padH + node.attrs.padW);
        break;
      }

      case OpKind::Output:
        node.shape = in_shape(0);
        break;
    }
}

std::vector<std::vector<int>>
Graph::consumers() const
{
    std::vector<std::vector<int>> result(nodes_.size());
    for (const Node &node : nodes_) {
        for (int in : node.inputs)
            result[static_cast<std::size_t>(in)].push_back(node.id);
    }
    return result;
}

double
Graph::totalMacs() const
{
    double total = 0.0;
    for (const Node &node : nodes_)
        total += node.macs;
    return total;
}

double
Graph::totalWeightBytes(std::size_t element_bytes) const
{
    double total = 0.0;
    for (const Node &node : nodes_)
        total += node.weightElems * static_cast<double>(element_bytes);
    return total;
}

double
Graph::totalActivationBytes(std::size_t element_bytes) const
{
    double total = 0.0;
    for (const Node &node : nodes_)
        total += static_cast<double>(node.shape.numel()) *
                 static_cast<double>(element_bytes);
    return total;
}

double
Graph::matrixFlopsFraction() const
{
    double matrix = 0.0, total = 0.0;
    for (const Node &node : nodes_) {
        total += node.flops();
        if (opIsMatrix(node.kind))
            matrix += node.flops();
    }
    return total > 0.0 ? matrix / total : 0.0;
}

void
Graph::validate() const
{
    for (const Node &node : nodes_) {
        for (int in : node.inputs) {
            fatalIf(in < 0 || in >= node.id,
                    "graph '", name_, "' node '", node.name,
                    "' has a non-topological edge");
        }
        fatalIf(node.kind != OpKind::Input && node.inputs.empty(),
                "node '", node.name, "' has no inputs");
    }
    for (int out : outputs_) {
        fatalIf(out < 0 || out >= static_cast<int>(nodes_.size()),
                "invalid output id");
    }
}

} // namespace dtu
