/**
 * @file
 * The DNN graph intermediate representation.
 *
 * TopsInference imports ONNX graphs (Section V-B); our equivalent is
 * a small operator IR rich enough to express the 10 Table III
 * networks at layer granularity. Every node carries enough attributes
 * for shape inference and for exact FLOP / byte accounting — the
 * quantities that drive the accelerator timing model.
 */

#ifndef DTU_GRAPH_GRAPH_HH
#define DTU_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "tensor/shape.hh"

namespace dtu
{

/** Operator taxonomy. */
enum class OpKind : std::uint8_t
{
    Input,       ///< graph input placeholder
    Conv2d,      ///< dense convolution (NCHW)
    DWConv2d,    ///< depthwise convolution (groups == channels)
    MatMul,      ///< [M, K] x [K, N]
    Linear,      ///< fully connected layer over the last axis
    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Activation,  ///< elementwise transcendental (SPU)
    BatchNorm,
    LayerNorm,
    Add,         ///< elementwise add (residual)
    Mul,         ///< elementwise multiply (gating)
    Concat,
    Softmax,
    Attention,   ///< multi-head self-attention over [B, S, H]
    Embedding,   ///< table lookup (sparse, bandwidth-bound)
    Upsample,    ///< nearest/bilinear spatial upsampling
    PixelShuffle,///< depth-to-space (super-resolution upsampling)
    Transpose,   ///< layout transform (DMA work)
    Reshape,
    Slice,
    Pad,
    Output,
};

/** Printable op name. */
std::string opKindName(OpKind kind);

/** True for ops whose main work is matrix multiplication. */
bool opIsMatrix(OpKind kind);

/** True for elementwise/vector ops. */
bool opIsElementwise(OpKind kind);

/** True for ops that are pure data movement / layout manipulation. */
bool opIsLayout(OpKind kind);

/** Operator attributes (meaning depends on kind). */
struct OpAttrs
{
    int kernelH = 1, kernelW = 1;
    int strideH = 1, strideW = 1;
    int padH = 0, padW = 0;
    int groups = 1;
    int outChannels = 0;
    /** Linear/MatMul output features. */
    int outFeatures = 0;
    /** Activation function for Activation nodes. */
    SpuFunc func = SpuFunc::Tanh;
    /**
     * ReLU-family activation: runs on the vector engine (one lane op
     * per element) instead of the SPU's LUT+Taylor path.
     */
    bool cheapActivation = false;
    /** Concat/Softmax/Slice axis. */
    int axis = 1;
    /** Upsample / PixelShuffle scale factor. */
    int factor = 2;
    /** Attention heads. */
    int heads = 1;
    /**
     * Autoregressive decode: attention over a KV-cache of this many
     * past tokens instead of the input's own sequence. 0 keeps the
     * classic self-attention S x S shape. The cached keys/values are
     * HBM-resident activations that must stream in on every
     * execution, so they are charged like weights (weightElems), not
     * like L2-resident inputs.
     */
    std::int64_t kvLen = 0;
    /** Embedding table rows. */
    std::int64_t vocab = 0;
    /** Slice extent on `axis`. */
    std::int64_t sliceLen = 0;
    /** Target shape for Reshape. */
    std::vector<std::int64_t> targetShape;
    /** Nonzero density of this op's input (sparse embedding etc.). */
    double inputDensity = 1.0;
};

/** One operator node. */
struct Node
{
    int id = -1;
    OpKind kind = OpKind::Input;
    std::string name;
    std::vector<int> inputs;
    OpAttrs attrs;
    /** Inferred output shape. */
    Shape shape;

    /** Multiply-accumulate count (0 for non-matrix ops). */
    double macs = 0.0;
    /** Elementwise lane operations. */
    double laneOps = 0.0;
    /** Parameter element count (scale by dtype bytes for storage). */
    double weightElems = 0.0;

    /** Total FLOPs (2 per MAC plus lane ops). */
    double flops() const { return 2.0 * macs + laneOps; }
};

/** A DNN computation graph (a DAG in topological insertion order). */
class Graph
{
  public:
    explicit Graph(std::string name = "graph")
        : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Add a graph input of the given shape. @return node id. */
    int addInput(const std::string &name, Shape shape);

    /**
     * Add an operator node; output shape is inferred and FLOP/byte
     * accounting filled in.
     * @return node id.
     */
    int add(OpKind kind, const std::string &name, std::vector<int> inputs,
            OpAttrs attrs = {});

    /** Mark a node as a graph output. */
    void markOutput(int id);

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(int id) const { return nodes_.at(
        static_cast<std::size_t>(id)); }
    const std::vector<int> &outputs() const { return outputs_; }
    std::size_t size() const { return nodes_.size(); }

    /** Consumers of each node (built on demand). */
    std::vector<std::vector<int>> consumers() const;

    /** Total MACs across the graph. */
    double totalMacs() const;
    /** Total parameter bytes for @p element_bytes wide weights. */
    double totalWeightBytes(std::size_t element_bytes) const;
    /** Total activation bytes flowing between nodes. */
    double totalActivationBytes(std::size_t element_bytes) const;

    /**
     * Fraction of FLOPs in high-computational-density operators
     * (matrix convolution and multiplication) — the statistic the
     * paper's discussion section reports (~81% for image
     * classification DNNs).
     */
    double matrixFlopsFraction() const;

    /** Validate edges and shapes; throws FatalError on corruption. */
    void validate() const;

  private:
    /** Infer shape + accounting for a freshly added node. */
    void infer(Node &node);

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<int> outputs_;
};

} // namespace dtu

#endif // DTU_GRAPH_GRAPH_HH
