#include "core/icache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{

InstructionCache::InstructionCache(std::string name, EventQueue &queue,
                                   StatRegistry *stats, Hbm &hbm,
                                   std::uint64_t capacity, bool cache_mode)
    : SimObject(std::move(name), queue, stats), hbm_(hbm),
      capacity_(capacity), cacheMode_(cache_mode)
{
    if (stats) {
        hits_.init(*stats, this->name() + ".hits", "kernel fetch hits");
        misses_.init(*stats, this->name() + ".misses",
                     "kernel fetch misses");
        stallTicks_.init(*stats, this->name() + ".stall_ticks",
                         "ticks stalled on kernel code loads");
        prefetches_.init(*stats, this->name() + ".prefetches",
                         "kernel prefetches issued");
    }
}

Tick
InstructionCache::loadTime(Tick at, std::uint64_t bytes)
{
    // Kernel code streams from L3 through the code-load port.
    return hbm_.accessAt(at, /*addr=*/0x4000'0000, bytes);
}

void
InstructionCache::insert(int kernel_id, std::uint64_t bytes)
{
    if (bytes > capacity_)
        return; // oversized kernels stream; nothing is retained
    std::uint64_t keep = bytes;
    while (used_ + keep > capacity_ && !lru_.empty()) {
        int victim = lru_.back();
        lru_.pop_back();
        auto it = resident_.find(victim);
        used_ -= it->second.bytes;
        resident_.erase(it);
    }
    if (used_ + keep > capacity_)
        return; // kernel larger than the whole buffer: nothing retained
    lru_.push_front(kernel_id);
    resident_[kernel_id] = Entry{keep, lru_.begin()};
    used_ += keep;
}

bool
InstructionCache::resident(int kernel_id) const
{
    return resident_.count(kernel_id) != 0;
}

void
InstructionCache::prefetchAt(Tick at, int kernel_id, std::uint64_t bytes)
{
    if (resident(kernel_id) || inflight_.count(kernel_id))
        return;
    ++prefetches_;
    inflight_[kernel_id] = loadTime(at, std::min(bytes, capacity_));
    if (Tracer *tr = tracer(); tr && tr->enabled()) {
        tr->span(tr->trackFor(name()),
                 "prefetch kernel" + std::to_string(kernel_id),
                 "kernel-load", at, inflight_[kernel_id],
                 {{"bytes", static_cast<double>(bytes)}});
    }
}

Tick
InstructionCache::fetchAt(Tick at, int kernel_id, std::uint64_t bytes)
{
    if (cacheMode_) {
        auto it = resident_.find(kernel_id);
        if (it != resident_.end() && it->second.bytes >= std::min(
                                         bytes, capacity_)) {
            // Refresh LRU position.
            lru_.erase(it->second.lruIt);
            lru_.push_front(kernel_id);
            it->second.lruIt = lru_.begin();
            ++hits_;
            return at;
        }
    }
    // A pending prefetch absorbs part or all of the load latency.
    auto pending = inflight_.find(kernel_id);
    if (pending != inflight_.end()) {
        Tick ready = std::max(at, pending->second);
        inflight_.erase(pending);
        if (cacheMode_)
            insert(kernel_id, bytes);
        stallTicks_ += static_cast<double>(ready - at);
        ++hits_; // prefetch made it (at least partially) resident
        return ready;
    }
    ++misses_;
    // Execution can begin once the first buffer-full has landed.
    std::uint64_t head = std::min(bytes, capacity_);
    Tick ready = loadTime(at, head);
    stallTicks_ += static_cast<double>(ready - at);
    if (cacheMode_)
        insert(kernel_id, bytes);
    if (Tracer *tr = tracer(); tr && tr->enabled()) {
        tr->span(tr->trackFor(name()),
                 "load kernel" + std::to_string(kernel_id),
                 "kernel-load", at, ready,
                 {{"bytes", static_cast<double>(head)}});
    }
    return ready;
}

Tick
InstructionCache::refillStall(std::uint64_t bytes) const
{
    if (bytes <= capacity_)
        return 0;
    // The tail beyond the buffer streams in chunk by chunk during
    // execution; we charge its pure service time as stall, an upper
    // bound the prefetcher cannot hide.
    std::uint64_t tail = bytes - capacity_;
    double seconds = static_cast<double>(tail) /
                     (hbm_.totalBandwidth() / hbm_.numChannels());
    return secondsToTicks(seconds);
}

} // namespace dtu
