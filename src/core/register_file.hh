/**
 * @file
 * Compute-core register files.
 *
 * Each DTU 2.0 core carries (Section IV-A1):
 *  - a scalar register file,
 *  - 32 vector registers of 512 bits,
 *  - 2 matrix registers of 32 x 512 bits,
 *  - 1024 accumulation registers of 512 bits.
 *
 * Vector registers are physically banked; reading two operands from
 * the same bank in one VLIW packet stalls the pipeline for a cycle.
 * The software stack's register allocator avoids such conflicts
 * (Section V-B); the model exposes conflict detection so both the
 * penalty and the allocator's fix can be evaluated.
 */

#ifndef DTU_CORE_REGISTER_FILE_HH
#define DTU_CORE_REGISTER_FILE_HH

#include <array>
#include <vector>

#include "isa/instruction.hh"
#include "sim/logging.hh"

namespace dtu
{

/** Architectural register-file dimensions. */
struct RegFileGeometry
{
    unsigned scalarRegs = 64;
    unsigned vectorRegs = 32;
    unsigned vectorBanks = 4;
    unsigned matrixRegs = 2;
    unsigned matrixRows = 32;
    unsigned accRegs = 1024;
    /** Physical lane count of a 512-bit register at 8-bit grain. */
    unsigned maxLanes = 64;
};

/** Lanes a 512-bit register holds for a given element type. */
constexpr unsigned
vectorLanes(DType t)
{
    return static_cast<unsigned>(64 / dtypeBytes(t));
}

/** The register state of one compute core. */
class RegisterFile
{
  public:
    explicit RegisterFile(RegFileGeometry geometry = {});

    const RegFileGeometry &geometry() const { return geometry_; }

    //
    // Scalar registers
    //
    double sreg(int i) const;
    void setSreg(int i, double v);

    //
    // Vector registers (lane-addressed)
    //
    double vlane(int reg, unsigned lane) const;
    void setVlane(int reg, unsigned lane, double v);
    /** Whole-register access for the engines. */
    std::vector<double> vread(int reg, unsigned lanes) const;
    void vwrite(int reg, const std::vector<double> &lanes);

    //
    // Matrix registers
    //
    double melem(int reg, unsigned row, unsigned lane) const;
    void setMelem(int reg, unsigned row, unsigned lane, double v);
    /** Load one row from a lane vector. */
    void mloadRow(int reg, unsigned row, const std::vector<double> &lanes);

    //
    // Accumulation registers
    //
    double aclane(int reg, unsigned lane) const;
    void setAclane(int reg, unsigned lane, double v);
    void accZero(int reg);

    /** The physical bank a vector register lives in. */
    unsigned vectorBank(int reg) const
    {
        return static_cast<unsigned>(reg) % geometry_.vectorBanks;
    }

    /**
     * Extra stall cycles a VLIW packet pays to read its vector
     * operands: each bank delivers one operand per cycle, so k reads
     * from one bank cost k-1 stalls.
     */
    unsigned bankConflictStalls(const Packet &packet) const;

  private:
    void checkScalar(int i) const;
    void checkVector(int i) const;
    void checkMatrix(int i) const;
    void checkAcc(int i) const;

    RegFileGeometry geometry_;
    std::vector<double> scalars_;
    std::vector<std::vector<double>> vectors_;
    std::vector<std::vector<double>> matrices_; // [reg][row*maxLanes+lane]
    std::vector<std::vector<double>> accs_;
};

} // namespace dtu

#endif // DTU_CORE_REGISTER_FILE_HH
