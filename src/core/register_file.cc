#include "core/register_file.hh"

#include <algorithm>

namespace dtu
{

RegisterFile::RegisterFile(RegFileGeometry geometry)
    : geometry_(geometry),
      scalars_(geometry.scalarRegs, 0.0),
      vectors_(geometry.vectorRegs,
               std::vector<double>(geometry.maxLanes, 0.0)),
      matrices_(geometry.matrixRegs,
                std::vector<double>(
                    static_cast<std::size_t>(geometry.matrixRows) *
                        geometry.maxLanes,
                    0.0)),
      accs_(geometry.accRegs, std::vector<double>(geometry.maxLanes, 0.0))
{}

void
RegisterFile::checkScalar(int i) const
{
    panicIf(i < 0 || static_cast<unsigned>(i) >= geometry_.scalarRegs,
            "scalar register s", i, " out of range");
}

void
RegisterFile::checkVector(int i) const
{
    panicIf(i < 0 || static_cast<unsigned>(i) >= geometry_.vectorRegs,
            "vector register v", i, " out of range");
}

void
RegisterFile::checkMatrix(int i) const
{
    panicIf(i < 0 || static_cast<unsigned>(i) >= geometry_.matrixRegs,
            "matrix register m", i, " out of range");
}

void
RegisterFile::checkAcc(int i) const
{
    panicIf(i < 0 || static_cast<unsigned>(i) >= geometry_.accRegs,
            "accumulation register acc", i, " out of range");
}

double
RegisterFile::sreg(int i) const
{
    checkScalar(i);
    return scalars_[static_cast<std::size_t>(i)];
}

void
RegisterFile::setSreg(int i, double v)
{
    checkScalar(i);
    scalars_[static_cast<std::size_t>(i)] = v;
}

double
RegisterFile::vlane(int reg, unsigned lane) const
{
    checkVector(reg);
    panicIf(lane >= geometry_.maxLanes, "vector lane out of range");
    return vectors_[static_cast<std::size_t>(reg)][lane];
}

void
RegisterFile::setVlane(int reg, unsigned lane, double v)
{
    checkVector(reg);
    panicIf(lane >= geometry_.maxLanes, "vector lane out of range");
    vectors_[static_cast<std::size_t>(reg)][lane] = v;
}

std::vector<double>
RegisterFile::vread(int reg, unsigned lanes) const
{
    checkVector(reg);
    panicIf(lanes > geometry_.maxLanes, "too many lanes requested");
    const auto &full = vectors_[static_cast<std::size_t>(reg)];
    return std::vector<double>(full.begin(), full.begin() + lanes);
}

void
RegisterFile::vwrite(int reg, const std::vector<double> &lanes)
{
    checkVector(reg);
    panicIf(lanes.size() > geometry_.maxLanes, "too many lanes written");
    auto &full = vectors_[static_cast<std::size_t>(reg)];
    std::copy(lanes.begin(), lanes.end(), full.begin());
}

double
RegisterFile::melem(int reg, unsigned row, unsigned lane) const
{
    checkMatrix(reg);
    panicIf(row >= geometry_.matrixRows || lane >= geometry_.maxLanes,
            "matrix element out of range");
    return matrices_[static_cast<std::size_t>(reg)]
                    [row * geometry_.maxLanes + lane];
}

void
RegisterFile::setMelem(int reg, unsigned row, unsigned lane, double v)
{
    checkMatrix(reg);
    panicIf(row >= geometry_.matrixRows || lane >= geometry_.maxLanes,
            "matrix element out of range");
    matrices_[static_cast<std::size_t>(reg)]
             [row * geometry_.maxLanes + lane] = v;
}

void
RegisterFile::mloadRow(int reg, unsigned row,
                       const std::vector<double> &lanes)
{
    checkMatrix(reg);
    panicIf(row >= geometry_.matrixRows, "matrix row out of range");
    panicIf(lanes.size() > geometry_.maxLanes, "too many lanes in row");
    for (std::size_t i = 0; i < lanes.size(); ++i)
        matrices_[static_cast<std::size_t>(reg)]
                 [row * geometry_.maxLanes + static_cast<unsigned>(i)] =
            lanes[i];
}

double
RegisterFile::aclane(int reg, unsigned lane) const
{
    checkAcc(reg);
    panicIf(lane >= geometry_.maxLanes, "acc lane out of range");
    return accs_[static_cast<std::size_t>(reg)][lane];
}

void
RegisterFile::setAclane(int reg, unsigned lane, double v)
{
    checkAcc(reg);
    panicIf(lane >= geometry_.maxLanes, "acc lane out of range");
    accs_[static_cast<std::size_t>(reg)][lane] = v;
}

void
RegisterFile::accZero(int reg)
{
    checkAcc(reg);
    std::fill(accs_[static_cast<std::size_t>(reg)].begin(),
              accs_[static_cast<std::size_t>(reg)].end(), 0.0);
}

unsigned
RegisterFile::bankConflictStalls(const Packet &packet) const
{
    std::vector<unsigned> reads_per_bank(geometry_.vectorBanks, 0);
    for (const auto &inst : packet.slots) {
        // Collect vector-register source operands per opcode.
        switch (inst.op) {
          case Opcode::VAdd:
          case Opcode::VSub:
          case Opcode::VMul:
          case Opcode::VMax:
          case Opcode::VMin:
            ++reads_per_bank[vectorBank(inst.a)];
            ++reads_per_bank[vectorBank(inst.b)];
            break;
          case Opcode::VMac:
            ++reads_per_bank[vectorBank(inst.a)];
            ++reads_per_bank[vectorBank(inst.b)];
            ++reads_per_bank[vectorBank(inst.dst)];
            break;
          case Opcode::VRelu:
          case Opcode::VRedSum:
          case Opcode::SpuApply:
          case Opcode::Vmm:
          case Opcode::MRelMatrix:
          case Opcode::MPermMatrix:
            ++reads_per_bank[vectorBank(inst.a)];
            break;
          case Opcode::VStore:
            ++reads_per_bank[vectorBank(inst.b)];
            break;
          case Opcode::MLoadRow:
            ++reads_per_bank[vectorBank(inst.a)];
            break;
          default:
            break;
        }
    }
    unsigned stalls = 0;
    for (auto reads : reads_per_bank) {
        if (reads > 1)
            stalls += reads - 1;
    }
    return stalls;
}

} // namespace dtu
