#include "core/matrix_engine.hh"

#include <algorithm>

#include "core/register_file.hh"
#include "sim/logging.hh"

namespace dtu
{

MatrixEngine::MatrixEngine(bool gemm_mode)
    : gemmMode_(gemm_mode)
{}

bool
MatrixEngine::supports(unsigned rows, DType t) const
{
    if (gemmMode_)
        return rows == 16; // DTU 1.0: coarse GEMM tiles only
    if (rows == 4 || rows == 8 || rows == 16)
        return true;
    // 32-row shapes exist for narrow types, where 32 elements still
    // fit one 512-bit input vector.
    if (rows == 32 && dtypeBytes(t) <= 2)
        return true;
    return false;
}

std::vector<VmmPattern>
MatrixEngine::supportedPatterns()
{
    std::vector<VmmPattern> patterns;
    const DType all[] = {DType::FP32, DType::TF32, DType::FP16,
                         DType::BF16, DType::INT32, DType::INT16,
                         DType::INT8};
    MatrixEngine probe(false);
    for (DType t : all) {
        for (unsigned rows : {4u, 8u, 16u, 32u}) {
            if (!probe.supports(rows, t))
                continue;
            for (bool acc : {false, true}) {
                patterns.push_back(
                    {t, rows, vectorLanes(t), acc});
            }
        }
    }
    return patterns;
}

double
MatrixEngine::macsPerCycle(DType t, bool dtu2)
{
    // Structural peak of the outer-product array per core:
    // DTU 2.0 pairs two VMM units; DTU 1.0 had a single GEMM unit of
    // half the FP32 MAC count. Narrow types run proportionally wider
    // (Table I rate ratios).
    return dtu2 ? 512.0 * dtypeRateFactorDtu2(t)
                : 256.0 * dtypeRateFactorDtu1(t);
}

double
MatrixEngine::vmmCycles(unsigned rows, DType t) const
{
    fatalIf(!supports(rows, t) && !(gemmMode_ && rows <= 16),
            "VMM shape ", rows, "x", vectorLanes(t), " (", dtypeName(t),
            ") unsupported");
    unsigned effective_rows = gemmMode_ ? 16 : rows;
    double macs =
        static_cast<double>(effective_rows) * vectorLanes(t);
    return macs / macsPerCycle(t, !gemmMode_);
}

void
MatrixEngine::executeVmm(RegisterFile &regs, const Instruction &inst) const
{
    unsigned rows = static_cast<unsigned>(inst.vmmRows);
    fatalIf(!supports(rows, inst.dtype) && !gemmMode_,
            "VMM shape ", rows, " rows unsupported for ",
            dtypeName(inst.dtype));
    unsigned lanes = vectorLanes(inst.dtype);
    for (unsigned lane = 0; lane < lanes; ++lane) {
        double sum = inst.accumulate ? regs.aclane(inst.dst, lane) : 0.0;
        for (unsigned r = 0; r < rows; ++r) {
            double product = dtypeQuantize(
                inst.dtype,
                regs.vlane(inst.a, r) * regs.melem(inst.b, r, lane));
            // Accumulation registers hold wider precision (FP32-class
            // accumulate even for narrow inputs), as on real tensor
            // engines.
            sum = dtypeQuantize(DType::FP32, sum + product);
        }
        regs.setAclane(inst.dst, lane, sum);
    }
}

std::vector<std::vector<double>>
MatrixEngine::relationshipMatrix(const std::vector<double> &input)
{
    std::size_t n = input.size();
    std::vector<std::vector<double>> rel(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            // Element j precedes element i in ascending order when it
            // is smaller, or equal but with a smaller original index
            // (the tie-break the paper calls handling "identical
            // elements ... according to their original indices").
            bool precedes = input[j] < input[i] ||
                            (input[j] == input[i] && j < i);
            rel[i][j] = precedes ? 1.0 : 0.0;
        }
    }
    return rel;
}

std::vector<double>
MatrixEngine::orderVector(const std::vector<std::vector<double>> &rel)
{
    std::size_t n = rel.size();
    std::vector<double> order(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            sum += rel[i][j];
        order[i] = sum;
    }
    return order;
}

std::vector<std::vector<double>>
MatrixEngine::permutationMatrix(const std::vector<double> &order)
{
    std::size_t n = order.size();
    std::vector<std::vector<double>> perm(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        auto target = static_cast<std::size_t>(order[i]);
        panicIf(target >= n, "order vector entry out of range");
        perm[i][target] = 1.0;
    }
    return perm;
}

std::vector<double>
MatrixEngine::sortVector(const std::vector<double> &input)
{
    auto rel = relationshipMatrix(input);
    auto order = orderVector(rel);
    auto perm = permutationMatrix(order);
    // Step 4: sorted = input x perm (one VMM pass).
    std::size_t n = input.size();
    std::vector<double> sorted(n, 0.0);
    for (std::size_t lane = 0; lane < n; ++lane) {
        double sum = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            sum += input[r] * perm[r][lane];
        sorted[lane] = sum;
    }
    return sorted;
}

std::vector<double>
MatrixEngine::topK(const std::vector<double> &input, std::size_t k)
{
    fatalIf(k > input.size(), "topK k=", k, " exceeds input size ",
            input.size());
    auto sorted = sortVector(input); // ascending
    std::vector<double> result;
    result.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
        result.push_back(sorted[sorted.size() - 1 - i]);
    return result;
}

} // namespace dtu
