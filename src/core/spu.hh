/**
 * @file
 * The Special Function Unit (Section IV-A2).
 *
 * The SPU evaluates transcendental functions "by computing the
 * quadratic Taylor polynomial, according to the derivative values
 * found in the Lookup Table". The model builds, per function, a table
 * of (f, f', f'') samples over a canonical argument range; evaluation
 * range-reduces the argument into that range (exactly the tricks real
 * hardware uses: exponent splitting for log/rsqrt, saturation for
 * tanh/sigmoid, periodic reduction for sin), picks the nearest table
 * segment, and sums the three Taylor terms.
 */

#ifndef DTU_CORE_SPU_HH
#define DTU_CORE_SPU_HH

#include <array>
#include <vector>

#include "isa/opcode.hh"
#include "tensor/dtype.hh"

namespace dtu
{

/** A LUT-plus-quadratic-Taylor special function unit. */
class Spu
{
  public:
    /**
     * @param table_entries samples per lookup table; larger tables
     *        trade SRAM for accuracy (hardware uses a few hundred).
     */
    explicit Spu(unsigned table_entries = 512);

    /** Evaluate one value through the hardware path. */
    double evaluate(SpuFunc f, double x) const;

    /** Evaluate with rounding to @p t after every hardware step. */
    double evaluate(SpuFunc f, double x, DType t) const;

    /** libm reference for accuracy measurement. */
    static double reference(SpuFunc f, double x);

    /**
     * Worst relative error of the hardware path against the reference
     * over @p samples points in [lo, hi]. Used by accuracy tests to
     * show every supported function is within inference tolerance.
     */
    double maxRelativeError(SpuFunc f, double lo, double hi,
                            unsigned samples) const;

    /** Table entries per function. */
    unsigned tableEntries() const { return entries_; }

    /**
     * Throughput of the SPU in results per cycle for a 512-bit vector
     * of @p t: DTU 2.0's enhanced SPU ("the throughput of the SFU is
     * improved", Table II) retires a full vector per cycle; DTU 1.0
     * needed 4 cycles per vector.
     */
    static unsigned resultsPerCycle(DType t, bool dtu2 = true);

  private:
    struct TableEntry
    {
        double f = 0.0;
        double d1 = 0.0;
        double d2 = 0.0;
    };

    struct Table
    {
        double lo = 0.0;
        double hi = 1.0;
        std::vector<TableEntry> entries;
    };

    /** Core-range evaluation via the quadratic Taylor polynomial. */
    double taylor(const Table &table, double x) const;

    static double rawFunc(SpuFunc f, double x);
    static double rawDeriv1(SpuFunc f, double x);
    static double rawDeriv2(SpuFunc f, double x);

    unsigned entries_;
    std::array<Table, numSpuFuncs> tables_;
};

} // namespace dtu

#endif // DTU_CORE_SPU_HH
