#include "core/spu.hh"

#include <algorithm>
#include <cmath>

#include "core/register_file.hh"
#include "sim/logging.hh"

namespace dtu
{

namespace
{

constexpr double kLn2 = 0.6931471805599453;
constexpr double kTwoPi = 6.283185307179586;
constexpr double kInvSqrtPi2 = 1.1283791670955126; // 2/sqrt(pi)

/** Canonical table range per function (after range reduction). */
void
canonicalRange(SpuFunc f, double &lo, double &hi)
{
    switch (f) {
      case SpuFunc::Exp:      lo = -0.40; hi = 0.40; break; // +-ln2/2 pad
      case SpuFunc::Log:      lo = 1.0;   hi = 2.0;  break; // mantissa
      case SpuFunc::Tanh:     lo = 0.0;   hi = 9.0;  break; // odd symmetry
      case SpuFunc::Sigmoid:  lo = 0.0;   hi = 18.0; break; // point symmetry
      case SpuFunc::Gelu:     lo = 0.0;   hi = 4.0;  break; // via erf table
      case SpuFunc::Swish:    lo = 0.0;   hi = 18.0; break; // via sigmoid
      case SpuFunc::Softplus: lo = -18.0; hi = 18.0; break;
      case SpuFunc::Erf:      lo = 0.0;   hi = 4.0;  break; // odd symmetry
      case SpuFunc::Rsqrt:    lo = 1.0;   hi = 4.0;  break; // mantissa
      case SpuFunc::Sin:      lo = 0.0;   hi = kTwoPi / 4.0; break;
    }
}

} // namespace

double
Spu::rawFunc(SpuFunc f, double x)
{
    switch (f) {
      case SpuFunc::Exp: return std::exp(x);
      case SpuFunc::Log: return std::log(x);
      case SpuFunc::Tanh: return std::tanh(x);
      case SpuFunc::Sigmoid: return 1.0 / (1.0 + std::exp(-x));
      case SpuFunc::Gelu:
        return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
      case SpuFunc::Swish: return x / (1.0 + std::exp(-x));
      case SpuFunc::Softplus:
        return x > 30.0 ? x : std::log1p(std::exp(x));
      case SpuFunc::Erf: return std::erf(x);
      case SpuFunc::Rsqrt: return 1.0 / std::sqrt(x);
      case SpuFunc::Sin: return std::sin(x);
    }
    return 0.0;
}

double
Spu::rawDeriv1(SpuFunc f, double x)
{
    switch (f) {
      case SpuFunc::Exp: return std::exp(x);
      case SpuFunc::Log: return 1.0 / x;
      case SpuFunc::Tanh: {
        double t = std::tanh(x);
        return 1.0 - t * t;
      }
      case SpuFunc::Sigmoid: {
        double s = rawFunc(SpuFunc::Sigmoid, x);
        return s * (1.0 - s);
      }
      case SpuFunc::Softplus: return rawFunc(SpuFunc::Sigmoid, x);
      case SpuFunc::Erf: return kInvSqrtPi2 * std::exp(-x * x);
      case SpuFunc::Rsqrt: return -0.5 * std::pow(x, -1.5);
      case SpuFunc::Sin: return std::cos(x);
      default:
        // Gelu/Swish are composed from erf/sigmoid tables and never
        // tabulated directly.
        return 0.0;
    }
}

double
Spu::rawDeriv2(SpuFunc f, double x)
{
    switch (f) {
      case SpuFunc::Exp: return std::exp(x);
      case SpuFunc::Log: return -1.0 / (x * x);
      case SpuFunc::Tanh: {
        double t = std::tanh(x);
        return -2.0 * t * (1.0 - t * t);
      }
      case SpuFunc::Sigmoid: {
        double s = rawFunc(SpuFunc::Sigmoid, x);
        return s * (1.0 - s) * (1.0 - 2.0 * s);
      }
      case SpuFunc::Softplus: {
        double s = rawFunc(SpuFunc::Sigmoid, x);
        return s * (1.0 - s);
      }
      case SpuFunc::Erf:
        return -2.0 * x * kInvSqrtPi2 * std::exp(-x * x);
      case SpuFunc::Rsqrt: return 0.75 * std::pow(x, -2.5);
      case SpuFunc::Sin: return -std::sin(x);
      default:
        return 0.0;
    }
}

Spu::Spu(unsigned table_entries)
    : entries_(table_entries)
{
    fatalIf(table_entries < 8, "SPU lookup table needs >= 8 entries");
    for (int fi = 0; fi < numSpuFuncs; ++fi) {
        auto f = static_cast<SpuFunc>(fi);
        Table &table = tables_[static_cast<std::size_t>(fi)];
        canonicalRange(f, table.lo, table.hi);
        if (f == SpuFunc::Gelu || f == SpuFunc::Swish)
            continue; // composed ops; no table of their own
        table.entries.resize(entries_);
        double h = (table.hi - table.lo) / entries_;
        for (unsigned i = 0; i < entries_; ++i) {
            double x0 = table.lo + (i + 0.5) * h;
            table.entries[i] = {rawFunc(f, x0), rawDeriv1(f, x0),
                                rawDeriv2(f, x0)};
        }
    }
}

double
Spu::taylor(const Table &table, double x) const
{
    double h = (table.hi - table.lo) / entries_;
    double pos = (x - table.lo) / h;
    auto idx = static_cast<std::int64_t>(pos);
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(entries_) - 1);
    const TableEntry &e = table.entries[static_cast<std::size_t>(idx)];
    double x0 = table.lo + (static_cast<double>(idx) + 0.5) * h;
    double dx = x - x0;
    return e.f + e.d1 * dx + 0.5 * e.d2 * dx * dx;
}

double
Spu::evaluate(SpuFunc f, double x) const
{
    const Table &table = tables_[static_cast<std::size_t>(f)];
    switch (f) {
      case SpuFunc::Exp: {
        // x = k*ln2 + r; exp(x) = 2^k * exp(r).
        double k = std::nearbyint(x / kLn2);
        double r = x - k * kLn2;
        return std::ldexp(taylor(table, r), static_cast<int>(k));
      }
      case SpuFunc::Log: {
        fatalIf(x <= 0.0, "SPU log of non-positive value ", x);
        int e = 0;
        double m = std::frexp(x, &e); // m in [0.5, 1)
        m *= 2.0;
        e -= 1; // m in [1, 2)
        return taylor(table, m) + e * kLn2;
      }
      case SpuFunc::Tanh: {
        double ax = std::fabs(x);
        if (ax >= table.hi)
            return x < 0 ? -1.0 : 1.0;
        double t = taylor(table, ax);
        return x < 0 ? -t : t;
      }
      case SpuFunc::Sigmoid: {
        double ax = std::fabs(x);
        double s = ax >= table.hi ? 1.0 : taylor(table, ax);
        return x < 0 ? 1.0 - s : s;
      }
      case SpuFunc::Gelu: {
        double e = evaluate(SpuFunc::Erf, x / std::sqrt(2.0));
        return 0.5 * x * (1.0 + e);
      }
      case SpuFunc::Swish:
        return x * evaluate(SpuFunc::Sigmoid, x);
      case SpuFunc::Softplus: {
        if (x >= table.hi)
            return x; // log(1+e^x) -> x
        if (x <= table.lo)
            return 0.0; // underflows fp16
        return taylor(table, x);
      }
      case SpuFunc::Erf: {
        double ax = std::fabs(x);
        if (ax >= table.hi)
            return x < 0 ? -1.0 : 1.0;
        double e = taylor(table, ax);
        return x < 0 ? -e : e;
      }
      case SpuFunc::Rsqrt: {
        fatalIf(x <= 0.0, "SPU rsqrt of non-positive value ", x);
        int e = 0;
        double m = std::frexp(x, &e); // m in [0.5, 1)
        m *= 2.0;
        e -= 1;
        if (e % 2 != 0) {
            // Keep the exponent even so 2^(-e/2) is exact.
            m *= 2.0;
            e -= 1;
        }
        // m in [1, 4): within the table range.
        return std::ldexp(taylor(table, m), -e / 2);
      }
      case SpuFunc::Sin: {
        // Reduce into [0, 2pi), then fold into the first quadrant.
        double r = std::fmod(x, kTwoPi);
        if (r < 0)
            r += kTwoPi;
        double sign = 1.0;
        if (r >= kTwoPi / 2.0) {
            r -= kTwoPi / 2.0;
            sign = -1.0;
        }
        if (r > kTwoPi / 4.0)
            r = kTwoPi / 2.0 - r;
        return sign * taylor(table, r);
      }
    }
    return 0.0;
}

double
Spu::evaluate(SpuFunc f, double x, DType t) const
{
    return dtypeQuantize(t, evaluate(f, dtypeQuantize(t, x)));
}

double
Spu::reference(SpuFunc f, double x)
{
    return rawFunc(f, x);
}

double
Spu::maxRelativeError(SpuFunc f, double lo, double hi,
                      unsigned samples) const
{
    double worst = 0.0;
    for (unsigned i = 0; i < samples; ++i) {
        double x = lo + (hi - lo) * (i + 0.5) / samples;
        double want = reference(f, x);
        double got = evaluate(f, x);
        double denom = std::max(std::fabs(want), 1e-6);
        worst = std::max(worst, std::fabs(got - want) / denom);
    }
    return worst;
}

unsigned
Spu::resultsPerCycle(DType t, bool dtu2)
{
    unsigned lanes = vectorLanes(t);
    return dtu2 ? lanes : std::max(1u, lanes / 4);
}

} // namespace dtu
