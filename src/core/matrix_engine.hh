/**
 * @file
 * The matrix engine: fine-grained vector-matrix multiplication and
 * the VMM-assisted sorting facility (Sections IV-A1, Figs. 3 and 4).
 *
 * DTU 2.0 replaced DTU 1.0's coarse-grained GEMM engine with a VMM
 * engine supporting many (matrix-rows x lanes) shapes per data type —
 * "more than 40 VMM patterns" (Table II). A VMM computes
 *
 *     out[lane] (+)= sum_r vec[r] * mat[r][lane]
 *
 * as a sequence of outer-product steps, accumulating into one of the
 * 1024 accumulation registers so partial results never leave the
 * engine.
 *
 * The same datapath implements sorting: build the relationship matrix
 * by all-pairs comparison (ties broken by original index), sum its
 * columns into the order vector, expand that into a permutation
 * matrix, and apply one VMM to produce the sorted vector.
 */

#ifndef DTU_CORE_MATRIX_ENGINE_HH
#define DTU_CORE_MATRIX_ENGINE_HH

#include <cstdint>
#include <vector>

#include "core/register_file.hh"
#include "isa/instruction.hh"
#include "tensor/dtype.hh"

namespace dtu
{

/** One supported VMM configuration. */
struct VmmPattern
{
    DType dtype = DType::FP32;
    /** Matrix rows == input vector length. */
    unsigned rows = 16;
    /** Matrix columns == output lanes (fixed by the 512-bit width). */
    unsigned lanes = 16;
    /** Accumulate into vs overwrite the accumulation register. */
    bool accumulate = true;
};

/** The per-core matrix engine. */
class MatrixEngine
{
  public:
    /**
     * @param gemm_mode model DTU 1.0's coarse engine: only full
     *        16-row GEMM tiles are supported, so skinny shapes are
     *        padded up to 16 rows and waste the difference.
     */
    explicit MatrixEngine(bool gemm_mode = false);

    /** True when the engine accepts this (rows, dtype) shape. */
    bool supports(unsigned rows, DType t) const;

    /** All supported patterns (the ">40 VMM patterns" inventory). */
    static std::vector<VmmPattern> supportedPatterns();

    /**
     * MAC throughput of the engine per cycle for @p t, i.e. how many
     * multiply-accumulates the outer-product array retires each
     * cycle. The 512-bit array does lanes(t) MACs per row step and
     * processes rateFactor rows per cycle.
     */
    static double macsPerCycle(DType t, bool dtu2 = true);

    /**
     * Cycles (possibly fractional) one VMM of @p rows rows consumes.
     * In GEMM mode skinny shapes round up to the full tile.
     */
    double vmmCycles(unsigned rows, DType t) const;

    /**
     * Functional VMM: acc[dst] (+)= v[a](rows) x m[b](rows x lanes).
     * Values are quantized per @p t at each accumulate step.
     */
    void executeVmm(RegisterFile &regs, const Instruction &inst) const;

    //
    // Sorting facility (Fig. 4). Each step is exposed separately so
    // kernels can drive it instruction-by-instruction; sortVector()
    // composes them for library use.
    //

    /**
     * Step 1: relationship matrix. rel[i][j] = 1 when element j must
     * precede element i in ascending order (value less, or equal with
     * smaller original index), else 0.
     */
    static std::vector<std::vector<double>>
    relationshipMatrix(const std::vector<double> &input);

    /** Step 2: order vector = per-column sums of the matrix. */
    static std::vector<double>
    orderVector(const std::vector<std::vector<double>> &rel);

    /**
     * Step 3: permutation matrix; row i has its 1 in the column given
     * by order[i].
     */
    static std::vector<std::vector<double>>
    permutationMatrix(const std::vector<double> &order);

    /** Step 4 and composition: ascending sort via one VMM. */
    static std::vector<double> sortVector(const std::vector<double> &input);

    /**
     * Top-K selection: the K largest values in descending order,
     * implemented with the sorting facility.
     */
    static std::vector<double> topK(const std::vector<double> &input,
                                    std::size_t k);

    bool gemmMode() const { return gemmMode_; }

  private:
    bool gemmMode_;
};

} // namespace dtu

#endif // DTU_CORE_MATRIX_ENGINE_HH
