#include "core/compute_core.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

namespace
{

/** Semaphore namespace for DMA-completion signals. */
constexpr int dmaCompletionSemBase = 1000;

} // namespace

ComputeCore::ComputeCore(std::string name, EventQueue &queue,
                         StatRegistry *stats, ClockDomain &clock,
                         CoreConfig config, InstructionCache *icache,
                         SyncEngine *sync, DmaEngine *dma)
    : SimObject(std::move(name), queue, stats), clock_(clock),
      config_(config), regs_(config.regs), matrix_(!config.dtu2),
      spu_(), icache_(icache), sync_(sync), dma_(dma),
      l1Data_(config.l1Bytes / 4, 0.0)
{
    if (stats) {
        statPackets_.init(*stats, this->name() + ".packets",
                          "VLIW packets issued");
        statInstructions_.init(*stats, this->name() + ".instructions",
                               "instructions retired");
        statCycles_.init(*stats, this->name() + ".cycles",
                         "total execution cycles");
        statIssueCycles_.init(*stats, this->name() + ".issue_cycles",
                              "productive VLIW issue cycles");
        statBankStalls_.init(*stats, this->name() + ".bank_stalls",
                             "register bank conflict stall cycles");
        statStructStalls_.init(*stats, this->name() + ".struct_stalls",
                               "structural (unit busy) stall cycles");
        statThrottleCycles_.init(*stats, this->name() + ".throttle_cycles",
                                 "LPME-inserted bubble cycles");
        statSyncStallTicks_.init(*stats, this->name() + ".sync_stall_ticks",
                                 "ticks blocked on the sync engine");
        statMacs_.init(*stats, this->name() + ".macs",
                       "multiply-accumulates retired");
    }
}

double
ComputeCore::l1Word(std::uint64_t index) const
{
    panicIf(index >= l1Data_.size(), "L1 word index out of range");
    return l1Data_[index];
}

void
ComputeCore::setL1Word(std::uint64_t index, double value)
{
    panicIf(index >= l1Data_.size(), "L1 word index out of range");
    l1Data_[index] = value;
}

void
ComputeCore::setDescriptorTable(std::vector<DmaDescriptor> descriptors)
{
    descriptors_ = std::move(descriptors);
}

void
ComputeCore::setThrottle(double bubble_fraction)
{
    fatalIf(bubble_fraction < 0.0, "negative throttle");
    throttle_ = bubble_fraction;
}

RunResult
ComputeCore::run(const Kernel &kernel, int kernel_id, Tick start)
{
    RunResult result;
    result.startTick = start;

    Tick code_ready = start;
    if (icache_) {
        code_ready = icache_->fetchAt(start, kernel_id,
                                      kernel.codeBytes());
        result.icacheStallTicks = code_ready - start;
    }

    const Tick period = clock_.period();
    double cycle = 0.0; // relative to code_ready
    matrixBusyUntil_ = 0.0;
    spuBusyUntil_ = 0.0;

    auto abs_tick = [&](double c) {
        return code_ready + static_cast<Tick>(c * period + 0.5);
    };

    std::size_t pc = 0;
    bool halted = false;
    while (!halted && pc < kernel.size()) {
        fatalIf(result.packets >= config_.maxPackets,
                "kernel '", kernel.name(), "' exceeded ",
                config_.maxPackets, " packets; runaway loop?");
        const Packet &packet = kernel.packet(pc);
        ++result.packets;
        result.instructions += packet.width();
        cycle += 1.0;
        ++result.issueCycles;

        unsigned bank_stalls = regs_.bankConflictStalls(packet);
        cycle += bank_stalls;
        result.bankStallCycles += bank_stalls;

        std::size_t next_pc = pc + 1;
        for (const Instruction &inst : packet.slots) {
            // Structural occupancy of multi-cycle units.
            if (inst.unit() == UnitKind::Matrix) {
                if (matrixBusyUntil_ > cycle) {
                    double stall = matrixBusyUntil_ - cycle;
                    cycle = matrixBusyUntil_;
                    result.structuralStallCycles +=
                        static_cast<Cycles>(stall + 0.5);
                }
            } else if (inst.unit() == UnitKind::Spu) {
                if (spuBusyUntil_ > cycle) {
                    double stall = spuBusyUntil_ - cycle;
                    cycle = spuBusyUntil_;
                    result.structuralStallCycles +=
                        static_cast<Cycles>(stall + 0.5);
                }
            }

            unsigned lanes = vectorLanes(inst.dtype);
            switch (inst.op) {
              case Opcode::Nop:
                break;
              case Opcode::SLoadImm:
                regs_.setSreg(inst.dst, inst.imm);
                break;
              case Opcode::SAdd:
                regs_.setSreg(inst.dst,
                              regs_.sreg(inst.a) + regs_.sreg(inst.b));
                break;
              case Opcode::SSub:
                regs_.setSreg(inst.dst,
                              regs_.sreg(inst.a) - regs_.sreg(inst.b));
                break;
              case Opcode::SMul:
                regs_.setSreg(inst.dst,
                              regs_.sreg(inst.a) * regs_.sreg(inst.b));
                break;
              case Opcode::SAddImm:
                regs_.setSreg(inst.dst, regs_.sreg(inst.a) + inst.imm);
                break;
              case Opcode::VLoadImm:
                for (unsigned l = 0; l < lanes; ++l)
                    regs_.setVlane(inst.dst, l,
                                   dtypeQuantize(inst.dtype, inst.imm));
                result.laneOps += lanes;
                break;
              case Opcode::VLoad: {
                auto base = static_cast<std::uint64_t>(
                    regs_.sreg(inst.a));
                panicIf(base + lanes > l1Data_.size(),
                        "vload beyond L1 on '", name(), "'");
                for (unsigned l = 0; l < lanes; ++l)
                    regs_.setVlane(inst.dst, l, l1Data_[base + l]);
                break;
              }
              case Opcode::VStore: {
                auto base = static_cast<std::uint64_t>(
                    regs_.sreg(inst.a));
                panicIf(base + lanes > l1Data_.size(),
                        "vstore beyond L1 on '", name(), "'");
                for (unsigned l = 0; l < lanes; ++l)
                    l1Data_[base + l] = dtypeQuantize(
                        inst.dtype, regs_.vlane(inst.b, l));
                break;
              }
              case Opcode::VAdd:
              case Opcode::VSub:
              case Opcode::VMul:
              case Opcode::VMax:
              case Opcode::VMin:
                for (unsigned l = 0; l < lanes; ++l) {
                    double x = regs_.vlane(inst.a, l);
                    double y = regs_.vlane(inst.b, l);
                    double r = 0.0;
                    switch (inst.op) {
                      case Opcode::VAdd: r = x + y; break;
                      case Opcode::VSub: r = x - y; break;
                      case Opcode::VMul: r = x * y; break;
                      case Opcode::VMax: r = std::max(x, y); break;
                      default: r = std::min(x, y); break;
                    }
                    regs_.setVlane(inst.dst, l,
                                   dtypeQuantize(inst.dtype, r));
                }
                result.laneOps += lanes;
                break;
              case Opcode::VMac:
                for (unsigned l = 0; l < lanes; ++l) {
                    double r = regs_.vlane(inst.dst, l) +
                               regs_.vlane(inst.a, l) *
                                   regs_.vlane(inst.b, l);
                    regs_.setVlane(inst.dst, l,
                                   dtypeQuantize(inst.dtype, r));
                }
                result.laneOps += lanes;
                result.macs += lanes;
                break;
              case Opcode::VRelu:
                for (unsigned l = 0; l < lanes; ++l)
                    regs_.setVlane(inst.dst, l,
                                   std::max(0.0, regs_.vlane(inst.a, l)));
                result.laneOps += lanes;
                break;
              case Opcode::VRedSum: {
                double sum = 0.0;
                for (unsigned l = 0; l < lanes; ++l)
                    sum += regs_.vlane(inst.a, l);
                regs_.setSreg(inst.dst, dtypeQuantize(inst.dtype, sum));
                result.laneOps += lanes;
                break;
              }
              case Opcode::SpuApply: {
                for (unsigned l = 0; l < lanes; ++l)
                    regs_.setVlane(inst.dst, l,
                                   spu_.evaluate(inst.spuFunc,
                                                 regs_.vlane(inst.a, l),
                                                 inst.dtype));
                result.laneOps += lanes;
                double per_cycle =
                    Spu::resultsPerCycle(inst.dtype, config_.dtu2);
                spuBusyUntil_ =
                    cycle + static_cast<double>(lanes) / per_cycle;
                break;
              }
              case Opcode::MLoadRow: {
                auto row = static_cast<unsigned>(regs_.sreg(inst.b));
                regs_.mloadRow(inst.dst, row,
                               regs_.vread(inst.a,
                                           regs_.geometry().maxLanes));
                break;
              }
              case Opcode::MZeroAcc:
                regs_.accZero(inst.dst);
                break;
              case Opcode::Vmm: {
                matrix_.executeVmm(regs_, inst);
                double op_cycles = matrix_.vmmCycles(
                    static_cast<unsigned>(inst.vmmRows), inst.dtype);
                matrixBusyUntil_ = cycle + op_cycles;
                result.macs += static_cast<double>(inst.vmmRows) * lanes;
                break;
              }
              case Opcode::MReadAcc:
                for (unsigned l = 0; l < regs_.geometry().maxLanes; ++l)
                    regs_.setVlane(inst.dst, l, regs_.aclane(inst.a, l));
                break;
              case Opcode::MRelMatrix: {
                std::vector<double> input = regs_.vread(inst.a, lanes);
                auto rel = MatrixEngine::relationshipMatrix(input);
                for (unsigned r = 0; r < lanes; ++r)
                    for (unsigned c = 0; c < lanes; ++c)
                        regs_.setMelem(inst.dst, r, c, rel[r][c]);
                matrixBusyUntil_ =
                    cycle + matrix_.vmmCycles(std::min(lanes, 16u),
                                              inst.dtype);
                break;
              }
              case Opcode::MOrderVec: {
                // Lane i receives the rank of input element i: the
                // count of elements that precede it, i.e. the sum of
                // relationship-matrix row i.
                for (unsigned r = 0; r < lanes; ++r) {
                    double sum = 0.0;
                    for (unsigned c = 0; c < lanes; ++c)
                        sum += regs_.melem(inst.a, r, c);
                    regs_.setVlane(inst.dst, r, sum);
                }
                break;
              }
              case Opcode::MPermMatrix: {
                std::vector<double> order = regs_.vread(inst.a, lanes);
                auto perm = MatrixEngine::permutationMatrix(order);
                for (unsigned r = 0; r < lanes; ++r)
                    for (unsigned c = 0; c < lanes; ++c)
                        regs_.setMelem(inst.dst, r, c, perm[r][c]);
                break;
              }
              case Opcode::Prefetch:
                if (icache_) {
                    // Size is resolved by the runtime's kernel table
                    // in operator-phase mode; standalone kernels
                    // prefetch a buffer-sized block.
                    icache_->prefetchAt(abs_tick(cycle),
                                        static_cast<int>(inst.imm),
                                        icache_->capacity());
                }
                break;
              case Opcode::DmaConfig:
                // Configuration cost is charged by the engine when
                // the transaction launches.
                break;
              case Opcode::DmaLaunch: {
                fatalIf(!dma_, "DmaLaunch on core '", name(),
                        "' without a DMA engine");
                auto id = static_cast<std::size_t>(inst.imm);
                fatalIf(id >= descriptors_.size(),
                        "DMA descriptor ", id, " out of range");
                DmaResult dres =
                    dma_->submitAt(abs_tick(cycle), descriptors_[id]);
                if (sync_) {
                    sync_->signalAt(dmaCompletionSemBase +
                                        static_cast<int>(id),
                                    dres.done);
                }
                break;
              }
              case Opcode::SyncSet:
                fatalIf(!sync_, "SyncSet without a sync engine");
                sync_->signalAt(static_cast<int>(inst.imm),
                                abs_tick(cycle));
                break;
              case Opcode::SyncWait: {
                fatalIf(!sync_, "SyncWait without a sync engine");
                Tick now = abs_tick(cycle);
                Tick released = sync_->waitUntil(
                    static_cast<int>(inst.imm),
                    static_cast<unsigned>(inst.a), now);
                result.syncStallTicks += released - now;
                cycle += static_cast<double>(released - now) /
                         static_cast<double>(period);
                break;
              }
              case Opcode::BranchNe:
                if (regs_.sreg(inst.a) != regs_.sreg(inst.b))
                    next_pc = static_cast<std::size_t>(inst.imm);
                break;
              case Opcode::Halt:
                halted = true;
                break;
            }
        }
        pc = next_pc;
    }

    // Power-integrity throttling: the LPME inserts bubbles
    // proportionally to issued cycles.
    if (throttle_ > 0.0) {
        auto bubbles = static_cast<Cycles>(cycle * throttle_ + 0.5);
        cycle += static_cast<double>(bubbles);
        result.throttleCycles = bubbles;
    }

    result.cycles = static_cast<Cycles>(std::ceil(cycle));
    Tick refill = icache_ ? icache_->refillStall(kernel.codeBytes()) : 0;
    result.endTick = code_ready + result.cycles * period + refill;

    statPackets_ += static_cast<double>(result.packets);
    statInstructions_ += static_cast<double>(result.instructions);
    statCycles_ += static_cast<double>(result.cycles);
    statIssueCycles_ += static_cast<double>(result.issueCycles);
    statBankStalls_ += static_cast<double>(result.bankStallCycles);
    statStructStalls_ += static_cast<double>(result.structuralStallCycles);
    statThrottleCycles_ += static_cast<double>(result.throttleCycles);
    statSyncStallTicks_ += static_cast<double>(result.syncStallTicks);
    statMacs_ += result.macs;
    return result;
}

void
ComputeCore::creditStats(double cycles, double macs, double throttle_cycles)
{
    statCycles_ += cycles;
    statIssueCycles_ += std::max(0.0, cycles - throttle_cycles);
    statThrottleCycles_ += throttle_cycles;
    statMacs_ += macs;
}

} // namespace dtu
