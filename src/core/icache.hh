/**
 * @file
 * The instruction buffer with cache mode and kernel prefetch
 * (Sections III "Kernel code loading matters" and IV-B).
 *
 * A compute core only starts running once its kernel code sits in the
 * instruction buffer. DTU 1.0 reloaded the buffer from L3 for every
 * kernel launch. DTU 2.0 adds:
 *  - cache mode: recently used kernels stay resident (LRU),
 *  - user-controlled prefetch: a prefetch instruction starts loading
 *    the next operator's kernel in the background,
 *  - automatic chunked loading for kernels bigger than the buffer.
 */

#ifndef DTU_CORE_ICACHE_HH
#define DTU_CORE_ICACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/hbm.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace dtu
{

/** Per-core instruction buffer / cache. */
class InstructionCache : public SimObject
{
  public:
    /**
     * @param hbm L3 memory kernels load from.
     * @param capacity instruction buffer bytes.
     * @param cache_mode retain kernels across launches (DTU 2.0).
     */
    InstructionCache(std::string name, EventQueue &queue,
                     StatRegistry *stats, Hbm &hbm, std::uint64_t capacity,
                     bool cache_mode);

    /**
     * Ensure kernel @p kernel_id of @p bytes is resident, starting at
     * tick @p at.
     * @return the tick at which execution may begin. For oversized
     * kernels this is when the first buffer-full is in; the remainder
     * streams during execution and is charged as refill stalls by the
     * core.
     */
    Tick fetchAt(Tick at, int kernel_id, std::uint64_t bytes);

    /**
     * Start loading a kernel in the background (the user-controlled
     * prefetch instruction). A later fetchAt() overlaps with it.
     */
    void prefetchAt(Tick at, int kernel_id, std::uint64_t bytes);

    /** True when the kernel is fully resident now. */
    bool resident(int kernel_id) const;

    /**
     * Extra stall ticks a run of an oversized kernel pays while the
     * tail streams in (0 when the kernel fits).
     */
    Tick refillStall(std::uint64_t bytes) const;

    std::uint64_t capacity() const { return capacity_; }
    bool cacheMode() const { return cacheMode_; }

    double hits() const { return hits_.value(); }
    double misses() const { return misses_.value(); }
    double stallTicks() const { return stallTicks_.value(); }

  private:
    /** Service time to pull @p bytes of code from L3. */
    Tick loadTime(Tick at, std::uint64_t bytes);

    /** Insert a kernel, evicting LRU entries to make room. */
    void insert(int kernel_id, std::uint64_t bytes);

    Hbm &hbm_;
    std::uint64_t capacity_;
    bool cacheMode_;
    std::uint64_t used_ = 0;

    /** LRU list of resident kernels, most recent first. */
    std::list<int> lru_;
    struct Entry
    {
        std::uint64_t bytes = 0;
        std::list<int>::iterator lruIt;
    };
    std::unordered_map<int, Entry> resident_;

    /** In-flight background loads: kernel id -> completion tick. */
    std::unordered_map<int, Tick> inflight_;

    Stat hits_;
    Stat misses_;
    Stat stallTicks_;
    Stat prefetches_;
};

} // namespace dtu

#endif // DTU_CORE_ICACHE_HH
