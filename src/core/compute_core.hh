/**
 * @file
 * The VLIW compute core (Section IV-A).
 *
 * The core issues one VLIW packet per cycle, in order. Slots drive
 * the scalar unit, the 512-bit vector engine, the matrix (VMM)
 * engine, the SPU, the L1 memory port, DMA configuration, and the
 * synchronization engine. Stalls come from:
 *  - vector register bank conflicts (the compiler's register
 *    allocator exists to avoid them),
 *  - matrix/SPU structural occupancy (multi-cycle operations),
 *  - kernel-code loads (instruction buffer misses and oversized
 *    kernels),
 *  - synchronization waits,
 *  - power-integrity throttling bubbles inserted by the LPME.
 *
 * Kernels are executed functionally (real values flow through the
 * register files and L1), so the same run yields both timing and
 * numerics.
 */

#ifndef DTU_CORE_COMPUTE_CORE_HH
#define DTU_CORE_COMPUTE_CORE_HH

#include <memory>
#include <vector>

#include "core/icache.hh"
#include "core/matrix_engine.hh"
#include "core/register_file.hh"
#include "core/spu.hh"
#include "dma/dma_engine.hh"
#include "isa/instruction.hh"
#include "mem/mem_types.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"
#include "sync/sync_engine.hh"

namespace dtu
{

/** Static configuration of one compute core. */
struct CoreConfig
{
    RegFileGeometry regs;
    /** DTU 2.0 core (two VMM units, full-rate SPU) vs DTU 1.0. */
    bool dtu2 = true;
    /** L1 data buffer capacity in bytes (functional + accounting). */
    std::uint64_t l1Bytes = 1_MiB;
    /** Safety bound on packets executed per kernel run. */
    std::uint64_t maxPackets = 50'000'000;
};

/** Timing and activity outcome of one kernel run. */
struct RunResult
{
    Tick startTick = 0;
    Tick endTick = 0;
    Cycles cycles = 0;
    Cycles issueCycles = 0;
    Cycles bankStallCycles = 0;
    Cycles structuralStallCycles = 0;
    Cycles throttleCycles = 0;
    Tick icacheStallTicks = 0;
    Tick syncStallTicks = 0;
    std::uint64_t packets = 0;
    std::uint64_t instructions = 0;
    /** Multiply-accumulates retired (activity proxy for power). */
    double macs = 0.0;
    /** Vector/SPU lane operations retired. */
    double laneOps = 0.0;

    /** Wall time of the run. */
    Tick ticks() const { return endTick - startTick; }
};

/** One VLIW compute core. */
class ComputeCore : public SimObject
{
  public:
    ComputeCore(std::string name, EventQueue &queue, StatRegistry *stats,
                ClockDomain &clock, CoreConfig config,
                InstructionCache *icache = nullptr,
                SyncEngine *sync = nullptr, DmaEngine *dma = nullptr);

    /**
     * Execute @p kernel starting no earlier than @p start.
     * @param kernel_id identity used by the instruction cache; runs
     *        of the same id hit in cache mode.
     */
    RunResult run(const Kernel &kernel, int kernel_id = 0, Tick start = 0);

    /** Register state (inspectable by tests and examples). */
    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }

    /** Functional L1 word access (element-granular addressing). */
    double l1Word(std::uint64_t index) const;
    void setL1Word(std::uint64_t index, double value);

    /** Descriptor table DmaConfig/DmaLaunch instructions index. */
    void setDescriptorTable(std::vector<DmaDescriptor> descriptors);

    /**
     * Power-integrity throttle: fraction of extra bubble cycles the
     * LPME inserts per issued cycle (0 = unthrottled).
     */
    void setThrottle(double bubble_fraction);
    double throttle() const { return throttle_; }

    /**
     * Credit activity computed analytically (the plan executor models
     * compute time arithmetically rather than driving run(), so it
     * deposits each operator's share here to keep the PMU counters —
     * .cycles, .macs, .throttle_cycles, .issue_cycles — live for the
     * performance sampler).
     */
    void creditStats(double cycles, double macs, double throttle_cycles);

    const CoreConfig &config() const { return config_; }
    const MatrixEngine &matrixEngine() const { return matrix_; }
    const Spu &spu() const { return spu_; }
    ClockDomain &clock() { return clock_; }

  private:
    /** Execute the functional side of one instruction. */
    void execute(const Instruction &inst, std::size_t &pc, Tick now,
                 RunResult &result, bool &halted);

    ClockDomain &clock_;
    CoreConfig config_;
    RegisterFile regs_;
    MatrixEngine matrix_;
    Spu spu_;
    InstructionCache *icache_;
    SyncEngine *sync_;
    DmaEngine *dma_;
    std::vector<double> l1Data_;
    std::vector<DmaDescriptor> descriptors_;
    double throttle_ = 0.0;

    /** Fractional-cycle occupancy horizons for multi-cycle units. */
    double matrixBusyUntil_ = 0.0;
    double spuBusyUntil_ = 0.0;

    Stat statPackets_;
    Stat statInstructions_;
    Stat statCycles_;
    Stat statIssueCycles_;
    Stat statBankStalls_;
    Stat statStructStalls_;
    Stat statThrottleCycles_;
    Stat statSyncStallTicks_;
    Stat statMacs_;
};

} // namespace dtu

#endif // DTU_CORE_COMPUTE_CORE_HH
