#include "baseline/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

double
GpuSpec::peakOps(DType t) const
{
    switch (t) {
      case DType::FP32:
      case DType::INT32:
        return fp32Tflops * 1e12;
      case DType::TF32:
        // Ampere (FP16 ~ 4x FP32) runs TF32 at half the FP16
        // tensor-core rate; Turing (FP16 ~ 8x FP32) has no TF32 and
        // falls back to FP32.
        return fp16Tflops < 6.0 * fp32Tflops ? fp16Tflops * 1e12 / 2.0
                                             : fp32Tflops * 1e12;
      case DType::FP16:
      case DType::BF16:
      case DType::INT16:
        return fp16Tflops * 1e12;
      case DType::INT8:
        return int8Tops * 1e12;
    }
    return fp32Tflops * 1e12;
}

GpuSpec
t4Spec()
{
    GpuSpec spec;
    spec.name = "T4";
    spec.fp32Tflops = 8.1;
    spec.fp16Tflops = 65.0;
    spec.int8Tops = 130.0;
    spec.memoryGiB = 16.0;
    spec.bandwidthGBs = 320.0;
    spec.tdpWatts = 70.0;
    spec.techNm = 12;
    spec.interconnect = "PCIe3";
    spec.pcieGBs = 12.0;
    return spec;
}

GpuSpec
a10Spec()
{
    GpuSpec spec;
    spec.name = "A10";
    spec.fp32Tflops = 31.2;
    spec.fp16Tflops = 125.0;
    spec.int8Tops = 250.0;
    spec.memoryGiB = 24.0;
    spec.bandwidthGBs = 600.0;
    spec.tdpWatts = 150.0;
    spec.techNm = 7;
    spec.interconnect = "PCIe4";
    spec.pcieGBs = 24.0;
    return spec;
}

GpuEfficiency
t4Efficiency()
{
    GpuEfficiency eff;
    eff.convDense = 0.68;
    eff.convShallow = 0.31;
    eff.convDepthwise = 0.07;
    eff.gemm = 0.71;
    eff.gemmSkinny = 0.12;
    eff.attention = 0.39;
    eff.memStreaming = 0.86;
    eff.memShuffle = 0.33;
    eff.launchMicros = 5.5;
    eff.loadPowerFraction = 0.90;
    return eff;
}

GpuEfficiency
a10Efficiency()
{
    GpuEfficiency eff;
    eff.convDense = 0.70;
    eff.convShallow = 0.32;
    eff.convDepthwise = 0.08;
    eff.gemm = 0.72;
    eff.gemmSkinny = 0.12;
    eff.attention = 0.42;
    eff.memStreaming = 0.85;
    eff.memShuffle = 0.33;
    eff.launchMicros = 3.5;
    eff.loadPowerFraction = 0.85;
    return eff;
}

GpuModel::GpuModel(GpuSpec spec, GpuEfficiency efficiency)
    : spec_(std::move(spec)), eff_(efficiency)
{}

Tick
GpuModel::opTicks(const PlannedOp &op, DType dtype, int batch) const
{
    // Batching raises SM occupancy and tile efficiency: more thread
    // blocks per kernel hide latency better, up to a saturation cap.
    double batch_uplift =
        std::min(1.2, 1.0 + 0.06 * std::log2(std::max(1, batch)));

    // Compute roof.
    double compute_eff = eff_.convDense;
    switch (op.anchor) {
      case OpKind::Conv2d:
        compute_eff = op.dimK < 128 ? eff_.convShallow : eff_.convDense;
        // Tensor-core tile quantization: convs with few output
        // channels fill only part of the 128-wide MMA tile.
        if (op.dimN < 128)
            compute_eff *= 0.55;
        break;
      case OpKind::DWConv2d:
        compute_eff = eff_.convDepthwise;
        break;
      case OpKind::MatMul:
      case OpKind::Linear:
        compute_eff = op.dimM < 16 ? eff_.gemmSkinny : eff_.gemm;
        break;
      case OpKind::Attention:
        compute_eff = eff_.attention;
        break;
      default:
        compute_eff = eff_.convDense;
        break;
    }
    double compute_seconds =
        op.flops() /
        (spec_.peakOps(dtype) * compute_eff * batch_uplift);

    // Memory roof: everything materializes in DRAM between fused
    // kernels (no software-managed scratchpad residency).
    bool shuffle = op.loadTransform == TransformKind::Transpose ||
                   op.anchor == OpKind::Upsample ||
                   op.anchor == OpKind::PixelShuffle ||
                   op.anchor == OpKind::Transpose ||
                   op.anchor == OpKind::Concat;
    double mem_eff = shuffle ? eff_.memShuffle : eff_.memStreaming;
    double bytes = static_cast<double>(op.inputBytes) +
                   static_cast<double>(op.outputBytes) +
                   static_cast<double>(op.weightBytes);
    double mem_seconds = bytes / (spec_.bandwidthGBs * 1e9 * mem_eff);

    double seconds = std::max(compute_seconds, mem_seconds) +
                     eff_.launchMicros * 1e-6;
    return secondsToTicks(seconds);
}

GpuResult
GpuModel::run(const ExecutionPlan &plan) const
{
    GpuResult result;
    Tick total = 0;
    // Host transfers: input upload + output download over PCIe.
    if (!plan.ops.empty()) {
        double bytes =
            static_cast<double>(plan.ops.front().inputBytes) +
            static_cast<double>(plan.ops.back().outputBytes);
        total += secondsToTicks(bytes / (spec_.pcieGBs * 1e9) + 20e-6);
    }
    for (const PlannedOp &op : plan.ops)
        total += opTicks(op, plan.dtype, plan.batch);
    result.latency = total;
    double seconds = ticksToSeconds(total);
    result.watts = spec_.tdpWatts * eff_.loadPowerFraction;
    result.joules = result.watts * seconds;
    result.throughput = seconds > 0.0 ? plan.batch / seconds : 0.0;
    return result;
}

} // namespace dtu
