/**
 * @file
 * Analytical GPU baselines: Nvidia T4 and A10 under TensorRT.
 *
 * The comparison hardware is not available, so per the substitution
 * policy these are roofline models driven by the public spec sheets
 * (Table IV) plus per-operator-class efficiency factors representing
 * well-known TensorRT behaviour: dense convolutions and large GEMMs
 * run near tensor-core peak, depthwise convolutions and skinny
 * matrices run far below it, layout-shuffling ops (pixel shuffle,
 * upsampling, transpose) achieve a fraction of DRAM bandwidth, and
 * every fused kernel pays a launch overhead. The factors are global
 * constants — one set per GPU, never tuned per benchmark.
 */

#ifndef DTU_BASELINE_GPU_MODEL_HH
#define DTU_BASELINE_GPU_MODEL_HH

#include <string>
#include <vector>

#include "compiler/plan.hh"
#include "sim/ticks.hh"

namespace dtu
{

/** Public data-sheet numbers (Table IV). */
struct GpuSpec
{
    std::string name;
    double fp32Tflops = 0.0;
    double fp16Tflops = 0.0;
    double int8Tops = 0.0;
    double memoryGiB = 0.0;
    double bandwidthGBs = 0.0;
    double tdpWatts = 0.0;
    int techNm = 0;
    std::string interconnect;
    /** Effective host-transfer bandwidth over the interconnect. */
    double pcieGBs = 12.0;

    /** Peak ops/s for a dtype. */
    double peakOps(DType t) const;
};

/** Nvidia T4 (PB-09256). */
GpuSpec t4Spec();
/** Nvidia A10 (PB-10415). */
GpuSpec a10Spec();

struct GpuEfficiency;
/** Turing-generation TensorRT efficiency profile. */
GpuEfficiency t4Efficiency();
/** Ampere-generation TensorRT efficiency profile (better kernels,
 *  lower launch overhead, async copy pipelines). */
GpuEfficiency a10Efficiency();

/** Per-operator-class fractions of peak (TensorRT behaviour). */
struct GpuEfficiency
{
    /** Dense conv with a healthy reduction dimension. */
    double convDense = 0.62;
    /** Conv whose reduction dim is small (first layers, K < 128). */
    double convShallow = 0.28;
    /** Depthwise conv: tensor cores sit idle. */
    double convDepthwise = 0.06;
    /** Large GEMM. */
    double gemm = 0.62;
    /** Skinny GEMM (M below a warp tile): batch-1 FC layers. */
    double gemmSkinny = 0.10;
    /** Attention (bmm + softmax round trips). */
    double attention = 0.35;
    /** Fraction of DRAM bandwidth streaming elementwise ops reach. */
    double memStreaming = 0.78;
    /** Fraction of DRAM bandwidth for layout-shuffling access. */
    double memShuffle = 0.30;
    /** Per-fused-kernel launch + scheduling overhead. */
    double launchMicros = 7.0;
    /** Power drawn while running DNNs, as a fraction of TDP. */
    double loadPowerFraction = 0.88;
};

/** Per-run outcome of the analytical model. */
struct GpuResult
{
    Tick latency = 0;
    double joules = 0.0;
    double watts = 0.0;
    double throughput = 0.0;
    double latencyMs() const { return ticksToMilliSeconds(latency); }
};

/** The roofline evaluator. */
class GpuModel
{
  public:
    explicit GpuModel(GpuSpec spec, GpuEfficiency efficiency = {});

    const GpuSpec &spec() const { return spec_; }

    /**
     * Evaluate a fused plan (the same fusion pass models TensorRT's
     * kernel fusion).
     */
    GpuResult run(const ExecutionPlan &plan) const;

    /** Time for one operator (exposed for tests). */
    Tick opTicks(const PlannedOp &op, DType dtype, int batch = 1) const;

  private:
    GpuSpec spec_;
    GpuEfficiency eff_;
};

} // namespace dtu

#endif // DTU_BASELINE_GPU_MODEL_HH
