#include "models/model_zoo.hh"

#include "sim/logging.hh"

namespace dtu
{
namespace models
{

std::vector<ModelInfo>
modelZoo()
{
    return {
        {"yolov3", "Object Detection", "3x608x608"},
        {"centernet", "Object Detection", "3x512x512"},
        {"retinaface", "Object Detection", "3x640x640"},
        {"vgg16", "Image Classification", "3x224x224"},
        {"resnet50", "Image Classification", "3x224x224"},
        {"inception_v4", "Image Classification", "3x299x299"},
        {"unet", "Segmentation", "3x512x512"},
        {"srresnet", "Super Resolution", "224x224x3"},
        {"bert_large", "NLP", "384"},
        {"conformer", "Speech Recognition", "80x401"},
    };
}

Graph
buildModel(const std::string &name, int batch)
{
    if (name == "yolov3")
        return buildYoloV3(batch);
    if (name == "centernet")
        return buildCenterNet(batch);
    if (name == "retinaface")
        return buildRetinaFace(batch);
    if (name == "vgg16")
        return buildVgg16(batch);
    if (name == "resnet50")
        return buildResnet50(batch);
    if (name == "inception_v4")
        return buildInceptionV4(batch);
    if (name == "unet")
        return buildUnet(batch);
    if (name == "srresnet")
        return buildSrResnet(batch);
    if (name == "bert_large")
        return buildBertLarge(batch);
    if (name == "conformer")
        return buildConformer(batch);
    // Decoder models build as their prefill graph at a default prompt
    // length, so model-oblivious paths (placement weight sizing,
    // one-shot serving) keep working; the serving scheduler compiles
    // the per-phase variants explicitly.
    if (decoderSpec(name))
        return buildDecoderPrefill(name, batch, /*prompt_len=*/128);
    fatal("unknown model '", name, "'");
}

} // namespace models
} // namespace dtu
