#include "models/blocks.hh"

namespace dtu
{
namespace models
{

int
conv(Graph &g, int in, const std::string &name, int out_channels,
     int kernel, int stride, int pad)
{
    OpAttrs attrs;
    attrs.kernelH = kernel;
    attrs.kernelW = kernel;
    attrs.strideH = stride;
    attrs.strideW = stride;
    attrs.padH = pad;
    attrs.padW = pad;
    attrs.outChannels = out_channels;
    return g.add(OpKind::Conv2d, name, {in}, attrs);
}

namespace
{

int
convBnAct(Graph &g, int in, const std::string &name, int out_channels,
          int kh, int kw, int stride, int ph, int pw, bool cheap_act)
{
    OpAttrs attrs;
    attrs.kernelH = kh;
    attrs.kernelW = kw;
    attrs.strideH = stride;
    attrs.strideW = stride;
    attrs.padH = ph;
    attrs.padW = pw;
    attrs.outChannels = out_channels;
    int c = g.add(OpKind::Conv2d, name, {in}, attrs);
    int b = g.add(OpKind::BatchNorm, name + ".bn", {c});
    OpAttrs act;
    act.cheapActivation = cheap_act;
    act.func = SpuFunc::Swish; // used only when not cheap
    return g.add(OpKind::Activation, name + ".act", {b}, act);
}

} // namespace

int
convBnRelu(Graph &g, int in, const std::string &name, int out_channels,
           int kernel, int stride, int pad)
{
    return convBnAct(g, in, name, out_channels, kernel, kernel, stride,
                     pad, pad, /*cheap_act=*/true);
}

int
convBnLeaky(Graph &g, int in, const std::string &name, int out_channels,
            int kernel, int stride, int pad)
{
    // LeakyReLU is also a single vector-engine op (select + scale).
    return convBnAct(g, in, name, out_channels, kernel, kernel, stride,
                     pad, pad, /*cheap_act=*/true);
}

int
convBnReluRect(Graph &g, int in, const std::string &name, int out_channels,
               int kh, int kw, int stride, int ph, int pw)
{
    return convBnAct(g, in, name, out_channels, kh, kw, stride, ph, pw,
                     /*cheap_act=*/true);
}

int
bottleneck(Graph &g, int in, const std::string &name, int mid_channels,
           int out_channels, int stride, bool downsample)
{
    int x = convBnRelu(g, in, name + ".conv1", mid_channels, 1, 1, 0);
    // v1.5: the stride lives in the 3x3, not the 1x1.
    x = convBnRelu(g, x, name + ".conv2", mid_channels, 3, stride, 1);
    OpAttrs expand;
    expand.kernelH = expand.kernelW = 1;
    expand.outChannels = out_channels;
    x = g.add(OpKind::Conv2d, name + ".conv3", {x}, expand);
    x = g.add(OpKind::BatchNorm, name + ".bn3", {x});
    int skip = in;
    if (downsample) {
        OpAttrs ds;
        ds.kernelH = ds.kernelW = 1;
        ds.strideH = ds.strideW = stride;
        ds.outChannels = out_channels;
        skip = g.add(OpKind::Conv2d, name + ".downsample", {in}, ds);
        skip = g.add(OpKind::BatchNorm, name + ".downsample.bn", {skip});
    }
    int sum = g.add(OpKind::Add, name + ".add", {x, skip});
    OpAttrs relu;
    relu.cheapActivation = true;
    return g.add(OpKind::Activation, name + ".relu", {sum}, relu);
}

int
basicBlock(Graph &g, int in, const std::string &name, int channels,
           int stride, bool downsample)
{
    int x = convBnRelu(g, in, name + ".conv1", channels, 3, stride, 1);
    OpAttrs second;
    second.kernelH = second.kernelW = 3;
    second.padH = second.padW = 1;
    second.outChannels = channels;
    x = g.add(OpKind::Conv2d, name + ".conv2", {x}, second);
    x = g.add(OpKind::BatchNorm, name + ".bn2", {x});
    int skip = in;
    if (downsample) {
        OpAttrs ds;
        ds.kernelH = ds.kernelW = 1;
        ds.strideH = ds.strideW = stride;
        ds.outChannels = channels;
        skip = g.add(OpKind::Conv2d, name + ".downsample", {in}, ds);
        skip = g.add(OpKind::BatchNorm, name + ".downsample.bn", {skip});
    }
    int sum = g.add(OpKind::Add, name + ".add", {x, skip});
    OpAttrs relu;
    relu.cheapActivation = true;
    return g.add(OpKind::Activation, name + ".relu", {sum}, relu);
}

int
darknetResidual(Graph &g, int in, const std::string &name,
                int squeeze_channels, int channels)
{
    int x = convBnLeaky(g, in, name + ".squeeze", squeeze_channels, 1, 1,
                        0);
    x = convBnLeaky(g, x, name + ".expand", channels, 3, 1, 1);
    return g.add(OpKind::Add, name + ".add", {x, in});
}

int
transformerLayer(Graph &g, int in, const std::string &name, int hidden,
                 int heads, int ff_hidden, std::int64_t kv_len)
{
    // Self-attention sublayer.
    OpAttrs proj;
    proj.outFeatures = 3 * hidden;
    int qkv = g.add(OpKind::Linear, name + ".qkv", {in}, proj);
    OpAttrs narrow;
    narrow.axis = 2;
    narrow.sliceLen = hidden;
    int q = g.add(OpKind::Slice, name + ".q", {qkv}, narrow);
    OpAttrs attn;
    attn.heads = heads;
    attn.kvLen = kv_len;
    int ctx = g.add(OpKind::Attention, name + ".attention", {q}, attn);
    OpAttrs out_proj;
    out_proj.outFeatures = hidden;
    int o = g.add(OpKind::Linear, name + ".proj", {ctx}, out_proj);
    int res1 = g.add(OpKind::Add, name + ".res1", {o, in});
    int ln1 = g.add(OpKind::LayerNorm, name + ".ln1", {res1});

    // Feed-forward sublayer with GELU.
    OpAttrs up;
    up.outFeatures = ff_hidden;
    int ff1 = g.add(OpKind::Linear, name + ".ff1", {ln1}, up);
    OpAttrs gelu;
    gelu.func = SpuFunc::Gelu;
    int act = g.add(OpKind::Activation, name + ".gelu", {ff1}, gelu);
    OpAttrs down;
    down.outFeatures = hidden;
    int ff2 = g.add(OpKind::Linear, name + ".ff2", {act}, down);
    int res2 = g.add(OpKind::Add, name + ".res2", {ff2, ln1});
    return g.add(OpKind::LayerNorm, name + ".ln2", {res2});
}

int
transformerLayerShard(Graph &g, int in, const std::string &name,
                      int hidden, int heads, int ff_hidden, int tp,
                      std::int64_t kv_len)
{
    if (tp <= 1)
        return transformerLayer(g, in, name, hidden, heads, ff_hidden,
                                kv_len);

    // Self-attention sublayer, column-split: this device holds
    // heads/tp heads and the matching hidden/tp slice of Q/K/V.
    OpAttrs proj;
    proj.outFeatures = 3 * hidden / tp;
    int qkv = g.add(OpKind::Linear, name + ".qkv", {in}, proj);
    OpAttrs narrow;
    narrow.axis = 2;
    narrow.sliceLen = hidden / tp;
    int q = g.add(OpKind::Slice, name + ".q", {qkv}, narrow);
    OpAttrs attn;
    attn.heads = heads / tp;
    attn.kvLen = kv_len;
    int ctx = g.add(OpKind::Attention, name + ".attention", {q}, attn);
    // Row-split out-projection back to the full width; the partial
    // sums from the tp shards meet in an all-reduce after this op.
    OpAttrs out_proj;
    out_proj.outFeatures = hidden;
    int o = g.add(OpKind::Linear, name + ".proj", {ctx}, out_proj);
    int res1 = g.add(OpKind::Add, name + ".res1", {o, in});
    int ln1 = g.add(OpKind::LayerNorm, name + ".ln1", {res1});

    // Feed-forward sublayer: column-split up, row-split down (the
    // second all-reduce point).
    OpAttrs up;
    up.outFeatures = ff_hidden / tp;
    int ff1 = g.add(OpKind::Linear, name + ".ff1", {ln1}, up);
    OpAttrs gelu;
    gelu.func = SpuFunc::Gelu;
    int act = g.add(OpKind::Activation, name + ".gelu", {ff1}, gelu);
    OpAttrs down;
    down.outFeatures = hidden;
    int ff2 = g.add(OpKind::Linear, name + ".ff2", {act}, down);
    int res2 = g.add(OpKind::Add, name + ".res2", {ff2, ln1});
    return g.add(OpKind::LayerNorm, name + ".ln2", {res2});
}

} // namespace models
} // namespace dtu
