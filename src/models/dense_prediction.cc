/**
 * @file
 * Dense-prediction models: UNet (segmentation) and SRResNet (super
 * resolution).
 */

#include "models/blocks.hh"
#include "models/model_zoo.hh"

namespace dtu
{
namespace models
{

Graph
buildUnet(int batch)
{
    Graph g("unet");
    int x = g.addInput("image", Shape({batch, 3, 512, 512}));

    auto double_conv = [&](int in, const std::string &name, int channels) {
        int y = convBnRelu(g, in, name + ".conv1", channels, 3, 1, 1);
        return convBnRelu(g, y, name + ".conv2", channels, 3, 1, 1);
    };

    OpAttrs pool;
    pool.kernelH = pool.kernelW = 2;
    pool.strideH = pool.strideW = 2;

    // Encoder.
    int e1 = double_conv(x, "enc1", 64);    // 512
    int d1 = g.add(OpKind::MaxPool, "enc1.pool", {e1}, pool);
    int e2 = double_conv(d1, "enc2", 128);  // 256
    int d2 = g.add(OpKind::MaxPool, "enc2.pool", {e2}, pool);
    int e3 = double_conv(d2, "enc3", 256);  // 128
    int d3 = g.add(OpKind::MaxPool, "enc3.pool", {e3}, pool);
    int e4 = double_conv(d3, "enc4", 512);  // 64
    int d4 = g.add(OpKind::MaxPool, "enc4.pool", {e4}, pool);
    int mid = double_conv(d4, "bottleneck", 1024); // 32

    // Decoder with skip concatenations.
    OpAttrs up;
    up.factor = 2;
    OpAttrs cat;
    cat.axis = 1;
    auto up_block = [&](int in, int skip, const std::string &name,
                        int channels) {
        int u = g.add(OpKind::Upsample, name + ".up", {in}, up);
        u = convBnRelu(g, u, name + ".upconv", channels, 2, 1, 1);
        // The 2x2 "up-conv" keeps spatial size with pad 1 then crop;
        // we model the crop with a slice to the skip's extent.
        OpAttrs crop_h;
        crop_h.axis = 2;
        crop_h.sliceLen = g.node(skip).shape.dim(2);
        u = g.add(OpKind::Slice, name + ".croph", {u}, crop_h);
        OpAttrs crop_w;
        crop_w.axis = 3;
        crop_w.sliceLen = g.node(skip).shape.dim(3);
        u = g.add(OpKind::Slice, name + ".cropw", {u}, crop_w);
        int c = g.add(OpKind::Concat, name + ".concat", {u, skip}, cat);
        return double_conv(c, name, channels);
    };

    int y = up_block(mid, e4, "dec4", 512);
    y = up_block(y, e3, "dec3", 256);
    y = up_block(y, e2, "dec2", 128);
    y = up_block(y, e1, "dec1", 64);
    y = conv(g, y, "head", 2, 1, 1, 0); // foreground/background
    g.markOutput(y);
    return g;
}

Graph
buildSrResnet(int batch)
{
    // SRResNet (the SRGAN generator): 4x super resolution of a
    // 224x224 input via 16 residual blocks and two pixel-shuffle
    // upsampling stages. Activation-heavy and layout-heavy: exactly
    // the workload where the paper reports its largest win.
    Graph g("srresnet");
    int x = g.addInput("image", Shape({batch, 3, 224, 224}));

    int head = conv(g, x, "head", 64, 9, 1, 4);
    OpAttrs prelu;
    prelu.cheapActivation = true;
    head = g.add(OpKind::Activation, "head.prelu", {head}, prelu);

    int y = head;
    for (int i = 0; i < 16; ++i) {
        std::string name = "resblock" + std::to_string(i);
        int r = convBnRelu(g, y, name + ".conv1", 64, 3, 1, 1);
        r = conv(g, r, name + ".conv2", 64, 3, 1, 1);
        r = g.add(OpKind::BatchNorm, name + ".bn2", {r});
        y = g.add(OpKind::Add, name + ".add", {r, y});
    }
    y = conv(g, y, "trunk", 64, 3, 1, 1);
    y = g.add(OpKind::BatchNorm, "trunk.bn", {y});
    y = g.add(OpKind::Add, "trunk.add", {y, head});

    // Two x2 pixel-shuffle upsampling stages: 224 -> 448 -> 896.
    for (int i = 0; i < 2; ++i) {
        std::string name = "upsample" + std::to_string(i + 1);
        y = conv(g, y, name + ".conv", 256, 3, 1, 1);
        OpAttrs shuffle;
        shuffle.factor = 2;
        y = g.add(OpKind::PixelShuffle, name + ".shuffle", {y}, shuffle);
        y = g.add(OpKind::Activation, name + ".prelu", {y}, prelu);
    }
    y = conv(g, y, "tail", 3, 9, 1, 4);
    OpAttrs tanh;
    tanh.func = SpuFunc::Tanh;
    y = g.add(OpKind::Activation, "tail.tanh", {y}, tanh);
    g.markOutput(y);
    return g;
}

} // namespace models
} // namespace dtu
