/**
 * @file
 * Object detection models: YOLOv3, CenterNet, RetinaFace.
 */

#include "models/blocks.hh"
#include "models/model_zoo.hh"

namespace dtu
{
namespace models
{

Graph
buildYoloV3(int batch)
{
    Graph g("yolov3");
    int x = g.addInput("image", Shape({batch, 3, 608, 608}));

    // Darknet-53 backbone.
    x = convBnLeaky(g, x, "d0", 32, 3, 1, 1);
    x = convBnLeaky(g, x, "d1", 64, 3, 2, 1); // 304
    x = darknetResidual(g, x, "res1.0", 32, 64);
    x = convBnLeaky(g, x, "d2", 128, 3, 2, 1); // 152
    for (int i = 0; i < 2; ++i)
        x = darknetResidual(g, x, "res2." + std::to_string(i), 64, 128);
    x = convBnLeaky(g, x, "d3", 256, 3, 2, 1); // 76
    for (int i = 0; i < 8; ++i)
        x = darknetResidual(g, x, "res3." + std::to_string(i), 128, 256);
    int route36 = x; // 76x76x256
    x = convBnLeaky(g, x, "d4", 512, 3, 2, 1); // 38
    for (int i = 0; i < 8; ++i)
        x = darknetResidual(g, x, "res4." + std::to_string(i), 256, 512);
    int route61 = x; // 38x38x512
    x = convBnLeaky(g, x, "d5", 1024, 3, 2, 1); // 19
    for (int i = 0; i < 4; ++i)
        x = darknetResidual(g, x, "res5." + std::to_string(i), 512, 1024);

    // Detection head helper: 5-conv set then 3x3 + 1x1 output.
    auto conv_set = [&](int in, const std::string &name, int channels) {
        int y = convBnLeaky(g, in, name + ".c1", channels, 1, 1, 0);
        y = convBnLeaky(g, y, name + ".c2", channels * 2, 3, 1, 1);
        y = convBnLeaky(g, y, name + ".c3", channels, 1, 1, 0);
        y = convBnLeaky(g, y, name + ".c4", channels * 2, 3, 1, 1);
        return convBnLeaky(g, y, name + ".c5", channels, 1, 1, 0);
    };
    auto detect = [&](int in, const std::string &name, int channels) {
        int y = convBnLeaky(g, in, name + ".conv", channels * 2, 3, 1, 1);
        return conv(g, y, name + ".out", 255, 1, 1, 0); // 3*(80+5)
    };

    // Scale 1 (19x19).
    int set1 = conv_set(x, "head1", 512);
    int det1 = detect(set1, "det1", 512);
    g.markOutput(det1);

    // Scale 2 (38x38): upsample + concat with route61.
    int up1 = convBnLeaky(g, set1, "up1.conv", 256, 1, 1, 0);
    OpAttrs up;
    up.factor = 2;
    up1 = g.add(OpKind::Upsample, "up1", {up1}, up);
    OpAttrs cat;
    cat.axis = 1;
    int cat1 = g.add(OpKind::Concat, "cat1", {up1, route61}, cat);
    int set2 = conv_set(cat1, "head2", 256);
    int det2 = detect(set2, "det2", 256);
    g.markOutput(det2);

    // Scale 3 (76x76).
    int up2 = convBnLeaky(g, set2, "up2.conv", 128, 1, 1, 0);
    up2 = g.add(OpKind::Upsample, "up2", {up2}, up);
    int cat2 = g.add(OpKind::Concat, "cat2", {up2, route36}, cat);
    int set3 = conv_set(cat2, "head3", 128);
    int det3 = detect(set3, "det3", 128);
    g.markOutput(det3);
    return g;
}

Graph
buildCenterNet(int batch)
{
    // CenterNet with the ResNet-18 + 3-deconv configuration.
    Graph g("centernet");
    int x = g.addInput("image", Shape({batch, 3, 512, 512}));
    x = convBnRelu(g, x, "stem", 64, 7, 2, 3); // 256
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    pool.padH = pool.padW = 1;
    x = g.add(OpKind::MaxPool, "stem.pool", {x}, pool); // 128

    const int channels[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int b = 0; b < 2; ++b) {
            std::string name = "stage" + std::to_string(stage + 1) +
                               ".block" + std::to_string(b);
            int stride = (stage > 0 && b == 0) ? 2 : 1;
            bool downsample = stage > 0 && b == 0;
            x = basicBlock(g, x, name, channels[stage], stride,
                           downsample);
        }
    }
    // x: 512ch @ 16x16. Three upsampling stages back to 128x128.
    const int up_channels[] = {256, 128, 64};
    for (int i = 0; i < 3; ++i) {
        std::string name = "deconv" + std::to_string(i + 1);
        OpAttrs up;
        up.factor = 2;
        int u = g.add(OpKind::Upsample, name + ".up", {x}, up);
        x = convBnRelu(g, u, name + ".conv", up_channels[i], 3, 1, 1);
    }

    // Heads: heatmap (80 classes), size (2), offset (2).
    auto head = [&](const std::string &name, int out) {
        int h = convBnRelu(g, x, name + ".conv", 64, 3, 1, 1);
        return conv(g, h, name + ".out", out, 1, 1, 0);
    };
    int hm = head("heatmap", 80);
    OpAttrs sig;
    sig.func = SpuFunc::Sigmoid;
    hm = g.add(OpKind::Activation, "heatmap.sigmoid", {hm}, sig);
    g.markOutput(hm);
    g.markOutput(head("wh", 2));
    g.markOutput(head("offset", 2));
    return g;
}

Graph
buildRetinaFace(int batch)
{
    // RetinaFace with the ResNet-50 backbone + FPN + SSH heads.
    Graph g("retinaface");
    int x = g.addInput("image", Shape({batch, 3, 640, 640}));
    x = convBnRelu(g, x, "stem", 64, 7, 2, 3); // 320
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    pool.padH = pool.padW = 1;
    x = g.add(OpKind::MaxPool, "stem.pool", {x}, pool); // 160

    struct Stage
    {
        int mid, out, blocks, stride;
    };
    const Stage stages[] = {
        {64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2},
        {512, 2048, 3, 2}};
    int c_feats[4] = {0, 0, 0, 0};
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < stages[s].blocks; ++b) {
            std::string name = "stage" + std::to_string(s + 1) + ".block" +
                               std::to_string(b);
            x = bottleneck(g, x, name, stages[s].mid, stages[s].out,
                           b == 0 ? stages[s].stride : 1, b == 0);
        }
        c_feats[s] = x;
    }
    // FPN over C3 (80x80x512), C4 (40x40x1024), C5 (20x20x2048).
    int lat5 = convBnRelu(g, c_feats[3], "fpn.lat5", 256, 1, 1, 0);
    int lat4 = convBnRelu(g, c_feats[2], "fpn.lat4", 256, 1, 1, 0);
    int lat3 = convBnRelu(g, c_feats[1], "fpn.lat3", 256, 1, 1, 0);
    OpAttrs up;
    up.factor = 2;
    int td4 = g.add(OpKind::Upsample, "fpn.up5", {lat5}, up);
    int p4 = g.add(OpKind::Add, "fpn.add4", {td4, lat4});
    p4 = convBnRelu(g, p4, "fpn.smooth4", 256, 3, 1, 1);
    int td3 = g.add(OpKind::Upsample, "fpn.up4", {p4}, up);
    int p3 = g.add(OpKind::Add, "fpn.add3", {td3, lat3});
    p3 = convBnRelu(g, p3, "fpn.smooth3", 256, 3, 1, 1);
    int p5 = convBnRelu(g, lat5, "fpn.smooth5", 256, 3, 1, 1);

    // SSH context module + heads per pyramid level.
    int level = 3;
    for (int p : {p3, p4, p5}) {
        std::string name = "ssh" + std::to_string(level);
        int b1 = convBnRelu(g, p, name + ".b1", 128, 3, 1, 1);
        int b2 = convBnRelu(g, p, name + ".b2a", 64, 3, 1, 1);
        int b2b = convBnRelu(g, b2, name + ".b2b", 64, 3, 1, 1);
        int b3 = convBnRelu(g, b2, name + ".b3a", 64, 3, 1, 1);
        b3 = convBnRelu(g, b3, name + ".b3b", 64, 3, 1, 1);
        OpAttrs cat;
        cat.axis = 1;
        int ssh = g.add(OpKind::Concat, name + ".concat", {b1, b2b, b3},
                        cat);
        // Heads: 2 anchors x (2 class + 4 bbox + 10 landmark).
        g.markOutput(conv(g, ssh, name + ".class", 4, 1, 1, 0));
        g.markOutput(conv(g, ssh, name + ".bbox", 8, 1, 1, 0));
        g.markOutput(conv(g, ssh, name + ".landmark", 20, 1, 1, 0));
        ++level;
    }
    return g;
}

} // namespace models
} // namespace dtu
