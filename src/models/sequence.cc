/**
 * @file
 * Sequence models: BERT-Large (NLP) and Conformer (speech).
 */

#include "models/blocks.hh"
#include "models/model_zoo.hh"

namespace dtu
{
namespace models
{

Graph
buildBertLarge(int batch, int sequence)
{
    // BERT-Large: 24 layers, hidden 1024, 16 heads, FF 4096,
    // WordPiece vocabulary 30522; input length 384 (Table III).
    Graph g("bert_large");
    constexpr int hidden = 1024;
    constexpr int heads = 16;
    constexpr int ff = 4096;
    constexpr int layers = 24;

    int ids = g.addInput("token_ids", Shape({batch, sequence}));
    OpAttrs embed;
    embed.outFeatures = hidden;
    embed.vocab = 30522;
    embed.inputDensity = 0.05; // one-hot rows: highly sparse lookups
    int x = g.add(OpKind::Embedding, "embedding", {ids}, embed);
    x = g.add(OpKind::LayerNorm, "embedding.ln", {x});

    for (int i = 0; i < layers; ++i)
        x = transformerLayer(g, x, "layer" + std::to_string(i), hidden,
                             heads, ff);

    // Pooler over [CLS].
    OpAttrs first;
    first.axis = 1;
    first.sliceLen = 1;
    int cls = g.add(OpKind::Slice, "cls", {x}, first);
    OpAttrs pool;
    pool.outFeatures = hidden;
    int pooled = g.add(OpKind::Linear, "pooler", {cls}, pool);
    OpAttrs tanh;
    tanh.func = SpuFunc::Tanh;
    pooled = g.add(OpKind::Activation, "pooler.tanh", {pooled}, tanh);
    g.markOutput(pooled);
    g.markOutput(x);
    return g;
}

namespace
{

/** One Conformer block: FF/2 + MHSA + conv module + FF/2 + LN. */
int
conformerBlock(Graph &g, int in, const std::string &name, int d_model,
               int heads, int ff_hidden, int conv_kernel)
{
    // Half-step feed-forward (Macaron) #1.
    auto half_ff = [&](int x, const std::string &ff_name) {
        int ln = g.add(OpKind::LayerNorm, ff_name + ".ln", {x});
        OpAttrs up;
        up.outFeatures = ff_hidden;
        int f = g.add(OpKind::Linear, ff_name + ".up", {ln}, up);
        OpAttrs swish;
        swish.func = SpuFunc::Swish;
        f = g.add(OpKind::Activation, ff_name + ".swish", {f}, swish);
        OpAttrs down;
        down.outFeatures = d_model;
        f = g.add(OpKind::Linear, ff_name + ".down", {f}, down);
        return g.add(OpKind::Add, ff_name + ".res", {f, x});
    };

    int x = half_ff(in, name + ".ff1");

    // Multi-head self-attention sublayer.
    int ln = g.add(OpKind::LayerNorm, name + ".mhsa.ln", {x});
    OpAttrs qkv;
    qkv.outFeatures = 3 * d_model;
    int proj = g.add(OpKind::Linear, name + ".mhsa.qkv", {ln}, qkv);
    OpAttrs narrow;
    narrow.axis = 2;
    narrow.sliceLen = d_model;
    int q = g.add(OpKind::Slice, name + ".mhsa.q", {proj}, narrow);
    OpAttrs attn;
    attn.heads = heads;
    int ctx = g.add(OpKind::Attention, name + ".mhsa.attn", {q}, attn);
    OpAttrs out;
    out.outFeatures = d_model;
    ctx = g.add(OpKind::Linear, name + ".mhsa.proj", {ctx}, out);
    x = g.add(OpKind::Add, name + ".mhsa.res", {ctx, x});

    // Convolution module: pointwise (GLU) -> depthwise -> pointwise.
    ln = g.add(OpKind::LayerNorm, name + ".conv.ln", {x});
    OpAttrs pw1;
    pw1.outFeatures = 2 * d_model; // GLU doubles then gates
    int c = g.add(OpKind::Linear, name + ".conv.pw1", {ln}, pw1);
    OpAttrs gate;
    gate.axis = 2;
    gate.sliceLen = d_model;
    int a = g.add(OpKind::Slice, name + ".conv.glu.a", {c}, gate);
    int b = g.add(OpKind::Slice, name + ".conv.glu.b", {c}, gate);
    OpAttrs sig;
    sig.func = SpuFunc::Sigmoid;
    b = g.add(OpKind::Activation, name + ".conv.glu.sig", {b}, sig);
    c = g.add(OpKind::Mul, name + ".conv.glu", {a, b});
    // Depthwise conv over time: reshape [B,S,D] -> [B,D,S,1].
    const Shape &cs = g.node(c).shape;
    OpAttrs to_nchw;
    to_nchw.targetShape = {cs.dim(0), cs.dim(2), cs.dim(1), 1};
    int t = g.add(OpKind::Reshape, name + ".conv.to_nchw", {c}, to_nchw);
    OpAttrs dw;
    dw.kernelH = conv_kernel;
    dw.kernelW = 1;
    dw.padH = conv_kernel / 2;
    t = g.add(OpKind::DWConv2d, name + ".conv.dw", {t}, dw);
    t = g.add(OpKind::BatchNorm, name + ".conv.bn", {t});
    OpAttrs swish;
    swish.func = SpuFunc::Swish;
    t = g.add(OpKind::Activation, name + ".conv.swish", {t}, swish);
    OpAttrs to_bsd;
    to_bsd.targetShape = {cs.dim(0), cs.dim(1), cs.dim(2)};
    c = g.add(OpKind::Reshape, name + ".conv.to_bsd", {t}, to_bsd);
    OpAttrs pw2;
    pw2.outFeatures = d_model;
    c = g.add(OpKind::Linear, name + ".conv.pw2", {c}, pw2);
    x = g.add(OpKind::Add, name + ".conv.res", {c, x});

    x = half_ff(x, name + ".ff2");
    return g.add(OpKind::LayerNorm, name + ".ln_out", {x});
}

} // namespace

Graph
buildConformer(int batch)
{
    // Conformer (large-ish): 80-dim log-mel features over 401 frames
    // (Table III input 80x401); conv subsampling to S=101, then 16
    // blocks with d_model=512, 8 heads, FF 2048, depthwise kernel 31.
    Graph g("conformer");
    constexpr int d_model = 512;
    constexpr int heads = 8;
    constexpr int ff = 2048;
    constexpr int blocks = 16;

    int x = g.addInput("features", Shape({batch, 1, 80, 401}));
    // Two 3x3 stride-2 convs subsample time (and frequency) by 4.
    x = convBnRelu(g, x, "subsample.conv1", d_model / 4, 3, 2, 1);
    x = convBnRelu(g, x, "subsample.conv2", d_model / 4, 3, 2, 1);
    const Shape &s = g.node(x).shape; // [B, 128, 20, 101]
    OpAttrs to_seq;
    to_seq.targetShape = {s.dim(0), s.dim(3), s.dim(1) * s.dim(2)};
    x = g.add(OpKind::Reshape, "subsample.flatten", {x}, to_seq);
    OpAttrs in_proj;
    in_proj.outFeatures = d_model;
    x = g.add(OpKind::Linear, "subsample.proj", {x}, in_proj);

    for (int i = 0; i < blocks; ++i)
        x = conformerBlock(g, x, "block" + std::to_string(i), d_model,
                           heads, ff, 31);

    // CTC-style output head over a 1k wordpiece vocabulary.
    OpAttrs head;
    head.outFeatures = 1024;
    x = g.add(OpKind::Linear, "ctc_head", {x}, head);
    OpAttrs softmax;
    softmax.axis = 2;
    x = g.add(OpKind::Softmax, "softmax", {x}, softmax);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace dtu
