/**
 * @file
 * Sequence models: BERT-Large (NLP), Conformer (speech), and the
 * GPT-style autoregressive decoders (LLM serving).
 */

#include "models/blocks.hh"
#include "models/model_zoo.hh"

#include "sim/logging.hh"

namespace dtu
{
namespace models
{

Graph
buildBertLarge(int batch, int sequence)
{
    // BERT-Large: 24 layers, hidden 1024, 16 heads, FF 4096,
    // WordPiece vocabulary 30522; input length 384 (Table III).
    Graph g("bert_large");
    constexpr int hidden = 1024;
    constexpr int heads = 16;
    constexpr int ff = 4096;
    constexpr int layers = 24;

    int ids = g.addInput("token_ids", Shape({batch, sequence}));
    OpAttrs embed;
    embed.outFeatures = hidden;
    embed.vocab = 30522;
    embed.inputDensity = 0.05; // one-hot rows: highly sparse lookups
    int x = g.add(OpKind::Embedding, "embedding", {ids}, embed);
    x = g.add(OpKind::LayerNorm, "embedding.ln", {x});

    for (int i = 0; i < layers; ++i)
        x = transformerLayer(g, x, "layer" + std::to_string(i), hidden,
                             heads, ff);

    // Pooler over [CLS].
    OpAttrs first;
    first.axis = 1;
    first.sliceLen = 1;
    int cls = g.add(OpKind::Slice, "cls", {x}, first);
    OpAttrs pool;
    pool.outFeatures = hidden;
    int pooled = g.add(OpKind::Linear, "pooler", {cls}, pool);
    OpAttrs tanh;
    tanh.func = SpuFunc::Tanh;
    pooled = g.add(OpKind::Activation, "pooler.tanh", {pooled}, tanh);
    g.markOutput(pooled);
    g.markOutput(x);
    return g;
}

namespace
{

/** One Conformer block: FF/2 + MHSA + conv module + FF/2 + LN. */
int
conformerBlock(Graph &g, int in, const std::string &name, int d_model,
               int heads, int ff_hidden, int conv_kernel)
{
    // Half-step feed-forward (Macaron) #1.
    auto half_ff = [&](int x, const std::string &ff_name) {
        int ln = g.add(OpKind::LayerNorm, ff_name + ".ln", {x});
        OpAttrs up;
        up.outFeatures = ff_hidden;
        int f = g.add(OpKind::Linear, ff_name + ".up", {ln}, up);
        OpAttrs swish;
        swish.func = SpuFunc::Swish;
        f = g.add(OpKind::Activation, ff_name + ".swish", {f}, swish);
        OpAttrs down;
        down.outFeatures = d_model;
        f = g.add(OpKind::Linear, ff_name + ".down", {f}, down);
        return g.add(OpKind::Add, ff_name + ".res", {f, x});
    };

    int x = half_ff(in, name + ".ff1");

    // Multi-head self-attention sublayer.
    int ln = g.add(OpKind::LayerNorm, name + ".mhsa.ln", {x});
    OpAttrs qkv;
    qkv.outFeatures = 3 * d_model;
    int proj = g.add(OpKind::Linear, name + ".mhsa.qkv", {ln}, qkv);
    OpAttrs narrow;
    narrow.axis = 2;
    narrow.sliceLen = d_model;
    int q = g.add(OpKind::Slice, name + ".mhsa.q", {proj}, narrow);
    OpAttrs attn;
    attn.heads = heads;
    int ctx = g.add(OpKind::Attention, name + ".mhsa.attn", {q}, attn);
    OpAttrs out;
    out.outFeatures = d_model;
    ctx = g.add(OpKind::Linear, name + ".mhsa.proj", {ctx}, out);
    x = g.add(OpKind::Add, name + ".mhsa.res", {ctx, x});

    // Convolution module: pointwise (GLU) -> depthwise -> pointwise.
    ln = g.add(OpKind::LayerNorm, name + ".conv.ln", {x});
    OpAttrs pw1;
    pw1.outFeatures = 2 * d_model; // GLU doubles then gates
    int c = g.add(OpKind::Linear, name + ".conv.pw1", {ln}, pw1);
    OpAttrs gate;
    gate.axis = 2;
    gate.sliceLen = d_model;
    int a = g.add(OpKind::Slice, name + ".conv.glu.a", {c}, gate);
    int b = g.add(OpKind::Slice, name + ".conv.glu.b", {c}, gate);
    OpAttrs sig;
    sig.func = SpuFunc::Sigmoid;
    b = g.add(OpKind::Activation, name + ".conv.glu.sig", {b}, sig);
    c = g.add(OpKind::Mul, name + ".conv.glu", {a, b});
    // Depthwise conv over time: reshape [B,S,D] -> [B,D,S,1].
    const Shape &cs = g.node(c).shape;
    OpAttrs to_nchw;
    to_nchw.targetShape = {cs.dim(0), cs.dim(2), cs.dim(1), 1};
    int t = g.add(OpKind::Reshape, name + ".conv.to_nchw", {c}, to_nchw);
    OpAttrs dw;
    dw.kernelH = conv_kernel;
    dw.kernelW = 1;
    dw.padH = conv_kernel / 2;
    t = g.add(OpKind::DWConv2d, name + ".conv.dw", {t}, dw);
    t = g.add(OpKind::BatchNorm, name + ".conv.bn", {t});
    OpAttrs swish;
    swish.func = SpuFunc::Swish;
    t = g.add(OpKind::Activation, name + ".conv.swish", {t}, swish);
    OpAttrs to_bsd;
    to_bsd.targetShape = {cs.dim(0), cs.dim(1), cs.dim(2)};
    c = g.add(OpKind::Reshape, name + ".conv.to_bsd", {t}, to_bsd);
    OpAttrs pw2;
    pw2.outFeatures = d_model;
    c = g.add(OpKind::Linear, name + ".conv.pw2", {c}, pw2);
    x = g.add(OpKind::Add, name + ".conv.res", {c, x});

    x = half_ff(x, name + ".ff2");
    return g.add(OpKind::LayerNorm, name + ".ln_out", {x});
}

} // namespace

Graph
buildConformer(int batch)
{
    // Conformer (large-ish): 80-dim log-mel features over 401 frames
    // (Table III input 80x401); conv subsampling to S=101, then 16
    // blocks with d_model=512, 8 heads, FF 2048, depthwise kernel 31.
    Graph g("conformer");
    constexpr int d_model = 512;
    constexpr int heads = 8;
    constexpr int ff = 2048;
    constexpr int blocks = 16;

    int x = g.addInput("features", Shape({batch, 1, 80, 401}));
    // Two 3x3 stride-2 convs subsample time (and frequency) by 4.
    x = convBnRelu(g, x, "subsample.conv1", d_model / 4, 3, 2, 1);
    x = convBnRelu(g, x, "subsample.conv2", d_model / 4, 3, 2, 1);
    const Shape &s = g.node(x).shape; // [B, 128, 20, 101]
    OpAttrs to_seq;
    to_seq.targetShape = {s.dim(0), s.dim(3), s.dim(1) * s.dim(2)};
    x = g.add(OpKind::Reshape, "subsample.flatten", {x}, to_seq);
    OpAttrs in_proj;
    in_proj.outFeatures = d_model;
    x = g.add(OpKind::Linear, "subsample.proj", {x}, in_proj);

    for (int i = 0; i < blocks; ++i)
        x = conformerBlock(g, x, "block" + std::to_string(i), d_model,
                           heads, ff, 31);

    // CTC-style output head over a 1k wordpiece vocabulary.
    OpAttrs head;
    head.outFeatures = 1024;
    x = g.add(OpKind::Linear, "ctc_head", {x}, head);
    OpAttrs softmax;
    softmax.axis = 2;
    x = g.add(OpKind::Softmax, "softmax", {x}, softmax);
    g.markOutput(x);
    return g;
}

//
// GPT-style decoders. The same pre-norm-ish transformer stack as
// BERT (we reuse transformerLayer) but consumed autoregressively:
// a compute-bound *prefill* pass embeds the whole prompt at once,
// and per-token *decode* steps run the stack over a single position
// while the attention streams the KV-cache of every past token from
// HBM (OpAttrs::kvLen).
//

const DecoderSpec *
decoderSpec(const std::string &name)
{
    // Three sizes: a tiny decoder that keeps tests and smoke runs
    // fast, a GPT-2-small-class model for the serving bench, and an
    // ~11.9B-parameter model (~23.7 GB of FP16 weights) that does NOT
    // fit one device's 16 GiB HBM — the multi-chip placement target.
    static const DecoderSpec tiny{"gpt_tiny", 4, 256, 4, 1024, 8192};
    static const DecoderSpec small{"gpt_small", 12, 768, 12, 3072,
                                   32000};
    static const DecoderSpec big{"gpt_11b", 36, 5120, 40, 20480, 51200};
    if (name == tiny.name)
        return &tiny;
    if (name == small.name)
        return &small;
    if (name == big.name)
        return &big;
    return nullptr;
}

namespace
{

/**
 * Shared decoder stack: embedding -> layers -> last-token LM head,
 * optionally restricted to one tensor-parallel shard (@p tp > 1) or
 * one pipeline stage (@p stages > 1). A non-first stage takes the
 * upstream stage's activations as its input and skips the embedding;
 * a non-last stage stops before the LM head and outputs activations.
 */
Graph
buildDecoder(const DecoderSpec &spec, int batch, int seq,
             std::int64_t kv_len, const std::string &variant,
             unsigned tp = 1, unsigned stage = 0, unsigned stages = 1)
{
    Graph g(spec.name);
    const int first_layer = spec.layers * static_cast<int>(stage) /
                            static_cast<int>(stages);
    const int last_layer = spec.layers * static_cast<int>(stage + 1) /
                           static_cast<int>(stages);
    int x;
    if (stage == 0) {
        int ids = g.addInput("token_ids", Shape({batch, seq}));
        OpAttrs embed;
        embed.outFeatures = spec.hidden;
        embed.vocab = spec.vocab;
        embed.inputDensity = 0.05; // one-hot rows: highly sparse lookups
        x = g.add(OpKind::Embedding, "embedding", {ids}, embed);
        x = g.add(OpKind::LayerNorm, "embedding.ln", {x});
    } else {
        // Activations streamed from the previous pipeline stage.
        x = g.addInput("activations", Shape({batch, seq, spec.hidden}));
    }

    for (int i = first_layer; i < last_layer; ++i) {
        x = transformerLayerShard(
            g, x, variant + ".layer" + std::to_string(i), spec.hidden,
            spec.heads, spec.ffHidden, static_cast<int>(tp), kv_len);
    }

    if (stage + 1 < stages) {
        g.markOutput(x);
        return g;
    }

    // Only the last position's logits matter for sampling the next
    // token; slicing before the LM head keeps prefill from paying a
    // full seq x vocab projection it would throw away.
    OpAttrs last;
    last.axis = 1;
    last.sliceLen = 1;
    int tail = g.add(OpKind::Slice, "last_token", {x}, last);
    OpAttrs head;
    // Under tensor parallelism the vocabulary is column-split too.
    head.outFeatures = spec.vocab / static_cast<int>(tp);
    int logits = g.add(OpKind::Linear, "lm_head", {tail}, head);
    g.markOutput(logits);
    return g;
}

} // namespace

Graph
buildDecoderPrefill(const std::string &name, int batch, int prompt_len)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(prompt_len < 1, "decoder prefill needs prompt_len >= 1");
    return buildDecoder(*spec, batch, prompt_len, /*kv_len=*/0,
                        "prefill");
}

Graph
buildDecoderStep(const std::string &name, int batch, int kv_len)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(kv_len < 1, "decoder step needs kv_len >= 1");
    return buildDecoder(*spec, batch, /*seq=*/1, kv_len, "decode");
}

std::uint64_t
kvBytesPerToken(const DecoderSpec &spec, std::size_t dtype_bytes)
{
    // One K and one V vector of `hidden` elements per layer per token.
    return 2ull * static_cast<std::uint64_t>(spec.layers) *
           static_cast<std::uint64_t>(spec.hidden) * dtype_bytes;
}

void
validateTensorShard(const DecoderSpec &spec, unsigned tp)
{
    fatalIf(tp == 0, "tensor-parallel degree must be > 0");
    fatalIf(spec.heads % static_cast<int>(tp) != 0,
            "tensor-parallel degree ", tp, " does not divide ",
            spec.name, "'s ", spec.heads, " attention heads");
    fatalIf(spec.hidden % static_cast<int>(tp) != 0 ||
                spec.ffHidden % static_cast<int>(tp) != 0 ||
                spec.vocab % static_cast<int>(tp) != 0,
            "tensor-parallel degree ", tp, " does not divide ",
            spec.name, "'s hidden/FFN/vocab widths");
}

void
validatePipelineStages(const DecoderSpec &spec, unsigned stages)
{
    fatalIf(stages == 0, "pipeline stage count must be > 0");
    fatalIf(spec.layers % static_cast<int>(stages) != 0,
            "pipeline stage count ", stages, " does not divide ",
            spec.name, "'s ", spec.layers, " layers");
}

Graph
buildDecoderPrefillTP(const std::string &name, int batch, int prompt_len,
                      unsigned tp)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(prompt_len < 1, "decoder prefill needs prompt_len >= 1");
    validateTensorShard(*spec, tp);
    return buildDecoder(*spec, batch, prompt_len, /*kv_len=*/0,
                        "prefill", tp);
}

Graph
buildDecoderStepTP(const std::string &name, int batch, int kv_len,
                   unsigned tp)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(kv_len < 1, "decoder step needs kv_len >= 1");
    validateTensorShard(*spec, tp);
    return buildDecoder(*spec, batch, /*seq=*/1, kv_len, "decode", tp);
}

Graph
buildDecoderPrefillStage(const std::string &name, int batch,
                         int prompt_len, unsigned stage, unsigned stages)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(prompt_len < 1, "decoder prefill needs prompt_len >= 1");
    fatalIf(stage >= stages, "pipeline stage out of range");
    validatePipelineStages(*spec, stages);
    return buildDecoder(*spec, batch, prompt_len, /*kv_len=*/0,
                        "prefill", /*tp=*/1, stage, stages);
}

Graph
buildDecoderStepStage(const std::string &name, int batch, int kv_len,
                      unsigned stage, unsigned stages)
{
    const DecoderSpec *spec = decoderSpec(name);
    fatalIf(!spec, "unknown decoder model '", name, "'");
    fatalIf(kv_len < 1, "decoder step needs kv_len >= 1");
    fatalIf(stage >= stages, "pipeline stage out of range");
    validatePipelineStages(*spec, stages);
    return buildDecoder(*spec, batch, /*seq=*/1, kv_len, "decode",
                        /*tp=*/1, stage, stages);
}

} // namespace models
} // namespace dtu
