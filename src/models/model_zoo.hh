/**
 * @file
 * The DNN benchmark zoo (Table III).
 *
 * Ten representative networks across six domains, each built at layer
 * granularity with the paper's input sizes:
 *
 *   Object detection:      YOLOv3 (3x608x608), CenterNet (3x512x512),
 *                          RetinaFace (3x640x640)
 *   Image classification:  VGG16, ResNet50 v1.5 (3x224x224),
 *                          Inception v4 (3x299x299)
 *   Segmentation:          UNet (3x512x512)
 *   Super resolution:      SRResNet (224x224x3)
 *   NLP:                   BERT-Large (sequence 384)
 *   Speech recognition:    Conformer (80x401)
 */

#ifndef DTU_MODELS_MODEL_ZOO_HH
#define DTU_MODELS_MODEL_ZOO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace dtu
{
namespace models
{

/** Table III row. */
struct ModelInfo
{
    std::string name;
    std::string category;
    std::string inputSize;
};

/** The ten Table III entries, in paper order. */
std::vector<ModelInfo> modelZoo();

/** Build a zoo model by name ("resnet50", "bert_large", ...). */
Graph buildModel(const std::string &name, int batch = 1);

Graph buildYoloV3(int batch = 1);
Graph buildCenterNet(int batch = 1);
Graph buildRetinaFace(int batch = 1);
Graph buildVgg16(int batch = 1);
Graph buildResnet50(int batch = 1);
Graph buildInceptionV4(int batch = 1);
Graph buildUnet(int batch = 1);
Graph buildSrResnet(int batch = 1);
Graph buildBertLarge(int batch = 1, int sequence = 384);
Graph buildConformer(int batch = 1);

//
// GPT-style autoregressive decoders (LLM serving). Not Table III
// models: they extend the zoo toward the decode loops dominating
// cloud inference. A generation request runs one *prefill* graph
// over the prompt, then one *decode-step* graph per emitted token
// with the attention reading the KV-cache (OpAttrs::kvLen).
//

/** Architecture of one decoder model. */
struct DecoderSpec
{
    std::string name;
    int layers = 0;
    int hidden = 0;
    int heads = 0;
    int ffHidden = 0;
    int vocab = 0;
};

/** Spec for a decoder zoo name ("gpt_tiny", "gpt_small"); nullptr
 *  when @p name is not a decoder model. */
const DecoderSpec *decoderSpec(const std::string &name);

/** Prompt-ingestion graph: full [batch, prompt_len] pass. */
Graph buildDecoderPrefill(const std::string &name, int batch,
                          int prompt_len);

/** One decode step: [batch, 1] pass attending over @p kv_len cached
 *  tokens (streamed from HBM). */
Graph buildDecoderStep(const std::string &name, int batch, int kv_len);

/** KV-cache bytes appended per generated token (K+V, every layer). */
std::uint64_t kvBytesPerToken(const DecoderSpec &spec,
                              std::size_t dtype_bytes);

//
// Sharded decoder construction for multi-chip model parallelism. A
// tensor-parallel shard keeps 1/tp of every layer's heads and FFN
// width on one device (Megatron split); a pipeline stage keeps a
// contiguous slice of the layer stack (embedding on stage 0, LM head
// on the last). Either lets a model bigger than one device's HBM be
// served by a placement group over the fabric.
//

/** Fatal unless @p tp divides the model's heads, FFN, and vocab. */
void validateTensorShard(const DecoderSpec &spec, unsigned tp);

/** Fatal unless @p stages divides the model's layer count. */
void validatePipelineStages(const DecoderSpec &spec, unsigned stages);

/** One device's tensor-parallel shard of the prefill graph. */
Graph buildDecoderPrefillTP(const std::string &name, int batch,
                            int prompt_len, unsigned tp);

/** One device's tensor-parallel shard of a decode step. */
Graph buildDecoderStepTP(const std::string &name, int batch, int kv_len,
                         unsigned tp);

/** Pipeline stage @p stage (of @p stages) of the prefill graph. */
Graph buildDecoderPrefillStage(const std::string &name, int batch,
                               int prompt_len, unsigned stage,
                               unsigned stages);

/** Pipeline stage @p stage (of @p stages) of a decode step. */
Graph buildDecoderStepStage(const std::string &name, int batch,
                            int kv_len, unsigned stage, unsigned stages);

} // namespace models
} // namespace dtu

#endif // DTU_MODELS_MODEL_ZOO_HH
