/**
 * @file
 * Image classification models: VGG16, ResNet50 v1.5, Inception v4.
 */

#include "models/blocks.hh"
#include "models/model_zoo.hh"

namespace dtu
{
namespace models
{

Graph
buildVgg16(int batch)
{
    Graph g("vgg16");
    int x = g.addInput("image", Shape({batch, 3, 224, 224}));

    auto block = [&](int in, const std::string &name, int channels,
                     int convs) {
        int y = in;
        for (int i = 0; i < convs; ++i) {
            y = convBnRelu(g, y, name + ".conv" + std::to_string(i + 1),
                           channels, 3, 1, 1);
        }
        OpAttrs pool;
        pool.kernelH = pool.kernelW = 2;
        pool.strideH = pool.strideW = 2;
        return g.add(OpKind::MaxPool, name + ".pool", {y}, pool);
    };

    x = block(x, "block1", 64, 2);
    x = block(x, "block2", 128, 2);
    x = block(x, "block3", 256, 3);
    x = block(x, "block4", 512, 3);
    x = block(x, "block5", 512, 3);

    OpAttrs flatten;
    flatten.targetShape = {batch, 512 * 7 * 7};
    x = g.add(OpKind::Reshape, "flatten", {x}, flatten);

    OpAttrs fc1;
    fc1.outFeatures = 4096;
    x = g.add(OpKind::Linear, "fc1", {x}, fc1);
    OpAttrs relu;
    relu.cheapActivation = true;
    x = g.add(OpKind::Activation, "fc1.relu", {x}, relu);
    OpAttrs fc2;
    fc2.outFeatures = 4096;
    x = g.add(OpKind::Linear, "fc2", {x}, fc2);
    x = g.add(OpKind::Activation, "fc2.relu", {x}, relu);
    OpAttrs fc3;
    fc3.outFeatures = 1000;
    x = g.add(OpKind::Linear, "fc3", {x}, fc3);
    OpAttrs softmax;
    softmax.axis = 1;
    x = g.add(OpKind::Softmax, "softmax", {x}, softmax);
    g.markOutput(x);
    return g;
}

Graph
buildResnet50(int batch)
{
    Graph g("resnet50");
    int x = g.addInput("image", Shape({batch, 3, 224, 224}));
    x = convBnRelu(g, x, "stem", 64, 7, 2, 3);
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    pool.padH = pool.padW = 1;
    x = g.add(OpKind::MaxPool, "stem.pool", {x}, pool);

    struct Stage
    {
        int mid;
        int out;
        int blocks;
        int stride;
    };
    const Stage stages[] = {
        {64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2},
        {512, 2048, 3, 2}};
    int stage_id = 1;
    for (const Stage &stage : stages) {
        for (int b = 0; b < stage.blocks; ++b) {
            std::string name = "stage" + std::to_string(stage_id) +
                               ".block" + std::to_string(b);
            int stride = b == 0 ? stage.stride : 1;
            bool downsample = b == 0;
            x = bottleneck(g, x, name, stage.mid, stage.out, stride,
                           downsample);
        }
        ++stage_id;
    }

    x = g.add(OpKind::GlobalAvgPool, "gap", {x});
    OpAttrs flatten;
    flatten.targetShape = {batch, 2048};
    x = g.add(OpKind::Reshape, "flatten", {x}, flatten);
    OpAttrs fc;
    fc.outFeatures = 1000;
    x = g.add(OpKind::Linear, "fc", {x}, fc);
    OpAttrs softmax;
    softmax.axis = 1;
    x = g.add(OpKind::Softmax, "softmax", {x}, softmax);
    g.markOutput(x);
    return g;
}

namespace
{

int
inceptionA(Graph &g, int in, const std::string &name)
{
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.padH = pool.padW = 1;
    int b0 = g.add(OpKind::AvgPool, name + ".pool", {in}, pool);
    b0 = convBnRelu(g, b0, name + ".pool.conv", 96, 1, 1, 0);
    int b1 = convBnRelu(g, in, name + ".b1", 96, 1, 1, 0);
    int b2 = convBnRelu(g, in, name + ".b2a", 64, 1, 1, 0);
    b2 = convBnRelu(g, b2, name + ".b2b", 96, 3, 1, 1);
    int b3 = convBnRelu(g, in, name + ".b3a", 64, 1, 1, 0);
    b3 = convBnRelu(g, b3, name + ".b3b", 96, 3, 1, 1);
    b3 = convBnRelu(g, b3, name + ".b3c", 96, 3, 1, 1);
    OpAttrs cat;
    cat.axis = 1;
    return g.add(OpKind::Concat, name + ".concat", {b0, b1, b2, b3}, cat);
}

int
reductionA(Graph &g, int in, const std::string &name)
{
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    int b0 = g.add(OpKind::MaxPool, name + ".pool", {in}, pool);
    int b1 = convBnRelu(g, in, name + ".b1", 384, 3, 2, 0);
    int b2 = convBnRelu(g, in, name + ".b2a", 192, 1, 1, 0);
    b2 = convBnRelu(g, b2, name + ".b2b", 224, 3, 1, 1);
    b2 = convBnRelu(g, b2, name + ".b2c", 256, 3, 2, 0);
    OpAttrs cat;
    cat.axis = 1;
    return g.add(OpKind::Concat, name + ".concat", {b0, b1, b2}, cat);
}

int
inceptionB(Graph &g, int in, const std::string &name)
{
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.padH = pool.padW = 1;
    int b0 = g.add(OpKind::AvgPool, name + ".pool", {in}, pool);
    b0 = convBnRelu(g, b0, name + ".pool.conv", 128, 1, 1, 0);
    int b1 = convBnRelu(g, in, name + ".b1", 384, 1, 1, 0);
    int b2 = convBnRelu(g, in, name + ".b2a", 192, 1, 1, 0);
    b2 = convBnReluRect(g, b2, name + ".b2b", 224, 1, 7, 1, 0, 3);
    b2 = convBnReluRect(g, b2, name + ".b2c", 256, 7, 1, 1, 3, 0);
    int b3 = convBnRelu(g, in, name + ".b3a", 192, 1, 1, 0);
    b3 = convBnReluRect(g, b3, name + ".b3b", 192, 1, 7, 1, 0, 3);
    b3 = convBnReluRect(g, b3, name + ".b3c", 224, 7, 1, 1, 3, 0);
    b3 = convBnReluRect(g, b3, name + ".b3d", 224, 1, 7, 1, 0, 3);
    b3 = convBnReluRect(g, b3, name + ".b3e", 256, 7, 1, 1, 3, 0);
    OpAttrs cat;
    cat.axis = 1;
    return g.add(OpKind::Concat, name + ".concat", {b0, b1, b2, b3}, cat);
}

int
reductionB(Graph &g, int in, const std::string &name)
{
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    int b0 = g.add(OpKind::MaxPool, name + ".pool", {in}, pool);
    int b1 = convBnRelu(g, in, name + ".b1a", 192, 1, 1, 0);
    b1 = convBnRelu(g, b1, name + ".b1b", 192, 3, 2, 0);
    int b2 = convBnRelu(g, in, name + ".b2a", 256, 1, 1, 0);
    b2 = convBnReluRect(g, b2, name + ".b2b", 256, 1, 7, 1, 0, 3);
    b2 = convBnReluRect(g, b2, name + ".b2c", 320, 7, 1, 1, 3, 0);
    b2 = convBnRelu(g, b2, name + ".b2d", 320, 3, 2, 0);
    OpAttrs cat;
    cat.axis = 1;
    return g.add(OpKind::Concat, name + ".concat", {b0, b1, b2}, cat);
}

int
inceptionC(Graph &g, int in, const std::string &name)
{
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.padH = pool.padW = 1;
    int b0 = g.add(OpKind::AvgPool, name + ".pool", {in}, pool);
    b0 = convBnRelu(g, b0, name + ".pool.conv", 256, 1, 1, 0);
    int b1 = convBnRelu(g, in, name + ".b1", 256, 1, 1, 0);
    int b2 = convBnRelu(g, in, name + ".b2a", 384, 1, 1, 0);
    int b2l = convBnReluRect(g, b2, name + ".b2l", 256, 1, 3, 1, 0, 1);
    int b2r = convBnReluRect(g, b2, name + ".b2r", 256, 3, 1, 1, 1, 0);
    int b3 = convBnRelu(g, in, name + ".b3a", 384, 1, 1, 0);
    b3 = convBnReluRect(g, b3, name + ".b3b", 448, 1, 3, 1, 0, 1);
    b3 = convBnReluRect(g, b3, name + ".b3c", 512, 3, 1, 1, 1, 0);
    int b3l = convBnReluRect(g, b3, name + ".b3l", 256, 1, 3, 1, 0, 1);
    int b3r = convBnReluRect(g, b3, name + ".b3r", 256, 3, 1, 1, 1, 0);
    OpAttrs cat;
    cat.axis = 1;
    return g.add(OpKind::Concat, name + ".concat",
                 {b0, b1, b2l, b2r, b3l, b3r}, cat);
}

} // namespace

Graph
buildInceptionV4(int batch)
{
    Graph g("inception_v4");
    int x = g.addInput("image", Shape({batch, 3, 299, 299}));

    // Stem.
    x = convBnRelu(g, x, "stem.conv1", 32, 3, 2, 0);   // 149
    x = convBnRelu(g, x, "stem.conv2", 32, 3, 1, 0);   // 147
    x = convBnRelu(g, x, "stem.conv3", 64, 3, 1, 1);   // 147
    OpAttrs pool;
    pool.kernelH = pool.kernelW = 3;
    pool.strideH = pool.strideW = 2;
    int p0 = g.add(OpKind::MaxPool, "stem.pool1", {x}, pool); // 73
    int c0 = convBnRelu(g, x, "stem.conv4", 96, 3, 2, 0);     // 73
    OpAttrs cat;
    cat.axis = 1;
    x = g.add(OpKind::Concat, "stem.cat1", {p0, c0}, cat); // 160ch

    int l = convBnRelu(g, x, "stem.l1", 64, 1, 1, 0);
    l = convBnRelu(g, l, "stem.l2", 96, 3, 1, 0); // 71
    int r = convBnRelu(g, x, "stem.r1", 64, 1, 1, 0);
    r = convBnReluRect(g, r, "stem.r2", 64, 1, 7, 1, 0, 3);
    r = convBnReluRect(g, r, "stem.r3", 64, 7, 1, 1, 3, 0);
    r = convBnRelu(g, r, "stem.r4", 96, 3, 1, 0); // 71
    x = g.add(OpKind::Concat, "stem.cat2", {l, r}, cat); // 192ch@71

    int c1 = convBnRelu(g, x, "stem.conv5", 192, 3, 2, 0); // 35
    int p1 = g.add(OpKind::MaxPool, "stem.pool2", {x}, pool); // 35
    x = g.add(OpKind::Concat, "stem.cat3", {c1, p1}, cat); // 384ch@35

    for (int i = 0; i < 4; ++i)
        x = inceptionA(g, x, "inceptionA" + std::to_string(i));
    x = reductionA(g, x, "reductionA");
    for (int i = 0; i < 7; ++i)
        x = inceptionB(g, x, "inceptionB" + std::to_string(i));
    x = reductionB(g, x, "reductionB");
    for (int i = 0; i < 3; ++i)
        x = inceptionC(g, x, "inceptionC" + std::to_string(i));

    x = g.add(OpKind::GlobalAvgPool, "gap", {x});
    OpAttrs flatten;
    flatten.targetShape = {batch, 1536};
    x = g.add(OpKind::Reshape, "flatten", {x}, flatten);
    OpAttrs fc;
    fc.outFeatures = 1000;
    x = g.add(OpKind::Linear, "fc", {x}, fc);
    OpAttrs softmax;
    softmax.axis = 1;
    x = g.add(OpKind::Softmax, "softmax", {x}, softmax);
    g.markOutput(x);
    return g;
}

} // namespace models
} // namespace dtu
