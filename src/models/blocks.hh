/**
 * @file
 * Shared building blocks for the model zoo: conv/BN/activation
 * triples, residual blocks, and transformer encoder layers.
 */

#ifndef DTU_MODELS_BLOCKS_HH
#define DTU_MODELS_BLOCKS_HH

#include <string>

#include "graph/graph.hh"

namespace dtu
{
namespace models
{

/** Conv + BatchNorm + ReLU (the CNN workhorse). */
int convBnRelu(Graph &g, int in, const std::string &name, int out_channels,
               int kernel, int stride, int pad);

/** Conv + BatchNorm + LeakyReLU (Darknet style; leaky ~ cheap). */
int convBnLeaky(Graph &g, int in, const std::string &name,
                int out_channels, int kernel, int stride, int pad);

/** Rectangular conv + BN + ReLU (Inception 1x7/7x1 factorizations). */
int convBnReluRect(Graph &g, int in, const std::string &name,
                   int out_channels, int kh, int kw, int stride, int ph,
                   int pw);

/** Plain conv without norm/activation. */
int conv(Graph &g, int in, const std::string &name, int out_channels,
         int kernel, int stride, int pad);

/** ResNet bottleneck (1x1 -> 3x3 -> 1x1 + skip), v1.5 strides. */
int bottleneck(Graph &g, int in, const std::string &name, int mid_channels,
               int out_channels, int stride, bool downsample);

/** ResNet basic block (3x3 -> 3x3 + skip). */
int basicBlock(Graph &g, int in, const std::string &name, int channels,
               int stride, bool downsample);

/** Darknet residual block: 1x1 squeeze + 3x3 expand + skip. */
int darknetResidual(Graph &g, int in, const std::string &name,
                    int squeeze_channels, int channels);

/**
 * Transformer encoder layer over [B, S, H]: self-attention (QKV +
 * attention + projection) and a GELU MLP, both with residuals and
 * layer norms. With @p kv_len > 0 the attention additionally reads a
 * KV-cache of that many past tokens (the autoregressive decode-step
 * shape: S is the new tokens, kv_len the resident context).
 */
int transformerLayer(Graph &g, int in, const std::string &name, int hidden,
                     int heads, int ff_hidden, std::int64_t kv_len = 0);

/**
 * One tensor-parallel shard of a transformer layer (Megatron-style
 * column/row split across @p tp devices): the QKV projection, the
 * attention heads, and the FFN up-projection each keep 1/tp of their
 * output features, while the out-projection and FFN down-projection
 * reduce back to the full @p hidden width — the points where the real
 * system runs an all-reduce across the group. The graph models one
 * device's share; the serving layer adds the collectives as timed
 * fabric transfers. Requires heads and ff_hidden divisible by tp.
 */
int transformerLayerShard(Graph &g, int in, const std::string &name,
                          int hidden, int heads, int ff_hidden, int tp,
                          std::int64_t kv_len = 0);

} // namespace models
} // namespace dtu

#endif // DTU_MODELS_BLOCKS_HH
