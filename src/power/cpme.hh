/**
 * @file
 * The Central Power Management Engine (Section IV-F, Figs. 8-10).
 *
 * The CPME owns the chip-level power limit. At boot it assigns every
 * function unit its baseline budget and keeps the remainder in a
 * reserve pool for runtime distribution. It serves LPME borrow
 * requests against that pool (power integrity), absorbs returns, and
 * runs the 4-stage DVFS loop — Observation, Evaluation, Decision,
 * Action — that classifies the running workload as compute-bound,
 * bandwidth-bound, or balanced and steps the compute-core frequency
 * along the 1.0-1.4 GHz ladder.
 */

#ifndef DTU_POWER_CPME_HH
#define DTU_POWER_CPME_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "power/lpme.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dtu
{

class FaultInjector;
class PowerAuditTrail;
class Tracer;

/** Workload classification used by the Evaluation stage. */
enum class WorkloadClass
{
    ComputeBound,
    BandwidthBound,
    Balanced,
};

/** Tunables of the DVFS policy. */
struct DvfsPolicy
{
    /** Frequency ladder in Hz, ascending. */
    std::vector<double> ladderHz = {1.0e9, 1.1e9, 1.2e9, 1.3e9, 1.4e9};
    /** Busy duty-cycle ratio above which compute-bound raises clocks. */
    double busyHighThreshold = 0.80;
    /** L3-stall ratio above which the workload is bandwidth-bound. */
    double l3StallHighThreshold = 0.30;
    /** Consecutive same-class windows required before acting. */
    unsigned decisionWindows = 2;
    /** Disable frequency changes entirely (power management OFF). */
    bool enabled = true;
};

/** The chip-level power manager. */
class Cpme
{
  public:
    /**
     * @param power_limit_watts the board limit (150 W on i20).
     * @param policy DVFS tunables.
     */
    explicit Cpme(double power_limit_watts, DvfsPolicy policy = {});

    /**
     * Register a function unit's LPME; its baseline budget is carved
     * out of the limit at boot.
     */
    void attach(Lpme &lpme);

    /** Watts still unassigned in the reserve pool. */
    double reserveWatts() const { return reserveWatts_; }
    double powerLimit() const { return limitWatts_; }

    /**
     * Serve a borrow request: grant at most the reserve, preserving
     * overall integrity (sum of budgets never exceeds the limit).
     * @return watts actually granted.
     */
    double requestBudget(Lpme &lpme, double watts);

    /** Absorb a budget return from an LPME. */
    void returnBudget(Lpme &lpme, double watts);

    /**
     * Run one pass of the LPME/CPME window protocol for a unit:
     * applies the LPME decision against the pool and returns the
     * throttle the unit must apply next window.
     */
    double serviceWindow(Lpme &lpme, const ActivitySample &sample);

    //
    // DVFS loop (core clock). One call per observation window with
    // aggregated core+DMA activity; returns the frequency for the
    // next window.
    //

    /** Current core frequency (Hz). */
    double frequency() const { return policy_.ladderHz[ladderIndex_]; }

    /** Observation + Evaluation + Decision + Action. */
    double onWindow(const ActivitySample &aggregate);

    /**
     * Real-time regulation variant: the LPMEs report the frequency
     * that just keeps compute hidden under the memory phases of the
     * current window; the CPME rate-limits the clocks by one ladder
     * step per window toward it (bandwidth-bound windows coast down,
     * compute-bound windows climb back).
     * @return the frequency for the coming window.
     */
    double regulate(const ActivitySample &aggregate, double desired_hz);

    /** Evaluation stage: classify one sample. */
    WorkloadClass classify(const ActivitySample &sample) const;

    const DvfsPolicy &policy() const { return policy_; }
    unsigned frequencyChanges() const { return frequencyChanges_; }
    double totalGranted() const { return totalGranted_; }

    /** serviceWindow() passes completed (any unit). */
    std::uint64_t windowsServiced() const { return windowsServiced_; }
    /** Windows that ended with a nonzero throttle order. */
    std::uint64_t throttledWindows() const { return throttledWindows_; }
    /** Borrow requests the reserve pool could not serve in full. */
    std::uint64_t budgetDenials() const { return budgetDenials_; }

    /**
     * Register the CPME's gauges (cpme.reserve_watts,
     * cpme.granted_watts, cpme.frequency_changes, cpme.frequency_ghz)
     * with @p stats so the performance sampler can watch the power
     * manager next to the engines. Attach at most once per chip.
     */
    void attachStats(StatRegistry &stats);

    //
    // Timeline tracing. The CPME has no clock of its own: callers
    // (the executor) stamp each observation window with
    // beginTraceWindow() before invoking regulate()/serviceWindow(),
    // and the DVFS steps and budget grants/returns of that window
    // appear on the timeline at that simulated time.
    //

    /** Attach the chip tracer (null detaches). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Attach (or detach, with nullptr) a decision audit trail. Every
     * budget grant/denial/return, DVFS step, throttle order, and
     * thermal clamp is recorded as a structured PowerEvent stamped
     * with the current trace window. Unlike the tracer instants the
     * trail does not need the chip timeline enabled — it is the
     * always-on black box the flight recorder reads. No trail, no
     * behavior change.
     */
    void setAuditTrail(PowerAuditTrail *trail) { audit_ = trail; }
    PowerAuditTrail *auditTrail() const { return audit_; }

    /** Timestamp for the trace events of the coming window. */
    void beginTraceWindow(Tick at) { traceTick_ = at; }

    //
    // Thermal throttling (fault injection). Sustained episodes cap
    // the effective core clock below whatever the DVFS loop picked;
    // the executor asks once per observation window.
    //

    /** Attach (or detach, with nullptr) the chip fault injector. */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /**
     * Clamp @p hz against the thermal-throttle episode active at
     * @p at. Identity when no injector is installed or no episode is
     * active.
     */
    double thermalCappedHz(Tick at, double hz);

  private:
    /** Emit a DVFS ladder-step instant event (no-op untraced). */
    void traceDvfsStep(std::size_t from_index, std::size_t to_index);

    /** Refresh the registered gauges (no-op before attachStats). */
    void updateStats();

    double limitWatts_;
    double reserveWatts_;
    DvfsPolicy policy_;
    std::size_t ladderIndex_;
    std::deque<WorkloadClass> history_;
    unsigned frequencyChanges_ = 0;
    double totalGranted_ = 0.0;
    std::uint64_t windowsServiced_ = 0;
    std::uint64_t throttledWindows_ = 0;
    std::uint64_t budgetDenials_ = 0;
    Tracer *tracer_ = nullptr;
    Tick traceTick_ = 0;
    FaultInjector *faults_ = nullptr;
    PowerAuditTrail *audit_ = nullptr;

    bool statsAttached_ = false;
    Stat statReserveWatts_;
    Stat statGrantedWatts_;
    Stat statFrequencyChanges_;
    Stat statFrequencyGhz_;
};

} // namespace dtu

#endif // DTU_POWER_CPME_HH
