/**
 * @file
 * Activity-based energy model for the DTU.
 *
 * Power has a static component (leakage, always-on uncore, HBM
 * standby) and a dynamic component proportional to activity: MACs
 * retired, vector/SPU lane operations, and bytes moved at each
 * memory level. Dynamic energy scales with V^2 and leakage with V^2
 * as well (to first order in this regime); the voltage tracks the
 * DVFS frequency point linearly.
 *
 * Coefficients are calibrated so a dense FP16 workload at full boost
 * lands near the 150 W board TDP (Table I).
 */

#ifndef DTU_POWER_POWER_MODEL_HH
#define DTU_POWER_POWER_MODEL_HH

#include <cstdint>

#include "sim/ticks.hh"
#include "tensor/dtype.hh"

namespace dtu
{

/** Per-chip power coefficients. */
struct PowerParams
{
    /** Always-on chip power at reference voltage (uncore, PHYs). */
    double baseStaticWatts = 59.0;
    /** Leakage per compute core at reference voltage. */
    double coreStaticWatts = 1.6;
    /** Leakage per DMA engine at reference voltage. */
    double dmaStaticWatts = 0.6;

    /** Dynamic energy per FP32-equivalent MAC at reference voltage. */
    double joulesPerMacFp32 = 2.6e-12;
    /** Dynamic energy per vector/SPU lane operation. */
    double joulesPerLaneOp = 0.8e-12;
    /** Data movement energy per byte. */
    double joulesPerByteL1 = 1.2e-12;
    double joulesPerByteL2 = 2.4e-12;
    double joulesPerByteL3 = 28.0e-12;
    double joulesPerByteDma = 0.8e-12;
    /**
     * Off-chip interconnect (PCIe/peer fabric) energy per byte:
     * SerDes + controller, roughly 4-5 pJ/bit for PCIe-class PHYs.
     */
    double joulesPerByteFabric = 35.0e-12;

    /** DVFS voltage curve: V(f) = v0 + vSlope * (f - f0). */
    double f0Hz = 1.0e9;
    double v0 = 0.75;
    double vSlopePerGHz = 0.375; // reaches 0.9 V at 1.4 GHz
    double vRef = 0.9;
    /**
     * Worst-case voltage guard-band applied when power management is
     * disabled: without the LPMEs' closed-loop regulation the rails
     * run with a static safety margin.
     */
    double avsMarginOff = 1.04;

    /** Voltage at frequency @p hz. */
    double
    voltageAt(double hz) const
    {
        return v0 + vSlopePerGHz * (hz - f0Hz) / 1.0e9;
    }

    /** (V/Vref)^2 scale factor applied to both dynamic and leakage. */
    double
    voltageScale(double hz) const
    {
        double v = voltageAt(hz);
        return (v * v) / (vRef * vRef);
    }

    /** Dynamic MAC energy for @p t: narrower types cost less. */
    double
    joulesPerMac(DType t) const
    {
        // Energy roughly tracks multiplier area: ~linear in operand
        // width for MACs in this regime.
        return joulesPerMacFp32 * dtypeBytes(t) / 4.0;
    }
};

/**
 * Per-component split of accumulated energy. The buckets mirror the
 * chip's energy sinks: MAC arrays, vector/SPU lanes, the three cache
 * levels (L3 is the HBM interface, by far the most expensive byte),
 * DMA engines, and static leakage. The bucket sum equals the meter's
 * scalar total up to floating-point rounding — the meter adds the
 * same products to both.
 */
struct EnergyBreakdown
{
    /** MAC-array dynamic energy. */
    double macJoules = 0.0;
    /** Vector/SPU lane dynamic energy. */
    double vectorJoules = 0.0;
    /** L1 (core-local) data movement. */
    double l1Joules = 0.0;
    /** L2 (cluster shared memory) data movement. */
    double l2Joules = 0.0;
    /** L3/HBM data movement (DRAM access + PHY). */
    double hbmJoules = 0.0;
    /** DMA engine switching energy. */
    double dmaJoules = 0.0;
    /** Off-chip fabric traffic (weight loads, collectives). */
    double fabricJoules = 0.0;
    /** Leakage + always-on uncore. */
    double staticJoules = 0.0;

    /** Sum of all buckets. */
    double
    total() const
    {
        return macJoules + vectorJoules + l1Joules + l2Joules +
               hbmJoules + dmaJoules + fabricJoules + staticJoules;
    }

    /** Accumulate @p other into this breakdown. */
    void
    add(const EnergyBreakdown &other)
    {
        macJoules += other.macJoules;
        vectorJoules += other.vectorJoules;
        l1Joules += other.l1Joules;
        l2Joules += other.l2Joules;
        hbmJoules += other.hbmJoules;
        dmaJoules += other.dmaJoules;
        fabricJoules += other.fabricJoules;
        staticJoules += other.staticJoules;
    }

    /** Bucket-wise difference (for interval attribution). */
    EnergyBreakdown
    minus(const EnergyBreakdown &base) const
    {
        EnergyBreakdown d;
        d.macJoules = macJoules - base.macJoules;
        d.vectorJoules = vectorJoules - base.vectorJoules;
        d.l1Joules = l1Joules - base.l1Joules;
        d.l2Joules = l2Joules - base.l2Joules;
        d.hbmJoules = hbmJoules - base.hbmJoules;
        d.dmaJoules = dmaJoules - base.dmaJoules;
        d.fabricJoules = fabricJoules - base.fabricJoules;
        d.staticJoules = staticJoules - base.staticJoules;
        return d;
    }
};

/** Accumulates energy and exposes average power. */
class EnergyMeter
{
  public:
    explicit EnergyMeter(PowerParams params = {})
        : params_(params)
    {}

    const PowerParams &params() const { return params_; }

    /**
     * Voltage-margin multiplier applied to all voltage-scaled energy
     * (1.0 under closed-loop power management; avsMarginOff when the
     * CPME/LPMEs are disabled). Energy scales with margin^2.
     */
    void setVoltageMargin(double margin) { margin2_ = margin * margin; }
    double voltageMargin2() const { return margin2_; }

    /** Add compute activity executed at frequency @p hz. */
    void
    addCompute(double macs, DType t, double lane_ops, double hz)
    {
        double scale = margin2_ * params_.voltageScale(hz);
        joules_ += scale * (macs * params_.joulesPerMac(t) +
                            lane_ops * params_.joulesPerLaneOp);
        breakdown_.macJoules += scale * macs * params_.joulesPerMac(t);
        breakdown_.vectorJoules += scale * lane_ops * params_.joulesPerLaneOp;
    }

    /** Add data movement activity. */
    void
    addTraffic(double l1_bytes, double l2_bytes, double l3_bytes,
               double dma_bytes)
    {
        joules_ += l1_bytes * params_.joulesPerByteL1 +
                   l2_bytes * params_.joulesPerByteL2 +
                   l3_bytes * params_.joulesPerByteL3 +
                   dma_bytes * params_.joulesPerByteDma;
        breakdown_.l1Joules += l1_bytes * params_.joulesPerByteL1;
        breakdown_.l2Joules += l2_bytes * params_.joulesPerByteL2;
        breakdown_.hbmJoules += l3_bytes * params_.joulesPerByteL3;
        breakdown_.dmaJoules += dma_bytes * params_.joulesPerByteDma;
    }

    /** Add off-chip fabric traffic (interconnect SerDes energy). */
    void
    addFabric(double bytes)
    {
        joules_ += bytes * params_.joulesPerByteFabric;
        breakdown_.fabricJoules += bytes * params_.joulesPerByteFabric;
    }

    /**
     * Add static energy for @p duration of wall time with
     * @p active_cores cores and @p active_dmas DMA engines powered at
     * frequency @p hz (idle processing groups are power-gated when
     * the resource manager leaves them unassigned).
     */
    void
    addStatic(Tick duration, unsigned active_cores, unsigned active_dmas,
              double hz)
    {
        double seconds = ticksToSeconds(duration);
        double scale = margin2_ * params_.voltageScale(hz);
        double watts = params_.baseStaticWatts +
                       active_cores * params_.coreStaticWatts +
                       active_dmas * params_.dmaStaticWatts;
        joules_ += scale * watts * seconds;
        breakdown_.staticJoules += scale * watts * seconds;
    }

    /** Total accumulated energy. */
    double joules() const { return joules_; }

    /**
     * Per-component attribution of joules(). Buckets sum to the
     * scalar total up to floating-point rounding (the meter adds the
     * same products to both, only associated differently).
     */
    const EnergyBreakdown &breakdown() const { return breakdown_; }

    /** Average power over @p duration of wall time. */
    double
    averageWatts(Tick duration) const
    {
        double seconds = ticksToSeconds(duration);
        return seconds > 0.0 ? joules_ / seconds : 0.0;
    }

    void
    reset()
    {
        joules_ = 0.0;
        breakdown_ = EnergyBreakdown{};
    }

  private:
    PowerParams params_;
    double joules_ = 0.0;
    EnergyBreakdown breakdown_;
    double margin2_ = 1.0;
};

} // namespace dtu

#endif // DTU_POWER_POWER_MODEL_HH
