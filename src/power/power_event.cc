#include "power/power_event.hh"

#include "sim/json.hh"

namespace dtu
{

const char *
powerEventKindName(PowerEventKind kind)
{
    switch (kind) {
      case PowerEventKind::BudgetGrant: return "budget_grant";
      case PowerEventKind::BudgetDeny: return "budget_deny";
      case PowerEventKind::BudgetReturn: return "budget_return";
      case PowerEventKind::DvfsClimb: return "dvfs_climb";
      case PowerEventKind::DvfsCoast: return "dvfs_coast";
      case PowerEventKind::Throttle: return "throttle";
      case PowerEventKind::ThermalCap: return "thermal_cap";
    }
    return "unknown";
}

PowerAuditTrail::PowerAuditTrail(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{}

void
PowerAuditTrail::record(const PowerEvent &event)
{
    events_.push_back(event);
    while (events_.size() > capacity_)
        events_.pop_front();
    ++totalRecorded_;
    ++counts_[static_cast<std::size_t>(event.kind)];
}

std::uint64_t
PowerAuditTrail::count(PowerEventKind kind) const
{
    return counts_[static_cast<std::size_t>(kind)];
}

void
PowerAuditTrail::clear()
{
    events_.clear();
    totalRecorded_ = 0;
    for (auto &c : counts_)
        c = 0;
}

void
writePowerEventJson(const PowerEvent &event, JsonWriter &json)
{
    json.beginObject();
    json.field("at_ticks", static_cast<std::uint64_t>(event.at));
    json.field("kind", powerEventKindName(event.kind));
    if (!event.unit.empty())
        json.field("unit", event.unit);
    switch (event.kind) {
      case PowerEventKind::BudgetGrant:
      case PowerEventKind::BudgetDeny:
      case PowerEventKind::BudgetReturn:
        json.field("requested_watts", event.requestedWatts);
        json.field("granted_watts", event.grantedWatts);
        json.field("reserve_watts", event.reserveWatts);
        break;
      case PowerEventKind::DvfsClimb:
      case PowerEventKind::DvfsCoast:
      case PowerEventKind::ThermalCap:
        json.field("from_ghz", event.fromGhz);
        json.field("to_ghz", event.toGhz);
        break;
      case PowerEventKind::Throttle:
        json.field("throttle", event.throttle);
        break;
    }
    json.endObject();
}

void
writeEnergyBreakdownJson(const EnergyBreakdown &energy, JsonWriter &json)
{
    json.beginObject();
    json.field("mac_joules", energy.macJoules);
    json.field("vector_joules", energy.vectorJoules);
    json.field("l1_joules", energy.l1Joules);
    json.field("l2_joules", energy.l2Joules);
    json.field("hbm_joules", energy.hbmJoules);
    json.field("dma_joules", energy.dmaJoules);
    json.field("fabric_joules", energy.fabricJoules);
    json.field("static_joules", energy.staticJoules);
    json.field("total_joules", energy.total());
    json.endObject();
}

void
PowerAuditTrail::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("total_recorded", totalRecorded_);
    json.field("buffered", static_cast<std::uint64_t>(events_.size()));
    json.field("capacity", static_cast<std::uint64_t>(capacity_));
    json.key("counts").beginObject();
    for (int k = 0; k <= static_cast<int>(PowerEventKind::ThermalCap); ++k) {
        json.field(powerEventKindName(static_cast<PowerEventKind>(k)),
                   counts_[k]);
    }
    json.endObject();
    json.key("events").beginArray();
    for (const PowerEvent &event : events_)
        writePowerEventJson(event, json);
    json.endArray();
    json.endObject();
    os << '\n';
}

} // namespace dtu
