#include "power/cpme.hh"

#include <algorithm>

#include "power/power_event.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{

Cpme::Cpme(double power_limit_watts, DvfsPolicy policy)
    : limitWatts_(power_limit_watts), reserveWatts_(power_limit_watts),
      policy_(std::move(policy))
{
    fatalIf(power_limit_watts <= 0.0, "power limit must be positive");
    fatalIf(policy_.ladderHz.empty(), "DVFS ladder must not be empty");
    // Boot at the top of the ladder; the loop ratchets down when the
    // workload does not need it.
    ladderIndex_ = policy_.ladderHz.size() - 1;
}

void
Cpme::attach(Lpme &lpme)
{
    fatalIf(lpme.baselineWatts() > reserveWatts_,
            "baseline budgets exceed the power limit when attaching '",
            lpme.name(), "'");
    reserveWatts_ -= lpme.baselineWatts();
    updateStats();
}

void
Cpme::attachStats(StatRegistry &stats)
{
    fatalIf(statsAttached_, "CPME stats attached twice");
    statsAttached_ = true;
    statReserveWatts_.init(stats, "cpme.reserve_watts",
                           "unassigned watts in the reserve pool");
    statGrantedWatts_.init(stats, "cpme.granted_watts",
                           "cumulative watts granted to LPMEs");
    statFrequencyChanges_.init(stats, "cpme.frequency_changes",
                               "DVFS ladder steps taken");
    statFrequencyGhz_.init(stats, "cpme.frequency_ghz",
                           "current core frequency (GHz)");
    updateStats();
}

void
Cpme::updateStats()
{
    if (!statsAttached_)
        return;
    statReserveWatts_.set(reserveWatts_);
    statGrantedWatts_.set(totalGranted_);
    statFrequencyChanges_.set(frequencyChanges_);
    statFrequencyGhz_.set(frequency() / 1e9);
}

double
Cpme::requestBudget(Lpme &lpme, double watts)
{
    double granted = std::clamp(watts, 0.0, reserveWatts_);
    reserveWatts_ -= granted;
    lpme.grant(granted);
    totalGranted_ += granted;
    bool denied = granted + 1e-12 < watts;
    if (denied)
        ++budgetDenials_;
    if (audit_) {
        PowerEvent event;
        event.at = traceTick_;
        event.kind = denied ? PowerEventKind::BudgetDeny
                            : PowerEventKind::BudgetGrant;
        event.unit = lpme.name();
        event.requestedWatts = watts;
        event.grantedWatts = granted;
        event.reserveWatts = reserveWatts_;
        audit_->record(event);
    }
    updateStats();
    return granted;
}

void
Cpme::returnBudget(Lpme &lpme, double watts)
{
    double surplus = std::max(0.0, watts);
    lpme.reclaim(surplus);
    reserveWatts_ += surplus;
    panicIf(reserveWatts_ > limitWatts_ + 1e-9,
            "reserve pool exceeded the power limit");
    if (audit_) {
        PowerEvent event;
        event.at = traceTick_;
        event.kind = PowerEventKind::BudgetReturn;
        event.unit = lpme.name();
        event.requestedWatts = watts;
        event.grantedWatts = surplus;
        event.reserveWatts = reserveWatts_;
        audit_->record(event);
    }
    updateStats();
}

double
Cpme::thermalCappedHz(Tick at, double hz)
{
    if (!faults_)
        return hz;
    double capped = faults_->thermalClampHz(at, hz);
    if (audit_ && capped < hz) {
        PowerEvent event;
        event.at = at;
        event.kind = PowerEventKind::ThermalCap;
        event.fromGhz = hz / 1e9;
        event.toGhz = capped / 1e9;
        audit_->record(event);
    }
    return capped;
}

void
Cpme::traceDvfsStep(std::size_t from_index, std::size_t to_index)
{
    if (audit_) {
        PowerEvent event;
        event.at = traceTick_;
        event.kind = to_index > from_index ? PowerEventKind::DvfsClimb
                                           : PowerEventKind::DvfsCoast;
        event.fromGhz = policy_.ladderHz[from_index] / 1e9;
        event.toGhz = policy_.ladderHz[to_index] / 1e9;
        audit_->record(event);
    }
    if (!tracer_ || !tracer_->enabled())
        return;
    tracer_->instant(
        tracer_->track("cpme", "dvfs"),
        to_index > from_index ? "dvfs climb" : "dvfs coast", "dvfs",
        traceTick_,
        {{"from_ghz", policy_.ladderHz[from_index] / 1e9},
         {"to_ghz", policy_.ladderHz[to_index] / 1e9}});
}

double
Cpme::serviceWindow(Lpme &lpme, const ActivitySample &sample)
{
    ++windowsServiced_;
    if (tracer_ && tracer_->enabled()) {
        tracer_->counter("cpme.reserve_watts", "W", traceTick_,
                         reserveWatts_);
    }
    LpmeDecision decision = lpme.onWindow(sample);
    if (tracer_ && tracer_->enabled() &&
        (decision.requestWatts > 0.0 || decision.returnWatts > 0.0)) {
        tracer_->instant(
            tracer_->track("cpme", "budget"),
            decision.requestWatts > 0.0 ? "budget borrow"
                                        : "budget return",
            "power", traceTick_,
            {{"watts", decision.requestWatts > 0.0
                           ? decision.requestWatts
                           : decision.returnWatts},
             {"reserve_watts", reserveWatts_}});
    }
    double throttle = decision.throttle;
    if (decision.requestWatts > 0.0) {
        double granted = requestBudget(lpme, decision.requestWatts);
        if (tracer_ && tracer_->enabled() &&
            granted + 1e-12 < decision.requestWatts) {
            tracer_->instant(tracer_->track("cpme", "budget"),
                             "budget denial", "power", traceTick_,
                             {{"requested_watts", decision.requestWatts},
                              {"granted_watts", granted},
                              {"reserve_watts", reserveWatts_}});
        }
        if (granted > 0.0 && sample.projectedWatts <= lpme.budgetWatts()) {
            // The grant removed the bottleneck: no bubbles needed.
            throttle = 0.0;
        } else if (granted > 0.0) {
            // Partially satisfied: recompute the feedback throttle.
            throttle = sample.projectedWatts / lpme.budgetWatts() - 1.0;
        }
    } else if (decision.returnWatts > 0.0) {
        returnBudget(lpme, decision.returnWatts);
    }
    if (throttle > 0.0) {
        ++throttledWindows_;
        if (audit_) {
            PowerEvent event;
            event.at = traceTick_;
            event.kind = PowerEventKind::Throttle;
            event.unit = lpme.name();
            event.throttle = throttle;
            audit_->record(event);
        }
    }
    return throttle;
}

double
Cpme::regulate(const ActivitySample &aggregate, double desired_hz)
{
    if (!policy_.enabled)
        return frequency();
    history_.push_back(classify(aggregate));
    while (history_.size() > policy_.decisionWindows)
        history_.pop_front();
    // Find the lowest ladder point satisfying the demand.
    std::size_t target = policy_.ladderHz.size() - 1;
    for (std::size_t i = 0; i < policy_.ladderHz.size(); ++i) {
        if (policy_.ladderHz[i] >= desired_hz - 1e5) {
            target = i;
            break;
        }
    }
    std::size_t new_index = ladderIndex_;
    if (target > ladderIndex_)
        ++new_index; // climb one step per window (integrity-checked)
    else if (target < ladderIndex_)
        new_index = target; // coasting down is always integrity-safe
    if (new_index != ladderIndex_) {
        traceDvfsStep(ladderIndex_, new_index);
        ladderIndex_ = new_index;
        ++frequencyChanges_;
        updateStats();
    }
    return frequency();
}

WorkloadClass
Cpme::classify(const ActivitySample &sample) const
{
    if (sample.l3StallRatio > policy_.l3StallHighThreshold)
        return WorkloadClass::BandwidthBound;
    if (sample.busyRatio > policy_.busyHighThreshold)
        return WorkloadClass::ComputeBound;
    return WorkloadClass::Balanced;
}

double
Cpme::onWindow(const ActivitySample &aggregate)
{
    if (!policy_.enabled)
        return frequency();

    // Observation already happened (the sample); Evaluation:
    WorkloadClass cls = classify(aggregate);
    history_.push_back(cls);
    while (history_.size() > policy_.decisionWindows)
        history_.pop_front();

    // Decision: act only on a consistent recent history.
    bool consistent = history_.size() >= policy_.decisionWindows &&
                      std::all_of(history_.begin(), history_.end(),
                                  [&](WorkloadClass c) { return c == cls; });
    if (!consistent)
        return frequency();

    // Action: compute-bound work with a saturated pipeline earns a
    // boost; bandwidth-bound work cannot use the clocks and steps
    // down; balanced work holds.
    std::size_t new_index = ladderIndex_;
    if (cls == WorkloadClass::ComputeBound &&
        aggregate.busyRatio > policy_.busyHighThreshold &&
        ladderIndex_ + 1 < policy_.ladderHz.size()) {
        ++new_index;
    } else if (cls == WorkloadClass::BandwidthBound && ladderIndex_ > 0) {
        --new_index;
    }
    if (new_index != ladderIndex_) {
        traceDvfsStep(ladderIndex_, new_index);
        ladderIndex_ = new_index;
        ++frequencyChanges_;
        history_.clear();
        updateStats();
    }
    return frequency();
}

} // namespace dtu
