/**
 * @file
 * The Local Power Management Engine (Section IV-F, Fig. 9).
 *
 * One LPME sits at each function unit (compute core, DMA engine). It
 * keeps real-time consumption under the unit's assigned power budget
 * by inserting pipeline bubbles through a negative feedback loop, and
 * it negotiates budget with the CPME:
 *
 *  - it tracks the stall (bubble) ratio over a history of observation
 *    windows; when the ratio exceeds the budget-borrow threshold in
 *    M out of the last N windows, it requests additional budget;
 *  - when the assigned budget exceeds actual need, it keeps an
 *    adequate margin and returns the surplus.
 */

#ifndef DTU_POWER_LPME_HH
#define DTU_POWER_LPME_HH

#include <deque>
#include <string>

namespace dtu
{

/** Activity observed at one function unit over one window. */
struct ActivitySample
{
    /** Fraction of cycles the unit's pipeline was busy. */
    double busyRatio = 0.0;
    /** Fraction of DMA cycles stalled on L3 access (bandwidth-bound
     *  indicator for the CPME's workload classifier). */
    double l3StallRatio = 0.0;
    /** Power the unit would draw this window with no throttling. */
    double projectedWatts = 0.0;
};

/** Outcome of one LPME observation window. */
struct LpmeDecision
{
    /** Bubble fraction to apply next window (0 = unthrottled). */
    double throttle = 0.0;
    /** Additional budget requested from the CPME (0 = none). */
    double requestWatts = 0.0;
    /** Surplus budget returned to the CPME (0 = none). */
    double returnWatts = 0.0;
};

/** Per-unit power controller. */
class Lpme
{
  public:
    /**
     * @param baseline_watts the minimal budget assigned at boot.
     * @param borrow_threshold stall ratio above which a window counts
     *        toward borrowing.
     * @param m_of windows with high stalls required ...
     * @param n_windows ... out of this many recent windows.
     * @param return_margin budget kept above projected need before
     *        surplus is returned.
     */
    Lpme(std::string name, double baseline_watts,
         double borrow_threshold = 0.10, unsigned m_of = 3,
         unsigned n_windows = 5, double return_margin = 1.15);

    /**
     * Close one observation window: enforce integrity against the
     * current budget and decide on borrow/return.
     */
    LpmeDecision onWindow(const ActivitySample &sample);

    /** Budget currently assigned to this unit. */
    double budgetWatts() const { return budgetWatts_; }
    /** The boot-time baseline (never returned to the pool). */
    double baselineWatts() const { return baselineWatts_; }
    /** CPME grants additional budget. */
    void grant(double watts) { budgetWatts_ += watts; }
    /** CPME reclaims returned budget. */
    void reclaim(double watts);

    /** Throttle decided by the most recent window. */
    double currentThrottle() const { return throttle_; }
    const std::string &name() const { return name_; }

    double totalRequested() const { return totalRequested_; }
    double totalReturned() const { return totalReturned_; }
    unsigned windows() const { return windows_; }

  private:
    std::string name_;
    double baselineWatts_;
    double budgetWatts_;
    double borrowThreshold_;
    unsigned mOf_;
    unsigned nWindows_;
    double returnMargin_;
    double throttle_ = 0.0;
    std::deque<double> stallHistory_;
    double totalRequested_ = 0.0;
    double totalReturned_ = 0.0;
    unsigned windows_ = 0;
};

} // namespace dtu

#endif // DTU_POWER_LPME_HH
