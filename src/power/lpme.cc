#include "power/lpme.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtu
{

Lpme::Lpme(std::string name, double baseline_watts, double borrow_threshold,
           unsigned m_of, unsigned n_windows, double return_margin)
    : name_(std::move(name)), baselineWatts_(baseline_watts),
      budgetWatts_(baseline_watts), borrowThreshold_(borrow_threshold),
      mOf_(m_of), nWindows_(n_windows), returnMargin_(return_margin)
{
    fatalIf(baseline_watts <= 0.0, "LPME '", name_,
            "' baseline budget must be positive");
    fatalIf(m_of == 0 || m_of > n_windows, "LPME '", name_,
            "' M-of-N configuration invalid (", m_of, " of ", n_windows,
            ")");
}

void
Lpme::reclaim(double watts)
{
    panicIf(watts < 0.0, "negative reclaim");
    budgetWatts_ = std::max(baselineWatts_, budgetWatts_ - watts);
}

LpmeDecision
Lpme::onWindow(const ActivitySample &sample)
{
    ++windows_;
    LpmeDecision decision;

    // Integrity: the negative feedback loop sizes the bubble fraction
    // so throttled consumption meets the budget. Inserting a bubble
    // fraction b stretches the window by (1+b) and scales dynamic
    // power by 1/(1+b).
    if (sample.projectedWatts > budgetWatts_) {
        decision.throttle = sample.projectedWatts / budgetWatts_ - 1.0;
    } else {
        decision.throttle = 0.0;
    }
    throttle_ = decision.throttle;

    // Track the stall ratio the throttle causes (bubbles / cycles).
    double stall_ratio = decision.throttle / (1.0 + decision.throttle);
    stallHistory_.push_back(stall_ratio);
    while (stallHistory_.size() > nWindows_)
        stallHistory_.pop_front();

    // Borrow: frequent stalls in M of the last N windows mark this
    // unit as a performance bottleneck worth extra budget.
    if (stall_ratio > borrowThreshold_) {
        unsigned high = 0;
        for (double s : stallHistory_)
            high += s > borrowThreshold_ ? 1 : 0;
        if (high >= mOf_) {
            decision.requestWatts =
                sample.projectedWatts - budgetWatts_;
            totalRequested_ += decision.requestWatts;
        }
    }

    // Return: keep an adequate margin over projected need, hand the
    // rest back to the CPME pool (never dipping below the baseline).
    double adequate =
        std::max(baselineWatts_, sample.projectedWatts * returnMargin_);
    if (decision.requestWatts == 0.0 && budgetWatts_ > adequate) {
        decision.returnWatts = budgetWatts_ - adequate;
        totalReturned_ += decision.returnWatts;
    }
    return decision;
}

} // namespace dtu
