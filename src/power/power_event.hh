/**
 * @file
 * Structured audit trail of CPME/LPME power-management decisions.
 *
 * The closed-loop power manager makes hundreds of decisions per
 * millisecond — budget borrows granted or denied against the reserve
 * pool, DVFS ladder steps, feedback throttles, thermal clamps — and
 * until now all of them were invisible outside the odd tracer
 * instant. The PowerAuditTrail records each decision as a structured
 * event in a bounded ring (newest wins, evictions counted), so the
 * sequence that explains a latency cliff ("denied 12 W, coasted to
 * 1.1 GHz, throttled 8 windows, recovered") can be replayed from the
 * flight recorder or the EnergyReport after the fact.
 *
 * Strictly opt-in: a Cpme without a trail attached behaves
 * bit-for-bit identically (null-pointer hooks).
 */

#ifndef DTU_POWER_POWER_EVENT_HH
#define DTU_POWER_POWER_EVENT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "power/power_model.hh"
#include "sim/ticks.hh"

namespace dtu
{

/** What kind of power-management decision an event records. */
enum class PowerEventKind
{
    /** Reserve-pool borrow served in full. */
    BudgetGrant,
    /** Borrow clipped by an empty (or short) reserve pool. */
    BudgetDeny,
    /** Surplus watts returned to the reserve pool. */
    BudgetReturn,
    /** DVFS ladder step up (compute-bound demand). */
    DvfsClimb,
    /** DVFS ladder step down (bandwidth-bound coast). */
    DvfsCoast,
    /** Feedback throttle ordered for the coming window. */
    Throttle,
    /** Thermal episode clamped the clock below the DVFS point. */
    ThermalCap,
};

/** Stable lowercase name ("budget_grant", ...). */
const char *powerEventKindName(PowerEventKind kind);

/** One CPME/LPME decision. */
struct PowerEvent
{
    /** Simulated time of the decision (the trace window stamp). */
    Tick at = 0;
    PowerEventKind kind = PowerEventKind::BudgetGrant;
    /** LPME the decision concerns ("" for chip-level DVFS events). */
    std::string unit;
    /** Watts the unit asked for (budget events). */
    double requestedWatts = 0.0;
    /** Watts actually granted / returned (budget events). */
    double grantedWatts = 0.0;
    /** Reserve pool after the decision (budget events). */
    double reserveWatts = 0.0;
    /** Clock before the step (DVFS / thermal events), GHz. */
    double fromGhz = 0.0;
    /** Clock after the step (DVFS / thermal events), GHz. */
    double toGhz = 0.0;
    /** Throttle ratio ordered for the next window (throttle events). */
    double throttle = 0.0;
};

/** Bounded ring of PowerEvents with per-kind running counts. */
class PowerAuditTrail
{
  public:
    /** @param capacity ring size; older events are evicted. */
    explicit PowerAuditTrail(std::size_t capacity = 1024);

    /** Append @p event, evicting the oldest past capacity. */
    void record(const PowerEvent &event);

    /** Buffered events, oldest first. */
    const std::deque<PowerEvent> &events() const { return events_; }

    /** Events ever recorded (monotonic, survives eviction). */
    std::uint64_t totalRecorded() const { return totalRecorded_; }

    /** Running count of @p kind over the whole run (not just the ring). */
    std::uint64_t count(PowerEventKind kind) const;

    std::size_t capacity() const { return capacity_; }

    /** Drop all buffered events and reset the counters. */
    void clear();

    /**
     * Serialize the trail: per-kind totals plus the buffered ring
     * (oldest first). Null-safe for embedding in larger documents.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::size_t capacity_;
    std::deque<PowerEvent> events_;
    std::uint64_t totalRecorded_ = 0;
    std::uint64_t counts_[7] = {};
};

class JsonWriter;

/**
 * Emit one event as a JSON object into an open @p json writer (used
 * by the flight-recorder dump and the EnergyReport).
 */
void writePowerEventJson(const PowerEvent &event, JsonWriter &json);

/**
 * Emit an EnergyBreakdown as a JSON object (mac/vector/l1/l2/hbm/
 * dma/static joules plus the bucket total) into an open writer. One
 * spelling shared by ExecResult, ServingReport, the EnergyReport,
 * and the flight dump.
 */
void writeEnergyBreakdownJson(const EnergyBreakdown &energy,
                              JsonWriter &json);

} // namespace dtu

#endif // DTU_POWER_POWER_EVENT_HH
