#include "serve/scheduler.hh"

#include <algorithm>
#include <limits>

#include "compiler/lowering.hh"
#include "models/model_zoo.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "serve/arrival.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{
namespace serve
{

namespace
{

constexpr Tick kNever = std::numeric_limits<Tick>::max();

} // namespace

Scheduler::Scheduler(Dtu &dtu, ResourceManager &manager,
                     ServingConfig config)
    : dtu_(dtu), manager_(manager), config_(std::move(config))
{
    fatalIf(config_.batching.maxBatch == 0,
            "dynamic batch size must be at least 1");
    for (const auto &[model, cap] : config_.batching.perModelMaxBatch)
        fatalIf(cap == 0, "per-model batch cap for '", model,
                "' must be at least 1");
    fatalIf(config_.groupsPerBatch == 0 ||
                config_.groupsPerBatch >
                    dtu_.config().groupsPerCluster,
            "groups per batch must be 1..",
            dtu_.config().groupsPerCluster);

    // The first scheduler on a chip owns the chip-level degradation
    // counters; further schedulers (the registry rejects duplicate
    // names) count locally and report through their ServingReport.
    StatRegistry &stats = dtu_.stats();
    if (!stats.has("serve.shed_requests")) {
        shedStat_.init(stats, "serve.shed_requests",
                       "queued requests shed after deadline expiry");
        timedOutStat_.init(stats, "serve.timed_out_requests",
                           "queued requests dropped by timeout");
        rejectedStat_.init(stats, "serve.rejected_requests",
                           "arrivals bounced by admission control");
        failedStat_.init(stats, "serve.failed_requests",
                         "requests whose batch stayed poisoned");
        retryStat_.init(stats, "serve.batch_retries",
                        "poisoned-batch re-executions");
    }
}

const ExecutionPlan &
Scheduler::plan(const std::string &model, unsigned batch)
{
    PlanCache &cache = plans();
    auto key = std::make_pair(model, batch);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Graph graph = models::buildModel(model,
                                         static_cast<int>(batch));
        it = cache
                 .emplace(key, compile(graph, dtu_.config(),
                                       config_.dtype,
                                       config_.groupsPerBatch, {},
                                       static_cast<int>(batch)))
                 .first;
    }
    return it->second;
}

void
Scheduler::begin(Tick start, const std::map<std::string, unsigned> *future)
{
    (void)start;
    future_ = future;
    queue_ = RequestQueue();
    active_.clear();
    completed_.clear();
    dropped_.clear();
    batches_ = 0;
    batchRetries_ = 0;
    nextTenant_ = config_.tenantBase;
    lastCompletion_ = 0;
    peakQueue_ = 0;
    joulesBefore_ = dtu_.energy().joules();
    faults_ = dtu_.faults();
    faultsBefore_ = faults_ ? faults_->log().size() : 0;
    weightReady_.clear();
    loadCursor_ = 0;
    weightLoads_ = 0;
    weightLoadTicks_ = 0;
    weightLoadBytes_ = 0;

    Tracer &tracer = dtu_.tracer();
    if (config_.exec.timeline)
        tracer.setEnabled(true);
    timeline_ = tracer.enabled();
    placeTrackMade_ = false;
    if (timeline_) {
        reqTrack_ = tracer.track("serve", "requests");
        batchTrack_ = tracer.track("serve", "batches");
        dropTrack_ = tracer.track("serve", "degradation");
    }
}

unsigned
Scheduler::futureCount(const std::string &model) const
{
    if (!future_)
        return 0;
    auto it = future_->find(model);
    return it == future_->end() ? 0 : it->second;
}

Tick
Scheduler::weightReadyAt(const std::string &model) const
{
    auto it = weightReady_.find(model);
    return it == weightReady_.end() ? 0 : it->second;
}

void
Scheduler::placeModel(const std::string &model, Tick now, double gbps)
{
    if (modelPlaced(model))
        return;
    if (gbps <= 0.0) {
        // Placement tracked (model-affinity routing keys on it) but
        // the load itself is not modeled: weights are resident
        // immediately, exactly like the single-device path.
        weightReady_[model] = 0;
        return;
    }
    const std::uint64_t bytes = plan(model, 1).totalWeightBytes();
    const Tick load =
        secondsToTicks(static_cast<double>(bytes) / (gbps * 1e9));
    const Tick start = std::max(loadCursor_, now);
    loadCursor_ = saturatingAddTicks(start, load);
    weightReady_[model] = loadCursor_;
    ++weightLoads_;
    weightLoadTicks_ += load;
    weightLoadBytes_ += bytes;
    if (timeline_) {
        Tracer &tracer = dtu_.tracer();
        if (!placeTrackMade_) {
            placeTrack_ = tracer.track("serve", "placement");
            placeTrackMade_ = true;
        }
        tracer.span(placeTrack_, "load " + model, "weight-load",
                    start, loadCursor_,
                    {{"bytes", static_cast<double>(bytes)}});
    }
    if (reqTracer_)
        reqTracer_->onWeightLoad(deviceId_, model, start, loadCursor_,
                                 bytes);
}

std::vector<std::string>
Scheduler::placedModels() const
{
    std::vector<std::string> models;
    models.reserve(weightReady_.size());
    for (const auto &[model, ready] : weightReady_)
        models.push_back(model);
    return models;
}

std::size_t
Scheduler::outstanding() const
{
    std::size_t inflight = 0;
    for (const ActiveBatch &b : active_)
        inflight += b.requests.size();
    return queue_.size() + inflight;
}

void
Scheduler::drop(const Request &r, Tick at, DropReason reason)
{
    switch (reason) {
      case DropReason::Rejected: ++rejectedStat_; break;
      case DropReason::Shed: ++shedStat_; break;
      case DropReason::TimedOut: ++timedOutStat_; break;
      case DropReason::Failed: ++failedStat_; break;
    }
    if (timeline_) {
        dtu_.tracer().instant(
            dropTrack_,
            std::string(dropReasonName(reason)) + " #" +
                std::to_string(r.id),
            "degradation", at);
    }
    dropped_.push_back({r, at, reason});
    if (sloMon_)
        sloMon_->recordDrop(dropped_.back());
    if (reqTracer_)
        reqTracer_->onDrop(deviceId_, dropped_.back());
}

void
Scheduler::admit(const Request &r)
{
    // Admission control: a client sees an immediate reject instead
    // of a doomed wait when the queue is already over the configured
    // depth.
    const DegradationPolicy &degrade = config_.degradation;
    if (degrade.admissionLimit != 0 &&
        queue_.size() >= degrade.admissionLimit) {
        drop(r, r.arrival, DropReason::Rejected);
        return;
    }
    queue_.push(r);
    peakQueue_ = std::max(peakQueue_, queue_.size());
    if (reqTracer_)
        reqTracer_->onAdmit(deviceId_, r);
}

// Load shedding + queue timeout: sweep queued requests whose
// deadline already passed (they could only waste a lease) or whose
// queue wait hit the cap. Deadline arithmetic saturates: a timeout
// configured near maxTick means "never", not a wrapped instant drop.
void
Scheduler::dropExpired(Tick at)
{
    const DegradationPolicy &degrade = config_.degradation;
    if (!degrade.shedExpired && degrade.requestTimeout == 0)
        return;
    auto expired = [&](const Request &r) {
        return degrade.shedExpired && r.deadline != 0 &&
               r.deadline <= at;
    };
    std::vector<Request> victims =
        queue_.removeIf([&](const Request &r) {
            if (expired(r))
                return true;
            return degrade.requestTimeout != 0 &&
                   at >= saturatingAddTicks(r.arrival,
                                            degrade.requestTimeout);
        });
    for (const Request &r : victims) {
        drop(r, at,
             expired(r) ? DropReason::Shed : DropReason::TimedOut);
    }
}

// Launch rule: full batch, oldest request timed out, or no future
// arrival could grow the batch further — and, when the fleet
// modeled a weight load for this model, the weights are resident.
bool
Scheduler::shouldLaunch(const std::string &model, Tick now) const
{
    std::size_t depth = queue_.sizeFor(model);
    if (depth == 0)
        return false;
    if (weightReadyAt(model) > now)
        return false;
    if (depth >= config_.batching.maxBatchFor(model))
        return true;
    if (now >= saturatingAddTicks(queue_.oldestArrival(model),
                                  config_.batching.maxQueueDelay))
        return true;
    return futureCount(model) == 0;
}

void
Scheduler::advanceCompletions(Tick upto)
{
    std::vector<ActiveBatch> still_running;
    std::vector<ActiveBatch> done;
    for (ActiveBatch &b : active_) {
        (b.end <= upto ? done : still_running)
            .push_back(std::move(b));
    }
    active_ = std::move(still_running);
    // Deterministic completion order: by (end, tenant).
    std::sort(done.begin(), done.end(),
              [](const ActiveBatch &a, const ActiveBatch &b) {
                  if (a.end != b.end)
                      return a.end < b.end;
                  return a.tenant < b.tenant;
              });
    Tracer &tracer = dtu_.tracer();
    for (const ActiveBatch &b : done) {
        manager_.release(b.tenant, b.end);
        lastCompletion_ = std::max(lastCompletion_, b.end);
        auto size = static_cast<unsigned>(b.requests.size());
        if (timeline_) {
            TraceArgs args{{"batch", static_cast<double>(size)}};
            if (b.retries)
                args.emplace_back("retries",
                                  static_cast<double>(b.retries));
            if (b.failed)
                args.emplace_back("failed", 1.0);
            tracer.span(batchTrack_, b.model, "serving-batch",
                        b.dispatched, b.end, std::move(args));
        }
        if (b.failed) {
            // Retries ran out with the execution still poisoned:
            // the whole batch's results are suspect and every rider
            // fails together.
            for (const Request &r : b.requests)
                drop(r, b.end, DropReason::Failed);
            continue;
        }
        for (const Request &r : b.requests) {
            CompletedRequest c;
            c.request = r;
            c.dispatched = b.dispatched;
            c.completed = b.end;
            c.batchSize = size;
            if (timeline_) {
                tracer.span(
                    reqTrack_,
                    b.model + " #" + std::to_string(r.id),
                    "request", r.arrival, b.end,
                    {{"queue_wait_us",
                      ticksToMicroSeconds(c.queueWait())},
                     {"batch", static_cast<double>(size)},
                     {"missed",
                      c.missedDeadline() ? 1.0 : 0.0}});
            }
            if (sloMon_)
                sloMon_->recordCompletion(c);
            if (reqTracer_)
                reqTracer_->onComplete(deviceId_, c);
            completed_.push_back(std::move(c));
        }
    }
}

void
Scheduler::settle(Tick now)
{
    dropExpired(now);
    const DegradationPolicy &degrade = config_.degradation;
    // Launch everything launchable at the current time. The model
    // scan restarts after every pass so a freed lease can host the
    // next queued model (alphabetical, deterministic).
    bool launched = true;
    while (launched) {
        launched = false;
        for (const std::string &model : queue_.models()) {
            while (shouldLaunch(model, now) &&
                   manager_.freeGroups() >= config_.groupsPerBatch) {
                auto lease = manager_.allocate(
                    nextTenant_, config_.groupsPerBatch, now);
                if (!lease)
                    break; // free groups span clusters
                std::vector<Request> reqs = queue_.popBatch(
                    model, config_.batching.maxBatchFor(model));
                const ExecutionPlan &p = plan(
                    model, static_cast<unsigned>(reqs.size()));
                // A batch carrying a sampled request records its
                // chip-side operator spans (the flow-arrow targets)
                // even when the user left the chip timeline off; the
                // op trace supplies the flow anchor. Recording is
                // observation only — simulated timing is unchanged.
                bool sampled_batch = false;
                if (reqTracer_) {
                    for (const Request &q : reqs) {
                        if (reqTracer_->sampled(q.id)) {
                            sampled_batch = true;
                            break;
                        }
                    }
                }
                ExecOptions exec_opts = config_.exec;
                if (sampled_batch)
                    exec_opts.trace = true;
                Executor executor(dtu_, lease->groups, exec_opts);
                // Poisoned executions (uncorrectable ECC, exhausted
                // DMA retries) re-run on the same lease up to
                // maxBatchRetries times; the lease is held across
                // retries so the re-execution cannot be starved by
                // new admissions.
                unsigned retries = 0;
                bool poisoned = false;
                Tick launch_at = now;
                ExecResult r;
                {
                    ScopedTracerEnable chip_scope(dtu_.tracer(),
                                                  sampled_batch);
                    for (;;) {
                        std::uint64_t before =
                            faults_ ? faults_->poisonCount() : 0;
                        r = executor.run(p, launch_at);
                        poisoned =
                            faults_ && faults_->poisonCount() > before;
                        if (!poisoned ||
                            retries >= degrade.maxBatchRetries)
                            break;
                        ++retries;
                        ++batchRetries_;
                        ++retryStat_;
                        launch_at = r.end;
                        if (timeline_) {
                            dtu_.tracer().instant(
                                dropTrack_, "batch-retry " + model,
                                "degradation", launch_at);
                        }
                    }
                    if (sampled_batch) {
                        // Flow anchor: the midpoint of the first
                        // operator span of the final execution.
                        Tick link =
                            r.trace.empty()
                                ? launch_at + (r.end - launch_at) / 2
                                : r.trace.front().start +
                                      (r.trace.front().end -
                                       r.trace.front().start) /
                                          2;
                        reqTracer_->onBatchExecuted(
                            deviceId_, dtu_.tracer(), reqs, now,
                            r.end, link, retries);
                    }
                }
                ActiveBatch batch;
                batch.end = r.end;
                batch.dispatched = now;
                batch.tenant = nextTenant_;
                batch.model = model;
                batch.requests = std::move(reqs);
                batch.retries = retries;
                batch.failed = poisoned;
                active_.push_back(std::move(batch));
                ++nextTenant_;
                ++batches_;
                launched = true;
            }
        }
    }
}

Tick
Scheduler::nextEvent(Tick now) const
{
    Tick next = kNever;
    for (const ActiveBatch &b : active_)
        next = std::min(next, b.end);
    for (const std::string &model : queue_.models()) {
        Tick timeout =
            saturatingAddTicks(queue_.oldestArrival(model),
                               config_.batching.maxQueueDelay);
        if (timeout > now && timeout != kNever)
            next = std::min(next, timeout);
        Tick ready = weightReadyAt(model);
        if (ready > now)
            next = std::min(next, ready);
    }
    // Degradation deadlines are events too: a queued request's SLO
    // expiry or queue-timeout maturation must wake the loop even
    // with no arrival or completion in between — including when
    // requestTimeout is the only policy enabled and the requests
    // carry no deadline of their own.
    const DegradationPolicy &degrade = config_.degradation;
    if (degrade.shedExpired || degrade.requestTimeout != 0) {
        queue_.forEach([&](const Request &r) {
            if (degrade.shedExpired && r.deadline > now)
                next = std::min(next, r.deadline);
            if (degrade.requestTimeout != 0) {
                Tick timeout = saturatingAddTicks(
                    r.arrival, degrade.requestTimeout);
                if (timeout > now && timeout != kNever)
                    next = std::min(next, timeout);
            }
        });
    }
    return next;
}

obs::DeviceMetricSample
Scheduler::metricSample(unsigned device) const
{
    obs::DeviceMetricSample d;
    d.device = device;
    d.queueDepth = queue_.size();
    d.inFlightBatches = active_.size();
    d.outstanding = outstanding();
    d.completed = completed_.size();
    d.dropped = dropped_.size();
    d.retries = batchRetries_;
    return d;
}

ServingReport
Scheduler::finish(double offered_qps)
{
    ServingReport report = summarize(
        std::move(completed_), offered_qps, batches_,
        dtu_.energy().joules() - joulesBefore_,
        manager_.utilization(lastCompletion_), std::move(dropped_),
        batchRetries_,
        faults_ ? faults_->log().size() - faultsBefore_ : 0);
    completed_.clear();
    dropped_.clear();
    return report;
}

ServingReport
Scheduler::serve(std::vector<Request> trace)
{
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    const double offered = offeredQps(trace);

    // How many arrivals of each model are still in the future: the
    // batcher stops holding a partial batch once no companion can
    // ever join it.
    std::map<std::string, unsigned> future;
    for (const Request &r : trace)
        ++future[r.model];

    Tick now = trace.empty() ? 0 : trace.front().arrival;
    begin(now, &future);

    std::size_t next_arrival = 0;
    auto admitUpTo = [&](Tick upto) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival <= upto) {
            const Request &r = trace[next_arrival++];
            --future[r.model];
            admit(r);
        }
    };

    admitUpTo(now);
    settle(now);
    // Periodic metric snapshots: pure observation points. The loop
    // wakes early for them only while a real event is still pending,
    // and the settle/advance steps are idempotent at non-event ticks,
    // so sampling never changes simulated results (or termination).
    const Tick metric_period =
        reqTracer_ ? reqTracer_->metricPeriod() : 0;
    Tick next_sample =
        metric_period ? (now / metric_period + 1) * metric_period
                      : kNever;
    while (true) {
        // Next event: an arrival, a batch completion, a queue
        // timeout maturing, or a degradation deadline. Events at or
        // before `now` are already handled (or are waiting on a
        // lease, which frees at a completion event).
        Tick next = nextEvent(now);
        if (next_arrival < trace.size())
            next = std::min(next, trace[next_arrival].arrival);
        if (next == kNever) {
            fatalIf(!queue_.empty(),
                    "serving deadlock: ", queue_.size(),
                    " queued requests but no future event");
            break;
        }
        if (next_sample < next)
            next = next_sample;
        now = next;
        advanceCompletions(now);
        admitUpTo(now);
        settle(now);
        if (metric_period && now >= next_sample) {
            obs::FleetMetricSample sample;
            sample.at = now;
            sample.devices.push_back(metricSample(deviceId_));
            reqTracer_->recordMetrics(sample);
            next_sample = (now / metric_period + 1) * metric_period;
        }
        // Close SLO windows the loop just stepped past. Events land
        // in (prev_now, now] and windows close only through now, so
        // every event is ingested before its window seals.
        if (sloMon_)
            sloMon_->advanceTo(now);
    }
    if (sloMon_)
        sloMon_->finish(std::max(now, lastCompletion_));

    return finish(offered);
}

} // namespace serve
} // namespace dtu
