#include "serve/scheduler.hh"

#include <algorithm>
#include <limits>

#include "compiler/lowering.hh"
#include "models/model_zoo.hh"
#include "obs/slo_monitor.hh"
#include "serve/arrival.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{
namespace serve
{

namespace
{

constexpr Tick kNever = std::numeric_limits<Tick>::max();

/** One batch executing on a lease. */
struct ActiveBatch
{
    Tick end = 0;
    Tick dispatched = 0;
    int tenant = -1;
    std::string model;
    std::vector<Request> requests;
    /** Poisoned re-executions this batch needed. */
    unsigned retries = 0;
    /** Still poisoned after the last permitted retry. */
    bool failed = false;
};

} // namespace

Scheduler::Scheduler(Dtu &dtu, ResourceManager &manager,
                     ServingConfig config)
    : dtu_(dtu), manager_(manager), config_(std::move(config))
{
    fatalIf(config_.batching.maxBatch == 0,
            "dynamic batch size must be at least 1");
    for (const auto &[model, cap] : config_.batching.perModelMaxBatch)
        fatalIf(cap == 0, "per-model batch cap for '", model,
                "' must be at least 1");
    fatalIf(config_.groupsPerBatch == 0 ||
                config_.groupsPerBatch >
                    dtu_.config().groupsPerCluster,
            "groups per batch must be 1..",
            dtu_.config().groupsPerCluster);

    // The first scheduler on a chip owns the chip-level degradation
    // counters; further schedulers (the registry rejects duplicate
    // names) count locally and report through their ServingReport.
    StatRegistry &stats = dtu_.stats();
    if (!stats.has("serve.shed_requests")) {
        shedStat_.init(stats, "serve.shed_requests",
                       "queued requests shed after deadline expiry");
        timedOutStat_.init(stats, "serve.timed_out_requests",
                           "queued requests dropped by timeout");
        rejectedStat_.init(stats, "serve.rejected_requests",
                           "arrivals bounced by admission control");
        failedStat_.init(stats, "serve.failed_requests",
                         "requests whose batch stayed poisoned");
        retryStat_.init(stats, "serve.batch_retries",
                        "poisoned-batch re-executions");
    }
}

const ExecutionPlan &
Scheduler::plan(const std::string &model, unsigned batch)
{
    auto key = std::make_pair(model, batch);
    auto it = plans_.find(key);
    if (it == plans_.end()) {
        Graph graph = models::buildModel(model,
                                         static_cast<int>(batch));
        it = plans_
                 .emplace(key, compile(graph, dtu_.config(),
                                       config_.dtype,
                                       config_.groupsPerBatch, {},
                                       static_cast<int>(batch)))
                 .first;
    }
    return it->second;
}

ServingReport
Scheduler::serve(std::vector<Request> trace)
{
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    const double offered = offeredQps(trace);

    Tracer &tracer = dtu_.tracer();
    if (config_.exec.timeline)
        tracer.setEnabled(true);
    const bool tl = tracer.enabled();
    TrackId req_track, batch_track, drop_track;
    if (tl) {
        req_track = tracer.track("serve", "requests");
        batch_track = tracer.track("serve", "batches");
        drop_track = tracer.track("serve", "degradation");
    }

    const double joules_before = dtu_.energy().joules();
    const DegradationPolicy &degrade = config_.degradation;
    FaultInjector *faults = dtu_.faults();
    const std::uint64_t faults_before =
        faults ? faults->log().size() : 0;
    std::vector<DroppedRequest> dropped;
    std::uint64_t batch_retries = 0;

    // How many arrivals of each model are still in the future: the
    // batcher stops holding a partial batch once no companion can
    // ever join it.
    std::map<std::string, unsigned> future;
    for (const Request &r : trace)
        ++future[r.model];

    RequestQueue queue;
    std::vector<ActiveBatch> active;
    std::vector<CompletedRequest> completed;
    completed.reserve(trace.size());
    std::uint64_t batches = 0;
    std::size_t next_arrival = 0;
    int next_tenant = config_.tenantBase;
    Tick now = trace.empty() ? 0 : trace.front().arrival;
    Tick last_completion = 0;

    auto drop = [&](const Request &r, Tick at, DropReason reason) {
        switch (reason) {
          case DropReason::Rejected: ++rejectedStat_; break;
          case DropReason::Shed: ++shedStat_; break;
          case DropReason::TimedOut: ++timedOutStat_; break;
          case DropReason::Failed: ++failedStat_; break;
        }
        if (tl) {
            tracer.instant(drop_track,
                           std::string(dropReasonName(reason)) + " #" +
                               std::to_string(r.id),
                           "degradation", at);
        }
        dropped.push_back({r, at, reason});
        if (sloMon_)
            sloMon_->recordDrop(dropped.back());
    };

    auto admitArrivals = [&](Tick upto) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival <= upto) {
            const Request &r = trace[next_arrival++];
            --future[r.model];
            // Admission control: a client sees an immediate reject
            // instead of a doomed wait when the queue is already over
            // the configured depth.
            if (degrade.admissionLimit != 0 &&
                queue.size() >= degrade.admissionLimit) {
                drop(r, r.arrival, DropReason::Rejected);
                continue;
            }
            queue.push(r);
        }
    };

    // Load shedding + queue timeout: sweep queued requests whose
    // deadline already passed (they could only waste a lease) or
    // whose queue wait hit the cap.
    auto dropExpired = [&](Tick at) {
        if (!degrade.shedExpired && degrade.requestTimeout == 0)
            return;
        auto expired = [&](const Request &r) {
            return degrade.shedExpired && r.deadline != 0 &&
                   r.deadline <= at;
        };
        std::vector<Request> victims =
            queue.removeIf([&](const Request &r) {
                if (expired(r))
                    return true;
                return degrade.requestTimeout != 0 &&
                       at >= r.arrival + degrade.requestTimeout;
            });
        for (const Request &r : victims) {
            drop(r, at,
                 expired(r) ? DropReason::Shed : DropReason::TimedOut);
        }
    };

    // Launch rule: full batch, oldest request timed out, or no
    // future arrival could grow the batch further.
    auto shouldLaunch = [&](const std::string &model) {
        std::size_t depth = queue.sizeFor(model);
        if (depth == 0)
            return false;
        if (depth >= config_.batching.maxBatchFor(model))
            return true;
        if (now >= queue.oldestArrival(model) +
                       config_.batching.maxQueueDelay)
            return true;
        return future[model] == 0;
    };

    auto completeBatches = [&](Tick upto) {
        std::vector<ActiveBatch> still_running;
        std::vector<ActiveBatch> done;
        for (ActiveBatch &b : active) {
            (b.end <= upto ? done : still_running)
                .push_back(std::move(b));
        }
        active = std::move(still_running);
        // Deterministic completion order: by (end, tenant).
        std::sort(done.begin(), done.end(),
                  [](const ActiveBatch &a, const ActiveBatch &b) {
                      if (a.end != b.end)
                          return a.end < b.end;
                      return a.tenant < b.tenant;
                  });
        for (const ActiveBatch &b : done) {
            manager_.release(b.tenant, b.end);
            last_completion = std::max(last_completion, b.end);
            auto size = static_cast<unsigned>(b.requests.size());
            if (tl) {
                TraceArgs args{{"batch", static_cast<double>(size)}};
                if (b.retries)
                    args.emplace_back("retries",
                                      static_cast<double>(b.retries));
                if (b.failed)
                    args.emplace_back("failed", 1.0);
                tracer.span(batch_track, b.model, "serving-batch",
                            b.dispatched, b.end, std::move(args));
            }
            if (b.failed) {
                // Retries ran out with the execution still poisoned:
                // the whole batch's results are suspect and every
                // rider fails together.
                for (const Request &r : b.requests)
                    drop(r, b.end, DropReason::Failed);
                continue;
            }
            for (const Request &r : b.requests) {
                CompletedRequest c;
                c.request = r;
                c.dispatched = b.dispatched;
                c.completed = b.end;
                c.batchSize = size;
                if (tl) {
                    tracer.span(
                        req_track,
                        b.model + " #" + std::to_string(r.id),
                        "request", r.arrival, b.end,
                        {{"queue_wait_us",
                          ticksToMicroSeconds(c.queueWait())},
                         {"batch", static_cast<double>(size)},
                         {"missed",
                          c.missedDeadline() ? 1.0 : 0.0}});
                }
                if (sloMon_)
                    sloMon_->recordCompletion(c);
                completed.push_back(std::move(c));
            }
        }
    };

    admitArrivals(now);
    dropExpired(now);
    while (true) {
        // Launch everything launchable at the current time. The
        // model scan restarts after every pass so a freed lease can
        // host the next queued model (alphabetical, deterministic).
        bool launched = true;
        while (launched) {
            launched = false;
            for (const std::string &model : queue.models()) {
                while (shouldLaunch(model) &&
                       manager_.freeGroups() >=
                           config_.groupsPerBatch) {
                    auto lease =
                        manager_.allocate(next_tenant,
                                          config_.groupsPerBatch,
                                          now);
                    if (!lease)
                        break; // free groups span clusters
                    std::vector<Request> reqs = queue.popBatch(
                        model, config_.batching.maxBatchFor(model));
                    const ExecutionPlan &p = plan(
                        model,
                        static_cast<unsigned>(reqs.size()));
                    Executor executor(dtu_, lease->groups,
                                      config_.exec);
                    // Poisoned executions (uncorrectable ECC,
                    // exhausted DMA retries) re-run on the same lease
                    // up to maxBatchRetries times; the lease is held
                    // across retries so the re-execution cannot be
                    // starved by new admissions.
                    unsigned retries = 0;
                    bool poisoned = false;
                    Tick launch_at = now;
                    ExecResult r;
                    for (;;) {
                        std::uint64_t before =
                            faults ? faults->poisonCount() : 0;
                        r = executor.run(p, launch_at);
                        poisoned =
                            faults && faults->poisonCount() > before;
                        if (!poisoned ||
                            retries >= degrade.maxBatchRetries)
                            break;
                        ++retries;
                        ++batch_retries;
                        ++retryStat_;
                        launch_at = r.end;
                        if (tl) {
                            tracer.instant(
                                drop_track, "batch-retry " + model,
                                "degradation", launch_at);
                        }
                    }
                    ActiveBatch batch;
                    batch.end = r.end;
                    batch.dispatched = now;
                    batch.tenant = next_tenant;
                    batch.model = model;
                    batch.requests = std::move(reqs);
                    batch.retries = retries;
                    batch.failed = poisoned;
                    active.push_back(std::move(batch));
                    ++next_tenant;
                    ++batches;
                    launched = true;
                }
            }
        }

        // Next event: an arrival, a batch completion, or a queue
        // timeout maturing. Timeouts at or before `now` are already
        // handled (or are waiting on a lease, which frees at a
        // completion event).
        Tick next = kNever;
        if (next_arrival < trace.size())
            next = std::min(next, trace[next_arrival].arrival);
        for (const ActiveBatch &b : active)
            next = std::min(next, b.end);
        for (const std::string &model : queue.models()) {
            Tick timeout = queue.oldestArrival(model) +
                           config_.batching.maxQueueDelay;
            if (timeout > now)
                next = std::min(next, timeout);
        }
        // Degradation deadlines are events too: a queued request's
        // SLO expiry or queue-timeout maturation must wake the loop
        // even with no arrival or completion in between.
        if (degrade.shedExpired || degrade.requestTimeout != 0) {
            queue.forEach([&](const Request &r) {
                if (degrade.shedExpired && r.deadline > now)
                    next = std::min(next, r.deadline);
                if (degrade.requestTimeout != 0) {
                    Tick timeout =
                        r.arrival + degrade.requestTimeout;
                    if (timeout > now)
                        next = std::min(next, timeout);
                }
            });
        }
        if (next == kNever) {
            fatalIf(!queue.empty(),
                    "serving deadlock: ", queue.size(),
                    " queued requests but no future event");
            break;
        }
        now = next;
        completeBatches(now);
        admitArrivals(now);
        dropExpired(now);
        // Close SLO windows the loop just stepped past. Events land
        // in (prev_now, now] and windows close only through now, so
        // every event is ingested before its window seals.
        if (sloMon_)
            sloMon_->advanceTo(now);
    }
    if (sloMon_)
        sloMon_->finish(std::max(now, last_completion));

    ServingReport report = summarize(
        std::move(completed), offered, batches,
        dtu_.energy().joules() - joules_before,
        manager_.utilization(last_completion), std::move(dropped),
        batch_retries,
        faults ? faults->log().size() - faults_before : 0);
    return report;
}

} // namespace serve
} // namespace dtu
