#include "serve/scheduler.hh"

#include <algorithm>
#include <limits>

#include "compiler/lowering.hh"
#include "fabric/fabric.hh"
#include "models/model_zoo.hh"
#include "obs/energy_monitor.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "serve/arrival.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"
#include "tensor/dtype.hh"

namespace dtu
{
namespace serve
{

namespace
{

constexpr Tick kNever = std::numeric_limits<Tick>::max();

/** The per-request completion span, shared by every terminal path. */
void
requestSpan(Tracer &tracer, TrackId track, const std::string &model,
            const RequestOutcome &c)
{
    tracer.span(track, model + " #" + std::to_string(c.request.id),
                "request", c.request.arrival, c.completed,
                {{"queue_wait_us", ticksToMicroSeconds(c.queueWait())},
                 {"batch", static_cast<double>(c.batchSize)},
                 {"missed", c.missedDeadline() ? 1.0 : 0.0}});
}

} // namespace

Scheduler::Scheduler(Dtu &dtu, ResourceManager &manager,
                     ServingConfig config)
    : dtu_(dtu), manager_(manager), config_(std::move(config))
{
    fatalIf(config_.batching.maxBatch == 0,
            "dynamic batch size must be at least 1");
    for (const auto &[model, cap] : config_.batching.perModelMaxBatch)
        fatalIf(cap == 0, "per-model batch cap for '", model,
                "' must be at least 1");
    fatalIf(config_.groupsPerBatch == 0 ||
                config_.groupsPerBatch >
                    dtu_.config().groupsPerCluster,
            "groups per batch must be 1..",
            dtu_.config().groupsPerCluster);
    fatalIf(config_.generation.maxDecodeBatch == 0,
            "decode batch size must be at least 1");
    fatalIf(config_.generation.ctxBucket == 0,
            "generation context bucket must be at least 1");

    // The first scheduler on a chip owns the chip-level degradation
    // counters; further schedulers (the registry rejects duplicate
    // names) count locally and report through their ServingReport.
    StatRegistry &stats = dtu_.stats();
    if (!stats.has("serve.shed_requests")) {
        shedStat_.init(stats, "serve.shed_requests",
                       "queued requests shed after deadline expiry");
        timedOutStat_.init(stats, "serve.timed_out_requests",
                           "queued requests dropped by timeout");
        rejectedStat_.init(stats, "serve.rejected_requests",
                           "arrivals bounced by admission control");
        failedStat_.init(stats, "serve.failed_requests",
                         "requests whose batch stayed poisoned");
        retryStat_.init(stats, "serve.batch_retries",
                        "poisoned-batch re-executions");
    }
}

template <typename BuildGraph>
const ExecutionPlan &
Scheduler::cachedPlan(const std::pair<std::string, unsigned> &key,
                      BuildGraph &&build)
{
    PlanCache &cache = plans();
    if (!planMutex_) {
        auto it = cache.find(key);
        if (it == cache.end())
            it = cache
                     .emplace(key, compile(build(), dtu_.config(),
                                           config_.dtype,
                                           config_.groupsPerBatch, {},
                                           static_cast<int>(key.second)))
                     .first;
        return it->second;
    }
    // Shared cache under parallel fleet workers: look up under the
    // lock, compile outside it (plans are pure functions of the graph
    // and chip config, so a concurrent racer just builds a duplicate
    // and the try_emplace loser is discarded). std::map entries are
    // reference-stable and never erased, so the returned reference is
    // safe to use unlocked.
    {
        std::lock_guard<std::mutex> lock(*planMutex_);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    ExecutionPlan compiled =
        compile(build(), dtu_.config(), config_.dtype,
                config_.groupsPerBatch, {},
                static_cast<int>(key.second));
    std::lock_guard<std::mutex> lock(*planMutex_);
    return cache.try_emplace(key, std::move(compiled)).first->second;
}

const ExecutionPlan &
Scheduler::plan(const std::string &model, unsigned batch)
{
    return cachedPlan(std::make_pair(model, batch), [&] {
        return models::buildModel(model, static_cast<int>(batch));
    });
}

const ExecutionPlan &
Scheduler::prefillPlan(const std::string &model, unsigned batch,
                      unsigned prompt)
{
    const unsigned tp = tpDegreeFor(model);
    if (tp > 1) {
        // The cache key encodes the shard so a tensor-parallel plan
        // never collides with the full model's.
        return cachedPlan(
            std::make_pair(model + "@p" + std::to_string(prompt) +
                               "!tp" + std::to_string(tp),
                           batch),
            [&] {
                return models::buildDecoderPrefillTP(
                    model, static_cast<int>(batch),
                    static_cast<int>(prompt), tp);
            });
    }
    return cachedPlan(
        std::make_pair(model + "@p" + std::to_string(prompt), batch),
        [&] {
            return models::buildDecoderPrefill(
                model, static_cast<int>(batch),
                static_cast<int>(prompt));
        });
}

const ExecutionPlan &
Scheduler::decodePlan(const std::string &model, unsigned batch,
                      unsigned ctx)
{
    const unsigned tp = tpDegreeFor(model);
    if (tp > 1) {
        return cachedPlan(
            std::make_pair(model + "@d" + std::to_string(ctx) + "!tp" +
                               std::to_string(tp),
                           batch),
            [&] {
                return models::buildDecoderStepTP(
                    model, static_cast<int>(batch),
                    static_cast<int>(ctx), tp);
            });
    }
    return cachedPlan(
        std::make_pair(model + "@d" + std::to_string(ctx), batch),
        [&] {
            return models::buildDecoderStep(model,
                                            static_cast<int>(batch),
                                            static_cast<int>(ctx));
        });
}

bool
Scheduler::shardedDecoder(const std::string &model) const
{
    return fabric_ &&
           placement_.mode != PlacementMode::DataParallel &&
           placement_.degree > 1 &&
           models::decoderSpec(model) != nullptr;
}

unsigned
Scheduler::tpDegreeFor(const std::string &model) const
{
    return fabric_ &&
                   placement_.mode == PlacementMode::TensorParallel &&
                   placement_.degree > 1 &&
                   models::decoderSpec(model)
               ? placement_.degree
               : 1;
}

unsigned
Scheduler::bucketLen(unsigned len) const
{
    const unsigned bucket = config_.generation.ctxBucket;
    return ((std::max(len, 1u) + bucket - 1) / bucket) * bucket;
}

std::uint64_t
Scheduler::bytesPerTokenFor(const std::string &model)
{
    auto it = kvBytesPerToken_.find(model);
    if (it == kvBytesPerToken_.end()) {
        const models::DecoderSpec *spec = models::decoderSpec(model);
        fatalIf(!spec, "'", model, "' is not a decoder model");
        std::uint64_t bytes =
            models::kvBytesPerToken(*spec, dtypeBytes(config_.dtype));
        // A sharded model keeps only its share of the KV cache per
        // device (heads under TP, layers under PP).
        if (shardedDecoder(model))
            bytes = std::max<std::uint64_t>(bytes / placement_.degree,
                                            1);
        it = kvBytesPerToken_.emplace(model, bytes).first;
    }
    return it->second;
}

std::uint64_t
Scheduler::kvTokens(const Request &r) const
{
    return static_cast<std::uint64_t>(r.gen.promptLen) +
           r.targetNewTokens();
}

KvCache &
Scheduler::ensureKv()
{
    if (!kv_)
        kv_ = std::make_unique<KvCache>(config_.generation.kv);
    return *kv_;
}

void
Scheduler::begin(Tick start, const std::map<std::string, unsigned> *future)
{
    (void)start;
    future_ = future;
    queue_ = RequestQueue();
    genQueue_ = RequestQueue();
    active_.clear();
    decoding_.clear();
    decodeReady_.clear();
    outcomes_.clear();
    completedN_ = 0;
    droppedN_ = 0;
    kv_.reset();
    genLog_ = GenerationLog();
    batches_ = 0;
    batchRetries_ = 0;
    nextTenant_ = config_.tenantBase;
    lastCompletion_ = 0;
    peakQueue_ = 0;
    joulesBefore_ = dtu_.energy().joules();
    energyBefore_ = dtu_.energy().breakdown();
    faults_ = dtu_.faults();
    faultsBefore_ = faults_ ? faults_->log().size() : 0;
    weightReady_.clear();
    loadCursor_ = 0;
    weightLoads_ = 0;
    weightLoadTicks_ = 0;
    weightLoadBytes_ = 0;

    Tracer &tracer = dtu_.tracer();
    if (config_.exec.timeline)
        tracer.setEnabled(true);
    timeline_ = tracer.enabled();
    placeTrackMade_ = false;
    decodeTrackMade_ = false;
    fabricTrackMade_ = false;
    if (timeline_) {
        reqTrack_ = tracer.track("serve", "requests");
        batchTrack_ = tracer.track("serve", "batches");
        dropTrack_ = tracer.track("serve", "degradation");
    }
}

unsigned
Scheduler::futureCount(const std::string &model) const
{
    if (!future_)
        return 0;
    auto it = future_->find(model);
    return it == future_->end() ? 0 : it->second;
}

Tick
Scheduler::weightReadyAt(const std::string &model) const
{
    auto it = weightReady_.find(model);
    return it == weightReady_.end() ? 0 : it->second;
}

std::uint64_t
Scheduler::placedWeightBytes(const std::string &model)
{
    const models::DecoderSpec *spec = models::decoderSpec(model);
    if (!spec)
        return plan(model, 1).totalWeightBytes();
    if (fabric_ &&
        placement_.mode == PlacementMode::PipelineParallel &&
        placement_.degree > 1) {
        // Per-device residency under pipeline parallelism is the
        // largest stage's share of the layer stack.
        const unsigned stages = placement_.degree;
        std::uint64_t worst = 0;
        for (unsigned s = 0; s < stages; ++s) {
            const ExecutionPlan &sp = cachedPlan(
                std::make_pair(model + "@p" +
                                   std::to_string(bucketLen(1)) + "!s" +
                                   std::to_string(s) + "of" +
                                   std::to_string(stages),
                               1u),
                [&] {
                    return models::buildDecoderPrefillStage(
                        model, 1, static_cast<int>(bucketLen(1)), s,
                        stages);
                });
            worst = std::max(worst, sp.totalWeightBytes());
        }
        return worst;
    }
    // Full model, or the per-device shard under tensor parallelism
    // (prefillPlan compiles the sharded graph under a !tp key).
    return prefillPlan(model, 1, bucketLen(1)).totalWeightBytes();
}

void
Scheduler::placeModel(const std::string &model, Tick now, double gbps)
{
    if (modelPlaced(model))
        return;
    if (!fabric_ && gbps <= 0.0) {
        // Placement tracked (model-affinity routing keys on it) but
        // the load itself is not modeled: weights are resident
        // immediately, exactly like the single-device path.
        weightReady_[model] = 0;
        return;
    }
    const std::uint64_t bytes = placedWeightBytes(model);
    fatalIf(bytes > dtu_.config().l3Bytes, "model '", model, "' needs ",
            bytes, " weight bytes but the device HBM holds only ",
            dtu_.config().l3Bytes,
            " — shard it across devices with a tensor-parallel or "
            "pipeline-parallel placement");
    const Tick start = std::max(loadCursor_, now);
    Tick ready;
    std::uint64_t moved = bytes;
    if (fabric_) {
        // Every group member DMAs its shard over the shared root
        // complex; the group is ready when the slowest load lands,
        // and loads co-scheduled with other placements contend on
        // the fabric ledger instead of each enjoying full bandwidth.
        const unsigned loads =
            shardedDecoder(model) ? placement_.degree : 1;
        ready = start;
        for (unsigned i = 0; i < loads; ++i)
            ready = std::max(ready, fabric_->hostLoadAt(start, bytes));
        moved = bytes * loads;
        dtu_.energy().addFabric(static_cast<double>(moved));
    } else {
        const Tick load =
            secondsToTicks(static_cast<double>(bytes) / (gbps * 1e9));
        ready = saturatingAddTicks(start, load);
    }
    loadCursor_ = ready;
    weightReady_[model] = ready;
    ++weightLoads_;
    weightLoadTicks_ =
        saturatingAddTicks(weightLoadTicks_, ready - start);
    weightLoadBytes_ += moved;
    if (timeline_) {
        Tracer &tracer = dtu_.tracer();
        if (!placeTrackMade_) {
            placeTrack_ = tracer.track("serve", "placement");
            placeTrackMade_ = true;
        }
        tracer.span(placeTrack_, "load " + model, "weight-load",
                    start, ready,
                    {{"bytes", static_cast<double>(moved)}});
    }
    if (reqTracer_)
        reqTracer_->onWeightLoad(deviceId_, model, start, ready,
                                 moved);
}

Tick
Scheduler::shardOverlay(const std::string &model, Tick now,
                        Tick compute_end, unsigned batch,
                        unsigned tokens)
{
    const models::DecoderSpec *spec = models::decoderSpec(model);
    if (!spec)
        return compute_end;
    const unsigned d = placement_.degree;
    // The tensor crossing the fabric after each sharded block (TP)
    // or at each stage boundary (PP): the layer's activations.
    const std::uint64_t act = static_cast<std::uint64_t>(batch) *
                              tokens *
                              static_cast<std::uint64_t>(spec->hidden) *
                              dtypeBytes(config_.dtype);
    const Tick T = compute_end > now ? compute_end - now : 0;
    Tracer &tracer = dtu_.tracer();
    if (timeline_ && !fabricTrackMade_) {
        fabricTrack_ = tracer.track("serve", "fabric");
        fabricTrackMade_ = true;
    }
    Tick end = compute_end;
    if (placement_.mode == PlacementMode::TensorParallel) {
        // One ring all-reduce after the attention out-projection and
        // one after the FFN down-projection of every layer, each
        // submitted where its layer ends within the compute interval.
        const unsigned n = 2 * static_cast<unsigned>(spec->layers);
        for (unsigned k = 0; k < n; ++k) {
            const Tick at = saturatingAddTicks(
                now, static_cast<Tick>(static_cast<double>(T) *
                                       (k + 1) / n));
            const Tick done =
                fabric_->allReduceAt(fabricGroup_, at, act);
            end = std::max(end, done);
            if (timeline_) {
                tracer.span(fabricTrack_,
                            model + ".allreduce" + std::to_string(k),
                            "all-reduce", at, done,
                            {{"bytes", static_cast<double>(act)},
                             {"degree", static_cast<double>(d)}});
            }
        }
        // Ring wire traffic: every device moves 2(d-1)/d of the
        // payload per collective.
        dtu_.energy().addFabric(static_cast<double>(n) *
                                static_cast<double>(act) * 2.0 *
                                (d - 1) / d);
    } else if (placement_.mode == PlacementMode::PipelineParallel) {
        // The batch re-times as a (d stages x m microbatches)
        // pipeline: each microbatch spends T/(d*m) per stage, and a
        // point-to-point activation send crosses each stage boundary.
        // The bubble fraction (d-1)/(d+m-1) falls out of the shape.
        const unsigned m = placement_.microbatches;
        const Tick t_micro = std::max<Tick>(
            T / (static_cast<Tick>(d) * m), 1);
        const std::uint64_t mact =
            std::max<std::uint64_t>(act / m, 1);
        Tick pp_end = saturatingAddTicks(
            now, (static_cast<Tick>(d) + m - 1) * t_micro);
        for (unsigned s = 0; s + 1 < d; ++s) {
            for (unsigned j = 0; j < m; ++j) {
                const Tick at = saturatingAddTicks(
                    now,
                    (static_cast<Tick>(s) + j + 1) * t_micro);
                const Tick done =
                    fabric_->sendAt(fabricGroup_, s, at, mact);
                pp_end = std::max(
                    pp_end,
                    saturatingAddTicks(
                        done,
                        static_cast<Tick>(d - 1 - s) * t_micro));
                if (timeline_) {
                    tracer.span(fabricTrack_,
                                model + ".act s" + std::to_string(s) +
                                    ">s" + std::to_string(s + 1) +
                                    " mb" + std::to_string(j),
                                "activation", at, done,
                                {{"bytes",
                                  static_cast<double>(mact)}});
                }
            }
        }
        end = pp_end;
        dtu_.energy().addFabric(static_cast<double>(d - 1) * m *
                                static_cast<double>(mact));
    }
    return std::max(end, now);
}

std::vector<std::string>
Scheduler::placedModels() const
{
    std::vector<std::string> models;
    models.reserve(weightReady_.size());
    for (const auto &[model, ready] : weightReady_)
        models.push_back(model);
    return models;
}

std::size_t
Scheduler::outstanding() const
{
    std::size_t inflight = 0;
    for (const ActiveBatch &b : active_)
        inflight += b.requests.size();
    for (const DecodeBatch &b : decoding_)
        inflight += b.seqs.size();
    return queueDepth() + decodeReadyCount() + inflight;
}

std::size_t
Scheduler::inFlightBatches() const
{
    std::size_t stepping = 0;
    for (const DecodeBatch &b : decoding_) {
        if (b.inStep)
            ++stepping;
    }
    return active_.size() + stepping;
}

std::size_t
Scheduler::decodeReadyCount() const
{
    std::size_t waiting = 0;
    for (const auto &[model, seqs] : decodeReady_)
        waiting += seqs.size();
    return waiting;
}

void
Scheduler::complete(RequestOutcome outcome)
{
    lastCompletion_ = std::max(lastCompletion_, outcome.completed);
    if (sloMon_)
        sloMon_->recordCompletion(outcome);
    if (reqTracer_)
        reqTracer_->onComplete(deviceId_, outcome);
    outcomes_.push_back(std::move(outcome));
    ++completedN_;
}

void
Scheduler::dropOutcome(RequestOutcome outcome)
{
    switch (outcome.dropReason) {
      case DropReason::Rejected: ++rejectedStat_; break;
      case DropReason::Shed: ++shedStat_; break;
      case DropReason::TimedOut: ++timedOutStat_; break;
      case DropReason::Failed: ++failedStat_; break;
    }
    if (timeline_) {
        dtu_.tracer().instant(
            dropTrack_,
            std::string(dropReasonName(outcome.dropReason)) + " #" +
                std::to_string(outcome.request.id),
            "degradation", outcome.completed);
    }
    if (sloMon_)
        sloMon_->recordDrop(outcome);
    if (reqTracer_)
        reqTracer_->onDrop(deviceId_, outcome);
    outcomes_.push_back(std::move(outcome));
    ++droppedN_;
}

void
Scheduler::drop(const Request &r, Tick at, DropReason reason)
{
    RequestOutcome o;
    o.request = r;
    o.state = terminalStateFor(reason);
    o.dropReason = reason;
    o.device = static_cast<int>(deviceId_);
    o.completed = at;
    dropOutcome(std::move(o));
}

void
Scheduler::admit(const Request &r)
{
    // Admission control: a client sees an immediate reject instead
    // of a doomed wait when the queue is already over the configured
    // depth.
    const DegradationPolicy &degrade = config_.degradation;
    if (degrade.admissionLimit != 0 &&
        queueDepth() >= degrade.admissionLimit) {
        drop(r, r.arrival, DropReason::Rejected);
        return;
    }
    if (r.generative()) {
        fatalIf(!models::decoderSpec(r.model),
                "generative request #", r.id, " targets '", r.model,
                "', which is not a decoder model");
        fatalIf(r.gen.promptLen == 0, "generative request #", r.id,
                " has an empty prompt");
        // KV admission: a sequence whose worst-case footprint
        // (prompt + every token it could emit) exceeds the whole
        // pool can never run — queueing would deadlock, so it is
        // bounced like an over-limit arrival.
        if (!ensureKv().fitsEver(kvTokens(r),
                                 bytesPerTokenFor(r.model))) {
            drop(r, r.arrival, DropReason::Rejected);
            return;
        }
        genQueue_.push(r);
    } else {
        queue_.push(r);
    }
    peakQueue_ = std::max(peakQueue_, queueDepth());
    if (reqTracer_)
        reqTracer_->onAdmit(deviceId_, r);
}

// Load shedding + queue timeout: sweep queued requests whose
// deadline already passed (they could only waste a lease) or whose
// queue wait hit the cap. Deadline arithmetic saturates: a timeout
// configured near maxTick means "never", not a wrapped instant drop.
// Queued generative requests hold no KV pages yet, so the sweep
// needs no release.
void
Scheduler::dropExpired(Tick at)
{
    const DegradationPolicy &degrade = config_.degradation;
    if (!degrade.shedExpired && degrade.requestTimeout == 0)
        return;
    auto expired = [&](const Request &r) {
        return degrade.shedExpired && r.deadline != 0 &&
               r.deadline <= at;
    };
    for (RequestQueue *queue : {&queue_, &genQueue_}) {
        std::vector<Request> victims =
            queue->removeIf([&](const Request &r) {
                if (expired(r))
                    return true;
                return degrade.requestTimeout != 0 &&
                       at >= saturatingAddTicks(
                                 r.arrival, degrade.requestTimeout);
            });
        for (const Request &r : victims) {
            drop(r, at,
                 expired(r) ? DropReason::Shed
                            : DropReason::TimedOut);
        }
    }
}

// Launch rule: full batch, oldest request timed out, or no future
// arrival could grow the batch further — and, when the fleet
// modeled a weight load for this model, the weights are resident.
bool
Scheduler::shouldLaunch(const std::string &model, Tick now) const
{
    std::size_t depth = queue_.sizeFor(model);
    if (depth == 0)
        return false;
    if (weightReadyAt(model) > now)
        return false;
    if (depth >= config_.batching.maxBatchFor(model))
        return true;
    if (now >= saturatingAddTicks(queue_.oldestArrival(model),
                                  config_.batching.maxQueueDelay))
        return true;
    return futureCount(model) == 0;
}

// The same rule over the generation queue (prefill launches).
bool
Scheduler::shouldLaunchGen(const std::string &model, Tick now) const
{
    std::size_t depth = genQueue_.sizeFor(model);
    if (depth == 0)
        return false;
    if (weightReadyAt(model) > now)
        return false;
    if (depth >= config_.batching.maxBatchFor(model))
        return true;
    if (now >= saturatingAddTicks(genQueue_.oldestArrival(model),
                                  config_.batching.maxQueueDelay))
        return true;
    return futureCount(model) == 0;
}

Scheduler::BatchRun
Scheduler::executeBatch(const ExecutionPlan &p,
                        const std::vector<Request> &riders,
                        const std::vector<unsigned> &groups, Tick now,
                        unsigned max_retries, bool record_ops,
                        const std::string &model, const char *phase)
{
    // A batch carrying a sampled request records its chip-side
    // operator spans (the flow-arrow targets) even when the user
    // left the chip timeline off; the op trace supplies the flow
    // anchor. Recording is observation only — simulated timing is
    // unchanged.
    bool sampled_batch = false;
    if (reqTracer_) {
        for (const Request &q : riders) {
            if (reqTracer_->sampled(q.id)) {
                sampled_batch = true;
                break;
            }
        }
    }
    ExecOptions exec_opts = config_.exec;
    if (sampled_batch)
        exec_opts.trace = true;
    if (record_ops)
        exec_opts.trace = true;
    // The energy-feature corpus needs every batch's operator traces,
    // not just the generative phases' — same observation-only rule.
    const bool corpus = energyMon_ && energyMon_->corpusEnabled();
    if (corpus)
        exec_opts.trace = true;
    Executor executor(dtu_, groups, exec_opts);
    // Poisoned executions (uncorrectable ECC, exhausted DMA retries)
    // re-run on the same lease up to max_retries times; the lease is
    // held across retries so the re-execution cannot be starved by
    // new admissions.
    BatchRun run;
    Tick launch_at = now;
    {
        ScopedTracerEnable chip_scope(dtu_.tracer(), sampled_batch);
        for (;;) {
            std::uint64_t before =
                faults_ ? faults_->poisonCount() : 0;
            run.result = executor.run(p, launch_at);
            run.poisoned =
                faults_ && faults_->poisonCount() > before;
            if (!run.poisoned || run.retries >= max_retries)
                break;
            ++run.retries;
            ++batchRetries_;
            ++retryStat_;
            launch_at = run.result.end;
            if (timeline_) {
                dtu_.tracer().instant(
                    dropTrack_, "batch-retry " + model,
                    "degradation", launch_at);
            }
        }
        if (sampled_batch) {
            // Flow anchor: the midpoint of the first operator span
            // of the final execution.
            const ExecResult &r = run.result;
            Tick link =
                r.trace.empty()
                    ? launch_at + (r.end - launch_at) / 2
                    : r.trace.front().start +
                          (r.trace.front().end -
                           r.trace.front().start) /
                              2;
            reqTracer_->onBatchExecuted(deviceId_, dtu_.tracer(),
                                        riders, now, r.end, link,
                                        run.retries);
        }
    }
    if (corpus)
        energyMon_->recordOps(deviceId_, model, phase, run.result);
    run.end = run.result.end;
    return run;
}

void
Scheduler::accumulatePhase(PhaseBreakdown &phase,
                           const ExecResult &result)
{
    for (const OpTrace &op : result.trace) {
        const double compute = static_cast<double>(op.computeTicks);
        const double act_dma = static_cast<double>(
            std::max(op.dmaInTicks, op.dmaOutTicks));
        phase.issueTicks += compute;
        // Memory time: weight-stream stalls, DMA the pipeline could
        // not hide, and activation DMA overhanging the compute it
        // was double-buffered against.
        phase.dmaTicks += static_cast<double>(op.weightStallTicks) +
                          static_cast<double>(op.unhiddenTicks) +
                          std::max(0.0, act_dma - compute);
        phase.otherTicks +=
            static_cast<double>(op.launchTicks) +
            static_cast<double>(op.kernelStallTicks);
        phase.macs += op.macs;
        phase.bytes += op.bytes;
        phase.energy.add(op.energy);
    }
}

void
Scheduler::advanceCompletions(Tick upto)
{
    std::vector<ActiveBatch> still_running;
    std::vector<ActiveBatch> done;
    for (ActiveBatch &b : active_) {
        (b.end <= upto ? done : still_running)
            .push_back(std::move(b));
    }
    active_ = std::move(still_running);
    // Deterministic completion order: by (end, tenant).
    std::sort(done.begin(), done.end(),
              [](const ActiveBatch &a, const ActiveBatch &b) {
                  if (a.end != b.end)
                      return a.end < b.end;
                  return a.tenant < b.tenant;
              });
    Tracer &tracer = dtu_.tracer();
    for (const ActiveBatch &b : done) {
        manager_.release(b.tenant, b.end);
        lastCompletion_ = std::max(lastCompletion_, b.end);
        auto size = static_cast<unsigned>(b.requests.size());
        if (timeline_) {
            TraceArgs args{{"batch", static_cast<double>(size)}};
            if (b.retries)
                args.emplace_back("retries",
                                  static_cast<double>(b.retries));
            if (b.failed)
                args.emplace_back("failed", 1.0);
            tracer.span(batchTrack_,
                        b.prefill ? b.model + " prefill" : b.model,
                        "serving-batch", b.dispatched, b.end,
                        std::move(args));
        }
        if (b.prefill) {
            retirePrefill(b);
            continue;
        }
        if (b.failed) {
            // Retries ran out with the execution still poisoned:
            // the whole batch's results are suspect and every rider
            // fails together.
            for (const Request &r : b.requests) {
                RequestOutcome o;
                o.request = r;
                o.state = TerminalState::Faulted;
                o.dropReason = DropReason::Failed;
                o.device = static_cast<int>(deviceId_);
                o.dispatched = b.dispatched;
                o.completed = b.end;
                o.batchSize = size;
                o.retries = b.retries;
                dropOutcome(std::move(o));
            }
            continue;
        }
        for (const Request &r : b.requests) {
            RequestOutcome c;
            c.request = r;
            c.device = static_cast<int>(deviceId_);
            c.dispatched = b.dispatched;
            c.firstToken = b.end;
            c.completed = b.end;
            c.batchSize = size;
            c.retries = b.retries;
            if (timeline_)
                requestSpan(tracer, reqTrack_, b.model, c);
            complete(std::move(c));
        }
    }
    advanceDecode(upto);
}

void
Scheduler::retirePrefill(const ActiveBatch &b)
{
    KvCache &kv = *kv_;
    Tracer &tracer = dtu_.tracer();
    const auto size = static_cast<unsigned>(b.requests.size());
    if (b.failed) {
        // A poisoned prefill leaves no trustworthy KV state: the
        // riders fail here and their reservations free immediately.
        for (const Request &r : b.requests) {
            kv.release(r.id);
            RequestOutcome o;
            o.request = r;
            o.state = TerminalState::Faulted;
            o.dropReason = DropReason::Failed;
            o.device = static_cast<int>(deviceId_);
            o.dispatched = b.dispatched;
            o.completed = b.end;
            o.batchSize = size;
            o.retries = b.retries;
            dropOutcome(std::move(o));
        }
        return;
    }
    for (const Request &r : b.requests) {
        // Prefill materializes the prompt's KV pages plus the first
        // generated token.
        kv.grow(r.id, r.gen.promptLen + 1);
        ++genLog_.tokens;
        const unsigned target = r.targetNewTokens();
        if (target <= 1) {
            // Single-token generation: the first token is also the
            // last, no decode step needed.
            kv.release(r.id);
            RequestOutcome o;
            o.request = r;
            o.device = static_cast<int>(deviceId_);
            o.dispatched = b.dispatched;
            o.firstToken = b.end;
            o.completed = b.end;
            o.batchSize = size;
            o.retries = b.retries;
            o.tokensEmitted = 1;
            if (timeline_)
                requestSpan(tracer, reqTrack_, b.model, o);
            complete(std::move(o));
            continue;
        }
        DecodeSeq seq;
        seq.request = r;
        seq.dispatched = b.dispatched;
        seq.firstToken = b.end;
        seq.lastToken = b.end;
        seq.prefillBatchSize = size;
        seq.retries = b.retries;
        seq.emitted = 1;
        seq.target = target;
        decodeReady_[b.model].push_back(std::move(seq));
    }
}

void
Scheduler::advanceDecode(Tick upto)
{
    if (decoding_.empty())
        return;
    // Deterministic retirement order across batches: (stepEnd,
    // tenant), matching the one-shot completion sort.
    std::vector<DecodeBatch *> due;
    for (DecodeBatch &b : decoding_) {
        if (b.inStep && b.stepEnd <= upto)
            due.push_back(&b);
    }
    std::sort(due.begin(), due.end(),
              [](const DecodeBatch *a, const DecodeBatch *b) {
                  if (a->stepEnd != b->stepEnd)
                      return a->stepEnd < b->stepEnd;
                  return a->tenant < b->tenant;
              });
    Tracer &tracer = dtu_.tracer();
    for (DecodeBatch *bp : due) {
        DecodeBatch &b = *bp;
        b.inStep = false;
        ++genLog_.decodeSteps;
        if (b.stepPoisoned) {
            // The decode loop does not retry poisoned steps: the KV
            // state behind them is suspect, so every rider fails
            // together at the step end.
            for (DecodeSeq &seq : b.seqs) {
                kv_->release(seq.request.id);
                RequestOutcome o;
                o.request = seq.request;
                o.state = TerminalState::Faulted;
                o.dropReason = DropReason::Failed;
                o.device = static_cast<int>(deviceId_);
                o.dispatched = seq.dispatched;
                o.firstToken = seq.firstToken;
                o.completed = b.stepEnd;
                o.batchSize = seq.prefillBatchSize;
                o.retries = seq.retries;
                o.tokensEmitted = seq.emitted;
                dropOutcome(std::move(o));
            }
            b.seqs.clear();
        } else {
            std::vector<DecodeSeq> live;
            live.reserve(b.seqs.size());
            for (DecodeSeq &seq : b.seqs) {
                ++seq.emitted;
                ++genLog_.tokens;
                genLog_.itlMs.push_back(
                    ticksToMilliSeconds(b.stepEnd - seq.lastToken));
                seq.lastToken = b.stepEnd;
                kv_->grow(seq.request.id,
                          seq.request.gen.promptLen + seq.emitted);
                if (seq.emitted >= seq.target) {
                    // Finished: pages free immediately, and in
                    // continuous mode the slot is joinable at the
                    // very next settle.
                    kv_->release(seq.request.id);
                    RequestOutcome o;
                    o.request = seq.request;
                    o.device = static_cast<int>(deviceId_);
                    o.dispatched = seq.dispatched;
                    o.firstToken = seq.firstToken;
                    o.completed = b.stepEnd;
                    o.batchSize = seq.prefillBatchSize;
                    o.retries = seq.retries;
                    o.tokensEmitted = seq.emitted;
                    if (timeline_)
                        requestSpan(tracer, reqTrack_, b.model, o);
                    complete(std::move(o));
                } else {
                    live.push_back(std::move(seq));
                }
            }
            b.seqs = std::move(live);
        }
        if (b.seqs.empty()) {
            manager_.release(b.tenant, b.stepEnd);
            b.tenant = -1; // marks the batch retired
        }
    }
    decoding_.erase(std::remove_if(decoding_.begin(), decoding_.end(),
                                   [](const DecodeBatch &b) {
                                       return b.tenant < 0;
                                   }),
                    decoding_.end());
}

void
Scheduler::settle(Tick now)
{
    dropExpired(now);
    launchOneShots(now);
    launchGeneration(now);
}

void
Scheduler::launchOneShots(Tick now)
{
    const DegradationPolicy &degrade = config_.degradation;
    // Launch everything launchable at the current time. The model
    // scan restarts after every pass so a freed lease can host the
    // next queued model (alphabetical, deterministic).
    bool launched = true;
    while (launched) {
        launched = false;
        for (const std::string &model : queue_.models()) {
            while (shouldLaunch(model, now) &&
                   manager_.freeGroups() >= config_.groupsPerBatch) {
                auto lease = manager_.allocate(
                    nextTenant_, config_.groupsPerBatch, now);
                if (!lease)
                    break; // free groups span clusters
                std::vector<Request> reqs = queue_.popBatch(
                    model, config_.batching.maxBatchFor(model));
                const ExecutionPlan &p = plan(
                    model, static_cast<unsigned>(reqs.size()));
                BatchRun run = executeBatch(
                    p, reqs, lease->groups, now,
                    degrade.maxBatchRetries, false, model, "batch");
                ActiveBatch batch;
                batch.end = run.end;
                batch.dispatched = now;
                batch.tenant = nextTenant_;
                batch.model = model;
                batch.requests = std::move(reqs);
                batch.retries = run.retries;
                batch.failed = run.poisoned;
                active_.push_back(std::move(batch));
                ++nextTenant_;
                ++batches_;
                launched = true;
            }
        }
    }
}

void
Scheduler::launchGeneration(Tick now)
{
    if (decoding_.empty() && decodeReady_.empty() &&
        genQueue_.empty())
        return;
    const GenerationPolicy &gen = config_.generation;
    const DegradationPolicy &degrade = config_.degradation;

    // 1) Step idle decode batches, absorbing waiting sequences first
    //    in continuous mode (iteration-level batching: a sequence
    //    joins between steps, never mid-step). Deterministic order:
    //    by tenant, i.e. formation order.
    std::vector<DecodeBatch *> idle;
    for (DecodeBatch &b : decoding_) {
        if (!b.inStep)
            idle.push_back(&b);
    }
    std::sort(idle.begin(), idle.end(),
              [](const DecodeBatch *a, const DecodeBatch *b) {
                  return a->tenant < b->tenant;
              });
    for (DecodeBatch *bp : idle) {
        DecodeBatch &b = *bp;
        if (gen.continuousBatching) {
            auto it = decodeReady_.find(b.model);
            if (it != decodeReady_.end()) {
                std::vector<DecodeSeq> &ready = it->second;
                while (!ready.empty() &&
                       b.seqs.size() < gen.maxDecodeBatch) {
                    b.seqs.push_back(std::move(ready.front()));
                    ready.erase(ready.begin());
                }
                if (ready.empty())
                    decodeReady_.erase(it);
            }
        }
        if (!b.seqs.empty())
            launchDecodeStep(b, now);
    }

    // 2) Form new decode batches from leftover ready sequences
    //    (alphabetical by model). Each batch takes a lease it holds
    //    until its last sequence finishes.
    bool formed = true;
    while (formed) {
        formed = false;
        for (auto it = decodeReady_.begin();
             it != decodeReady_.end();) {
            std::vector<DecodeSeq> &ready = it->second;
            if (ready.empty()) {
                it = decodeReady_.erase(it);
                continue;
            }
            if (manager_.freeGroups() < config_.groupsPerBatch) {
                ++it;
                continue;
            }
            auto lease = manager_.allocate(
                nextTenant_, config_.groupsPerBatch, now);
            if (!lease) {
                ++it;
                continue;
            }
            DecodeBatch b;
            b.tenant = nextTenant_;
            b.model = it->first;
            b.groups = lease->groups;
            while (!ready.empty() &&
                   b.seqs.size() < gen.maxDecodeBatch) {
                b.seqs.push_back(std::move(ready.front()));
                ready.erase(ready.begin());
            }
            b.formed = static_cast<unsigned>(b.seqs.size());
            decoding_.push_back(std::move(b));
            launchDecodeStep(decoding_.back(), now);
            ++nextTenant_;
            formed = true;
            if (ready.empty())
                it = decodeReady_.erase(it);
            else
                ++it;
        }
    }

    // 3) Launch prefills, gated on the KV budget: the queue head
    //    must fit *now* (reservable against unreserved pages) or the
    //    whole model waits — strict FIFO, no small-sequence bypass,
    //    so admission order stays deterministic and starvation-free.
    bool launched = true;
    while (launched) {
        launched = false;
        for (const std::string &model : genQueue_.models()) {
            while (shouldLaunchGen(model, now) &&
                   manager_.freeGroups() >= config_.groupsPerBatch) {
                const Request *head = genQueue_.front(model);
                if (!head)
                    break;
                const std::uint64_t bpt = bytesPerTokenFor(model);
                if (!kv_->fitsNow(kvTokens(*head), bpt))
                    break; // KV full: wait for sequences to finish
                auto lease = manager_.allocate(
                    nextTenant_, config_.groupsPerBatch, now);
                if (!lease)
                    break;
                std::vector<Request> cand = genQueue_.popBatch(
                    model, config_.batching.maxBatchFor(model));
                // Reserve worst-case pages per rider, FIFO prefix:
                // the first failure sends it and everything behind
                // it back to the queue head. The head itself always
                // reserves (fitsNow above is the same arithmetic).
                std::vector<Request> reqs;
                std::vector<Request> back;
                for (Request &r : cand) {
                    if (back.empty() &&
                        kv_->reserve(r.id, kvTokens(r), bpt)) {
                        reqs.push_back(std::move(r));
                    } else {
                        back.push_back(std::move(r));
                    }
                }
                if (!back.empty())
                    genQueue_.pushFront(model, std::move(back));
                unsigned max_prompt = 0;
                for (const Request &r : reqs)
                    max_prompt =
                        std::max(max_prompt, r.gen.promptLen);
                const ExecutionPlan &p = prefillPlan(
                    model, static_cast<unsigned>(reqs.size()),
                    bucketLen(max_prompt));
                BatchRun run = executeBatch(
                    p, reqs, lease->groups, now,
                    degrade.maxBatchRetries, true, model, "prefill");
                accumulatePhase(genLog_.prefill, run.result);
                ++genLog_.prefillBatches;
                ActiveBatch batch;
                batch.end =
                    shardedDecoder(model)
                        ? shardOverlay(
                              model, now, run.end,
                              static_cast<unsigned>(reqs.size()),
                              bucketLen(max_prompt))
                        : run.end;
                batch.dispatched = now;
                batch.tenant = nextTenant_;
                batch.model = model;
                batch.requests = std::move(reqs);
                batch.retries = run.retries;
                batch.failed = run.poisoned;
                batch.prefill = true;
                active_.push_back(std::move(batch));
                ++nextTenant_;
                ++batches_;
                launched = true;
            }
        }
    }
}

void
Scheduler::launchDecodeStep(DecodeBatch &b, Tick now)
{
    const GenerationPolicy &gen = config_.generation;
    unsigned ctx = 0;
    for (const DecodeSeq &seq : b.seqs)
        ctx = std::max(ctx, seq.request.gen.promptLen + seq.emitted);
    // Static batching pays the formed (padded) batch size every step
    // even after members finish; continuous pays only live sequences.
    const unsigned cost_batch =
        gen.continuousBatching ? static_cast<unsigned>(b.seqs.size())
                               : b.formed;
    const ExecutionPlan &p =
        decodePlan(b.model, cost_batch, bucketLen(ctx));
    std::vector<Request> riders;
    riders.reserve(b.seqs.size());
    for (const DecodeSeq &seq : b.seqs)
        riders.push_back(seq.request);
    // Decode steps do not retry on poison (max_retries 0): the KV
    // state is already suspect after one poisoned pass.
    BatchRun run = executeBatch(p, riders, b.groups, now, 0, true,
                                b.model, "decode");
    accumulatePhase(genLog_.decode, run.result);
    ++batches_;
    b.inStep = true;
    b.stepPoisoned = run.poisoned;
    b.stepStart = now;
    b.stepEnd = shardedDecoder(b.model)
                    ? shardOverlay(b.model, now, run.end, cost_batch,
                                   /*tokens=*/1)
                    : run.end;
    if (timeline_) {
        Tracer &tracer = dtu_.tracer();
        if (!decodeTrackMade_) {
            decodeTrack_ = tracer.track("serve", "decode");
            decodeTrackMade_ = true;
        }
        tracer.span(decodeTrack_, b.model, "decode-step", now,
                    run.end,
                    {{"batch", static_cast<double>(cost_batch)},
                     {"live", static_cast<double>(b.seqs.size())},
                     {"ctx", static_cast<double>(ctx)}});
    }
}

Tick
Scheduler::nextEvent(Tick now) const
{
    Tick next = kNever;
    for (const ActiveBatch &b : active_)
        next = std::min(next, b.end);
    for (const DecodeBatch &b : decoding_) {
        if (b.inStep)
            next = std::min(next, b.stepEnd);
    }
    for (const RequestQueue *queue : {&queue_, &genQueue_}) {
        for (const std::string &model : queue->models()) {
            Tick timeout =
                saturatingAddTicks(queue->oldestArrival(model),
                                   config_.batching.maxQueueDelay);
            if (timeout > now && timeout != kNever)
                next = std::min(next, timeout);
            Tick ready = weightReadyAt(model);
            if (ready > now)
                next = std::min(next, ready);
        }
    }
    // Degradation deadlines are events too: a queued request's SLO
    // expiry or queue-timeout maturation must wake the loop even
    // with no arrival or completion in between — including when
    // requestTimeout is the only policy enabled and the requests
    // carry no deadline of their own.
    const DegradationPolicy &degrade = config_.degradation;
    if (degrade.shedExpired || degrade.requestTimeout != 0) {
        auto deadline = [&](const Request &r) {
            if (degrade.shedExpired && r.deadline > now)
                next = std::min(next, r.deadline);
            if (degrade.requestTimeout != 0) {
                Tick timeout = saturatingAddTicks(
                    r.arrival, degrade.requestTimeout);
                if (timeout > now && timeout != kNever)
                    next = std::min(next, timeout);
            }
        };
        queue_.forEach(deadline);
        genQueue_.forEach(deadline);
    }
    return next;
}

obs::DeviceMetricSample
Scheduler::metricSample(unsigned device) const
{
    obs::DeviceMetricSample d;
    d.device = device;
    d.queueDepth = queueDepth();
    d.inFlightBatches = inFlightBatches();
    d.outstanding = outstanding();
    d.completed = completedN_;
    d.dropped = droppedN_;
    d.retries = batchRetries_;
    return d;
}

GenerationLog
Scheduler::generationLog() const
{
    GenerationLog log = genLog_;
    if (kv_) {
        log.kvPageBudget = kv_->pageBudget();
        log.kvPageBytes = kv_->config().pageBytes;
        log.kvPeakPages = kv_->peakPagesInUse();
        log.kvPeakReservedPages = kv_->peakPagesReserved();
        log.kvPagesAllocated = kv_->totalPagesAllocated();
        log.kvPagesFreed = kv_->totalPagesFreed();
        log.kvPagesInUseAtEnd = kv_->pagesInUse();
    }
    return log;
}

ServingReport
Scheduler::finish(double offered_qps)
{
    ServingReport report = summarize(
        std::move(outcomes_), offered_qps, batches_,
        dtu_.energy().joules() - joulesBefore_,
        manager_.utilization(lastCompletion_), batchRetries_,
        faults_ ? faults_->log().size() - faultsBefore_ : 0,
        generationLog());
    if (energyMon_) {
        finalizeEnergy(report,
                       dtu_.energy().breakdown().minus(energyBefore_));
    }
    outcomes_.clear();
    return report;
}

ServingReport
Scheduler::serve(std::vector<Request> trace)
{
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    const double offered = offeredQps(trace);

    // How many arrivals of each model are still in the future: the
    // batcher stops holding a partial batch once no companion can
    // ever join it.
    std::map<std::string, unsigned> future;
    for (const Request &r : trace)
        ++future[r.model];

    Tick now = trace.empty() ? 0 : trace.front().arrival;
    begin(now, &future);
    if (energyMon_)
        energyMon_->beginRun(now);

    std::size_t next_arrival = 0;
    auto admitUpTo = [&](Tick upto) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival <= upto) {
            const Request &r = trace[next_arrival++];
            --future[r.model];
            admit(r);
        }
    };

    admitUpTo(now);
    settle(now);
    // Periodic metric snapshots: pure observation points. The loop
    // wakes early for them only while a real event is still pending,
    // and the settle/advance steps are idempotent at non-event ticks,
    // so sampling never changes simulated results (or termination).
    const Tick metric_period =
        reqTracer_ ? reqTracer_->metricPeriod()
                   : (energyMon_ ? energyMon_->samplePeriod() : 0);
    Tick next_sample =
        metric_period ? (now / metric_period + 1) * metric_period
                      : kNever;
    while (true) {
        // Next event: an arrival, a batch completion or decode step,
        // a queue timeout maturing, or a degradation deadline.
        // Events at or before `now` are already handled (or are
        // waiting on a lease, which frees at a completion event).
        Tick next = nextEvent(now);
        if (next_arrival < trace.size())
            next = std::min(next, trace[next_arrival].arrival);
        if (next == kNever) {
            fatalIf(queueDepth() + decodeReadyCount() != 0,
                    "serving deadlock: ",
                    queueDepth() + decodeReadyCount(),
                    " waiting requests but no future event");
            break;
        }
        if (next_sample < next)
            next = next_sample;
        now = next;
        advanceCompletions(now);
        admitUpTo(now);
        settle(now);
        if (metric_period && now >= next_sample) {
            obs::FleetMetricSample sample;
            sample.at = now;
            sample.devices.push_back(metricSample(deviceId_));
            if (energyMon_)
                energyMon_->annotate(sample);
            if (reqTracer_)
                reqTracer_->recordMetrics(sample);
            next_sample = (now / metric_period + 1) * metric_period;
        }
        // Close SLO windows the loop just stepped past. Events land
        // in (prev_now, now] and windows close only through now, so
        // every event is ingested before its window seals.
        if (sloMon_)
            sloMon_->advanceTo(now);
    }
    if (sloMon_)
        sloMon_->finish(std::max(now, lastCompletion_));
    if (energyMon_)
        energyMon_->endRun(std::max(now, lastCompletion_));

    return finish(offered);
}

} // namespace serve
} // namespace dtu
