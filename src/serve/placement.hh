/**
 * @file
 * Model-parallel placement policy for the fleet.
 *
 * A placement decides how the fleet's physical devices are grouped
 * into serving units. Data parallel keeps one full model replica per
 * device (the classic fleet). Tensor parallel shards every decoder
 * layer Megatron-style across a group of `degree` devices and runs a
 * ring all-reduce over the fabric after each sharded attention and
 * FFN block. Pipeline parallel splits the layer stack into `degree`
 * contiguous stages and streams activations between stage devices,
 * overlapping `microbatches` microbatches to shrink the bubble.
 */

#ifndef DTU_SERVE_PLACEMENT_HH
#define DTU_SERVE_PLACEMENT_HH

#include <string>

namespace dtu
{
namespace serve
{

enum class PlacementMode
{
    /** One full model replica per device. */
    DataParallel,
    /** Layers sharded across a group; all-reduce per sharded block. */
    TensorParallel,
    /** Layer stack split into stages; activations stream point-to-point. */
    PipelineParallel,
};

const char *placementModeName(PlacementMode mode);

/** Parse a mode name ("data-parallel", "tensor-parallel", ...). */
PlacementMode parsePlacementMode(const std::string &name);

struct PlacementConfig
{
    PlacementMode mode = PlacementMode::DataParallel;

    /** Devices per model replica (TP ways / PP stages). */
    unsigned degree = 1;

    /** Microbatches a pipeline-parallel batch is split into. */
    unsigned microbatches = 1;
};

/**
 * Fatal on impossible placements: zero degree, a degree the device
 * count does not divide into, or zero microbatches.
 */
void validatePlacement(const PlacementConfig &config, unsigned devices);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_PLACEMENT_HH
