#include "serve/request.hh"

namespace dtu
{
namespace serve
{

namespace
{

/** splitmix64 finalizer: a well-mixed pure hash, no RNG state. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

unsigned
Request::targetNewTokens() const
{
    if (gen.maxNewTokens == 0)
        return 0;
    if (gen.stop == StopPolicy::MaxTokens)
        return gen.maxNewTokens;
    // EosHash: a deterministic "EOS fired" length in
    // [1, maxNewTokens], pure in the request id.
    return 1 + static_cast<unsigned>(mix64(id) % gen.maxNewTokens);
}

Request
makeRequest(const RequestSpec &spec, std::uint64_t id)
{
    Request r;
    r.id = id;
    r.model = spec.model;
    r.arrival = spec.arrival;
    r.deadline = spec.deadline;
    r.tenant = spec.tenant;
    r.gen = spec.gen;
    return r;
}

const char *
terminalStateName(TerminalState state)
{
    switch (state) {
      case TerminalState::Completed: return "completed";
      case TerminalState::Shed: return "shed";
      case TerminalState::Expired: return "expired";
      case TerminalState::Faulted: return "faulted";
    }
    return "?";
}

TerminalState
terminalStateFor(DropReason reason)
{
    switch (reason) {
      case DropReason::Rejected:
      case DropReason::Shed:
        return TerminalState::Shed;
      case DropReason::TimedOut:
        return TerminalState::Expired;
      case DropReason::Failed:
        return TerminalState::Faulted;
    }
    return TerminalState::Shed;
}

} // namespace serve
} // namespace dtu
