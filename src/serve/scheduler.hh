/**
 * @file
 * The serving scheduler: arrival queues -> dynamic batches ->
 * processing-group leases.
 *
 * A discrete-event loop over simulated time drives the whole serving
 * pipeline. Requests are admitted from a finalized arrival trace
 * into per-model FIFO queues; a dynamic batcher launches a batch
 * when it is full (maxBatch), when the oldest queued request has
 * waited maxQueueDelay, or when no further arrivals can join. Each
 * launched batch leases processing groups from the ResourceManager
 * (the Fig. 7 resource abstraction) and executes through the
 * multi-tenancy path, so concurrent batches are compute-isolated and
 * contend only on the shared HBM/PCIe bandwidth ledgers — online
 * traffic generalizing the paper's VGG16 batch-8/16 tenancy
 * discussion.
 *
 * Everything is deterministic: queue iteration is alphabetical,
 * ties break on request ids, and the only randomness lives in the
 * seeded arrival generators. Same trace + seed => identical
 * makespan, percentiles, and deadline-miss set.
 *
 * The scheduler is *steppable*: serve() is a thin driver over a
 * begin()/admit()/advanceCompletions()/settle()/nextEvent()/finish()
 * core, and the fleet coordinator (serve/fleet.hh) drives N of these
 * cores — one per simulated device — on a single global timeline. A
 * size-1 fleet therefore reproduces serve() bit-for-bit.
 */

#ifndef DTU_SERVE_SCHEDULER_HH
#define DTU_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/fleet_metrics.hh"
#include "runtime/executor.hh"
#include "serve/kv_cache.hh"
#include "serve/placement.hh"
#include "serve/report.hh"
#include "serve/request.hh"
#include "sim/tracer.hh"
#include "soc/resource_manager.hh"

namespace dtu
{

namespace obs
{
class SloMonitor;
class RequestTracer;
class EnergyMonitor;
} // namespace obs

namespace fabric
{
class Fabric;
} // namespace fabric

namespace serve
{

/** When does a queued model launch? */
struct BatchingPolicy
{
    /** Largest dynamic batch; 1 degenerates to FIFO batch-1. */
    unsigned maxBatch = 8;
    /**
     * Longest a queued request may wait for companions before the
     * batcher launches a partial batch. 0 launches greedily.
     */
    Tick maxQueueDelay = 0;
    /**
     * Per-model overrides of maxBatch. Batching pays off only where
     * weight streams and kernel loads amortize (ResNet50 batch-8
     * costs 0.6x per request); models whose runtime scales linearly
     * with batch (BERT-Large) are better capped low so one long
     * batch never serializes work that idle groups could run in
     * parallel — the per-model knob every serving stack grows.
     */
    std::map<std::string, unsigned> perModelMaxBatch;

    /** The cap that applies to @p model. */
    unsigned
    maxBatchFor(const std::string &model) const
    {
        auto it = perModelMaxBatch.find(model);
        return it == perModelMaxBatch.end() ? maxBatch : it->second;
    }
};

/**
 * How the scheduler degrades under overload and faults. Everything
 * defaults off: a default-constructed policy reproduces the
 * fault-oblivious scheduler bit-for-bit.
 */
struct DegradationPolicy
{
    /**
     * Drop a request still queued this long after arrival; 0 off.
     * Bounds the queue-wait a client can observe before a reject.
     */
    Tick requestTimeout = 0;
    /**
     * Deadline-aware load shedding: drop queued requests whose
     * deadline has already passed — they can only waste a lease.
     */
    bool shedExpired = false;
    /**
     * Admission control: reject new arrivals while the queue holds
     * this many requests; 0 disables backpressure.
     */
    std::size_t admissionLimit = 0;
    /**
     * Re-run a batch whose execution was poisoned (uncorrectable ECC
     * or exhausted DMA retries) up to this many times before failing
     * its requests.
     */
    unsigned maxBatchRetries = 0;

    /** True when any degradation response is active. */
    bool
    anyEnabled() const
    {
        return requestTimeout != 0 || shedExpired ||
               admissionLimit != 0 || maxBatchRetries != 0;
    }
};

/**
 * How autoregressive generation requests are scheduled. Only
 * consulted for requests with gen.maxNewTokens > 0; a run without
 * them never touches this policy (or the KV cache), so the one-shot
 * serving path is bit-for-bit unchanged.
 */
struct GenerationPolicy
{
    /**
     * Iteration-level (continuous) batching: sequences join a
     * running decode batch between steps and finished sequences free
     * their slot immediately. Off = static request-level batching,
     * the classic baseline: a decode batch is formed once and steps
     * at its formed size until its last member finishes (early
     * finishers' slots are wasted as padding).
     */
    bool continuousBatching = true;
    /** Largest decode batch (sequences stepped together). */
    unsigned maxDecodeBatch = 8;
    /**
     * Context-length bucket for plan memoization: prefill and decode
     * costs are compiled at context lengths rounded up to a multiple
     * of this, so the plan cache stays small while the KV length a
     * decode step streams still grows with the sequence.
     */
    unsigned ctxBucket = 64;
    /** Per-device KV-cache pool (the admission currency). */
    KvCacheConfig kv;
};

/** Configuration of one serving run. */
struct ServingConfig
{
    BatchingPolicy batching;
    /** Autoregressive generation scheduling (see GenerationPolicy). */
    GenerationPolicy generation;
    /** Overload/fault response (all off by default). */
    DegradationPolicy degradation;
    /** Processing groups leased per in-flight batch. */
    unsigned groupsPerBatch = 1;
    /** Precision the plans compile to. */
    DType dtype = DType::FP16;
    /**
     * Executor options for every batch. Power management defaults
     * off: the chip-global DVFS loop assumes one monotonic window
     * stream, which overlapping batches do not form.
     */
    ExecOptions exec{.powerManagement = false};
    /**
     * Tenant ids the scheduler leases under, kept far above the
     * Device/Stream id space so a Server can share the manager with
     * live streams.
     */
    int tenantBase = 1 << 20;
};

/** A memoized (model, batch) -> compiled-plan cache. */
using PlanCache = std::map<std::pair<std::string, unsigned>, ExecutionPlan>;

/** Admits requests onto leases as dynamic batches and reports SLOs. */
class Scheduler
{
  public:
    Scheduler(Dtu &dtu, ResourceManager &manager, ServingConfig config);

    /**
     * Drain a finalized arrival trace (see serve/arrival.hh) to
     * completion and aggregate the outcome. When the chip's Tracer
     * is enabled (or config.exec.timeline is set), every request
     * contributes an arrival-to-completion span and every batch an
     * execution span, nested over the executor's operator spans in
     * the same timeline.
     */
    ServingReport serve(std::vector<Request> trace);

    /** Compiled-plan cache size (plans are memoized per model/batch). */
    std::size_t cachedPlans() const { return plans().size(); }

    /**
     * Share an external compiled-plan cache (e.g. fleet-wide across
     * identically configured devices, where compiled plans are pure
     * functions of the DtuConfig). nullptr reverts to the private
     * cache. Sharing is a host-side memoization only; simulated
     * timing is unchanged. When the fleet drives its devices from
     * worker threads it also passes @p mutex: lookups lock it,
     * compilation happens outside the lock (plans are pure, a losing
     * racer's copy is discarded), and entries are never erased, so
     * returned references stay valid unlocked.
     */
    void
    sharePlanCache(PlanCache *cache, std::mutex *mutex = nullptr)
    {
        sharedPlans_ = cache;
        planMutex_ = cache ? mutex : nullptr;
    }

    /** The chip this core schedules onto. */
    Dtu &chip() { return dtu_; }

    /**
     * Attach (or detach, with nullptr) a live SLO monitor. The
     * scheduler feeds it every completion and drop as they happen and
     * advances its windows with the event loop, so alert callbacks
     * fire at the simulated time of the threshold crossing. Without a
     * monitor the serving path is bit-for-bit unchanged.
     */
    void setSloMonitor(obs::SloMonitor *monitor) { sloMon_ = monitor; }

    /**
     * Attach (or detach, with nullptr) a request-lifecycle tracer as
     * fleet device @p device (0 for a single-device Server). The
     * scheduler reports admissions, batch executions, completions,
     * drops, and weight loads, and force-enables the chip timeline
     * around batches carrying a sampled request so their operator
     * spans exist for flow linking. Without a tracer the serving
     * path is bit-for-bit unchanged.
     */
    void setRequestTracer(obs::RequestTracer *tracer, unsigned device)
    {
        reqTracer_ = tracer;
        deviceId_ = device;
    }

    /**
     * Attach (or detach, with nullptr) an energy monitor as fleet
     * device @p device. finish() then attributes the run's energy by
     * component (finalizeEnergy), metric samples carry power
     * telemetry, and — when the monitor's corpus is enabled — every
     * batch records its per-operator energy features. Without a
     * monitor the serving path is bit-for-bit unchanged.
     */
    void setEnergyMonitor(obs::EnergyMonitor *monitor, unsigned device)
    {
        energyMon_ = monitor;
        deviceId_ = device;
    }

    /**
     * Attach (or detach, with nullptr) the fleet interconnect. This
     * scheduler then drives placement group @p group under
     * @p placement: weight loads route through the fabric's shared
     * root complex (so concurrent placements contend), tensor-parallel
     * decoders execute their per-device shard followed by timed ring
     * all-reduces, and pipeline-parallel decoders stream activations
     * between stage devices. Without a fabric the serving path is
     * bit-for-bit unchanged.
     */
    void
    setSharding(fabric::Fabric *fab, unsigned group,
                PlacementConfig placement)
    {
        fabric_ = fab;
        fabricGroup_ = group;
        placement_ = placement;
    }

    //
    // The steppable discrete-event core. serve() is a driver over
    // these; the fleet coordinator (serve/fleet.hh) is another,
    // interleaving N device cores on one global timeline. The
    // protocol per event time t (strictly non-decreasing):
    //
    //   advanceCompletions(t);   // retire batches that ended <= t
    //   admit(r...);             // arrivals with r.arrival == t
    //   settle(t);               // shed/timeout sweeps, launch pass
    //
    // with nextEvent(t) giving the earliest internal wake-up after t
    // (the driver min-reduces it with the next arrival time).
    //

    /**
     * Start a run at simulated time @p start. @p future counts the
     * not-yet-admitted arrivals per model (the batcher holds a
     * partial batch only while a companion could still join); the
     * caller owns the map and decrements it as arrivals are admitted.
     * nullptr means "no future arrivals": every partial batch
     * launches as soon as a lease is free.
     */
    void begin(Tick start,
               const std::map<std::string, unsigned> *future = nullptr);

    /**
     * Admit one arrived request (at r.arrival). Applies admission
     * control: over-limit arrivals are dropped as Rejected at their
     * arrival time, exactly like the single-device path.
     */
    void admit(const Request &request);

    /** Retire every active batch that completed at or before @p now. */
    void advanceCompletions(Tick now);

    /**
     * Sweep degradation drops (deadline shedding, queue timeouts) at
     * @p now, then launch every launchable batch onto free leases.
     */
    void settle(Tick now);

    /**
     * Earliest internal event after @p now: an active batch
     * completion, a batching timeout maturing, a degradation deadline
     * (request timeout / SLO expiry), or a model's weights finishing
     * their PCIe load. Returns maxTick when the device is idle.
     */
    Tick nextEvent(Tick now) const;

    /** Summarize the run (moves out the outcome log). */
    ServingReport finish(double offered_qps);

    /** Queue empty and nothing in flight. */
    bool
    idle() const
    {
        return queue_.empty() && genQueue_.empty() &&
               active_.empty() && decoding_.empty() &&
               decodeReadyCount() == 0;
    }

    /** Requests waiting in the arrival queues. */
    std::size_t
    queueDepth() const
    {
        return queue_.size() + genQueue_.size();
    }

    /** Queued plus in-flight requests (the routing load signal). */
    std::size_t outstanding() const;

    /** Batches dispatched and not yet completed. */
    std::size_t inFlightBatches() const;

    /** Requests completed so far this run. */
    std::uint64_t completedCount() const { return completedN_; }

    /** Requests dropped so far this run. */
    std::uint64_t droppedCount() const { return droppedN_; }

    /** Sequences through prefill, waiting for a decode slot. */
    std::size_t decodeReadyCount() const;

    /**
     * Raw generation bookkeeping so far (phase counters, ITL
     * samples, KV gauges). finish() folds it into the report; the
     * fleet merges the per-device logs for its aggregate.
     */
    GenerationLog generationLog() const;

    /** The device's KV cache (nullptr before any generative admit). */
    const KvCache *kvCache() const { return kv_.get(); }

    /** Poisoned-batch re-executions so far this run. */
    std::uint64_t batchRetryCount() const { return batchRetries_; }

    /** Snapshot the live serving state as fleet device @p device. */
    obs::DeviceMetricSample metricSample(unsigned device) const;

    /** Highest queue depth seen this run. */
    std::size_t peakQueueDepth() const { return peakQueue_; }

    /** Latest batch completion seen this run (0 before any). */
    Tick lastCompletion() const { return lastCompletion_; }

    //
    // Model placement. A fleet router calls placeModel() the first
    // time it assigns a model to this device; with @p gbps > 0 the
    // first placement pays a modeled PCIe weight-load (weight bytes
    // at gbps GB/s, serialized per device), and batches of that
    // model cannot launch before the load finishes. The single-device
    // serve() path never places, so it is bit-for-bit unaffected.
    //

    /** Mark @p model resident, paying the first-placement load. */
    void placeModel(const std::string &model, Tick now, double gbps);

    /** True once placeModel() ran for @p model. */
    bool modelPlaced(const std::string &model) const
    {
        return weightReady_.count(model) != 0;
    }

    /** Models placed on this device, alphabetical. */
    std::vector<std::string> placedModels() const;

    /** Placements that paid a weight load this run. */
    std::uint64_t weightLoads() const { return weightLoads_; }

    /** Total modeled PCIe weight-load time this run. */
    Tick weightLoadTicks() const { return weightLoadTicks_; }

    /** Total weight bytes loaded this run. */
    std::uint64_t weightLoadBytes() const { return weightLoadBytes_; }

  private:
    /** One batch executing on a lease. */
    struct ActiveBatch
    {
        Tick end = 0;
        Tick dispatched = 0;
        int tenant = -1;
        std::string model;
        std::vector<Request> requests;
        /** Poisoned re-executions this batch needed. */
        unsigned retries = 0;
        /** Still poisoned after the last permitted retry. */
        bool failed = false;
        /** A generation prefill pass (riders enter decode, not
         *  completion, when it retires). */
        bool prefill = false;
    };

    /** One generation sequence past prefill. */
    struct DecodeSeq
    {
        Request request;
        /** Prefill dispatch time (the outcome's dispatched). */
        Tick dispatched = 0;
        Tick firstToken = 0;
        /** Last token emission (the ITL reference). */
        Tick lastToken = 0;
        /** Prefill batch size (the outcome's batchSize). */
        unsigned prefillBatchSize = 0;
        /** Prefill retries (the outcome's retries). */
        unsigned retries = 0;
        /** Tokens emitted so far, first token included. */
        unsigned emitted = 1;
        /** targetNewTokens(), memoized. */
        unsigned target = 1;
    };

    /**
     * One decode batch stepping on a long-held lease. Between steps
     * (inStep == false) it can absorb waiting sequences (continuous
     * mode) or retire; each step emits one token per live sequence.
     */
    struct DecodeBatch
    {
        int tenant = -1;
        std::string model;
        /** Size at formation: the static-mode padded cost size. */
        unsigned formed = 0;
        bool inStep = false;
        /** The in-flight step was poisoned (faults the decode loop
         *  does not retry: its riders fail at the step end). */
        bool stepPoisoned = false;
        Tick stepStart = 0;
        Tick stepEnd = 0;
        /** The lease's processing groups, held across steps. */
        std::vector<unsigned> groups;
        std::vector<DecodeSeq> seqs;
    };

    /** Outcome of one executor run on a lease (with retries). */
    struct BatchRun
    {
        Tick end = 0;
        unsigned retries = 0;
        bool poisoned = false;
        ExecResult result;
    };

    /**
     * Look up @p key in the active plan cache, compiling the graph
     * @p build returns on a miss (thread-safe when a shared-cache
     * mutex was provided, see sharePlanCache).
     */
    template <typename BuildGraph>
    const ExecutionPlan &
    cachedPlan(const std::pair<std::string, unsigned> &key,
               BuildGraph &&build);

    /** Memoized compile of @p model at @p batch samples. */
    const ExecutionPlan &plan(const std::string &model, unsigned batch);

    /** Memoized decoder prefill / decode-step plans. The cache key
     *  encodes the phase and context bucket in the model string
     *  ("gpt_tiny@p128", "gpt_tiny@d256"). */
    const ExecutionPlan &prefillPlan(const std::string &model,
                                     unsigned batch, unsigned prompt);
    const ExecutionPlan &decodePlan(const std::string &model,
                                    unsigned batch, unsigned ctx);

    /** @p len rounded up to the generation ctxBucket multiple. */
    unsigned bucketLen(unsigned len) const;

    /** True when @p model is a decoder sharded across a fabric group. */
    bool shardedDecoder(const std::string &model) const;

    /** Tensor-parallel ways @p model's plans compile at (1 = full). */
    unsigned tpDegreeFor(const std::string &model) const;

    /** Bytes of @p model resident per device under the placement. */
    std::uint64_t placedWeightBytes(const std::string &model);

    /**
     * Fold the placement's fabric traffic into a batch that computed
     * over [now, compute_end): TP submits a ring all-reduce of the
     * activation tensor after every sharded attention and FFN block;
     * PP re-times the batch as a (degree x microbatches) pipeline
     * with point-to-point activation sends at each stage boundary.
     * @return the batch's new completion tick.
     */
    Tick shardOverlay(const std::string &model, Tick now,
                      Tick compute_end, unsigned batch, unsigned tokens);

    /** KV bytes per generated token for decoder @p model. */
    std::uint64_t bytesPerTokenFor(const std::string &model);

    /** Worst-case KV tokens @p r can occupy (prompt + target). */
    std::uint64_t kvTokens(const Request &r) const;

    /** The lazily built KV cache. */
    KvCache &ensureKv();

    /**
     * Run @p p on @p groups at @p now with the poison-retry loop and
     * request-tracer hooks (mirrors the one-shot launch path).
     * @p record_ops forces per-operator traces (phase attribution).
     * @p phase labels the execution for the energy corpus ("batch",
     * "prefill", "decode").
     */
    BatchRun executeBatch(const ExecutionPlan &p,
                          const std::vector<Request> &riders,
                          const std::vector<unsigned> &groups,
                          Tick now, unsigned max_retries,
                          bool record_ops, const std::string &model,
                          const char *phase);

    /** Fold @p result's operator traces into @p phase. */
    static void accumulatePhase(PhaseBreakdown &phase,
                                const ExecResult &result);

    /** Record one completion (stats, timeline, tracer, SLO monitor). */
    void complete(RequestOutcome outcome);

    /** Record one dropped request (stats, tracer, SLO monitor). */
    void drop(const Request &request, Tick at, DropReason reason);

    /** drop() with execution context (failed batches). */
    void dropOutcome(RequestOutcome outcome);

    /** Retire one finished prefill batch into the decode stage. */
    void retirePrefill(const ActiveBatch &batch);

    /** Retire decode steps that ended at or before @p upto. */
    void advanceDecode(Tick upto);

    /** The one-shot launch pass (the pre-generation settle body). */
    void launchOneShots(Tick now);

    /** Join/step/form decode batches, then launch prefills. */
    void launchGeneration(Tick now);

    /** Launch the next step of @p batch at @p now. */
    void launchDecodeStep(DecodeBatch &batch, Tick now);

    /** Shed expired deadlines / enforce queue timeouts at @p now. */
    void dropExpired(Tick now);

    /** Launch rule for @p model at @p now. */
    bool shouldLaunch(const std::string &model, Tick now) const;

    /** Launch rule for queued prefills of @p model at @p now. */
    bool shouldLaunchGen(const std::string &model, Tick now) const;

    /** The active plan cache (shared when sharePlanCache() was set). */
    PlanCache &plans() { return sharedPlans_ ? *sharedPlans_ : plans_; }
    const PlanCache &plans() const
    {
        return sharedPlans_ ? *sharedPlans_ : plans_;
    }

    /** Not-yet-admitted arrivals of @p model (0 without a map). */
    unsigned futureCount(const std::string &model) const;

    /** Tick the model's weights are resident from (0 = resident). */
    Tick weightReadyAt(const std::string &model) const;

    Dtu &dtu_;
    ResourceManager &manager_;
    ServingConfig config_;
    PlanCache plans_;
    PlanCache *sharedPlans_ = nullptr;
    /** Guards sharedPlans_ under parallel fleet workers (may be null). */
    std::mutex *planMutex_ = nullptr;

    //
    // Degradation counters. The first scheduler on a chip registers
    // them as "serve.*" in the chip's StatRegistry; later schedulers
    // on the same chip count locally (the registry rejects duplicate
    // names), and the authoritative per-run numbers always live in
    // the ServingReport.
    //
    Stat shedStat_;
    Stat timedOutStat_;
    Stat rejectedStat_;
    Stat failedStat_;
    Stat retryStat_;

    /** Optional live SLO monitor (not owned). */
    obs::SloMonitor *sloMon_ = nullptr;

    /** Optional request-lifecycle tracer (not owned). */
    obs::RequestTracer *reqTracer_ = nullptr;
    /** Optional energy monitor (not owned). */
    obs::EnergyMonitor *energyMon_ = nullptr;
    /** This scheduler's device index under the fleet observers. */
    unsigned deviceId_ = 0;
    /** Optional fleet interconnect (not owned; see setSharding). */
    fabric::Fabric *fabric_ = nullptr;
    /** The placement group this scheduler drives over the fabric. */
    unsigned fabricGroup_ = 0;
    /** How the group's devices share the model (see placement.hh). */
    PlacementConfig placement_{};

    //
    // Per-run state, reset by begin().
    //
    const std::map<std::string, unsigned> *future_ = nullptr;
    RequestQueue queue_;
    /** Generative arrivals queue separately: their launch pass is
     *  KV-gated, and keeping them out of queue_ leaves the one-shot
     *  path untouched. */
    RequestQueue genQueue_;
    std::vector<ActiveBatch> active_;
    /** Decode batches holding leases across steps. */
    std::vector<DecodeBatch> decoding_;
    /** Sequences past prefill awaiting a decode slot, per model. */
    std::map<std::string, std::vector<DecodeSeq>> decodeReady_;
    /** The unified terminal log (completions and drops). */
    std::vector<RequestOutcome> outcomes_;
    std::uint64_t completedN_ = 0;
    std::uint64_t droppedN_ = 0;
    /** Per-device KV-cache pool, built on the first generative
     *  admission (a one-shot run never constructs it). */
    std::unique_ptr<KvCache> kv_;
    /** Model -> KV bytes per token, memoized. */
    std::map<std::string, std::uint64_t> kvBytesPerToken_;
    /** Generation bookkeeping for the report. */
    GenerationLog genLog_;
    std::uint64_t batches_ = 0;
    std::uint64_t batchRetries_ = 0;
    int nextTenant_ = 0;
    Tick lastCompletion_ = 0;
    std::size_t peakQueue_ = 0;
    double joulesBefore_ = 0.0;
    /** Meter breakdown at begin(), for the run's component delta. */
    EnergyBreakdown energyBefore_;
    std::uint64_t faultsBefore_ = 0;
    FaultInjector *faults_ = nullptr;
    /** Model -> tick its weights are resident (placement state). */
    std::map<std::string, Tick> weightReady_;
    /** The device's serialized PCIe weight-loader cursor. */
    Tick loadCursor_ = 0;
    std::uint64_t weightLoads_ = 0;
    Tick weightLoadTicks_ = 0;
    std::uint64_t weightLoadBytes_ = 0;
    /** Timeline recording for this run. */
    bool timeline_ = false;
    TrackId reqTrack_;
    TrackId batchTrack_;
    TrackId dropTrack_;
    bool placeTrackMade_ = false;
    TrackId placeTrack_;
    bool decodeTrackMade_ = false;
    TrackId decodeTrack_;
    bool fabricTrackMade_ = false;
    TrackId fabricTrack_;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_SCHEDULER_HH
