/**
 * @file
 * The serving scheduler: arrival queues -> dynamic batches ->
 * processing-group leases.
 *
 * A discrete-event loop over simulated time drives the whole serving
 * pipeline. Requests are admitted from a finalized arrival trace
 * into per-model FIFO queues; a dynamic batcher launches a batch
 * when it is full (maxBatch), when the oldest queued request has
 * waited maxQueueDelay, or when no further arrivals can join. Each
 * launched batch leases processing groups from the ResourceManager
 * (the Fig. 7 resource abstraction) and executes through the
 * multi-tenancy path, so concurrent batches are compute-isolated and
 * contend only on the shared HBM/PCIe bandwidth ledgers — online
 * traffic generalizing the paper's VGG16 batch-8/16 tenancy
 * discussion.
 *
 * Everything is deterministic: queue iteration is alphabetical,
 * ties break on request ids, and the only randomness lives in the
 * seeded arrival generators. Same trace + seed => identical
 * makespan, percentiles, and deadline-miss set.
 */

#ifndef DTU_SERVE_SCHEDULER_HH
#define DTU_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/executor.hh"
#include "serve/report.hh"
#include "serve/request.hh"
#include "soc/resource_manager.hh"

namespace dtu
{

namespace obs
{
class SloMonitor;
} // namespace obs

namespace serve
{

/** When does a queued model launch? */
struct BatchingPolicy
{
    /** Largest dynamic batch; 1 degenerates to FIFO batch-1. */
    unsigned maxBatch = 8;
    /**
     * Longest a queued request may wait for companions before the
     * batcher launches a partial batch. 0 launches greedily.
     */
    Tick maxQueueDelay = 0;
    /**
     * Per-model overrides of maxBatch. Batching pays off only where
     * weight streams and kernel loads amortize (ResNet50 batch-8
     * costs 0.6x per request); models whose runtime scales linearly
     * with batch (BERT-Large) are better capped low so one long
     * batch never serializes work that idle groups could run in
     * parallel — the per-model knob every serving stack grows.
     */
    std::map<std::string, unsigned> perModelMaxBatch;

    /** The cap that applies to @p model. */
    unsigned
    maxBatchFor(const std::string &model) const
    {
        auto it = perModelMaxBatch.find(model);
        return it == perModelMaxBatch.end() ? maxBatch : it->second;
    }
};

/**
 * How the scheduler degrades under overload and faults. Everything
 * defaults off: a default-constructed policy reproduces the
 * fault-oblivious scheduler bit-for-bit.
 */
struct DegradationPolicy
{
    /**
     * Drop a request still queued this long after arrival; 0 off.
     * Bounds the queue-wait a client can observe before a reject.
     */
    Tick requestTimeout = 0;
    /**
     * Deadline-aware load shedding: drop queued requests whose
     * deadline has already passed — they can only waste a lease.
     */
    bool shedExpired = false;
    /**
     * Admission control: reject new arrivals while the queue holds
     * this many requests; 0 disables backpressure.
     */
    std::size_t admissionLimit = 0;
    /**
     * Re-run a batch whose execution was poisoned (uncorrectable ECC
     * or exhausted DMA retries) up to this many times before failing
     * its requests.
     */
    unsigned maxBatchRetries = 0;

    /** True when any degradation response is active. */
    bool
    anyEnabled() const
    {
        return requestTimeout != 0 || shedExpired ||
               admissionLimit != 0 || maxBatchRetries != 0;
    }
};

/** Configuration of one serving run. */
struct ServingConfig
{
    BatchingPolicy batching;
    /** Overload/fault response (all off by default). */
    DegradationPolicy degradation;
    /** Processing groups leased per in-flight batch. */
    unsigned groupsPerBatch = 1;
    /** Precision the plans compile to. */
    DType dtype = DType::FP16;
    /**
     * Executor options for every batch. Power management defaults
     * off: the chip-global DVFS loop assumes one monotonic window
     * stream, which overlapping batches do not form.
     */
    ExecOptions exec{.powerManagement = false};
    /**
     * Tenant ids the scheduler leases under, kept far above the
     * Device/Stream id space so a Server can share the manager with
     * live streams.
     */
    int tenantBase = 1 << 20;
};

/** Admits requests onto leases as dynamic batches and reports SLOs. */
class Scheduler
{
  public:
    Scheduler(Dtu &dtu, ResourceManager &manager, ServingConfig config);

    /**
     * Drain a finalized arrival trace (see serve/arrival.hh) to
     * completion and aggregate the outcome. When the chip's Tracer
     * is enabled (or config.exec.timeline is set), every request
     * contributes an arrival-to-completion span and every batch an
     * execution span, nested over the executor's operator spans in
     * the same timeline.
     */
    ServingReport serve(std::vector<Request> trace);

    /** Compiled-plan cache size (plans are memoized per model/batch). */
    std::size_t cachedPlans() const { return plans_.size(); }

    /**
     * Attach (or detach, with nullptr) a live SLO monitor. The
     * scheduler feeds it every completion and drop as they happen and
     * advances its windows with the event loop, so alert callbacks
     * fire at the simulated time of the threshold crossing. Without a
     * monitor the serving path is bit-for-bit unchanged.
     */
    void setSloMonitor(obs::SloMonitor *monitor) { sloMon_ = monitor; }

  private:
    /** Memoized compile of @p model at @p batch samples. */
    const ExecutionPlan &plan(const std::string &model, unsigned batch);

    Dtu &dtu_;
    ResourceManager &manager_;
    ServingConfig config_;
    std::map<std::pair<std::string, unsigned>, ExecutionPlan> plans_;

    //
    // Degradation counters. The first scheduler on a chip registers
    // them as "serve.*" in the chip's StatRegistry; later schedulers
    // on the same chip count locally (the registry rejects duplicate
    // names), and the authoritative per-run numbers always live in
    // the ServingReport.
    //
    Stat shedStat_;
    Stat timedOutStat_;
    Stat rejectedStat_;
    Stat failedStat_;
    Stat retryStat_;

    /** Optional live SLO monitor (not owned). */
    obs::SloMonitor *sloMon_ = nullptr;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_SCHEDULER_HH
