/**
 * @file
 * The serving scheduler: arrival queues -> dynamic batches ->
 * processing-group leases.
 *
 * A discrete-event loop over simulated time drives the whole serving
 * pipeline. Requests are admitted from a finalized arrival trace
 * into per-model FIFO queues; a dynamic batcher launches a batch
 * when it is full (maxBatch), when the oldest queued request has
 * waited maxQueueDelay, or when no further arrivals can join. Each
 * launched batch leases processing groups from the ResourceManager
 * (the Fig. 7 resource abstraction) and executes through the
 * multi-tenancy path, so concurrent batches are compute-isolated and
 * contend only on the shared HBM/PCIe bandwidth ledgers — online
 * traffic generalizing the paper's VGG16 batch-8/16 tenancy
 * discussion.
 *
 * Everything is deterministic: queue iteration is alphabetical,
 * ties break on request ids, and the only randomness lives in the
 * seeded arrival generators. Same trace + seed => identical
 * makespan, percentiles, and deadline-miss set.
 */

#ifndef DTU_SERVE_SCHEDULER_HH
#define DTU_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/executor.hh"
#include "serve/report.hh"
#include "serve/request.hh"
#include "soc/resource_manager.hh"

namespace dtu
{
namespace serve
{

/** When does a queued model launch? */
struct BatchingPolicy
{
    /** Largest dynamic batch; 1 degenerates to FIFO batch-1. */
    unsigned maxBatch = 8;
    /**
     * Longest a queued request may wait for companions before the
     * batcher launches a partial batch. 0 launches greedily.
     */
    Tick maxQueueDelay = 0;
    /**
     * Per-model overrides of maxBatch. Batching pays off only where
     * weight streams and kernel loads amortize (ResNet50 batch-8
     * costs 0.6x per request); models whose runtime scales linearly
     * with batch (BERT-Large) are better capped low so one long
     * batch never serializes work that idle groups could run in
     * parallel — the per-model knob every serving stack grows.
     */
    std::map<std::string, unsigned> perModelMaxBatch;

    /** The cap that applies to @p model. */
    unsigned
    maxBatchFor(const std::string &model) const
    {
        auto it = perModelMaxBatch.find(model);
        return it == perModelMaxBatch.end() ? maxBatch : it->second;
    }
};

/** Configuration of one serving run. */
struct ServingConfig
{
    BatchingPolicy batching;
    /** Processing groups leased per in-flight batch. */
    unsigned groupsPerBatch = 1;
    /** Precision the plans compile to. */
    DType dtype = DType::FP16;
    /**
     * Executor options for every batch. Power management defaults
     * off: the chip-global DVFS loop assumes one monotonic window
     * stream, which overlapping batches do not form.
     */
    ExecOptions exec{.powerManagement = false};
    /**
     * Tenant ids the scheduler leases under, kept far above the
     * Device/Stream id space so a Server can share the manager with
     * live streams.
     */
    int tenantBase = 1 << 20;
};

/** Admits requests onto leases as dynamic batches and reports SLOs. */
class Scheduler
{
  public:
    Scheduler(Dtu &dtu, ResourceManager &manager, ServingConfig config);

    /**
     * Drain a finalized arrival trace (see serve/arrival.hh) to
     * completion and aggregate the outcome. When the chip's Tracer
     * is enabled (or config.exec.timeline is set), every request
     * contributes an arrival-to-completion span and every batch an
     * execution span, nested over the executor's operator spans in
     * the same timeline.
     */
    ServingReport serve(std::vector<Request> trace);

    /** Compiled-plan cache size (plans are memoized per model/batch). */
    std::size_t cachedPlans() const { return plans_.size(); }

  private:
    /** Memoized compile of @p model at @p batch samples. */
    const ExecutionPlan &plan(const std::string &model, unsigned batch);

    Dtu &dtu_;
    ResourceManager &manager_;
    ServingConfig config_;
    std::map<std::pair<std::string, unsigned>, ExecutionPlan> plans_;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_SCHEDULER_HH
