#include "serve/fleet.hh"

#include <algorithm>
#include <limits>

#include "obs/energy_monitor.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "serve/arrival.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/worker_pool.hh"
#include "soc/dtu.hh"

namespace dtu
{
namespace serve
{

namespace
{

constexpr Tick kNever = std::numeric_limits<Tick>::max();

/** Stateless cycle through device indices. */
class RoundRobinRouter : public Router
{
  public:
    unsigned
    route(const Request &, const std::vector<Scheduler *> &devices)
        override
    {
        return static_cast<unsigned>(next_++ % devices.size());
    }

  private:
    std::size_t next_ = 0;
};

/** Device with the fewest queued + in-flight requests, lowest index. */
unsigned
leastOutstanding(const std::vector<Scheduler *> &devices)
{
    unsigned best = 0;
    std::size_t best_load = devices[0]->outstanding();
    for (unsigned i = 1; i < devices.size(); ++i) {
        std::size_t load = devices[i]->outstanding();
        if (load < best_load) {
            best = i;
            best_load = load;
        }
    }
    return best;
}

class LeastOutstandingRouter : public Router
{
  public:
    unsigned
    route(const Request &, const std::vector<Scheduler *> &devices)
        override
    {
        return leastOutstanding(devices);
    }
};

/**
 * Least outstanding among devices already holding the model's
 * weights; globally least outstanding (forcing a new placement)
 * when no device has them yet.
 */
class ModelAffinityRouter : public Router
{
  public:
    unsigned
    route(const Request &r, const std::vector<Scheduler *> &devices)
        override
    {
        bool found = false;
        unsigned best = 0;
        std::size_t best_load = 0;
        for (unsigned i = 0; i < devices.size(); ++i) {
            if (!devices[i]->modelPlaced(r.model))
                continue;
            std::size_t load = devices[i]->outstanding();
            if (!found || load < best_load) {
                found = true;
                best = i;
                best_load = load;
            }
        }
        return found ? best : leastOutstanding(devices);
    }
};

} // namespace

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin: return "round_robin";
      case RoutingPolicy::LeastOutstanding: return "least_outstanding";
      case RoutingPolicy::ModelAffinity: return "model_affinity";
    }
    return "?";
}

std::optional<RoutingPolicy>
parseRoutingPolicy(const std::string &name)
{
    if (name == "round_robin")
        return RoutingPolicy::RoundRobin;
    if (name == "least_outstanding")
        return RoutingPolicy::LeastOutstanding;
    if (name == "model_affinity")
        return RoutingPolicy::ModelAffinity;
    return std::nullopt;
}

std::unique_ptr<Router>
Router::make(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RoutingPolicy::LeastOutstanding:
        return std::make_unique<LeastOutstandingRouter>();
      case RoutingPolicy::ModelAffinity:
        return std::make_unique<ModelAffinityRouter>();
    }
    fatal("unknown routing policy");
}

Fleet::Fleet(std::vector<Member> members, FleetConfig config)
    : config_(std::move(config))
{
    fatalIf(members.empty(), "a fleet needs at least one device");
    fatalIf(config_.devices != members.size(),
            "fleet config says ", config_.devices,
            " devices but ", members.size(), " were provided");
    for (const Member &m : members) {
        fatalIf(!m.dtu || !m.manager,
                "fleet member needs a chip and a resource manager");
    }
    validatePlacement(config_.placement, config_.devices);
    if (config_.fabric.enabled)
        config_.fabric.validate();
    fatalIf(config_.placement.mode != PlacementMode::DataParallel &&
                !config_.fabric.enabled,
            placementModeName(config_.placement.mode),
            " placements need the fleet fabric enabled");
    groupSize_ = config_.placement.mode == PlacementMode::DataParallel
                     ? 1
                     : config_.placement.degree;

    // One scheduler core per placement group, on the group-leader
    // chip: the leader models one representative device of the
    // lockstep group (TP peers execute the same shard in unison; PP
    // stage timing is folded in analytically, see shardOverlay).
    const std::size_t groups = members.size() / groupSize_;
    devices_.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
        const Member &m = members[g * groupSize_];
        devices_.push_back(std::make_unique<Scheduler>(
            *m.dtu, *m.manager, config_.serving));
        if (config_.sharePlans)
            devices_.back()->sharePlanCache(&sharedPlans_,
                                            &planMutex_);
        view_.push_back(devices_.back().get());
    }
    rebuildFabric();
}

void
Fleet::rebuildFabric()
{
    if (!config_.fabric.enabled)
        return;
    // A fresh ledger per run: serve() re-places every model, so the
    // fabric's contention state must start empty too.
    fabric_ = std::make_unique<fabric::Fabric>(
        config_.fabric, config_.devices, groupSize_);
    for (unsigned g = 0; g < devices_.size(); ++g)
        devices_[g]->setSharding(fabric_.get(), g, config_.placement);
}

void
Fleet::setSloMonitor(obs::SloMonitor *monitor)
{
    sloMon_ = monitor;
    for (auto &dev : devices_)
        dev->setSloMonitor(monitor);
}

void
Fleet::setRequestTracer(obs::RequestTracer *tracer)
{
    reqTracer_ = tracer;
    for (unsigned i = 0; i < devices_.size(); ++i)
        devices_[i]->setRequestTracer(tracer, i);
}

void
Fleet::setEnergyMonitor(obs::EnergyMonitor *monitor)
{
    energyMon_ = monitor;
    for (unsigned i = 0; i < devices_.size(); ++i)
        devices_[i]->setEnergyMonitor(monitor, i);
}

unsigned
Fleet::effectiveThreads() const
{
    unsigned threads = std::max(1u, config_.threads);
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, devices_.size()));
    if (threads > 1 && (sloMon_ || reqTracer_ || energyMon_)) {
        warn("fleet observers (SLO monitor / request tracer / energy "
             "monitor) need a globally ordered record stream; serving "
             "with threads=1");
        return 1;
    }
    if (threads > 1 && fabric_ && fabric_->peerTrafficSharesRoot()) {
        warn("shared-root fabric topologies route group collectives "
             "over the shared root link, which worker threads would "
             "race on; serving with threads=1");
        return 1;
    }
    return threads;
}

FleetReport
Fleet::serve(std::vector<Request> trace)
{
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    const double offered = offeredQps(trace);

    // The fleet-global future-arrivals map: a device's batcher holds
    // a partial batch while ANY future arrival of the model exists —
    // an upper bound on "a companion could still join this device",
    // and exact for a size-1 fleet.
    std::map<std::string, unsigned> future;
    for (const Request &r : trace)
        ++future[r.model];

    const std::size_t n = devices_.size();
    Tick now = trace.empty() ? 0 : trace.front().arrival;
    rebuildFabric();
    for (unsigned i = 0; i < n; ++i) {
        ScopedLogDevice log_dev(static_cast<int>(i));
        devices_[i]->begin(now, &future);
    }
    if (energyMon_)
        energyMon_->beginRun(now);

    // A fresh router per run keeps serve() deterministic regardless
    // of what earlier runs routed.
    router_ = Router::make(config_.routing);
    std::vector<std::vector<Request>> routed(n);

    std::size_t next_arrival = 0;
    auto admitUpTo = [&](Tick upto) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival <= upto) {
            const Request &r = trace[next_arrival++];
            --future[r.model];
            unsigned d = router_->route(r, view_);
            fatalIf(d >= n, "router picked device ", d, " of ", n);
            if (reqTracer_)
                reqTracer_->onRoute(d, r);
            ScopedLogDevice log_dev(static_cast<int>(d));
            devices_[d]->placeModel(r.model, r.arrival,
                                    config_.weightLoadGbps);
            devices_[d]->admit(r);
            routed[d].push_back(r);
        }
    };

    const unsigned threads = effectiveThreads();
    if (threads > 1) {
        now = serveParallel(trace, threads, now, next_arrival,
                            admitUpTo);
        return buildReport(offered, routed);
    }

    admitUpTo(now);
    for (unsigned i = 0; i < n; ++i) {
        ScopedLogDevice log_dev(static_cast<int>(i));
        devices_[i]->settle(now);
    }
    // Periodic metric snapshots: pure observation points. The loop
    // wakes early for them only while a real event is still pending,
    // and the settle/advance steps are idempotent at non-event ticks,
    // so sampling never changes simulated results (or termination).
    const Tick metric_period =
        reqTracer_ ? reqTracer_->metricPeriod()
                   : (energyMon_ ? energyMon_->samplePeriod() : 0);
    Tick next_sample =
        metric_period ? (now / metric_period + 1) * metric_period
                      : kNever;
    while (true) {
        // Global next event: min over every device's internal events
        // and the next arrival. Devices are advanced in index order
        // at each event time, so cross-device ordering (and the SLO
        // monitor's record order) is deterministic.
        Tick next = kNever;
        for (const auto &dev : devices_)
            next = std::min(next, dev->nextEvent(now));
        if (next_arrival < trace.size())
            next = std::min(next, trace[next_arrival].arrival);
        if (next == kNever) {
            std::size_t stuck = 0;
            for (const auto &dev : devices_)
                stuck += dev->queueDepth() + dev->decodeReadyCount();
            fatalIf(stuck != 0, "fleet serving deadlock: ", stuck,
                    " queued requests but no future event");
            break;
        }
        if (next_sample < next)
            next = next_sample;
        now = next;
        for (unsigned i = 0; i < n; ++i) {
            ScopedLogDevice log_dev(static_cast<int>(i));
            devices_[i]->advanceCompletions(now);
        }
        admitUpTo(now);
        for (unsigned i = 0; i < n; ++i) {
            ScopedLogDevice log_dev(static_cast<int>(i));
            devices_[i]->settle(now);
        }
        if (metric_period && now >= next_sample) {
            obs::FleetMetricSample sample;
            sample.at = now;
            for (unsigned i = 0; i < n; ++i)
                sample.devices.push_back(
                    devices_[i]->metricSample(i));
            if (energyMon_)
                energyMon_->annotate(sample);
            if (reqTracer_)
                reqTracer_->recordMetrics(sample);
            next_sample = (now / metric_period + 1) * metric_period;
        }
        if (sloMon_)
            sloMon_->advanceTo(now);
    }
    Tick last_completion = 0;
    for (const auto &dev : devices_)
        last_completion =
            std::max(last_completion, dev->lastCompletion());
    if (sloMon_)
        sloMon_->finish(std::max(now, last_completion));
    if (energyMon_)
        energyMon_->endRun(std::max(now, last_completion));

    return buildReport(offered, routed);
}

Tick
Fleet::serveParallel(const std::vector<Request> &trace,
                     unsigned threads, Tick start,
                     std::size_t &next_arrival,
                     const std::function<void(Tick)> &admit_up_to)
{
    const unsigned n = static_cast<unsigned>(devices_.size());
    WorkerPool pool(threads);
    Tick now = start;

    auto settleAll = [&](Tick at) {
        pool.parallelFor(n, [&](unsigned i) {
            ScopedLogDevice log_dev(static_cast<int>(i));
            devices_[i]->settle(at);
        });
    };

    admit_up_to(now);
    settleAll(now);
    while (true) {
        // The next arrival bounds the window: devices interact only
        // through routing and admission, so between arrivals each
        // device's simulation is causally independent of the others.
        const Tick barrier = next_arrival < trace.size()
                                 ? trace[next_arrival].arrival
                                 : kNever;
        const Tick from = now;
        pool.parallelFor(n, [&](unsigned i) {
            Scheduler &dev = *devices_[i];
            ScopedLogDevice log_dev(static_cast<int>(i));
            // Advance through the device's own events inside the
            // window. Each visited tick replays the serial driver's
            // advance/settle pair; ticks the serial driver visited
            // for *other* devices are no-ops here by idempotence.
            Tick t = from;
            for (;;) {
                Tick tn = dev.nextEvent(t);
                if (tn >= barrier)
                    break;
                t = tn;
                dev.advanceCompletions(t);
                dev.settle(t);
            }
            // Retire work completing exactly at the barrier before
            // the router reads device state (serial order: advance
            // all devices, then admit, then settle).
            if (barrier != kNever)
                dev.advanceCompletions(barrier);
        });
        if (barrier == kNever)
            break;
        now = barrier;
        admit_up_to(now);
        settleAll(now);
    }
    std::size_t stuck = 0;
    for (const auto &dev : devices_)
        stuck += dev->queueDepth() + dev->decodeReadyCount();
    fatalIf(stuck != 0, "fleet serving deadlock: ", stuck,
            " queued requests but no future event");
    return now;
}

FleetReport
Fleet::buildReport(double offered,
                   const std::vector<std::vector<Request>> &routed)
{
    const std::size_t n = devices_.size();
    FleetReport report;
    report.devices = config_.devices;
    report.routing = config_.routing;
    report.placement = config_.placement;
    if (fabric_) {
        report.fabric.enabled = true;
        report.fabric.topology = config_.fabric.topology;
        report.fabric.groups = static_cast<unsigned>(n);
        report.fabric.groupSize = groupSize_;
        report.fabric.linkGbps = config_.fabric.linkGbps;
        report.fabric.hostGbps = config_.fabric.hostGbps;
        report.fabric.totals = fabric_->totals();
        // Each link measures utilization over its own busy horizon.
        report.fabric.links = fabric_->linkStats(0);
    }

    // Per-device slices first (each device summarizes its routed
    // subset at the load it actually saw), then the fleet aggregate
    // over the merged logs — so fleet percentiles are true fleet-wide
    // order statistics, not an average of averages.
    std::vector<RequestOutcome> all_outcomes;
    GenerationLog fleet_gen;
    std::uint64_t batches = 0;
    std::uint64_t retries = 0;
    std::uint64_t faults = 0;
    double joules = 0.0;
    double utilization = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        DeviceReport dev;
        dev.device = i;
        dev.routed = routed[i].size();
        dev.peakQueueDepth = devices_[i]->peakQueueDepth();
        dev.placedModels = devices_[i]->placedModels();
        dev.weightLoads = devices_[i]->weightLoads();
        dev.weightLoadTicks = devices_[i]->weightLoadTicks();
        dev.weightLoadBytes = devices_[i]->weightLoadBytes();
        // The raw generation log must be grabbed before finish()
        // summarizes the device (finish moves the outcome log but
        // leaves the generation counters readable; taking it here
        // keeps the ordering obviously safe).
        fleet_gen.merge(devices_[i]->generationLog());
        dev.report = devices_[i]->finish(offeredQps(routed[i]));
        all_outcomes.insert(all_outcomes.end(),
                            dev.report.outcomes.begin(),
                            dev.report.outcomes.end());
        batches += dev.report.batches;
        retries += dev.report.batchRetries;
        faults += dev.report.faultsInjected;
        joules += dev.report.joules;
        utilization += dev.report.groupUtilization;
        report.perDevice.push_back(std::move(dev));
    }
    report.fleet = summarize(std::move(all_outcomes), offered,
                             batches, joules,
                             utilization / static_cast<double>(n),
                             retries, faults, std::move(fleet_gen));
    if (energyMon_) {
        // Fleet-aggregate attribution: sum of the per-device deltas
        // the schedulers' finish() already attributed.
        EnergyBreakdown fleet_energy;
        for (const DeviceReport &dev : report.perDevice)
            fleet_energy.add(dev.report.energy);
        finalizeEnergy(report.fleet, fleet_energy);
    }
    return report;
}

void
writeJson(const FleetReport &report, std::ostream &os,
          bool per_request)
{
    JsonWriter json(os);
    json.beginObject();
    json.field("devices", report.devices)
        .field("routing", routingPolicyName(report.routing));

    // Both sections are gated so a classic data-parallel fleet's JSON
    // is byte-identical to what it was before the fabric existed.
    if (report.placement.mode != PlacementMode::DataParallel) {
        json.key("placement").beginObject();
        json.field("mode", placementModeName(report.placement.mode))
            .field("degree", report.placement.degree)
            .field("microbatches", report.placement.microbatches);
        json.endObject();
    }
    if (report.fabric.enabled) {
        const FleetFabricReport &fab = report.fabric;
        json.key("fabric").beginObject();
        json.field("topology", fabric::topologyName(fab.topology))
            .field("groups", fab.groups)
            .field("group_size", fab.groupSize)
            .field("link_gbps", fab.linkGbps)
            .field("host_gbps", fab.hostGbps)
            .field("collectives", fab.totals.collectives)
            .field("collective_bytes", fab.totals.collectiveBytes)
            .field("activation_sends", fab.totals.activationSends)
            .field("activation_bytes", fab.totals.activationBytes)
            .field("weight_loads", fab.totals.weightLoads)
            .field("weight_load_bytes", fab.totals.weightLoadBytes);
        json.key("links").beginArray();
        for (const fabric::LinkStats &link : fab.links) {
            json.beginObject()
                .field("name", link.name)
                .field("gbps", link.gbps)
                .field("bytes", link.bytes)
                .field("transfers", link.transfers)
                .field("wait_ms", link.waitMs)
                .field("utilization", link.utilization)
                .endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.key("fleet");
    writeJson(report.fleet, json, per_request);

    json.key("per_device").beginArray();
    for (const DeviceReport &dev : report.perDevice) {
        json.beginObject()
            .field("device", dev.device)
            .field("routed", dev.routed)
            .field("peak_queue_depth", dev.peakQueueDepth)
            .field("weight_loads", dev.weightLoads)
            .field("weight_load_ms",
                   ticksToMilliSeconds(dev.weightLoadTicks))
            .field("weight_load_bytes", dev.weightLoadBytes);
        json.key("placed_models").beginArray();
        for (const std::string &model : dev.placedModels)
            json.value(model);
        json.endArray();
        json.key("report");
        writeJson(dev.report, json, per_request);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

} // namespace serve
} // namespace dtu
