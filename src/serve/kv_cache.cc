#include "serve/kv_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtu
{
namespace serve
{

KvCache::KvCache(KvCacheConfig config)
    : config_(config),
      pool_("kv_cache", config.pageBytes,
            std::max<std::uint64_t>(1, config.budgetBytes /
                                           std::max<std::uint64_t>(
                                               1, config.pageBytes)))
{
    fatalIf(config_.pageBytes == 0, "KV-cache page size must be > 0");
    fatalIf(config_.budgetBytes < config_.pageBytes,
            "KV-cache budget (", config_.budgetBytes,
            " B) smaller than one page (", config_.pageBytes, " B)");
}

std::uint64_t
KvCache::tokensPerPage(std::uint64_t bytes_per_token) const
{
    fatalIf(bytes_per_token == 0, "KV bytes-per-token must be > 0");
    fatalIf(bytes_per_token > config_.pageBytes,
            "KV bytes-per-token (", bytes_per_token,
            ") exceeds the page size (", config_.pageBytes,
            " B); raise KvCacheConfig::pageBytes");
    return config_.pageBytes / bytes_per_token;
}

std::uint64_t
KvCache::pagesFor(std::uint64_t tokens,
                  std::uint64_t bytes_per_token) const
{
    const std::uint64_t per_page = tokensPerPage(bytes_per_token);
    return (tokens + per_page - 1) / per_page;
}

bool
KvCache::fitsEver(std::uint64_t tokens,
                  std::uint64_t bytes_per_token) const
{
    return pagesFor(tokens, bytes_per_token) <= pool_.capacityPages();
}

bool
KvCache::fitsNow(std::uint64_t tokens,
                 std::uint64_t bytes_per_token) const
{
    return pagesFor(tokens, bytes_per_token) <=
           pool_.capacityPages() - reservedPages_;
}

bool
KvCache::reserve(std::uint64_t id, std::uint64_t tokens,
                 std::uint64_t bytes_per_token)
{
    fatalIf(seqs_.count(id), "KV-cache: sequence ", id,
            " reserved twice");
    const std::uint64_t pages = pagesFor(tokens, bytes_per_token);
    if (pages > pool_.capacityPages() - reservedPages_)
        return false;
    Sequence seq;
    seq.bytesPerToken = bytes_per_token;
    seq.reservedPages = pages;
    seqs_.emplace(id, std::move(seq));
    reservedPages_ += pages;
    peakReserved_ = std::max(peakReserved_, reservedPages_);
    return true;
}

void
KvCache::grow(std::uint64_t id, std::uint64_t tokens)
{
    auto it = seqs_.find(id);
    fatalIf(it == seqs_.end(), "KV-cache: growing unknown sequence ",
            id);
    Sequence &seq = it->second;
    const std::uint64_t need = pagesFor(tokens, seq.bytesPerToken);
    fatalIf(need > seq.reservedPages, "KV-cache: sequence ", id,
            " grew past its reservation (", need, " > ",
            seq.reservedPages, " pages)");
    while (seq.pages.size() < need) {
        auto page = pool_.allocatePage();
        // The reservation discipline makes exhaustion impossible:
        // every live page is covered by some sequence's reservation
        // and reservations never exceed the pool.
        fatalIf(!page, "KV-cache: page pool exhausted despite "
                       "reservations");
        seq.pages.push_back(*page);
    }
}

void
KvCache::release(std::uint64_t id)
{
    auto it = seqs_.find(id);
    fatalIf(it == seqs_.end(), "KV-cache: releasing unknown sequence ",
            id);
    for (std::uint64_t page : it->second.pages)
        pool_.freePage(page);
    reservedPages_ -= it->second.reservedPages;
    seqs_.erase(it);
}

} // namespace serve
} // namespace dtu
