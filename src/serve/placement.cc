#include "serve/placement.hh"

#include "sim/logging.hh"

namespace dtu
{
namespace serve
{

const char *
placementModeName(PlacementMode mode)
{
    switch (mode) {
      case PlacementMode::DataParallel:
        return "data-parallel";
      case PlacementMode::TensorParallel:
        return "tensor-parallel";
      case PlacementMode::PipelineParallel:
        return "pipeline-parallel";
    }
    return "unknown";
}

PlacementMode
parsePlacementMode(const std::string &name)
{
    if (name == "data-parallel")
        return PlacementMode::DataParallel;
    if (name == "tensor-parallel")
        return PlacementMode::TensorParallel;
    if (name == "pipeline-parallel")
        return PlacementMode::PipelineParallel;
    fatal("unknown placement mode '", name,
          "' (expected data-parallel, tensor-parallel, or "
          "pipeline-parallel)");
    return PlacementMode::DataParallel;
}

void
validatePlacement(const PlacementConfig &config, unsigned devices)
{
    fatalIf(config.degree == 0, "placement degree must be > 0");
    fatalIf(config.microbatches == 0,
            "pipeline microbatch count must be > 0");
    if (config.mode == PlacementMode::DataParallel) {
        fatalIf(config.degree != 1, "data-parallel placements have "
                "degree 1 (got ", config.degree, ")");
        return;
    }
    fatalIf(devices == 0 || devices % config.degree != 0,
            placementModeName(config.mode), " degree ", config.degree,
            " does not divide the fleet's ", devices, " devices");
}

} // namespace serve
} // namespace dtu
