#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace dtu
{
namespace serve
{

namespace
{

/** Exponential inter-arrival gap for @p rate_qps, in ticks. */
Tick
expGap(Random &rng, double rate_qps)
{
    // Inverse-CDF sampling; uniform() is in [0, 1) so log(1 - u) is
    // finite. At rates approaching one request per tick the sampled
    // gap rounds to 0, which would emit duplicate timestamps — the
    // scheduler's wake logic and every strict-monotonicity property
    // assume arrivals advance — so the gap is clamped to 1 tick.
    double seconds = -std::log(1.0 - rng.uniform()) / rate_qps;
    return std::max<Tick>(secondsToTicks(seconds), 1);
}

Request
makeRequest(const std::string &model, Tick arrival, Tick deadline)
{
    Request r;
    r.model = model;
    r.arrival = arrival;
    // Saturate: a deadline budget near maxTick means "effectively
    // never", not a wrapped tick in the past that sheds on arrival.
    r.deadline =
        deadline == 0 ? 0 : saturatingAddTicks(arrival, deadline);
    return r;
}

} // namespace

std::vector<Request>
fixedRateTrace(const std::string &model, double qps, unsigned count,
               Tick deadline, Tick start)
{
    fatalIf(qps <= 0.0, "arrival rate must be positive, got ", qps);
    std::vector<Request> trace;
    trace.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Tick at = start + secondsToTicks(static_cast<double>(i) / qps);
        trace.push_back(makeRequest(model, at, deadline));
    }
    return trace;
}

std::vector<Request>
poissonTrace(const std::string &model, double qps, unsigned count,
             std::uint64_t seed, Tick deadline, Tick start)
{
    fatalIf(qps <= 0.0, "arrival rate must be positive, got ", qps);
    Random rng(seed);
    std::vector<Request> trace;
    trace.reserve(count);
    Tick at = start;
    for (unsigned i = 0; i < count; ++i) {
        trace.push_back(makeRequest(model, at, deadline));
        at += expGap(rng, qps);
    }
    return trace;
}

std::vector<Request>
burstyTrace(const std::string &model, double qps, unsigned count,
            std::uint64_t seed, unsigned burst_size,
            double burst_factor, Tick deadline, Tick start)
{
    fatalIf(qps <= 0.0, "arrival rate must be positive, got ", qps);
    fatalIf(burst_size == 0, "burst size must be at least 1");
    fatalIf(burst_factor < 1.0, "burst factor must be >= 1, got ",
            burst_factor);
    Random rng(seed);
    std::vector<Request> trace;
    trace.reserve(count);
    Tick at = start;
    unsigned in_burst = 0;
    for (unsigned i = 0; i < count; ++i) {
        trace.push_back(makeRequest(model, at, deadline));
        if (++in_burst < burst_size) {
            at += expGap(rng, qps * burst_factor);
        } else {
            // Idle gap sized so the burst's head start is paid back
            // and the long-run average rate stays qps.
            in_burst = 0;
            double burst_seconds =
                static_cast<double>(burst_size) / (qps * burst_factor);
            double period_seconds = static_cast<double>(burst_size) / qps;
            double gap = period_seconds - burst_seconds;
            at += secondsToTicks(std::max(gap, 0.0)) + expGap(rng, qps);
        }
    }
    return trace;
}

std::vector<Request>
finalizeTrace(std::vector<std::vector<Request>> traces)
{
    std::vector<Request> merged;
    for (auto &trace : traces) {
        merged.insert(merged.end(), trace.begin(), trace.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Request &a, const Request &b) {
                         if (a.arrival != b.arrival)
                             return a.arrival < b.arrival;
                         return a.model < b.model;
                     });
    std::uint64_t id = 1;
    for (Request &r : merged)
        r.id = id++;
    return merged;
}

double
offeredQps(const std::vector<Request> &trace)
{
    if (trace.size() < 2)
        return 0.0;
    Tick span = trace.back().arrival - trace.front().arrival;
    if (span == 0)
        return 0.0;
    return static_cast<double>(trace.size() - 1) / ticksToSeconds(span);
}

} // namespace serve
} // namespace dtu
