/**
 * @file
 * The SLO-centric outcome of one serving run.
 *
 * Aggregates what a cloud operator actually watches: tail latency
 * (p50/p95/p99 from the sim/stats.hh Histogram), queue-wait vs
 * execution breakdown, goodput vs deadline misses, sustained QPS,
 * chip occupancy, and energy per request. Exports as JSON via
 * JsonWriter so CI can diff serving behaviour across commits the
 * same way it diffs the figure benches.
 */

#ifndef DTU_SERVE_REPORT_HH
#define DTU_SERVE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "serve/request.hh"
#include "sim/stats.hh"

namespace dtu
{

class JsonWriter;

namespace serve
{

/** Aggregated serving metrics over one drained request trace. */
struct ServingReport
{
    /** Requests the trace submitted (completed + dropped). */
    std::uint64_t submitted = 0;
    /** Completed requests. */
    std::uint64_t requests = 0;
    /** Dynamic batches launched. */
    std::uint64_t batches = 0;
    /** Mean requests per launched batch. */
    double meanBatchSize = 0.0;
    /** Last completion time (the serving makespan). */
    Tick makespan = 0;

    /** Arrival rate the trace offered. */
    double offeredQps = 0.0;
    /** Completions per second of makespan (sustained throughput). */
    double achievedQps = 0.0;
    /** In-deadline completions per second of makespan. */
    double goodputQps = 0.0;

    /** Requests that finished after their deadline. */
    std::uint64_t deadlineMisses = 0;
    /** deadlineMisses / requests. */
    double missRate = 0.0;
    /** Ids of the missed requests, ascending (the SLO miss set). */
    std::vector<std::uint64_t> missedIds;

    /** End-to-end latency distribution in milliseconds. */
    Histogram latencyMsHistogram;
    /**
     * Tail percentiles of the latency distribution. NaN when zero
     * requests completed (there is no distribution); the JSON writer
     * renders non-finite values as null.
     */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;

    /** Mean time spent waiting in the arrival queue. */
    double meanQueueMs = 0.0;
    /** Mean time spent executing on the chip. */
    double meanExecMs = 0.0;

    /** Energy drawn over the run and its per-request share. */
    double joules = 0.0;
    double joulesPerRequest = 0.0;
    /** Time-weighted fraction of processing groups leased. */
    double groupUtilization = 0.0;

    //
    // Degradation and fault outcome (all zero on a fault-free run
    // with degradation off).
    //

    /** Queued requests shed because their deadline expired. */
    std::uint64_t shedRequests = 0;
    /** Queued requests dropped by the per-request timeout. */
    std::uint64_t timedOutRequests = 0;
    /** Arrivals bounced by admission control. */
    std::uint64_t rejectedRequests = 0;
    /** Requests whose batch stayed poisoned after every retry. */
    std::uint64_t failedRequests = 0;
    /** Batch re-executions after poisoned runs. */
    std::uint64_t batchRetries = 0;
    /** Faults the injector scheduled during the run. */
    std::uint64_t faultsInjected = 0;
    /** completed / submitted; 1.0 when nothing was submitted. */
    double availability = 1.0;

    /** Every completed request, ordered by completion then id. */
    std::vector<CompletedRequest> completed;
    /** Every dropped request, ordered by drop time then id. */
    std::vector<DroppedRequest> dropped;
};

/**
 * Build a report from the scheduler's raw completion log.
 * @param completed per-request outcomes (any order).
 * @param offered_qps the trace's offered load.
 * @param batches dynamic batches launched.
 * @param joules energy drawn between serve start and last completion.
 * @param group_utilization lease occupancy from the ResourceManager.
 * @param dropped requests the scheduler gave up on (any order).
 * @param batch_retries poisoned-batch re-executions.
 * @param faults_injected faults scheduled during the run.
 *
 * Every ratio is guarded: a run that completes zero requests (all
 * shed, timed out, or failed) reports zero QPS/means instead of
 * dividing by zero.
 */
ServingReport summarize(std::vector<CompletedRequest> completed,
                        double offered_qps, std::uint64_t batches,
                        double joules, double group_utilization,
                        std::vector<DroppedRequest> dropped = {},
                        std::uint64_t batch_retries = 0,
                        std::uint64_t faults_injected = 0);

/**
 * Serialize a report as JSON: the summary scalars, the miss set,
 * the latency histogram buckets, and one record per request.
 * @param per_request include the full per-request log.
 */
void writeJson(const ServingReport &report, std::ostream &os,
               bool per_request = true);

/**
 * Emit the report object into an already-open JsonWriter (as the
 * next value), so composite documents — e.g. the fleet report's
 * per-device sections — can embed it.
 */
void writeJson(const ServingReport &report, JsonWriter &json,
               bool per_request = true);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_REPORT_HH
