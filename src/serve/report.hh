/**
 * @file
 * The SLO-centric outcome of one serving run.
 *
 * Aggregates what a cloud operator actually watches: tail latency
 * (p50/p95/p99 from the sim/stats.hh Histogram), queue-wait vs
 * execution breakdown, goodput vs deadline misses, sustained QPS,
 * chip occupancy, and energy per request. Exports as JSON via
 * JsonWriter so CI can diff serving behaviour across commits the
 * same way it diffs the figure benches.
 */

#ifndef DTU_SERVE_REPORT_HH
#define DTU_SERVE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "serve/request.hh"
#include "sim/stats.hh"

namespace dtu
{
namespace serve
{

/** Aggregated serving metrics over one drained request trace. */
struct ServingReport
{
    /** Completed requests. */
    std::uint64_t requests = 0;
    /** Dynamic batches launched. */
    std::uint64_t batches = 0;
    /** Mean requests per launched batch. */
    double meanBatchSize = 0.0;
    /** Last completion time (the serving makespan). */
    Tick makespan = 0;

    /** Arrival rate the trace offered. */
    double offeredQps = 0.0;
    /** Completions per second of makespan (sustained throughput). */
    double achievedQps = 0.0;
    /** In-deadline completions per second of makespan. */
    double goodputQps = 0.0;

    /** Requests that finished after their deadline. */
    std::uint64_t deadlineMisses = 0;
    /** deadlineMisses / requests. */
    double missRate = 0.0;
    /** Ids of the missed requests, ascending (the SLO miss set). */
    std::vector<std::uint64_t> missedIds;

    /** End-to-end latency distribution in milliseconds. */
    Histogram latencyMsHistogram;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;

    /** Mean time spent waiting in the arrival queue. */
    double meanQueueMs = 0.0;
    /** Mean time spent executing on the chip. */
    double meanExecMs = 0.0;

    /** Energy drawn over the run and its per-request share. */
    double joules = 0.0;
    double joulesPerRequest = 0.0;
    /** Time-weighted fraction of processing groups leased. */
    double groupUtilization = 0.0;

    /** Every completed request, ordered by completion then id. */
    std::vector<CompletedRequest> completed;
};

/**
 * Build a report from the scheduler's raw completion log.
 * @param completed per-request outcomes (any order).
 * @param offered_qps the trace's offered load.
 * @param batches dynamic batches launched.
 * @param joules energy drawn between serve start and last completion.
 * @param group_utilization lease occupancy from the ResourceManager.
 */
ServingReport summarize(std::vector<CompletedRequest> completed,
                        double offered_qps, std::uint64_t batches,
                        double joules, double group_utilization);

/**
 * Serialize a report as JSON: the summary scalars, the miss set,
 * the latency histogram buckets, and one record per request.
 * @param per_request include the full per-request log.
 */
void writeJson(const ServingReport &report, std::ostream &os,
               bool per_request = true);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_REPORT_HH
