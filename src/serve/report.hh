/**
 * @file
 * The SLO-centric outcome of one serving run.
 *
 * Aggregates what a cloud operator actually watches: tail latency
 * (p50/p95/p99 from the sim/stats.hh Histogram), queue-wait vs
 * execution breakdown, goodput vs deadline misses, sustained QPS,
 * chip occupancy, and energy per request. Exports as JSON via
 * JsonWriter so CI can diff serving behaviour across commits the
 * same way it diffs the figure benches.
 */

#ifndef DTU_SERVE_REPORT_HH
#define DTU_SERVE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "power/power_model.hh"
#include "serve/request.hh"
#include "sim/stats.hh"

namespace dtu
{

class JsonWriter;

namespace serve
{

/**
 * Where one generation phase's simulated time went, summed over the
 * operators of every execution in that phase. A coarse top-down
 * split (obs/topdown.hh does the per-core version): issue = the
 * tensor/vector engines were the limiter, dma = weight/KV streaming
 * or activation DMA was, other = launch + kernel-load overheads.
 */
struct PhaseBreakdown
{
    double issueTicks = 0.0;
    double dmaTicks = 0.0;
    double otherTicks = 0.0;
    /** MACs and DRAM-level bytes, for the roofline placement. */
    double macs = 0.0;
    double bytes = 0.0;
    /**
     * Per-component energy of the phase's operators (filled only
     * when the run attributes energy; see Scheduler::setEnergyMonitor).
     */
    EnergyBreakdown energy;

    double totalTicks() const
    {
        return issueTicks + dmaTicks + otherTicks;
    }
    /** Arithmetic intensity in ops/byte (2 ops per MAC). */
    double intensityOpsPerByte() const
    {
        return bytes > 0.0 ? 2.0 * macs / bytes : 0.0;
    }
    /** "issue", "dma", or "other" — the dominant category. */
    const char *dominant() const;

    void add(const PhaseBreakdown &other);
};

/**
 * Raw per-run generation bookkeeping the scheduler hands to
 * summarize() alongside the outcome log: inter-token-latency samples
 * (one per emitted decode token; per-request percentiles would hide
 * the cross-batch distribution), phase counters, KV-cache gauges,
 * and the per-phase time split.
 */
struct GenerationLog
{
    /** One sample per decode-step token emission, in ms. */
    std::vector<double> itlMs;
    std::uint64_t prefillBatches = 0;
    std::uint64_t decodeSteps = 0;
    /** Tokens emitted across all sequences (first tokens included). */
    std::uint64_t tokens = 0;

    //
    // KV-cache occupancy (pages of the device pool).
    //
    std::uint64_t kvPageBudget = 0;
    std::uint64_t kvPageBytes = 0;
    std::uint64_t kvPeakPages = 0;
    std::uint64_t kvPeakReservedPages = 0;
    std::uint64_t kvPagesAllocated = 0;
    std::uint64_t kvPagesFreed = 0;
    /** Pages still held when the run drained (0 == no leak). */
    std::uint64_t kvPagesInUseAtEnd = 0;

    PhaseBreakdown prefill;
    PhaseBreakdown decode;

    bool any() const { return prefillBatches || decodeSteps; }
    /** Fleet aggregation: fold another device's log into this one. */
    void merge(const GenerationLog &other);
};

/** Generation-phase metrics (present when the run generated). */
struct GenerationReport
{
    /** Generative requests completed. */
    std::uint64_t requests = 0;
    /** Tokens emitted by completed generative requests. */
    std::uint64_t tokens = 0;
    std::uint64_t prefillBatches = 0;
    std::uint64_t decodeSteps = 0;
    /** Emitted tokens per second of serving makespan. */
    double tokensPerSecond = 0.0;

    /** Time-to-first-token over completed generative requests. */
    Histogram ttftMsHistogram;
    double ttftP50Ms = 0.0;
    double ttftP95Ms = 0.0;
    double ttftP99Ms = 0.0;
    double ttftMeanMs = 0.0;
    double ttftMaxMs = 0.0;

    /** Inter-token latency over every emitted decode token. */
    Histogram itlMsHistogram;
    double itlP50Ms = 0.0;
    double itlP95Ms = 0.0;
    double itlP99Ms = 0.0;
    double itlMeanMs = 0.0;
    double itlMaxMs = 0.0;

    //
    // KV-cache occupancy.
    //
    std::uint64_t kvPageBudget = 0;
    std::uint64_t kvPageBytes = 0;
    std::uint64_t kvPeakPages = 0;
    std::uint64_t kvPeakReservedPages = 0;
    std::uint64_t kvPagesAllocated = 0;
    std::uint64_t kvPagesFreed = 0;
    std::uint64_t kvPagesInUseAtEnd = 0;
    /** kvPeakPages / kvPageBudget. */
    double kvPeakOccupancy = 0.0;

    /** Prefill-vs-decode top-down split (the roofline contrast). */
    PhaseBreakdown prefill;
    PhaseBreakdown decode;

    //
    // Energy per token (filled by finalizeEnergy when an energy
    // monitor is attached; zero otherwise). Decode J/token is the
    // marginal serving cost the capacity planner cares about;
    // prefill J/token is the first-token surcharge.
    //
    double joulesPerToken = 0.0;
    double prefillJoulesPerToken = 0.0;
    double decodeJoulesPerToken = 0.0;
};

/** Aggregated serving metrics over one drained request trace. */
struct ServingReport
{
    /** Requests the trace submitted (completed + dropped). */
    std::uint64_t submitted = 0;
    /** Completed requests. */
    std::uint64_t requests = 0;
    /** Dynamic batches launched. */
    std::uint64_t batches = 0;
    /** Mean requests per launched batch. */
    double meanBatchSize = 0.0;
    /** Last completion time (the serving makespan). */
    Tick makespan = 0;

    /** Arrival rate the trace offered. */
    double offeredQps = 0.0;
    /** Completions per second of makespan (sustained throughput). */
    double achievedQps = 0.0;
    /** In-deadline completions per second of makespan. */
    double goodputQps = 0.0;

    /** Requests that finished after their deadline. */
    std::uint64_t deadlineMisses = 0;
    /** deadlineMisses / requests. */
    double missRate = 0.0;
    /** Ids of the missed requests, ascending (the SLO miss set). */
    std::vector<std::uint64_t> missedIds;

    /** End-to-end latency distribution in milliseconds. */
    Histogram latencyMsHistogram;
    /**
     * Tail percentiles of the latency distribution. NaN when zero
     * requests completed (there is no distribution); the JSON writer
     * renders non-finite values as null.
     */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;

    /** Mean time spent waiting in the arrival queue. */
    double meanQueueMs = 0.0;
    /** Mean time spent executing on the chip. */
    double meanExecMs = 0.0;

    /** Energy drawn over the run and its per-request share. */
    double joules = 0.0;
    double joulesPerRequest = 0.0;
    /** Time-weighted fraction of processing groups leased. */
    double groupUtilization = 0.0;

    //
    // Degradation and fault outcome (all zero on a fault-free run
    // with degradation off).
    //

    /** Queued requests shed because their deadline expired. */
    std::uint64_t shedRequests = 0;
    /** Queued requests dropped by the per-request timeout. */
    std::uint64_t timedOutRequests = 0;
    /** Arrivals bounced by admission control. */
    std::uint64_t rejectedRequests = 0;
    /** Requests whose batch stayed poisoned after every retry. */
    std::uint64_t failedRequests = 0;
    /** Batch re-executions after poisoned runs. */
    std::uint64_t batchRetries = 0;
    /** Faults the injector scheduled during the run. */
    std::uint64_t faultsInjected = 0;
    /** completed / submitted; 1.0 when nothing was submitted. */
    double availability = 1.0;

    /**
     * Every request's terminal record — completions and drops in one
     * log, ordered by terminal time then id.
     */
    std::vector<RequestOutcome> outcomes;

    /** True when the run served at least one generative request. */
    bool hasGeneration = false;
    /** Generation metrics; meaningful only when hasGeneration. */
    GenerationReport generation;

    /**
     * True when an energy monitor attributed the run's joules; the
     * JSON energy sections exist only then, keeping energy-disabled
     * reports byte-identical to the pre-energy format.
     */
    bool hasEnergy = false;
    /** Per-component split of `joules`; meaningful when hasEnergy. */
    EnergyBreakdown energy;
};

/**
 * Build a report from the scheduler's raw outcome log.
 * @param outcomes per-request terminal records (any order).
 * @param offered_qps the trace's offered load.
 * @param batches dynamic batches launched.
 * @param joules energy drawn between serve start and last completion.
 * @param group_utilization lease occupancy from the ResourceManager.
 * @param batch_retries poisoned-batch re-executions.
 * @param faults_injected faults scheduled during the run.
 * @param gen generation bookkeeping (ignored when gen.any() is false).
 *
 * Every ratio is guarded: a run that completes zero requests (all
 * shed, timed out, or failed) reports zero QPS/means instead of
 * dividing by zero.
 */
ServingReport summarize(std::vector<RequestOutcome> outcomes,
                        double offered_qps, std::uint64_t batches,
                        double joules, double group_utilization,
                        std::uint64_t batch_retries = 0,
                        std::uint64_t faults_injected = 0,
                        GenerationLog gen = {});

/**
 * Attach per-component energy attribution to a summarized report:
 * stores @p energy (the meter's bucket delta over the run), marks
 * hasEnergy, and derives the generation J/token figures from the
 * phase energy the scheduler folded into the GenerationLog. All
 * divisions are guarded — zero tokens or zero completions yield
 * zeros, never non-finite values.
 */
void finalizeEnergy(ServingReport &report, const EnergyBreakdown &energy);

/**
 * Serialize a report as JSON: the summary scalars, the miss set,
 * the latency histogram buckets, and one record per request.
 * @param per_request include the full per-request log.
 */
void writeJson(const ServingReport &report, std::ostream &os,
               bool per_request = true);

/**
 * Emit the report object into an already-open JsonWriter (as the
 * next value), so composite documents — e.g. the fleet report's
 * per-device sections — can embed it.
 */
void writeJson(const ServingReport &report, JsonWriter &json,
               bool per_request = true);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_REPORT_HH
