/**
 * @file
 * Deterministic arrival-trace generators for the serving runtime.
 *
 * Traces are plain vectors of Request, so the same trace can be
 * replayed against different batching policies (the apples-to-apples
 * comparison bench_serving sweeps) and identical (trace, seed) pairs
 * reproduce identical serving reports. All randomness draws from the
 * seeded xoshiro generator in sim/random.hh — never from global
 * state.
 */

#ifndef DTU_SERVE_ARRIVAL_HH
#define DTU_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace dtu
{
namespace serve
{

/**
 * @p count requests for @p model at a fixed rate of @p qps, evenly
 * spaced starting at @p start. Each request's deadline is its
 * arrival plus @p deadline (0 = no SLO).
 */
std::vector<Request> fixedRateTrace(const std::string &model,
                                    double qps, unsigned count,
                                    Tick deadline = 0, Tick start = 0);

/**
 * Poisson arrivals: @p count requests whose inter-arrival gaps are
 * exponentially distributed around 1/@p qps, drawn from @p seed.
 * Gaps are clamped to at least 1 tick, so arrivals are strictly
 * increasing even at rates high enough that a sampled gap rounds
 * to 0 ticks.
 */
std::vector<Request> poissonTrace(const std::string &model, double qps,
                                  unsigned count, std::uint64_t seed,
                                  Tick deadline = 0, Tick start = 0);

/**
 * Bursty arrivals: Poisson bursts of @p burst_size requests at
 * @p burst_factor x the average rate, separated by idle gaps sized
 * so the long-run average stays @p qps. Models the flash crowds a
 * cloud inference service absorbs.
 */
std::vector<Request> burstyTrace(const std::string &model, double qps,
                                 unsigned count, std::uint64_t seed,
                                 unsigned burst_size = 8,
                                 double burst_factor = 4.0,
                                 Tick deadline = 0, Tick start = 0);

/**
 * Merge per-model traces into one serving trace: sort by (arrival,
 * model) and assign sequential ids from 1 in that order. Every
 * scheduler tie-break keys on these ids, so a finalized trace fully
 * determines the serving outcome.
 */
std::vector<Request>
finalizeTrace(std::vector<std::vector<Request>> traces);

/** Offered load of a finalized trace in requests per second. */
double offeredQps(const std::vector<Request> &trace);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_ARRIVAL_HH
