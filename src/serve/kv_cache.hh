/**
 * @file
 * The serving KV-cache: a first-class HBM-resident tensor with paged
 * block allocation (vLLM-style), shared by every generation sequence
 * on one device.
 *
 * Autoregressive decode keeps, per sequence, one K and one V vector
 * per layer per past token. Those tensors dominate HBM footprint at
 * high concurrency, so the scheduler treats them as the admission
 * currency: a sequence *reserves* its worst-case pages (prompt plus
 * every token it may still emit) before its prefill launches, grows
 * into the reservation page by page as tokens are emitted, and frees
 * everything the moment it completes (eviction-on-completion). The
 * reservation discipline means a mid-flight sequence can never hit
 * an out-of-pages condition — admission is the only place the budget
 * is checked, and the scheduler queues or sheds when it is full.
 *
 * Built on mem/allocator's PagePool: fixed-size pages from a budget
 * carved out of device HBM, LIFO reuse, double-free fatal. Distinct
 * models share the pool; each sequence packs floor(pageBytes /
 * bytesPerToken) tokens into a page.
 */

#ifndef DTU_SERVE_KV_CACHE_HH
#define DTU_SERVE_KV_CACHE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "mem/allocator.hh"

namespace dtu
{
namespace serve
{

/** Sizing of one device's KV-cache pool. */
struct KvCacheConfig
{
    /** HBM carved out for cached K/V tensors (the page budget). */
    std::uint64_t budgetBytes = 1ull << 30;
    /** Fixed page size; sequences pack whole tokens into pages. */
    std::uint64_t pageBytes = 64 * 1024;
};

/** Paged per-sequence KV block allocator with admission reservation. */
class KvCache
{
  public:
    explicit KvCache(KvCacheConfig config = {});

    const KvCacheConfig &config() const { return config_; }

    /** Pages the pool can hold in total. */
    std::uint64_t pageBudget() const { return pool_.capacityPages(); }

    /** Tokens of @p bytes_per_token that fit in one page (>= 1?). */
    std::uint64_t tokensPerPage(std::uint64_t bytes_per_token) const;

    /** Pages a sequence of @p tokens needs at @p bytes_per_token. */
    std::uint64_t pagesFor(std::uint64_t tokens,
                           std::uint64_t bytes_per_token) const;

    /**
     * Whether a new sequence of worst-case @p tokens could ever /
     * currently be admitted. "Ever": against the whole budget (a
     * false forever-answer means reject, not queue). "Currently":
     * against budget minus live reservations.
     */
    bool fitsEver(std::uint64_t tokens,
                  std::uint64_t bytes_per_token) const;
    bool fitsNow(std::uint64_t tokens,
                 std::uint64_t bytes_per_token) const;

    /**
     * Reserve worst-case room for sequence @p id: @p tokens at
     * @p bytes_per_token. Returns false (reserving nothing) when the
     * un-reserved budget cannot hold it. fatal() on a duplicate id.
     */
    bool reserve(std::uint64_t id, std::uint64_t tokens,
                 std::uint64_t bytes_per_token);

    /**
     * Grow sequence @p id's allocated pages to cover @p tokens
     * (idempotent for already-covered lengths). fatal() when growth
     * would exceed the sequence's reservation — the scheduler's
     * admission math went wrong, not the workload.
     */
    void grow(std::uint64_t id, std::uint64_t tokens);

    /** Eviction-on-completion: free @p id's pages + reservation. */
    void release(std::uint64_t id);

    /** Live sequences holding pages or reservations. */
    std::size_t sequences() const { return seqs_.size(); }

    /** Currently allocated (backed) pages / bytes. */
    std::uint64_t pagesInUse() const { return pool_.pagesInUse(); }
    std::uint64_t bytesInUse() const { return pool_.bytesInUse(); }
    /** Currently reserved pages (allocated or not). */
    std::uint64_t pagesReserved() const { return reservedPages_; }
    /** pagesInUse / budget — the occupancy gauge. */
    double occupancy() const { return pool_.occupancy(); }

    /** High-water marks over the cache's lifetime. */
    std::uint64_t peakPagesInUse() const
    {
        return pool_.peakPagesInUse();
    }
    std::uint64_t peakPagesReserved() const { return peakReserved_; }

    /** Lifetime page allocate/free counts (leak check). */
    std::uint64_t totalPagesAllocated() const
    {
        return pool_.totalAllocated();
    }
    std::uint64_t totalPagesFreed() const { return pool_.totalFreed(); }

  private:
    struct Sequence
    {
        std::uint64_t bytesPerToken = 0;
        std::uint64_t reservedPages = 0;
        std::vector<std::uint64_t> pages;
    };

    KvCacheConfig config_;
    PagePool pool_;
    std::map<std::uint64_t, Sequence> seqs_;
    std::uint64_t reservedPages_ = 0;
    std::uint64_t peakReserved_ = 0;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_KV_CACHE_HH
