#include "serve/report.hh"

#include <algorithm>

#include "power/power_event.hh"
#include "sim/json.hh"

namespace dtu
{
namespace serve
{

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::Rejected: return "rejected";
      case DropReason::Shed: return "shed";
      case DropReason::TimedOut: return "timed_out";
      case DropReason::Failed: return "failed";
    }
    return "?";
}

const char *
PhaseBreakdown::dominant() const
{
    if (dmaTicks >= issueTicks && dmaTicks >= otherTicks)
        return issueTicks + dmaTicks + otherTicks > 0.0 ? "dma" : "none";
    if (issueTicks >= otherTicks)
        return "issue";
    return "other";
}

void
PhaseBreakdown::add(const PhaseBreakdown &other)
{
    issueTicks += other.issueTicks;
    dmaTicks += other.dmaTicks;
    otherTicks += other.otherTicks;
    macs += other.macs;
    bytes += other.bytes;
    energy.add(other.energy);
}

void
GenerationLog::merge(const GenerationLog &other)
{
    itlMs.insert(itlMs.end(), other.itlMs.begin(), other.itlMs.end());
    prefillBatches += other.prefillBatches;
    decodeSteps += other.decodeSteps;
    tokens += other.tokens;
    kvPageBudget += other.kvPageBudget;
    // Page geometry is uniform across a fleet; keep the first seen.
    kvPageBytes = kvPageBytes ? kvPageBytes : other.kvPageBytes;
    kvPeakPages += other.kvPeakPages;
    kvPeakReservedPages += other.kvPeakReservedPages;
    kvPagesAllocated += other.kvPagesAllocated;
    kvPagesFreed += other.kvPagesFreed;
    kvPagesInUseAtEnd += other.kvPagesInUseAtEnd;
    prefill.add(other.prefill);
    decode.add(other.decode);
}

namespace
{

/**
 * Fill a (histogram, p50/p95/p99/mean/max) block from raw samples.
 * Zero samples leaves the NaN percentiles of an empty histogram,
 * which the JSON writer renders as null.
 */
void
summarizeSamples(const std::vector<double> &samples, Histogram &hist,
                 double &p50, double &p95, double &p99, double &mean,
                 double &max)
{
    double max_v = 0.0;
    double sum = 0.0;
    for (double s : samples) {
        max_v = std::max(max_v, s);
        sum += s;
    }
    hist.init(0.0, std::max(max_v, 1e-9) * 1.001, 512);
    for (double s : samples)
        hist.sample(s);
    p50 = hist.percentile(0.50);
    p95 = hist.percentile(0.95);
    p99 = hist.percentile(0.99);
    mean = samples.empty()
               ? 0.0
               : sum / static_cast<double>(samples.size());
    max = max_v;
}

/** Derive the GenerationReport from the raw log + outcome list. */
void
summarizeGeneration(ServingReport &report, const GenerationLog &gen)
{
    if (!gen.any())
        return;
    report.hasGeneration = true;
    GenerationReport &g = report.generation;
    g.prefillBatches = gen.prefillBatches;
    g.decodeSteps = gen.decodeSteps;
    g.tokens = gen.tokens;
    g.kvPageBudget = gen.kvPageBudget;
    g.kvPageBytes = gen.kvPageBytes;
    g.kvPeakPages = gen.kvPeakPages;
    g.kvPeakReservedPages = gen.kvPeakReservedPages;
    g.kvPagesAllocated = gen.kvPagesAllocated;
    g.kvPagesFreed = gen.kvPagesFreed;
    g.kvPagesInUseAtEnd = gen.kvPagesInUseAtEnd;
    g.kvPeakOccupancy =
        gen.kvPageBudget
            ? static_cast<double>(gen.kvPeakPages) /
                  static_cast<double>(gen.kvPageBudget)
            : 0.0;
    g.prefill = gen.prefill;
    g.decode = gen.decode;

    std::vector<double> ttft;
    for (const RequestOutcome &r : report.outcomes) {
        if (!r.completedOk() || !r.request.generative())
            continue;
        ++g.requests;
        ttft.push_back(ticksToMilliSeconds(r.ttft()));
    }
    summarizeSamples(ttft, g.ttftMsHistogram, g.ttftP50Ms, g.ttftP95Ms,
                     g.ttftP99Ms, g.ttftMeanMs, g.ttftMaxMs);
    summarizeSamples(gen.itlMs, g.itlMsHistogram, g.itlP50Ms,
                     g.itlP95Ms, g.itlP99Ms, g.itlMeanMs, g.itlMaxMs);

    double seconds = ticksToSeconds(report.makespan);
    if (seconds > 0.0)
        g.tokensPerSecond = static_cast<double>(g.tokens) / seconds;
}

} // namespace

ServingReport
summarize(std::vector<RequestOutcome> outcomes, double offered_qps,
          std::uint64_t batches, double joules,
          double group_utilization, std::uint64_t batch_retries,
          std::uint64_t faults_injected, GenerationLog gen)
{
    ServingReport report;
    report.offeredQps = offered_qps;
    report.batches = batches;
    report.joules = joules;
    report.groupUtilization = group_utilization;
    report.batchRetries = batch_retries;
    report.faultsInjected = faults_injected;

    // One sort covers both populations: completions were logged with
    // their completion time in `completed` and drops with the drop
    // decision time, so (terminal time, id) is the deterministic
    // order for each — and filtering the merged log preserves it.
    std::sort(outcomes.begin(), outcomes.end(),
              [](const RequestOutcome &a, const RequestOutcome &b) {
                  if (a.completed != b.completed)
                      return a.completed < b.completed;
                  return a.request.id < b.request.id;
              });
    std::uint64_t dropped = 0;
    for (const RequestOutcome &r : outcomes) {
        if (r.completedOk())
            continue;
        ++dropped;
        switch (r.dropReason) {
          case DropReason::Rejected: ++report.rejectedRequests; break;
          case DropReason::Shed: ++report.shedRequests; break;
          case DropReason::TimedOut: ++report.timedOutRequests; break;
          case DropReason::Failed: ++report.failedRequests; break;
        }
    }
    report.outcomes = std::move(outcomes);
    report.submitted = report.outcomes.size();
    report.requests = report.submitted - dropped;
    report.availability =
        report.submitted
            ? static_cast<double>(report.requests) /
                  static_cast<double>(report.submitted)
            : 1.0;
    if (report.requests == 0) {
        // A run can legitimately complete nothing (everything shed,
        // timed out, or failed); every ratio below divides by the
        // request count, so stop here with zeros instead of NaNs.
        // The latency percentiles are the exception: there is no
        // latency distribution to summarize, so they take the empty
        // histogram's defined NaN and serialize as JSON null rather
        // than claiming a 0 ms tail.
        report.meanBatchSize = 0.0;
        report.p50Ms = report.latencyMsHistogram.percentile(0.50);
        report.p95Ms = report.latencyMsHistogram.percentile(0.95);
        report.p99Ms = report.latencyMsHistogram.percentile(0.99);
        summarizeGeneration(report, gen);
        return report;
    }

    double max_ms = 0.0;
    double sum_ms = 0.0;
    double sum_queue_ms = 0.0;
    double sum_exec_ms = 0.0;
    for (const RequestOutcome &r : report.outcomes) {
        if (!r.completedOk())
            continue;
        report.makespan = std::max(report.makespan, r.completed);
        max_ms = std::max(max_ms, ticksToMilliSeconds(r.latency()));
        sum_ms += ticksToMilliSeconds(r.latency());
        sum_queue_ms += ticksToMilliSeconds(r.queueWait());
        sum_exec_ms += ticksToMilliSeconds(r.execTime());
        if (r.missedDeadline()) {
            ++report.deadlineMisses;
            report.missedIds.push_back(r.request.id);
        }
    }
    std::sort(report.missedIds.begin(), report.missedIds.end());

    double n = static_cast<double>(report.requests);
    report.meanMs = sum_ms / n;
    report.maxMs = max_ms;
    report.meanQueueMs = sum_queue_ms / n;
    report.meanExecMs = sum_exec_ms / n;
    report.missRate = static_cast<double>(report.deadlineMisses) / n;
    report.meanBatchSize =
        report.batches
            ? n / static_cast<double>(report.batches)
            : 0.0;
    report.joulesPerRequest = joules / n;

    double seconds = ticksToSeconds(report.makespan);
    if (seconds > 0.0) {
        report.achievedQps = n / seconds;
        report.goodputQps =
            static_cast<double>(report.requests -
                                report.deadlineMisses) /
            seconds;
    }

    // Tail percentiles through the sim/stats.hh Histogram: 512
    // equal-width buckets over the observed range give ~0.2% value
    // resolution, then percentile() interpolates inside the bucket.
    report.latencyMsHistogram.init(0.0, std::max(max_ms, 1e-9) * 1.001,
                                   512);
    for (const RequestOutcome &r : report.outcomes) {
        if (r.completedOk())
            report.latencyMsHistogram.sample(
                ticksToMilliSeconds(r.latency()));
    }
    report.p50Ms = report.latencyMsHistogram.percentile(0.50);
    report.p95Ms = report.latencyMsHistogram.percentile(0.95);
    report.p99Ms = report.latencyMsHistogram.percentile(0.99);
    summarizeGeneration(report, gen);
    return report;
}

void
finalizeEnergy(ServingReport &report, const EnergyBreakdown &energy)
{
    report.hasEnergy = true;
    report.energy = energy;
    if (!report.hasGeneration)
        return;
    GenerationReport &g = report.generation;
    double gen_joules = g.prefill.energy.total() + g.decode.energy.total();
    g.joulesPerToken =
        g.tokens ? gen_joules / static_cast<double>(g.tokens) : 0.0;
    // Prefill emits each sequence's first token; decode emits the
    // rest. Tokens from sequences dropped mid-generation keep the
    // decode denominator conservative, never negative.
    g.prefillJoulesPerToken =
        g.requests ? g.prefill.energy.total() /
                         static_cast<double>(g.requests)
                   : 0.0;
    std::uint64_t decode_tokens =
        g.tokens > g.requests ? g.tokens - g.requests : 0;
    g.decodeJoulesPerToken =
        decode_tokens ? g.decode.energy.total() /
                            static_cast<double>(decode_tokens)
                      : 0.0;
}

void
writeJson(const ServingReport &report, std::ostream &os,
          bool per_request)
{
    JsonWriter json(os);
    writeJson(report, json, per_request);
    os << "\n";
}

namespace
{

void
writePhaseJson(JsonWriter &json, const char *key,
               const PhaseBreakdown &phase, bool with_energy)
{
    json.key(key).beginObject();
    json.field("issue_ticks", phase.issueTicks)
        .field("dma_ticks", phase.dmaTicks)
        .field("other_ticks", phase.otherTicks)
        .field("macs", phase.macs)
        .field("bytes", phase.bytes)
        .field("intensity_ops_per_byte", phase.intensityOpsPerByte())
        .field("dominant", phase.dominant());
    if (with_energy) {
        json.key("energy");
        writeEnergyBreakdownJson(phase.energy, json);
    }
    json.endObject();
}

} // namespace

void
writeJson(const ServingReport &report, JsonWriter &json,
          bool per_request)
{
    json.beginObject();
    json.field("submitted", report.submitted)
        .field("requests", report.requests)
        .field("batches", report.batches)
        .field("mean_batch_size", report.meanBatchSize)
        .field("makespan_ms", ticksToMilliSeconds(report.makespan))
        .field("offered_qps", report.offeredQps)
        .field("achieved_qps", report.achievedQps)
        .field("goodput_qps", report.goodputQps)
        .field("deadline_misses", report.deadlineMisses)
        .field("miss_rate", report.missRate)
        .field("latency_p50_ms", report.p50Ms)
        .field("latency_p95_ms", report.p95Ms)
        .field("latency_p99_ms", report.p99Ms)
        .field("latency_mean_ms", report.meanMs)
        .field("latency_max_ms", report.maxMs)
        .field("queue_wait_mean_ms", report.meanQueueMs)
        .field("exec_mean_ms", report.meanExecMs)
        .field("joules", report.joules)
        .field("joules_per_request", report.joulesPerRequest)
        .field("group_utilization", report.groupUtilization)
        .field("availability", report.availability)
        .field("shed_requests", report.shedRequests)
        .field("timed_out_requests", report.timedOutRequests)
        .field("rejected_requests", report.rejectedRequests)
        .field("failed_requests", report.failedRequests)
        .field("batch_retries", report.batchRetries)
        .field("faults_injected", report.faultsInjected);

    // Like the generation section, the energy section exists only
    // when a monitor attributed the run — energy-disabled reports
    // stay byte-identical to the pre-energy goldens.
    if (report.hasEnergy) {
        json.key("energy");
        writeEnergyBreakdownJson(report.energy, json);
    }

    // The generation section exists only for runs that generated, so
    // a one-shot run's JSON is byte-identical to the pre-generation
    // format (the checked-in goldens pin that).
    if (report.hasGeneration) {
        const GenerationReport &g = report.generation;
        json.key("generation").beginObject();
        json.field("requests", g.requests)
            .field("tokens", g.tokens)
            .field("prefill_batches", g.prefillBatches)
            .field("decode_steps", g.decodeSteps)
            .field("tokens_per_second", g.tokensPerSecond)
            .field("ttft_p50_ms", g.ttftP50Ms)
            .field("ttft_p95_ms", g.ttftP95Ms)
            .field("ttft_p99_ms", g.ttftP99Ms)
            .field("ttft_mean_ms", g.ttftMeanMs)
            .field("ttft_max_ms", g.ttftMaxMs)
            .field("itl_p50_ms", g.itlP50Ms)
            .field("itl_p95_ms", g.itlP95Ms)
            .field("itl_p99_ms", g.itlP99Ms)
            .field("itl_mean_ms", g.itlMeanMs)
            .field("itl_max_ms", g.itlMaxMs);
        if (report.hasEnergy) {
            json.field("joules_per_token", g.joulesPerToken)
                .field("prefill_joules_per_token",
                       g.prefillJoulesPerToken)
                .field("decode_joules_per_token",
                       g.decodeJoulesPerToken);
        }
        json.key("kv_cache").beginObject();
        json.field("page_bytes", g.kvPageBytes)
            .field("page_budget", g.kvPageBudget)
            .field("peak_pages", g.kvPeakPages)
            .field("peak_reserved_pages", g.kvPeakReservedPages)
            .field("pages_allocated", g.kvPagesAllocated)
            .field("pages_freed", g.kvPagesFreed)
            .field("pages_in_use_at_end", g.kvPagesInUseAtEnd)
            .field("peak_occupancy", g.kvPeakOccupancy);
        json.endObject();
        writePhaseJson(json, "prefill", g.prefill, report.hasEnergy);
        writePhaseJson(json, "decode", g.decode, report.hasEnergy);
        json.endObject();
    }

    json.key("missed_ids").beginArray();
    for (std::uint64_t id : report.missedIds)
        json.value(id);
    json.endArray();

    const Histogram &h = report.latencyMsHistogram;
    json.key("latency_histogram_ms").beginObject();
    json.field("lo", h.lo()).field("hi", h.hi());
    json.key("buckets").beginArray();
    for (std::uint64_t c : h.buckets())
        json.value(c);
    json.endArray();
    json.endObject();

    if (per_request) {
        json.key("requests_detail").beginArray();
        for (const RequestOutcome &r : report.outcomes) {
            if (!r.completedOk())
                continue;
            json.beginObject()
                .field("id", r.request.id)
                .field("model", r.request.model)
                .field("arrival_ms",
                       ticksToMilliSeconds(r.request.arrival))
                .field("deadline_ms",
                       ticksToMilliSeconds(r.request.deadline))
                .field("dispatched_ms",
                       ticksToMilliSeconds(r.dispatched))
                .field("completed_ms",
                       ticksToMilliSeconds(r.completed))
                .field("latency_ms", ticksToMilliSeconds(r.latency()))
                .field("queue_wait_ms",
                       ticksToMilliSeconds(r.queueWait()))
                .field("batch_size", r.batchSize)
                .field("missed", r.missedDeadline());
            if (r.request.generative()) {
                json.field("prompt_len", r.request.gen.promptLen)
                    .field("tokens_emitted", r.tokensEmitted)
                    .field("ttft_ms", ticksToMilliSeconds(r.ttft()))
                    .field("decode_span_ms",
                           ticksToMilliSeconds(r.decodeSpan()));
            }
            json.endObject();
        }
        json.endArray();

        json.key("dropped_detail").beginArray();
        for (const RequestOutcome &r : report.outcomes) {
            if (r.completedOk())
                continue;
            json.beginObject()
                .field("id", r.request.id)
                .field("model", r.request.model)
                .field("arrival_ms",
                       ticksToMilliSeconds(r.request.arrival))
                .field("deadline_ms",
                       ticksToMilliSeconds(r.request.deadline))
                .field("dropped_ms", ticksToMilliSeconds(r.completed))
                .field("reason", dropReasonName(r.dropReason))
                .endObject();
        }
        json.endArray();
    }
    json.endObject();
}

} // namespace serve
} // namespace dtu
