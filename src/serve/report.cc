#include "serve/report.hh"

#include <algorithm>

#include "sim/json.hh"

namespace dtu
{
namespace serve
{

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::Rejected: return "rejected";
      case DropReason::Shed: return "shed";
      case DropReason::TimedOut: return "timed_out";
      case DropReason::Failed: return "failed";
    }
    return "?";
}

ServingReport
summarize(std::vector<CompletedRequest> completed, double offered_qps,
          std::uint64_t batches, double joules,
          double group_utilization, std::vector<DroppedRequest> dropped,
          std::uint64_t batch_retries, std::uint64_t faults_injected)
{
    ServingReport report;
    report.offeredQps = offered_qps;
    report.batches = batches;
    report.joules = joules;
    report.groupUtilization = group_utilization;
    report.batchRetries = batch_retries;
    report.faultsInjected = faults_injected;

    std::sort(dropped.begin(), dropped.end(),
              [](const DroppedRequest &a, const DroppedRequest &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  return a.request.id < b.request.id;
              });
    for (const DroppedRequest &d : dropped) {
        switch (d.reason) {
          case DropReason::Rejected: ++report.rejectedRequests; break;
          case DropReason::Shed: ++report.shedRequests; break;
          case DropReason::TimedOut: ++report.timedOutRequests; break;
          case DropReason::Failed: ++report.failedRequests; break;
        }
    }
    report.dropped = std::move(dropped);

    std::sort(completed.begin(), completed.end(),
              [](const CompletedRequest &a, const CompletedRequest &b) {
                  if (a.completed != b.completed)
                      return a.completed < b.completed;
                  return a.request.id < b.request.id;
              });
    report.completed = std::move(completed);
    report.requests = report.completed.size();
    report.submitted = report.requests + report.dropped.size();
    report.availability =
        report.submitted
            ? static_cast<double>(report.requests) /
                  static_cast<double>(report.submitted)
            : 1.0;
    if (report.requests == 0) {
        // A run can legitimately complete nothing (everything shed,
        // timed out, or failed); every ratio below divides by the
        // request count, so stop here with zeros instead of NaNs.
        // The latency percentiles are the exception: there is no
        // latency distribution to summarize, so they take the empty
        // histogram's defined NaN and serialize as JSON null rather
        // than claiming a 0 ms tail.
        report.meanBatchSize = 0.0;
        report.p50Ms = report.latencyMsHistogram.percentile(0.50);
        report.p95Ms = report.latencyMsHistogram.percentile(0.95);
        report.p99Ms = report.latencyMsHistogram.percentile(0.99);
        return report;
    }

    double max_ms = 0.0;
    double sum_ms = 0.0;
    double sum_queue_ms = 0.0;
    double sum_exec_ms = 0.0;
    for (const CompletedRequest &r : report.completed) {
        report.makespan = std::max(report.makespan, r.completed);
        max_ms = std::max(max_ms, ticksToMilliSeconds(r.latency()));
        sum_ms += ticksToMilliSeconds(r.latency());
        sum_queue_ms += ticksToMilliSeconds(r.queueWait());
        sum_exec_ms += ticksToMilliSeconds(r.execTime());
        if (r.missedDeadline()) {
            ++report.deadlineMisses;
            report.missedIds.push_back(r.request.id);
        }
    }
    std::sort(report.missedIds.begin(), report.missedIds.end());

    double n = static_cast<double>(report.requests);
    report.meanMs = sum_ms / n;
    report.maxMs = max_ms;
    report.meanQueueMs = sum_queue_ms / n;
    report.meanExecMs = sum_exec_ms / n;
    report.missRate = static_cast<double>(report.deadlineMisses) / n;
    report.meanBatchSize =
        report.batches
            ? n / static_cast<double>(report.batches)
            : 0.0;
    report.joulesPerRequest = joules / n;

    double seconds = ticksToSeconds(report.makespan);
    if (seconds > 0.0) {
        report.achievedQps = n / seconds;
        report.goodputQps =
            static_cast<double>(report.requests -
                                report.deadlineMisses) /
            seconds;
    }

    // Tail percentiles through the sim/stats.hh Histogram: 512
    // equal-width buckets over the observed range give ~0.2% value
    // resolution, then percentile() interpolates inside the bucket.
    report.latencyMsHistogram.init(0.0, std::max(max_ms, 1e-9) * 1.001,
                                   512);
    for (const CompletedRequest &r : report.completed)
        report.latencyMsHistogram.sample(
            ticksToMilliSeconds(r.latency()));
    report.p50Ms = report.latencyMsHistogram.percentile(0.50);
    report.p95Ms = report.latencyMsHistogram.percentile(0.95);
    report.p99Ms = report.latencyMsHistogram.percentile(0.99);
    return report;
}

void
writeJson(const ServingReport &report, std::ostream &os,
          bool per_request)
{
    JsonWriter json(os);
    writeJson(report, json, per_request);
    os << "\n";
}

void
writeJson(const ServingReport &report, JsonWriter &json,
          bool per_request)
{
    json.beginObject();
    json.field("submitted", report.submitted)
        .field("requests", report.requests)
        .field("batches", report.batches)
        .field("mean_batch_size", report.meanBatchSize)
        .field("makespan_ms", ticksToMilliSeconds(report.makespan))
        .field("offered_qps", report.offeredQps)
        .field("achieved_qps", report.achievedQps)
        .field("goodput_qps", report.goodputQps)
        .field("deadline_misses", report.deadlineMisses)
        .field("miss_rate", report.missRate)
        .field("latency_p50_ms", report.p50Ms)
        .field("latency_p95_ms", report.p95Ms)
        .field("latency_p99_ms", report.p99Ms)
        .field("latency_mean_ms", report.meanMs)
        .field("latency_max_ms", report.maxMs)
        .field("queue_wait_mean_ms", report.meanQueueMs)
        .field("exec_mean_ms", report.meanExecMs)
        .field("joules", report.joules)
        .field("joules_per_request", report.joulesPerRequest)
        .field("group_utilization", report.groupUtilization)
        .field("availability", report.availability)
        .field("shed_requests", report.shedRequests)
        .field("timed_out_requests", report.timedOutRequests)
        .field("rejected_requests", report.rejectedRequests)
        .field("failed_requests", report.failedRequests)
        .field("batch_retries", report.batchRetries)
        .field("faults_injected", report.faultsInjected);

    json.key("missed_ids").beginArray();
    for (std::uint64_t id : report.missedIds)
        json.value(id);
    json.endArray();

    const Histogram &h = report.latencyMsHistogram;
    json.key("latency_histogram_ms").beginObject();
    json.field("lo", h.lo()).field("hi", h.hi());
    json.key("buckets").beginArray();
    for (std::uint64_t c : h.buckets())
        json.value(c);
    json.endArray();
    json.endObject();

    if (per_request) {
        json.key("requests_detail").beginArray();
        for (const CompletedRequest &r : report.completed) {
            json.beginObject()
                .field("id", r.request.id)
                .field("model", r.request.model)
                .field("arrival_ms",
                       ticksToMilliSeconds(r.request.arrival))
                .field("deadline_ms",
                       ticksToMilliSeconds(r.request.deadline))
                .field("dispatched_ms",
                       ticksToMilliSeconds(r.dispatched))
                .field("completed_ms",
                       ticksToMilliSeconds(r.completed))
                .field("latency_ms", ticksToMilliSeconds(r.latency()))
                .field("queue_wait_ms",
                       ticksToMilliSeconds(r.queueWait()))
                .field("batch_size", r.batchSize)
                .field("missed", r.missedDeadline())
                .endObject();
        }
        json.endArray();

        json.key("dropped_detail").beginArray();
        for (const DroppedRequest &d : report.dropped) {
            json.beginObject()
                .field("id", d.request.id)
                .field("model", d.request.model)
                .field("arrival_ms",
                       ticksToMilliSeconds(d.request.arrival))
                .field("deadline_ms",
                       ticksToMilliSeconds(d.request.deadline))
                .field("dropped_ms", ticksToMilliSeconds(d.at))
                .field("reason", dropReasonName(d.reason))
                .endObject();
        }
        json.endArray();
    }
    json.endObject();
}

} // namespace serve
} // namespace dtu
