/**
 * @file
 * Multi-device fleet serving: data-parallel scale-out of the
 * request-level serving runtime.
 *
 * A Fleet fronts N independently clocked Dtu instances (each with
 * its own ResourceManager) with one discrete-event serving loop. A
 * pluggable Router assigns every arrival to a device; each device
 * runs its own steppable Scheduler core (per-device queues, dynamic
 * batching, degradation), while the fleet driver owns the global
 * timeline and min-reduces the devices' next-event times — so
 * cross-device ordering is deterministic and a size-1 fleet
 * reproduces the single-device Scheduler::serve() path bit-for-bit.
 *
 * With FleetConfig::threads > 1 the driver becomes a conservative
 * time-window scheduler: devices touch each other only through the
 * router at arrival times, so the span between consecutive arrivals
 * is a synchronization window. Inside a window each device advances
 * through its own internal events on its own worker thread (devices
 * share nothing but the mutex-guarded plan cache); at the window
 * barrier the fleet thread routes and admits the due arrivals, then
 * the workers settle. Because the serial loop's per-device steps at
 * ticks belonging to *other* devices are no-ops by construction
 * (settle/advance are idempotent between a device's own events and
 * admissions), the parallel schedule retires exactly the same events
 * at exactly the same simulated ticks — reports are bit-identical to
 * threads=1 at any thread count.
 *
 * Model placement is explicit: the first time the router assigns a
 * model to a device, the device "places" it, optionally paying a
 * modeled PCIe weight-load (weight bytes at weightLoadGbps GB/s,
 * serialized per device, see Scheduler::placeModel). Batches of a
 * model cannot launch on a device before its weights are resident,
 * which is what makes model-affinity routing worth having.
 *
 * This is the paper's cloud-deployment story scaled out: the i20
 * card is a PCIe device, and inference clusters scale by packing
 * cards behind one request router (data parallelism), not by model
 * sharding — so the fleet abstraction is N chips + a router, with
 * per-device SLO accounting rolled up fleet-wide.
 *
 * Beyond data parallelism, a FleetConfig can enable the interconnect
 * fabric (fabric/fabric.hh) and a model-parallel placement
 * (serve/placement.hh): the fleet then partitions its devices into
 * groups of `placement.degree`, runs one scheduler core per group
 * (on the group-leader chip, which models one representative device
 * of the lockstep group), and the schedulers submit the placement's
 * collectives and activation streams as timed fabric transfers.
 * Weight loads always cross the fabric's shared host root complex,
 * so concurrent placements contend.
 */

#ifndef DTU_SERVE_FLEET_HH
#define DTU_SERVE_FLEET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "fabric/fabric.hh"
#include "serve/placement.hh"
#include "serve/scheduler.hh"

namespace dtu
{
namespace serve
{

/** How the fleet router picks a device for each arrival. */
enum class RoutingPolicy
{
    /** Cycle through devices in index order, stateless. */
    RoundRobin,
    /**
     * Pick the device with the fewest outstanding (queued +
     * in-flight) requests; ties break on the lowest index. The
     * classic load-aware policy: under bursty arrivals it spreads a
     * burst across idle devices instead of stacking it behind a
     * busy one, cutting tail latency.
     */
    LeastOutstanding,
    /**
     * Prefer devices that already hold the model's weights (least
     * outstanding among them); fall back to the globally least
     * loaded device, triggering a placement there. Minimizes PCIe
     * weight traffic at some load-balance cost.
     */
    ModelAffinity,
};

/** Stable lowercase name ("round_robin", ...). */
const char *routingPolicyName(RoutingPolicy policy);

/** Parse a policy name; nullopt when unknown. */
std::optional<RoutingPolicy> parseRoutingPolicy(const std::string &name);

/** Configuration of a serving fleet. */
struct FleetConfig
{
    /** Devices in the fleet. */
    unsigned devices = 1;
    /** Arrival-to-device routing policy. */
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /** Per-device scheduler configuration (identical across devices). */
    ServingConfig serving;
    /**
     * PCIe bandwidth for first-placement weight loads, in GB/s.
     * 0 disables the cost model: placements are tracked (affinity
     * routing still works) but weights are resident immediately —
     * the default, which keeps a size-1 fleet bit-for-bit identical
     * to the single-device path.
     */
    double weightLoadGbps = 0.0;
    /**
     * Share one compiled-plan cache across the fleet's identically
     * configured devices (plans are pure functions of the chip
     * config). Host-side memoization only; simulated timing is
     * unchanged.
     */
    bool sharePlans = true;
    /**
     * Worker threads driving the devices, clamped to the fleet size.
     * 1 (the default) is the classic serial event loop. With more,
     * each device runs on its own worker under conservative
     * time-window synchronization: windows span the gaps between
     * arrival times (the only cross-device coupling — routing reads
     * device load, placement — happens at arrivals), devices share
     * nothing inside a window, and every report is bit-identical to
     * threads=1. Runs with an SLO monitor or request tracer attached
     * fall back to threads=1 (with a warning): those observers
     * promise one globally ordered record stream. So do shared-root
     * fabric topologies under a model-parallel placement, whose peer
     * traffic would cross the shared root link from worker threads.
     */
    unsigned threads = 1;
    /**
     * The interconnect fabric (off by default). When enabled, weight
     * loads route through the fabric's shared host root complex —
     * concurrent placements contend on its bandwidth ledger instead
     * of each enjoying the full weightLoadGbps — and model-parallel
     * placements run their collectives over the peer links.
     */
    fabric::FabricConfig fabric;
    /**
     * How devices are grouped into serving units (data parallel by
     * default). Tensor/pipeline placements require the fabric.
     */
    PlacementConfig placement;
};

/** One device's slice of a fleet serving run. */
struct DeviceReport
{
    /** Device index within the fleet. */
    unsigned device = 0;
    /** Arrivals the router assigned to this device. */
    std::uint64_t routed = 0;
    /** Highest arrival-queue depth the device saw. */
    std::uint64_t peakQueueDepth = 0;
    /** Models placed on this device, alphabetical. */
    std::vector<std::string> placedModels;
    /** First-placement weight loads this device paid. */
    std::uint64_t weightLoads = 0;
    /** Total modeled PCIe weight-load time. */
    Tick weightLoadTicks = 0;
    /** Total weight bytes loaded. */
    std::uint64_t weightLoadBytes = 0;
    /** The device's own serving report (its routed slice). */
    ServingReport report;
};

/** Fabric traffic rollup for the fleet report (all zero when off). */
struct FleetFabricReport
{
    bool enabled = false;
    fabric::Topology topology = fabric::Topology::SharedRoot;
    unsigned groups = 0;
    unsigned groupSize = 1;
    double linkGbps = 0.0;
    double hostGbps = 0.0;
    fabric::FabricTotals totals;
    std::vector<fabric::LinkStats> links;
};

/** Fleet-wide outcome: the aggregate plus every device's slice. */
struct FleetReport
{
    /** Devices served. */
    unsigned devices = 0;
    /** Policy that routed the trace. */
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /** How devices were grouped into serving units. */
    PlacementConfig placement;
    /** Interconnect traffic (enabled=false keeps the JSON unchanged). */
    FleetFabricReport fabric;
    /**
     * Fleet-aggregate report over the merged completion/drop logs:
     * fleet-wide percentiles, summed batches/energy, mean device
     * utilization. For a size-1 fleet this equals devices[0].report.
     */
    ServingReport fleet;
    /** Per-device slices (one per placement group), index order. */
    std::vector<DeviceReport> perDevice;
};

/**
 * Routing policy implementation. route() sees the live device cores
 * (queue depths, outstanding work, placements) so policies can be
 * load- and placement-aware. Implementations must be deterministic:
 * same arrival sequence and device states => same assignment.
 */
class Router
{
  public:
    virtual ~Router() = default;

    /** Pick the device for @p request. */
    virtual unsigned route(const Request &request,
                           const std::vector<Scheduler *> &devices) = 0;

    /** Build the standard implementation of @p policy. */
    static std::unique_ptr<Router> make(RoutingPolicy policy);
};

/**
 * N steppable Scheduler cores behind one Router on one timeline.
 * The Fleet borrows the chips and managers (the api::FleetServer
 * facade owns them); members must outlive the Fleet.
 */
class Fleet
{
  public:
    /** One borrowed device: a chip and its resource manager. */
    struct Member
    {
        Dtu *dtu = nullptr;
        ResourceManager *manager = nullptr;
    };

    Fleet(std::vector<Member> members, FleetConfig config);

    /** Drain a finalized arrival trace across the fleet. */
    FleetReport serve(std::vector<Request> trace);

    /** Scheduler cores in the fleet (placement groups). */
    std::size_t size() const { return devices_.size(); }

    /** Group @p i's scheduler core (e.g. for placement queries). */
    Scheduler &device(std::size_t i) { return *devices_[i]; }

    const FleetConfig &config() const { return config_; }

    /** The interconnect fabric, or nullptr when disabled. */
    const fabric::Fabric *fabricPtr() const { return fabric_.get(); }

    /**
     * Attach (or detach) a live SLO monitor fleet-wide: every
     * device's completions and drops feed one monitor whose windows
     * the fleet loop advances on the global timeline.
     */
    void setSloMonitor(obs::SloMonitor *monitor);

    /**
     * Attach (or detach) a request-lifecycle tracer. Every device
     * scheduler reports its hooks under its fleet index, the router's
     * choices become trace instants, and the fleet loop samples the
     * periodic metric time-series (obs/fleet_metrics.hh) at the
     * tracer's configured period. Without a tracer the serving loop
     * is bit-for-bit unchanged.
     */
    void setRequestTracer(obs::RequestTracer *tracer);

    /**
     * Attach (or detach) an energy monitor. Every device scheduler
     * attributes its run energy by component under its fleet index,
     * the fleet loop's metric samples carry power telemetry, and the
     * fleet report gains the per-device and aggregate energy
     * rollups. Without a monitor the serving loop is bit-for-bit
     * unchanged. The caller attaches the chips to the monitor
     * (EnergyMonitor::attach) — the fleet only drives sampling.
     */
    void setEnergyMonitor(obs::EnergyMonitor *monitor);

  private:
    /** Worker threads serve() will actually use (clamp + fallback). */
    unsigned effectiveThreads() const;

    /**
     * The parallel window loop: per-device worker threads between
     * arrival-time barriers. @p admit_up_to runs on the fleet thread
     * at each barrier (routing + admission). Returns the final
     * barrier time.
     */
    Tick serveParallel(const std::vector<Request> &trace,
                       unsigned threads, Tick start,
                       std::size_t &next_arrival,
                       const std::function<void(Tick)> &admit_up_to);

    /** Assemble the per-device and fleet-aggregate reports. */
    FleetReport
    buildReport(double offered,
                const std::vector<std::vector<Request>> &routed);

    /** (Re)build the fabric and hand it to the group schedulers. */
    void rebuildFabric();

    FleetConfig config_;
    /** Physical devices per scheduler core (1 = data parallel). */
    unsigned groupSize_ = 1;
    std::vector<std::unique_ptr<Scheduler>> devices_;
    std::vector<Scheduler *> view_;
    std::unique_ptr<fabric::Fabric> fabric_;
    std::unique_ptr<Router> router_;
    PlanCache sharedPlans_;
    /** Guards sharedPlans_ while workers compile concurrently. */
    std::mutex planMutex_;
    obs::SloMonitor *sloMon_ = nullptr;
    obs::RequestTracer *reqTracer_ = nullptr;
    obs::EnergyMonitor *energyMon_ = nullptr;
};

/**
 * Serialize a fleet report: fleet config, the aggregate report, and
 * one per-device section (routing counts, placements, weight-load
 * totals, the device's own report).
 * @param per_request include per-request logs in every section.
 */
void writeJson(const FleetReport &report, std::ostream &os,
               bool per_request = false);

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_FLEET_HH
