/**
 * @file
 * Request-level serving primitives.
 *
 * The serving runtime drives the simulated i20 like an inference
 * server: timestamped requests arrive (model, deadline), wait in
 * per-model queues, get batched onto processing-group leases, and
 * complete with a measurable queue-wait / execution breakdown. This
 * header defines the request record and the arrival-ordered queue;
 * arrival generators live in serve/arrival.hh and the dynamic
 * batcher in serve/scheduler.hh.
 */

#ifndef DTU_SERVE_REQUEST_HH
#define DTU_SERVE_REQUEST_HH

#include <cstdint>
#include <deque>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{
namespace serve
{

/** When does a generation sequence stop emitting tokens? */
enum class StopPolicy
{
    /** Emit exactly maxNewTokens tokens. */
    MaxTokens,
    /**
     * Emit a deterministic pseudo-random count in [1, maxNewTokens],
     * hashed from the request id — the simulator's stand-in for an
     * EOS token, giving ragged sequence lengths without RNG state.
     */
    EosHash,
};

/**
 * Autoregressive generation parameters. maxNewTokens == 0 is the
 * degenerate one-shot case: the request is a single feed-forward
 * pass (classic zoo inference) and promptLen/stop are ignored.
 */
struct GenerationParams
{
    /** Prompt tokens ingested by the prefill pass. */
    unsigned promptLen = 0;
    /** Upper bound on generated tokens; 0 = one-shot request. */
    unsigned maxNewTokens = 0;
    StopPolicy stop = StopPolicy::MaxTokens;
};

/**
 * Everything a client specifies when submitting a request — the one
 * submission shape both serving facades accept (api/server.hh).
 * One-shot and generation traffic flow through the same struct;
 * gen.maxNewTokens distinguishes them.
 */
struct RequestSpec
{
    /** Zoo model name ("resnet50", "gpt_tiny", ...). */
    std::string model;
    /** Optional client/tenant tag, carried through to the outcome. */
    std::string tenant;
    /** Simulated arrival time. */
    Tick arrival = 0;
    /** Absolute completion deadline; 0 means no SLO. */
    Tick deadline = 0;
    GenerationParams gen;
};

/** One inference request as tracked by the scheduler. */
struct Request
{
    /** Unique id; finalizeTrace() assigns them in arrival order. */
    std::uint64_t id = 0;
    /** Zoo model name ("resnet50", "bert_large", ...). */
    std::string model;
    /** Simulated arrival time. */
    Tick arrival = 0;
    /** Absolute completion deadline; 0 means no SLO. */
    Tick deadline = 0;
    /** Optional client/tenant tag (informational). */
    std::string tenant;
    GenerationParams gen;

    /** True for autoregressive requests (prefill + decode loop). */
    bool generative() const { return gen.maxNewTokens > 0; }

    /**
     * Tokens this request will actually emit (>= 1), applying the
     * stop policy. Pure function of (id, gen), so admission can
     * reserve exact KV room up front.
     */
    unsigned targetNewTokens() const;

    /** The spec this request was made from (id stripped). */
    RequestSpec spec() const
    {
        return RequestSpec{model, tenant, arrival, deadline, gen};
    }
};

/** Build a Request from @p spec with @p id. */
Request makeRequest(const RequestSpec &spec, std::uint64_t id);

/** Why the scheduler dropped a request instead of completing it. */
enum class DropReason
{
    /** Admission control bounced the arrival (queue over limit). */
    Rejected,
    /** Load shedding: the deadline expired while still queued. */
    Shed,
    /** The per-request queue timeout elapsed before dispatch. */
    TimedOut,
    /** The batch execution was poisoned and retries ran out. */
    Failed,
};

/** Stable lowercase name for JSON/logs. */
const char *dropReasonName(DropReason reason);

/** How a request left the system. */
enum class TerminalState
{
    /** Finished successfully (in or out of deadline). */
    Completed,
    /** Load-shed before execution (admission reject or deadline
     *  shed — see RequestOutcome::dropReason for which). */
    Shed,
    /** The per-request queue timeout expired before dispatch. */
    Expired,
    /** Lost to a hardware fault (poisoned batch, retries spent). */
    Faulted,
};

/** Stable lowercase name for JSON/logs. */
const char *terminalStateName(TerminalState state);

/** The coarse terminal state a drop reason maps to. */
TerminalState terminalStateFor(DropReason reason);

/**
 * The uniform terminal record of one request — completion and drop,
 * one-shot and generation, single device and fleet all produce this
 * one shape. Consumed by the ServingReport, the SLO monitor, the
 * request tracer, and the flight recorder (which used to keep three
 * parallel bookkeeping structs).
 */
struct RequestOutcome
{
    Request request;
    TerminalState state = TerminalState::Completed;
    /** Fine-grained drop cause; meaningful when state != Completed. */
    DropReason dropReason = DropReason::Shed;
    /** Fleet device the request terminated on; -1 unknown. */
    int device = -1;

    //
    // Per-phase timestamps. A drop before dispatch leaves
    // dispatched == firstToken == 0; a one-shot completion has
    // firstToken == completed.
    //
    /** When the batch/prefill containing this request launched. */
    Tick dispatched = 0;
    /** Prefill completion — the time-to-first-token reference. */
    Tick firstToken = 0;
    /** Terminal time: completion, or the drop decision. */
    Tick completed = 0;

    /** Size of the dynamic batch the request dispatched in. */
    unsigned batchSize = 0;
    /** Poisoned-batch re-executions its batch paid. */
    unsigned retries = 0;
    /** Tokens emitted (first token included); 0 for one-shot. */
    unsigned tokensEmitted = 0;

    bool completedOk() const
    {
        return state == TerminalState::Completed;
    }
    /** Reached execution (drops before dispatch never did). */
    bool executed() const { return dispatched != 0 || completedOk(); }
    Tick latency() const { return completed - request.arrival; }
    Tick queueWait() const { return dispatched - request.arrival; }
    Tick execTime() const { return completed - dispatched; }
    /** Arrival -> first token (== latency for one-shot requests). */
    Tick ttft() const { return firstToken - request.arrival; }
    /** First token -> completion (the decode phase span). */
    Tick decodeSpan() const { return completed - firstToken; }
    bool missedDeadline() const
    {
        return completedOk() && request.deadline != 0 &&
               completed > request.deadline;
    }
    /** "completed" or the fine-grained drop reason. */
    const char *outcomeName() const
    {
        return completedOk() ? "completed" : dropReasonName(dropReason);
    }
};

/**
 * Arrived-but-not-yet-dispatched requests, FIFO per model. Iteration
 * over models is alphabetical, so scheduling decisions that walk the
 * queue are deterministic.
 */
class RequestQueue
{
  public:
    /** Enqueue an arrived request at its model's FIFO tail. */
    void
    push(const Request &request)
    {
        queues_[request.model].push_back(request);
        ++size_;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Queued requests for one model. */
    std::size_t
    sizeFor(const std::string &model) const
    {
        auto it = queues_.find(model);
        return it == queues_.end() ? 0 : it->second.size();
    }

    /** Arrival time of the oldest queued request for @p model. */
    Tick
    oldestArrival(const std::string &model) const
    {
        auto it = queues_.find(model);
        return it == queues_.end() || it->second.empty()
                   ? 0
                   : it->second.front().arrival;
    }

    /** The oldest queued request for @p model; nullptr when empty. */
    const Request *
    front(const std::string &model) const
    {
        auto it = queues_.find(model);
        return it == queues_.end() || it->second.empty()
                   ? nullptr
                   : &it->second.front();
    }

    /**
     * Re-enqueue @p requests at @p model's FIFO head, preserving
     * their relative order — the launch pass backed out of admitting
     * them (e.g. they did not fit the KV budget this pass).
     */
    void
    pushFront(const std::string &model, std::vector<Request> requests)
    {
        auto &fifo = queues_[model];
        fifo.insert(fifo.begin(),
                    std::make_move_iterator(requests.begin()),
                    std::make_move_iterator(requests.end()));
        size_ += requests.size();
    }

    /** Models with at least one queued request, alphabetical. */
    std::vector<std::string>
    models() const
    {
        std::vector<std::string> names;
        for (const auto &[model, fifo] : queues_) {
            if (!fifo.empty())
                names.push_back(model);
        }
        return names;
    }

    /**
     * Remove every queued request matching @p pred, preserving FIFO
     * order within each model. The removed requests are returned in
     * deterministic order: alphabetical by model, FIFO within.
     */
    template <typename Pred>
    std::vector<Request>
    removeIf(Pred pred)
    {
        std::vector<Request> removed;
        for (auto &[model, fifo] : queues_) {
            std::deque<Request> kept;
            for (Request &r : fifo) {
                if (pred(r))
                    removed.push_back(std::move(r));
                else
                    kept.push_back(std::move(r));
            }
            fifo = std::move(kept);
        }
        size_ -= removed.size();
        return removed;
    }

    /** Visit every queued request, alphabetical model then FIFO. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &[model, fifo] : queues_) {
            for (const Request &r : fifo)
                fn(r);
        }
    }

    /** Dequeue up to @p max_batch oldest requests of @p model. */
    std::vector<Request>
    popBatch(const std::string &model, unsigned max_batch)
    {
        std::vector<Request> batch;
        auto it = queues_.find(model);
        if (it == queues_.end())
            return batch;
        while (!it->second.empty() && batch.size() < max_batch) {
            batch.push_back(it->second.front());
            it->second.pop_front();
            --size_;
        }
        return batch;
    }

  private:
    std::map<std::string, std::deque<Request>> queues_;
    std::size_t size_ = 0;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_REQUEST_HH
