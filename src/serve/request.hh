/**
 * @file
 * Request-level serving primitives.
 *
 * The serving runtime drives the simulated i20 like an inference
 * server: timestamped requests arrive (model, deadline), wait in
 * per-model queues, get batched onto processing-group leases, and
 * complete with a measurable queue-wait / execution breakdown. This
 * header defines the request record and the arrival-ordered queue;
 * arrival generators live in serve/arrival.hh and the dynamic
 * batcher in serve/scheduler.hh.
 */

#ifndef DTU_SERVE_REQUEST_HH
#define DTU_SERVE_REQUEST_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{
namespace serve
{

/** One inference request as submitted by a client. */
struct Request
{
    /** Unique id; finalizeTrace() assigns them in arrival order. */
    std::uint64_t id = 0;
    /** Zoo model name ("resnet50", "bert_large", ...). */
    std::string model;
    /** Simulated arrival time. */
    Tick arrival = 0;
    /** Absolute completion deadline; 0 means no SLO. */
    Tick deadline = 0;
};

/** Why the scheduler dropped a request instead of completing it. */
enum class DropReason
{
    /** Admission control bounced the arrival (queue over limit). */
    Rejected,
    /** Load shedding: the deadline expired while still queued. */
    Shed,
    /** The per-request queue timeout elapsed before dispatch. */
    TimedOut,
    /** The batch execution was poisoned and retries ran out. */
    Failed,
};

/** Stable lowercase name for JSON/logs. */
const char *dropReasonName(DropReason reason);

/** A request the scheduler gave up on. */
struct DroppedRequest
{
    Request request;
    /** Simulated time of the drop decision. */
    Tick at = 0;
    DropReason reason = DropReason::Shed;
};

/** A request after the scheduler finished it. */
struct CompletedRequest
{
    Request request;
    /** When the batch containing this request launched. */
    Tick dispatched = 0;
    /** When the batch finished (request completion time). */
    Tick completed = 0;
    /** Size of the dynamic batch the request rode in. */
    unsigned batchSize = 0;

    Tick latency() const { return completed - request.arrival; }
    Tick queueWait() const { return dispatched - request.arrival; }
    Tick execTime() const { return completed - dispatched; }
    bool missedDeadline() const
    {
        return request.deadline != 0 && completed > request.deadline;
    }
};

/**
 * Arrived-but-not-yet-dispatched requests, FIFO per model. Iteration
 * over models is alphabetical, so scheduling decisions that walk the
 * queue are deterministic.
 */
class RequestQueue
{
  public:
    /** Enqueue an arrived request at its model's FIFO tail. */
    void
    push(const Request &request)
    {
        queues_[request.model].push_back(request);
        ++size_;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Queued requests for one model. */
    std::size_t
    sizeFor(const std::string &model) const
    {
        auto it = queues_.find(model);
        return it == queues_.end() ? 0 : it->second.size();
    }

    /** Arrival time of the oldest queued request for @p model. */
    Tick
    oldestArrival(const std::string &model) const
    {
        auto it = queues_.find(model);
        return it == queues_.end() || it->second.empty()
                   ? 0
                   : it->second.front().arrival;
    }

    /** Models with at least one queued request, alphabetical. */
    std::vector<std::string>
    models() const
    {
        std::vector<std::string> names;
        for (const auto &[model, fifo] : queues_) {
            if (!fifo.empty())
                names.push_back(model);
        }
        return names;
    }

    /**
     * Remove every queued request matching @p pred, preserving FIFO
     * order within each model. The removed requests are returned in
     * deterministic order: alphabetical by model, FIFO within.
     */
    template <typename Pred>
    std::vector<Request>
    removeIf(Pred pred)
    {
        std::vector<Request> removed;
        for (auto &[model, fifo] : queues_) {
            std::deque<Request> kept;
            for (Request &r : fifo) {
                if (pred(r))
                    removed.push_back(std::move(r));
                else
                    kept.push_back(std::move(r));
            }
            fifo = std::move(kept);
        }
        size_ -= removed.size();
        return removed;
    }

    /** Visit every queued request, alphabetical model then FIFO. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &[model, fifo] : queues_) {
            for (const Request &r : fifo)
                fn(r);
        }
    }

    /** Dequeue up to @p max_batch oldest requests of @p model. */
    std::vector<Request>
    popBatch(const std::string &model, unsigned max_batch)
    {
        std::vector<Request> batch;
        auto it = queues_.find(model);
        if (it == queues_.end())
            return batch;
        while (!it->second.empty() && batch.size() < max_batch) {
            batch.push_back(it->second.front());
            it->second.pop_front();
            --size_;
        }
        return batch;
    }

  private:
    std::map<std::string, std::deque<Request>> queues_;
    std::size_t size_ = 0;
};

} // namespace serve
} // namespace dtu

#endif // DTU_SERVE_REQUEST_HH
