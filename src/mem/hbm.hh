/**
 * @file
 * The L3 HBM model.
 *
 * DTU 1.0 carries two 8 GB HBM2 stacks at 512 GB/s aggregate; DTU 2.0
 * replaces them with HBM2E for 819 GB/s (Tables I/IV, Section IV).
 * The model is a set of pseudo-channels, each a BandwidthResource;
 * requests are interleaved across channels by address, so a single
 * requester can saturate at most the per-channel rate times the
 * number of channels it touches, while many concurrent requesters
 * share the aggregate fairly.
 */

#ifndef DTU_MEM_HBM_HH
#define DTU_MEM_HBM_HH

#include <memory>
#include <vector>

#include "mem/bandwidth.hh"
#include "mem/mem_types.hh"
#include "sim/sim_object.hh"

namespace dtu
{

class FaultInjector;

/** A multi-channel high-bandwidth memory device. */
class Hbm : public SimObject
{
  public:
    /**
     * @param capacity total bytes (16 GiB on both DTU generations).
     * @param total_bytes_per_second aggregate bandwidth.
     * @param channels number of pseudo-channels.
     * @param access_latency fixed DRAM access latency per request.
     */
    Hbm(std::string name, EventQueue &queue, StatRegistry *stats,
        std::uint64_t capacity, double total_bytes_per_second,
        unsigned channels, Tick access_latency);

    std::uint64_t capacity() const { return capacity_; }
    double totalBandwidth() const { return totalBandwidth_; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /**
     * Stream @p bytes to/from HBM starting at address @p addr, no
     * earlier than tick @p at. Large requests are striped across all
     * channels; the completion time is when the slowest stripe lands.
     */
    Tick accessAt(Tick at, Addr addr, std::uint64_t bytes);

    /** Convenience: accessAt(now, ...). */
    Tick access(Addr addr, std::uint64_t bytes);

    /** Aggregate bytes moved. */
    double totalBytes() const;

    /** Mean utilization across channels. */
    double utilization() const;

    /**
     * Attach (or detach, with nullptr) the chip fault injector: every
     * access then draws its ECC outcome, and correctable errors
     * lengthen the access by the scrub stall.
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

  private:
    std::uint64_t capacity_;
    double totalBandwidth_;
    std::uint64_t stripeBytes_ = 256;
    std::vector<std::unique_ptr<BandwidthResource>> channels_;
    FaultInjector *faults_ = nullptr;
};

} // namespace dtu

#endif // DTU_MEM_HBM_HH
