#include "mem/allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtu
{

ScratchpadAllocator::ScratchpadAllocator(std::string name, MemLevel level,
                                         std::uint64_t capacity,
                                         unsigned banks)
    : name_(std::move(name)), level_(level), capacity_(capacity),
      bankCapacity_(banks ? capacity / banks : 0), bankUsed_(banks, 0)
{
    fatalIf(banks == 0, "allocator '", name_, "' needs at least one bank");
}

std::optional<Allocation>
ScratchpadAllocator::allocate(std::uint64_t bytes, unsigned preferred_bank)
{
    fatalIf(preferred_bank >= bankUsed_.size(), "bank ", preferred_bank,
            " out of range on '", name_, "'");
    unsigned bank = preferred_bank;
    if (bankUsed_[bank] + bytes > bankCapacity_) {
        // Preferred bank is full: fall back to the emptiest bank.
        unsigned best = bank;
        for (unsigned i = 0; i < bankUsed_.size(); ++i) {
            if (bankUsed_[i] < bankUsed_[best])
                best = i;
        }
        if (bankUsed_[best] + bytes > bankCapacity_)
            return std::nullopt;
        bank = best;
        ++remoteAllocations_;
    }
    Allocation alloc;
    alloc.base = static_cast<Addr>(bank) * bankCapacity_ + bankUsed_[bank];
    alloc.bytes = bytes;
    alloc.port = bank;
    alloc.level = level_;
    bankUsed_[bank] += bytes;
    return alloc;
}

void
ScratchpadAllocator::releaseAll()
{
    std::fill(bankUsed_.begin(), bankUsed_.end(), 0);
}

std::uint64_t
ScratchpadAllocator::bytesInUse() const
{
    std::uint64_t used = 0;
    for (auto b : bankUsed_)
        used += b;
    return used;
}

PagePool::PagePool(std::string name, std::uint64_t page_bytes,
                   std::uint64_t pages, MemLevel level, Addr base)
    : name_(std::move(name)), level_(level), base_(base),
      pageBytes_(page_bytes)
{
    fatalIf(pageBytes_ == 0, "page pool '", name_,
            "' needs a nonzero page size");
    fatalIf(pages == 0, "page pool '", name_,
            "' needs at least one page");
    allocated_.assign(pages, false);
    // Seed the LIFO free list so the first allocations come out in
    // ascending page order (freeList_.back() pops first).
    freeList_.reserve(pages);
    for (std::uint64_t p = pages; p-- > 0;)
        freeList_.push_back(p);
}

std::optional<std::uint64_t>
PagePool::allocatePage()
{
    if (freeList_.empty())
        return std::nullopt;
    std::uint64_t page = freeList_.back();
    freeList_.pop_back();
    allocated_[page] = true;
    ++inUse_;
    ++totalAllocated_;
    peakInUse_ = std::max(peakInUse_, inUse_);
    return page;
}

void
PagePool::freePage(std::uint64_t page)
{
    fatalIf(page >= allocated_.size(), "page pool '", name_,
            "': freeing page ", page, " of ", allocated_.size());
    fatalIf(!allocated_[page], "page pool '", name_,
            "': double free of page ", page);
    allocated_[page] = false;
    freeList_.push_back(page);
    --inUse_;
    ++totalFreed_;
}

double
PagePool::occupancy() const
{
    return allocated_.empty()
               ? 0.0
               : static_cast<double>(inUse_) /
                     static_cast<double>(allocated_.size());
}

} // namespace dtu
