#include "mem/allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtu
{

ScratchpadAllocator::ScratchpadAllocator(std::string name, MemLevel level,
                                         std::uint64_t capacity,
                                         unsigned banks)
    : name_(std::move(name)), level_(level), capacity_(capacity),
      bankCapacity_(banks ? capacity / banks : 0), bankUsed_(banks, 0)
{
    fatalIf(banks == 0, "allocator '", name_, "' needs at least one bank");
}

std::optional<Allocation>
ScratchpadAllocator::allocate(std::uint64_t bytes, unsigned preferred_bank)
{
    fatalIf(preferred_bank >= bankUsed_.size(), "bank ", preferred_bank,
            " out of range on '", name_, "'");
    unsigned bank = preferred_bank;
    if (bankUsed_[bank] + bytes > bankCapacity_) {
        // Preferred bank is full: fall back to the emptiest bank.
        unsigned best = bank;
        for (unsigned i = 0; i < bankUsed_.size(); ++i) {
            if (bankUsed_[i] < bankUsed_[best])
                best = i;
        }
        if (bankUsed_[best] + bytes > bankCapacity_)
            return std::nullopt;
        bank = best;
        ++remoteAllocations_;
    }
    Allocation alloc;
    alloc.base = static_cast<Addr>(bank) * bankCapacity_ + bankUsed_[bank];
    alloc.bytes = bytes;
    alloc.port = bank;
    alloc.level = level_;
    bankUsed_[bank] += bytes;
    return alloc;
}

void
ScratchpadAllocator::releaseAll()
{
    std::fill(bankUsed_.begin(), bankUsed_.end(), 0);
}

std::uint64_t
ScratchpadAllocator::bytesInUse() const
{
    std::uint64_t used = 0;
    for (auto b : bankUsed_)
        used += b;
    return used;
}

} // namespace dtu
