#include "mem/hbm.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace dtu
{

Hbm::Hbm(std::string name, EventQueue &queue, StatRegistry *stats,
         std::uint64_t capacity, double total_bytes_per_second,
         unsigned channels, Tick access_latency)
    : SimObject(std::move(name), queue, stats), capacity_(capacity),
      totalBandwidth_(total_bytes_per_second)
{
    fatalIf(channels == 0, "HBM '", this->name(),
            "' needs at least one channel");
    double per_channel = total_bytes_per_second / channels;
    channels_.reserve(channels);
    for (unsigned i = 0; i < channels; ++i) {
        channels_.push_back(std::make_unique<BandwidthResource>(
            this->name() + ".ch" + std::to_string(i), queue, stats,
            per_channel, access_latency));
    }
}

Tick
Hbm::accessAt(Tick at, Addr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return at;
    // Stripe the request across channels in stripeBytes_ units,
    // starting at the channel owning the base address. For requests
    // much larger than one stripe this aggregates the full device
    // bandwidth; small requests stay on one channel.
    unsigned nch = numChannels();
    unsigned first = static_cast<unsigned>((addr / stripeBytes_) % nch);
    std::uint64_t stripes = (bytes + stripeBytes_ - 1) / stripeBytes_;
    std::uint64_t per_channel_stripes = stripes / nch;
    std::uint64_t extra = stripes % nch;
    Tick done = at;
    for (unsigned i = 0; i < std::min<std::uint64_t>(nch, stripes); ++i) {
        unsigned ch = (first + i) % nch;
        std::uint64_t ch_stripes = per_channel_stripes + (i < extra ? 1 : 0);
        if (ch_stripes == 0)
            continue;
        std::uint64_t ch_bytes =
            std::min(ch_stripes * stripeBytes_, bytes);
        done = std::max(done, channels_[ch]->transferAt(at, ch_bytes));
    }
    if (faults_)
        done += faults_->eccAccess(done, name(), bytes);
    return done;
}

Tick
Hbm::access(Addr addr, std::uint64_t bytes)
{
    return accessAt(curTick(), addr, bytes);
}

double
Hbm::totalBytes() const
{
    double total = 0.0;
    for (const auto &ch : channels_)
        total += ch->totalBytes();
    return total;
}

double
Hbm::utilization() const
{
    double total = 0.0;
    for (const auto &ch : channels_)
        total += ch->utilization();
    return total / numChannels();
}

} // namespace dtu
