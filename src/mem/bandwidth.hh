/**
 * @file
 * A serialized bandwidth resource.
 *
 * Memory ports, HBM channels, the PCIe link, and DMA data paths are
 * all modelled as BandwidthResources: a pipe with a fixed byte rate
 * that serves requests in arrival order. A request arriving while the
 * pipe is busy queues behind the in-flight bytes, which is how
 * contention (e.g. two cores sharing an L2 port, or three DMA engines
 * hitting HBM) manifests as latency.
 */

#ifndef DTU_MEM_BANDWIDTH_HH
#define DTU_MEM_BANDWIDTH_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dtu
{

/**
 * A capacity-ledger pipe with fixed bandwidth and per-access latency.
 *
 * Time is divided into fixed buckets; each bucket holds rate x
 * bucket-width bytes of capacity. A request starting at tick t
 * consumes capacity from bucket(t) forward and completes when its
 * last byte is scheduled. Requests submitted out of simulation order
 * (sequential co-simulation of concurrent tenants) therefore share
 * capacity fairly: a later-submitted request for an earlier tick
 * uses whatever capacity was still idle then, instead of queueing
 * behind traffic that already finished.
 */
class BandwidthResource : public SimObject
{
  public:
    /**
     * @param name hierarchical name.
     * @param queue event queue (provides current time).
     * @param stats stat registry (may be null).
     * @param bytes_per_second sustained bandwidth.
     * @param access_latency fixed pipeline latency added to every
     *        request (ticks).
     */
    BandwidthResource(std::string name, EventQueue &queue,
                      StatRegistry *stats, double bytes_per_second,
                      Tick access_latency = 0);

    /**
     * Occupy the pipe for @p bytes starting no earlier than now.
     * @return the tick at which the last byte has been delivered.
     */
    Tick transfer(std::uint64_t bytes);

    /**
     * Like transfer() but the request enters the queue at @p at
     * (>= now) rather than at the current tick — used when an engine
     * computes a future phase without advancing global time.
     */
    Tick transferAt(Tick at, std::uint64_t bytes);

    /** Tick at which the pipe next becomes idle. */
    Tick freeAt() const { return freeAt_; }

    /** Configured bandwidth in bytes/second. */
    double bytesPerSecond() const { return bytesPerSecond_; }

    /** Change the bandwidth (used by DVFS on core-side ports). */
    void setBytesPerSecond(double bytes_per_second);

    /** Pure service time for @p bytes with no queueing (ticks). */
    Tick serviceTime(std::uint64_t bytes) const;

    /** Total bytes moved through this resource. */
    double totalBytes() const { return bytesMoved_.value(); }

    /** Total ticks requests spent waiting behind earlier traffic. */
    double totalWait() const { return waitTicks_.value(); }

    /** Busy time as a fraction of [0, now]. */
    double utilization() const;

  private:
    /** Capacity of one ledger bucket in bytes. */
    double bucketBytes() const;

    /** Buckets per ledger page. */
    static constexpr std::uint64_t kPageBuckets = 4096;

    /** One contiguous run of bucket occupancies, zero-initialized. */
    using Page = std::array<double, kPageBuckets>;

    /** The "bytes already scheduled" slot for bucket @p idx. */
    double &usedAt(std::uint64_t idx);

    double bytesPerSecond_;
    Tick accessLatency_;
    /** Ledger bucket width. */
    Tick bucketTicks_ = 50'000; // 50 ns
    /**
     * Bytes already scheduled per bucket index, stored as paged flat
     * arrays: transfers walk consecutive buckets, so nearly every
     * lookup hits the cached last page instead of hashing (the
     * per-bucket unordered_map this replaces dominated serving-run
     * profiles). Values and arithmetic are unchanged — results stay
     * bit-identical.
     */
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    /** Last page touched (page number + slots), the fast path. */
    std::uint64_t cachedPageNo_ = ~std::uint64_t{0};
    Page *cachedPage_ = nullptr;
    Tick freeAt_ = 0;
    double busyBytes_ = 0.0;

    Stat bytesMoved_;
    Stat transfers_;
    Stat waitTicks_;
};

} // namespace dtu

#endif // DTU_MEM_BANDWIDTH_HH
