#include "mem/sram.hh"

#include "sim/logging.hh"

namespace dtu
{

Sram::Sram(std::string name, EventQueue &queue, StatRegistry *stats,
           MemLevel level, std::uint64_t capacity, unsigned ports,
           double port_bytes_per_second, Tick access_latency,
           Tick remote_penalty, double dma_port_bytes_per_second)
    : SimObject(std::move(name), queue, stats), level_(level),
      capacity_(capacity), remotePenalty_(remote_penalty)
{
    fatalIf(ports == 0, "SRAM '", this->name(), "' needs at least one port");
    ports_.reserve(ports);
    for (unsigned i = 0; i < ports; ++i) {
        ports_.push_back(std::make_unique<BandwidthResource>(
            this->name() + ".port" + std::to_string(i), queue, stats,
            port_bytes_per_second, access_latency));
    }
    if (dma_port_bytes_per_second > 0.0) {
        dmaPort_ = std::make_unique<BandwidthResource>(
            this->name() + ".dma_port", queue, stats,
            dma_port_bytes_per_second, access_latency);
    }
    if (stats) {
        remoteAccesses_.init(*stats, this->name() + ".remote_accesses",
                             "accesses through a non-affine port");
        localAccesses_.init(*stats, this->name() + ".local_accesses",
                            "accesses through the affine port");
    }
}

Tick
Sram::access(unsigned port, unsigned affine_port, std::uint64_t bytes)
{
    return accessAt(curTick(), port, affine_port, bytes);
}

Tick
Sram::accessAt(Tick at, unsigned port, unsigned affine_port,
               std::uint64_t bytes)
{
    panicIf(port >= ports_.size(), "port ", port, " out of range on '",
            name(), "'");
    bool remote = port != affine_port;
    if (remote)
        ++remoteAccesses_;
    else
        ++localAccesses_;
    Tick done = ports_[port]->transferAt(at, bytes);
    return remote ? done + remotePenalty_ : done;
}

Tick
Sram::dmaAccessAt(Tick at, std::uint64_t bytes)
{
    panicIf(!dmaPort_, "SRAM '", name(), "' has no DMA fill port");
    return dmaPort_->transferAt(at, bytes);
}

unsigned
Sram::leastLoadedPort() const
{
    unsigned best = 0;
    for (unsigned i = 1; i < ports_.size(); ++i) {
        if (ports_[i]->freeAt() < ports_[best]->freeAt())
            best = i;
    }
    return best;
}

double
Sram::totalBytes() const
{
    double total = 0.0;
    for (const auto &port : ports_)
        total += port->totalBytes();
    return total;
}

} // namespace dtu
