/**
 * @file
 * Affinity-aware scratchpad memory allocation.
 *
 * TopsEngine "allocates shared L2 memory wisely to take advantage of
 * the memory affinity" (Section V-B): each of the 4 L2 ports in a
 * processing group is bonded to one compute core, and data placed in
 * a port's bank is cheapest for that core. The allocator hands out
 * banked regions, records which port each allocation is affine to,
 * and enforces capacity.
 */

#ifndef DTU_MEM_ALLOCATOR_HH
#define DTU_MEM_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_types.hh"

namespace dtu
{

/** One allocation handed out by a ScratchpadAllocator. */
struct Allocation
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** Port (bank) the allocation lives in; the affine requester. */
    unsigned port = 0;
    MemLevel level = MemLevel::L2;
};

/**
 * A banked bump allocator for one scratchpad (an L1 buffer or an L2
 * slice). Capacity is split evenly across banks (ports).
 */
class ScratchpadAllocator
{
  public:
    /**
     * @param level which hierarchy level this scratchpad is.
     * @param capacity total bytes.
     * @param banks number of banks (== ports for L2; 1 for L1).
     */
    ScratchpadAllocator(std::string name, MemLevel level,
                        std::uint64_t capacity, unsigned banks);

    /**
     * Allocate @p bytes with affinity to @p preferred_bank. Falls
     * back to the bank with the most free space when the preferred
     * bank is full (a "remote" allocation the requester pays the
     * crossbar penalty for).
     * @return the allocation, or nullopt when no bank can hold it.
     */
    std::optional<Allocation> allocate(std::uint64_t bytes,
                                       unsigned preferred_bank = 0);

    /** Release everything (per-operator lifetimes are phase-scoped). */
    void releaseAll();

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t bytesInUse() const;
    std::uint64_t bytesFree() const { return capacity_ - bytesInUse(); }
    unsigned numBanks() const
    {
        return static_cast<unsigned>(bankUsed_.size());
    }
    /** Bytes used within one bank. */
    std::uint64_t bankUsed(unsigned bank) const { return bankUsed_.at(bank); }
    /** Allocations that could not use their preferred bank. */
    std::uint64_t remoteAllocations() const { return remoteAllocations_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    MemLevel level_;
    std::uint64_t capacity_;
    std::uint64_t bankCapacity_;
    std::vector<std::uint64_t> bankUsed_;
    std::uint64_t remoteAllocations_ = 0;
};

/**
 * A fixed-size-page pool over a contiguous region — the substrate
 * for HBM-resident tensors with paged block allocation (the serving
 * KV-cache). Unlike the phase-scoped ScratchpadAllocator bump
 * allocator, pages free individually in any order: a LIFO free list
 * keeps allocate/free O(1) and deterministic, fragmentation is
 * structurally impossible, and a double free is a fatal() (it would
 * silently alias two sequences' cache blocks).
 */
class PagePool
{
  public:
    PagePool(std::string name, std::uint64_t page_bytes,
             std::uint64_t pages, MemLevel level = MemLevel::L3,
             Addr base = 0);

    /** Allocate one page; nullopt when the pool is exhausted. */
    std::optional<std::uint64_t> allocatePage();

    /** Return @p page to the pool; fatal() on double free. */
    void freePage(std::uint64_t page);

    /** First byte of @p page. */
    Addr pageAddress(std::uint64_t page) const
    {
        return base_ + page * pageBytes_;
    }

    const std::string &name() const { return name_; }
    MemLevel level() const { return level_; }
    std::uint64_t pageBytes() const { return pageBytes_; }
    std::uint64_t capacityPages() const { return allocated_.size(); }
    std::uint64_t capacityBytes() const
    {
        return capacityPages() * pageBytes_;
    }
    std::uint64_t pagesInUse() const { return inUse_; }
    std::uint64_t pagesFree() const { return capacityPages() - inUse_; }
    std::uint64_t bytesInUse() const { return inUse_ * pageBytes_; }
    /** pagesInUse / capacityPages (0 for an empty pool). */
    double occupancy() const;

    /** High-water mark of pagesInUse over the pool's lifetime. */
    std::uint64_t peakPagesInUse() const { return peakInUse_; }
    /** Lifetime allocate / free counts (leak check: equal when idle). */
    std::uint64_t totalAllocated() const { return totalAllocated_; }
    std::uint64_t totalFreed() const { return totalFreed_; }

  private:
    std::string name_;
    MemLevel level_;
    Addr base_;
    std::uint64_t pageBytes_;
    /** Per-page in-use flag (the double-free check). */
    std::vector<bool> allocated_;
    /** LIFO free list: deterministic reuse order. */
    std::vector<std::uint64_t> freeList_;
    std::uint64_t inUse_ = 0;
    std::uint64_t peakInUse_ = 0;
    std::uint64_t totalAllocated_ = 0;
    std::uint64_t totalFreed_ = 0;
};

} // namespace dtu

#endif // DTU_MEM_ALLOCATOR_HH
