/**
 * @file
 * Affinity-aware scratchpad memory allocation.
 *
 * TopsEngine "allocates shared L2 memory wisely to take advantage of
 * the memory affinity" (Section V-B): each of the 4 L2 ports in a
 * processing group is bonded to one compute core, and data placed in
 * a port's bank is cheapest for that core. The allocator hands out
 * banked regions, records which port each allocation is affine to,
 * and enforces capacity.
 */

#ifndef DTU_MEM_ALLOCATOR_HH
#define DTU_MEM_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_types.hh"

namespace dtu
{

/** One allocation handed out by a ScratchpadAllocator. */
struct Allocation
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** Port (bank) the allocation lives in; the affine requester. */
    unsigned port = 0;
    MemLevel level = MemLevel::L2;
};

/**
 * A banked bump allocator for one scratchpad (an L1 buffer or an L2
 * slice). Capacity is split evenly across banks (ports).
 */
class ScratchpadAllocator
{
  public:
    /**
     * @param level which hierarchy level this scratchpad is.
     * @param capacity total bytes.
     * @param banks number of banks (== ports for L2; 1 for L1).
     */
    ScratchpadAllocator(std::string name, MemLevel level,
                        std::uint64_t capacity, unsigned banks);

    /**
     * Allocate @p bytes with affinity to @p preferred_bank. Falls
     * back to the bank with the most free space when the preferred
     * bank is full (a "remote" allocation the requester pays the
     * crossbar penalty for).
     * @return the allocation, or nullopt when no bank can hold it.
     */
    std::optional<Allocation> allocate(std::uint64_t bytes,
                                       unsigned preferred_bank = 0);

    /** Release everything (per-operator lifetimes are phase-scoped). */
    void releaseAll();

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t bytesInUse() const;
    std::uint64_t bytesFree() const { return capacity_ - bytesInUse(); }
    unsigned numBanks() const
    {
        return static_cast<unsigned>(bankUsed_.size());
    }
    /** Bytes used within one bank. */
    std::uint64_t bankUsed(unsigned bank) const { return bankUsed_.at(bank); }
    /** Allocations that could not use their preferred bank. */
    std::uint64_t remoteAllocations() const { return remoteAllocations_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    MemLevel level_;
    std::uint64_t capacity_;
    std::uint64_t bankCapacity_;
    std::vector<std::uint64_t> bankUsed_;
    std::uint64_t remoteAllocations_ = 0;
};

} // namespace dtu

#endif // DTU_MEM_ALLOCATOR_HH
