/**
 * @file
 * On-chip SRAM models: the per-core L1 local data buffer and the
 * per-processing-group L2 shared memory slice.
 *
 * DTU 2.0's L2 slice has 4 parallel read/write ports, one bonded to
 * each compute core of the processing group (Section IV-B and V-B),
 * so the 4 cores access shared memory without interference — provided
 * the software's affinity-aware allocation keeps each core on its own
 * port. Accesses routed through a foreign port contend with that
 * port's owner and pay an extra crossbar latency.
 */

#ifndef DTU_MEM_SRAM_HH
#define DTU_MEM_SRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/bandwidth.hh"
#include "mem/mem_types.hh"
#include "sim/sim_object.hh"

namespace dtu
{

/** A multi-port scratchpad SRAM with capacity accounting. */
class Sram : public SimObject
{
  public:
    /**
     * @param capacity total bytes.
     * @param ports number of parallel read/write ports.
     * @param port_bytes_per_second bandwidth of each port.
     * @param access_latency fixed latency per access (ticks).
     * @param remote_penalty extra latency when a requester uses a
     *        port other than its affine one (crossbar hop).
     */
    Sram(std::string name, EventQueue &queue, StatRegistry *stats,
         MemLevel level, std::uint64_t capacity, unsigned ports,
         double port_bytes_per_second, Tick access_latency,
         Tick remote_penalty = 0, double dma_port_bytes_per_second = 0.0);

    MemLevel level() const { return level_; }
    std::uint64_t capacity() const { return capacity_; }
    unsigned numPorts() const { return static_cast<unsigned>(ports_.size()); }

    /**
     * Access @p bytes through @p port on behalf of a requester whose
     * affine port is @p affine_port.
     * @return completion tick.
     */
    Tick access(unsigned port, unsigned affine_port, std::uint64_t bytes);

    /** Access starting at a future tick @p at. */
    Tick accessAt(Tick at, unsigned port, unsigned affine_port,
                  std::uint64_t bytes);

    /** The port with the earliest free time (for DMA traffic). */
    unsigned leastLoadedPort() const;

    /** True when a dedicated DMA-side fill port exists. */
    bool hasDmaPort() const { return dmaPort_ != nullptr; }

    /**
     * Bulk access through the DMA-side fill port, which does not
     * contend with the core-bonded ports.
     */
    Tick dmaAccessAt(Tick at, std::uint64_t bytes);

    /** Port-level resource, for utilization queries. */
    const BandwidthResource &port(unsigned i) const { return *ports_.at(i); }

    /** Aggregate bytes moved across all ports. */
    double totalBytes() const;

  private:
    MemLevel level_;
    std::uint64_t capacity_;
    Tick remotePenalty_;
    std::vector<std::unique_ptr<BandwidthResource>> ports_;
    std::unique_ptr<BandwidthResource> dmaPort_;
    Stat remoteAccesses_;
    Stat localAccesses_;
};

} // namespace dtu

#endif // DTU_MEM_SRAM_HH
