/**
 * @file
 * Common types for the DTU memory hierarchy.
 */

#ifndef DTU_MEM_MEM_TYPES_HH
#define DTU_MEM_MEM_TYPES_HH

#include <cstdint>
#include <string>

namespace dtu
{

/** A byte address within one memory region. */
using Addr = std::uint64_t;

/** Levels of the 3-level DTU memory hierarchy (Section IV-B). */
enum class MemLevel : std::uint8_t
{
    L1, ///< per-core local data buffer
    L2, ///< per-processing-group shared memory slice
    L3, ///< on-board HBM
    Host, ///< host DRAM across PCIe
};

/** Printable level name. */
inline std::string
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::L3: return "L3";
      case MemLevel::Host: return "Host";
    }
    return "?";
}

/** Kibibytes/mebibytes/gibibytes helpers. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * 1024ULL;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * 1024ULL * 1024ULL;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * 1024ULL * 1024ULL * 1024ULL;
}

} // namespace dtu

#endif // DTU_MEM_MEM_TYPES_HH
