#include "mem/bandwidth.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtu
{

BandwidthResource::BandwidthResource(std::string name, EventQueue &queue,
                                     StatRegistry *stats,
                                     double bytes_per_second,
                                     Tick access_latency)
    : SimObject(std::move(name), queue, stats),
      bytesPerSecond_(bytes_per_second), accessLatency_(access_latency)
{
    fatalIf(bytes_per_second <= 0.0, "bandwidth of '", this->name(),
            "' must be positive");
    if (stats) {
        bytesMoved_.init(*stats, this->name() + ".bytes",
                         "bytes transferred");
        transfers_.init(*stats, this->name() + ".transfers",
                        "transfer requests served");
        waitTicks_.init(*stats, this->name() + ".wait_ticks",
                        "ticks spent queued behind earlier traffic");
    }
}

double
BandwidthResource::bucketBytes() const
{
    return bytesPerSecond_ * ticksToSeconds(bucketTicks_);
}

double &
BandwidthResource::usedAt(std::uint64_t idx)
{
    std::uint64_t page_no = idx / kPageBuckets;
    if (page_no != cachedPageNo_) {
        std::unique_ptr<Page> &page = pages_[page_no];
        if (!page)
            page = std::make_unique<Page>();
        cachedPageNo_ = page_no;
        cachedPage_ = page.get();
    }
    return (*cachedPage_)[idx % kPageBuckets];
}

Tick
BandwidthResource::serviceTime(std::uint64_t bytes) const
{
    double ticks = static_cast<double>(bytes) *
                   static_cast<double>(ticksPerSecond) / bytesPerSecond_;
    return accessLatency_ + static_cast<Tick>(ticks + 0.5);
}

Tick
BandwidthResource::transfer(std::uint64_t bytes)
{
    return transferAt(curTick(), bytes);
}

Tick
BandwidthResource::transferAt(Tick at, std::uint64_t bytes)
{
    panicIf(at < curTick(), "transferAt in the past on '", name(), "'");
    bytesMoved_ += static_cast<double>(bytes);
    ++transfers_;
    if (bytes == 0)
        return at + accessLatency_;

    // Walk the capacity ledger from the start bucket, consuming idle
    // capacity until all bytes are scheduled.
    const double cap = bucketBytes();
    double remaining = static_cast<double>(bytes);
    std::uint64_t idx = at / bucketTicks_;
    // Within the first bucket only the fraction after `at` is usable.
    double first_frac =
        1.0 - static_cast<double>(at - idx * bucketTicks_) /
                  static_cast<double>(bucketTicks_);
    Tick done = at;
    while (remaining > 0.0) {
        double bucket_cap = cap * (idx == at / bucketTicks_ ? first_frac
                                                            : 1.0);
        double &used = usedAt(idx);
        double avail = bucket_cap - used;
        if (avail > 1e-12) {
            double take = std::min(avail, remaining);
            used += take;
            remaining -= take;
            // Completion: position within this bucket where the last
            // byte lands (buckets drain front-to-back).
            double filled_frac = used / cap;
            done = idx * bucketTicks_ +
                   static_cast<Tick>(filled_frac *
                                         static_cast<double>(bucketTicks_) +
                                     0.5);
        }
        if (remaining > 0.0)
            ++idx;
    }
    done = std::max(done, at);
    busyBytes_ += static_cast<double>(bytes);
    freeAt_ = std::max(freeAt_, done);
    Tick completion = done + accessLatency_;
    Tick pure = serviceTime(bytes);
    if (completion > at + pure)
        waitTicks_ += static_cast<double>(completion - at - pure);
    return completion;
}

void
BandwidthResource::setBytesPerSecond(double bytes_per_second)
{
    fatalIf(bytes_per_second <= 0.0, "bandwidth of '", name(),
            "' must be positive");
    bytesPerSecond_ = bytes_per_second;
}

double
BandwidthResource::utilization() const
{
    Tick now = std::max(curTick(), freeAt_);
    if (now == 0)
        return 0.0;
    double capacity_bytes = bytesPerSecond_ * ticksToSeconds(now);
    return capacity_bytes > 0.0 ? std::min(1.0, busyBytes_ /
                                                    capacity_bytes)
                                : 0.0;
}

} // namespace dtu
