#include "sync/sync_engine.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{

SyncEngine::SyncEngine(std::string name, EventQueue &queue,
                       StatRegistry *stats, Tick signal_latency)
    : SimObject(std::move(name), queue, stats),
      signalLatency_(signal_latency)
{
    if (stats) {
        signals_.init(*stats, this->name() + ".signals",
                      "semaphore signals sent");
        waits_.init(*stats, this->name() + ".waits",
                    "semaphore waits served");
        waitTicks_.init(*stats, this->name() + ".wait_ticks",
                        "total ticks consumers spent blocked");
    }
}

void
SyncEngine::signalAt(int sem, Tick at)
{
    auto &times = semaphores_[sem];
    Tick visible = at + signalLatency_;
    // Keep timestamps sorted; producers may be simulated out of order.
    times.insert(std::upper_bound(times.begin(), times.end(), visible),
                 visible);
    ++signals_;
}

Tick
SyncEngine::waitUntil(int sem, unsigned count, Tick at)
{
    fatalIf(count == 0, "waitUntil with count 0 on '", name(), "'");
    auto it = semaphores_.find(sem);
    unsigned have = it == semaphores_.end()
                        ? 0
                        : static_cast<unsigned>(it->second.size());
    fatalIf(have < count, "deadlock: semaphore ", sem, " on '", name(),
            "' has ", have, " signals but ", count, " awaited");
    Tick available = it->second[count - 1];
    Tick released = std::max(at, available);
    ++waits_;
    waitTicks_ += static_cast<double>(released - at);
    if (Tracer *tr = tracer(); tr && tr->enabled() && released > at) {
        tr->span(tr->trackFor(name()),
                 "wait sem" + std::to_string(sem), "sync", at, released,
                 {{"count", static_cast<double>(count)}});
    }
    return released;
}

unsigned
SyncEngine::signalCount(int sem) const
{
    auto it = semaphores_.find(sem);
    return it == semaphores_.end()
               ? 0
               : static_cast<unsigned>(it->second.size());
}

void
SyncEngine::reset(int sem)
{
    semaphores_.erase(sem);
}

void
SyncEngine::resetAll()
{
    semaphores_.clear();
}

Tick
SyncEngine::oneToOne(int sem, Tick producer_done, Tick consumer_ready)
{
    signalAt(sem, producer_done);
    return waitUntil(sem, 1, consumer_ready);
}

std::vector<Tick>
SyncEngine::oneToN(int sem, Tick producer_done,
                   const std::vector<Tick> &consumers_ready)
{
    signalAt(sem, producer_done);
    std::vector<Tick> released;
    released.reserve(consumers_ready.size());
    for (Tick ready : consumers_ready)
        released.push_back(waitUntil(sem, 1, ready));
    return released;
}

Tick
SyncEngine::nToOne(int sem, const std::vector<Tick> &producers_done,
                   Tick consumer_ready)
{
    for (Tick done : producers_done)
        signalAt(sem, done);
    return waitUntil(sem, static_cast<unsigned>(producers_done.size()),
                     consumer_ready);
}

std::vector<Tick>
SyncEngine::nToM(int sem, const std::vector<Tick> &producers_done,
                 const std::vector<Tick> &consumers_ready)
{
    for (Tick done : producers_done)
        signalAt(sem, done);
    std::vector<Tick> released;
    released.reserve(consumers_ready.size());
    for (Tick ready : consumers_ready) {
        released.push_back(waitUntil(
            sem, static_cast<unsigned>(producers_done.size()), ready));
    }
    return released;
}

} // namespace dtu
