/**
 * @file
 * The synchronization engine (Section IV-D).
 *
 * Each processing group integrates one synchronization engine that
 * coordinates compute cores and DMA engines through hardware
 * semaphores, supporting 1-to-1, 1-to-N, N-to-1 and N-to-M patterns
 * inside or across processing groups.
 *
 * The simulator uses timestamped semaphores: producers record the
 * tick of each signal; consumers ask "when is the k-th signal
 * available from tick t onward" and block (advance their local time)
 * until then. This supports the sequential co-simulation style the
 * executor uses: producers are simulated before consumers along the
 * dependence order, and the engine replays the timing interaction.
 */

#ifndef DTU_SYNC_SYNC_ENGINE_HH
#define DTU_SYNC_SYNC_ENGINE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace dtu
{

/** Semaphore-based synchronization fabric. */
class SyncEngine : public SimObject
{
  public:
    SyncEngine(std::string name, EventQueue &queue, StatRegistry *stats,
               Tick signal_latency = 20);

    /**
     * Record a signal on semaphore @p sem at tick @p at (plus the
     * fabric's signal latency).
     */
    void signalAt(int sem, Tick at);

    /**
     * Earliest tick >= @p at at which @p count signals have been
     * observed on @p sem since the last reset.
     * @throws FatalError when fewer than @p count signals were ever
     *         recorded — a deadlock under sequential co-simulation.
     */
    Tick waitUntil(int sem, unsigned count, Tick at);

    /** Signals recorded so far on @p sem. */
    unsigned signalCount(int sem) const;

    /** Clear one semaphore (consume its signals). */
    void reset(int sem);

    /** Clear all semaphores. */
    void resetAll();

    //
    // Pattern helpers used by the runtime. Each returns the tick at
    // which the whole pattern has completed, given per-participant
    // ready times.
    //

    /** 1-to-1: a single producer hands off to a single consumer. */
    Tick oneToOne(int sem, Tick producer_done, Tick consumer_ready);

    /** 1-to-N: one producer releases N consumers; returns per-consumer
     *  release times. */
    std::vector<Tick> oneToN(int sem, Tick producer_done,
                             const std::vector<Tick> &consumers_ready);

    /** N-to-1: a consumer joins N producers. */
    Tick nToOne(int sem, const std::vector<Tick> &producers_done,
                Tick consumer_ready);

    /** N-to-M: full barrier among N producers and M consumers. */
    std::vector<Tick> nToM(int sem, const std::vector<Tick> &producers_done,
                           const std::vector<Tick> &consumers_ready);

    double signalsSent() const { return signals_.value(); }
    double waitsServed() const { return waits_.value(); }
    Tick signalLatency() const { return signalLatency_; }

  private:
    Tick signalLatency_;
    /** Per-semaphore sorted signal timestamps. */
    std::map<int, std::vector<Tick>> semaphores_;

    Stat signals_;
    Stat waits_;
    Stat waitTicks_;
};

} // namespace dtu

#endif // DTU_SYNC_SYNC_ENGINE_HH
