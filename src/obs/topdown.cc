#include "obs/topdown.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "core/matrix_engine.hh"
#include "graph/graph.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{
namespace obs
{

const char *
tdCategoryName(TdCategory category)
{
    switch (category) {
      case TdCategory::Issue: return "issue";
      case TdCategory::Throttled: return "throttled";
      case TdCategory::DmaWait: return "dma-wait";
      case TdCategory::SyncWait: return "sync-wait";
      case TdCategory::IcacheStall: return "icache-stall";
      case TdCategory::Idle: return "idle";
    }
    return "?";
}

Tick
TdBreakdown::ticks(TdCategory category) const
{
    switch (category) {
      case TdCategory::Issue: return issue;
      case TdCategory::Throttled: return throttled;
      case TdCategory::DmaWait: return dmaWait;
      case TdCategory::SyncWait: return syncWait;
      case TdCategory::IcacheStall: return icacheStall;
      case TdCategory::Idle: return idle;
    }
    return 0;
}

double
TdBreakdown::share(TdCategory category) const
{
    Tick t = total();
    return t > 0 ? static_cast<double>(ticks(category)) /
                       static_cast<double>(t)
                 : 0.0;
}

TdCategory
TdBreakdown::dominant() const
{
    TdCategory best = TdCategory::Issue;
    Tick best_ticks = 0;
    for (TdCategory c : kTdCategories) {
        if (ticks(c) > best_ticks) {
            best = c;
            best_ticks = ticks(c);
        }
    }
    return best;
}

TdBreakdown &
TdBreakdown::operator+=(const TdBreakdown &other)
{
    issue += other.issue;
    throttled += other.throttled;
    dmaWait += other.dmaWait;
    syncWait += other.syncWait;
    icacheStall += other.icacheStall;
    idle += other.idle;
    return *this;
}

MachineSpec
machineSpec(const DtuConfig &config, DType dtype, unsigned cores)
{
    MachineSpec spec;
    spec.cores = cores;
    spec.peakOpsPerSecond = 2.0 * static_cast<double>(cores) *
                            MatrixEngine::macsPerCycle(dtype, config.dtu2) *
                            config.maxHz;
    spec.hbmBytesPerSecond = config.l3BytesPerSecond;
    return spec;
}

namespace
{

/**
 * Classify one operator window. The phases tile it exactly:
 *
 *   window = launch + kernel_stall + weights_stall + steady + unhidden
 *   steady = max(compute, dma_in, dma_out) >= compute
 *
 * so issue + throttled = compute, dma-wait soaks up the memory excess
 * (weights_stall + (steady - compute) + unhidden), icache-stall is the
 * kernel load, and idle is the launch overhead. The executor resolves
 * sync through analytic phase ordering, so sync-wait stays zero on
 * this path (kernel-level runs report it via the core counters).
 */
TdBreakdown
classifyOp(const OpTrace &op)
{
    TdBreakdown td;
    Tick window = op.end - op.start;
    td.icacheStall = op.kernelStallTicks;
    td.throttled = static_cast<Tick>(
        static_cast<double>(op.computeTicks) * op.throttle /
            (1.0 + op.throttle) +
        0.5);
    td.throttled = std::min(td.throttled, op.computeTicks);
    td.issue = op.computeTicks - td.throttled;
    td.idle = op.launchTicks;
    Tick accounted = td.icacheStall + op.weightStallTicks +
                     op.computeTicks + td.idle + op.unhiddenTicks;
    // steady - compute, recovered from the window so the six
    // categories sum to it exactly even after tick rounding.
    Tick memory_excess = window > accounted ? window - accounted : 0;
    td.dmaWait = op.weightStallTicks + memory_excess + op.unhiddenTicks;
    // Rounding guard: if the phases overshoot the window (possible
    // only through upstream arithmetic drift), trim the largest
    // slack category rather than report ticks that never existed.
    Tick sum = td.total();
    if (sum > window) {
        Tick excess = sum - window;
        Tick trim = std::min(excess, td.dmaWait);
        td.dmaWait -= trim;
        excess -= trim;
        td.issue -= std::min(excess, td.issue);
    }
    return td;
}

void
jsonBreakdown(JsonWriter &json, const TdBreakdown &td)
{
    json.beginObject();
    for (TdCategory c : kTdCategories) {
        std::string base = tdCategoryName(c);
        std::replace(base.begin(), base.end(), '-', '_');
        json.field(base + "_ticks", td.ticks(c));
    }
    json.field("total_ticks", td.total());
    json.endObject();
}

} // namespace

BottleneckReport
buildBottleneckReport(const ExecResult &result, const DtuConfig &config,
                      DType dtype, const std::vector<unsigned> &groups)
{
    fatalIf(result.trace.empty() && result.latency > 0,
            "buildBottleneckReport needs a traced run "
            "(set ExecOptions::trace)");

    BottleneckReport report;
    report.latency = result.latency;
    unsigned cores =
        static_cast<unsigned>(groups.size()) * config.coresPerGroup;
    report.spec = machineSpec(config, dtype, cores);

    Tick op_window_total = 0;
    for (const OpTrace &op : result.trace) {
        OpAttribution attr;
        attr.name = op.name;
        attr.kind = opKindName(op.anchor);
        attr.start = op.start;
        attr.end = op.end;
        attr.td = classifyOp(op);
        op_window_total += attr.td.total();

        double ops = 2.0 * op.macs;
        double seconds = ticksToSeconds(op.end - op.start);
        attr.roofline.intensityOpsPerByte =
            op.bytes > 0.0 ? ops / op.bytes : 0.0;
        attr.roofline.achievedOpsPerSecond =
            seconds > 0.0 ? ops / seconds : 0.0;
        attr.roofline.ceilingOpsPerSecond =
            std::min(report.spec.peakOpsPerSecond,
                     attr.roofline.intensityOpsPerByte *
                         report.spec.hbmBytesPerSecond);
        attr.roofline.computeBound = attr.roofline.intensityOpsPerByte >=
                                     report.spec.ridgeOpsPerByte();

        report.total += attr.td;
        report.operators.push_back(std::move(attr));
    }

    // Ticks outside every operator window — the host PCIe transfers
    // before the first operator and after the last — are idle from
    // the cores' perspective.
    Tick host_idle =
        report.latency > op_window_total ? report.latency - op_window_total
                                         : 0;
    report.total.idle += host_idle;

    // Every leased core sees the identical breakdown: operators are
    // data-parallel across the whole lease, so the cores advance in
    // lockstep through the same phases.
    for (unsigned gid : groups) {
        unsigned cluster = gid / config.groupsPerCluster;
        unsigned pg = gid % config.groupsPerCluster;
        for (unsigned ci = 0; ci < config.coresPerGroup; ++ci) {
            CoreAttribution core;
            core.core = csprintf(config.name, ".cluster", cluster, ".pg",
                                 pg, ".core", ci);
            core.td = report.total;
            report.cores.push_back(std::move(core));
        }
    }

    //
    // Critical path: compress the executed chain (which IS the
    // critical path — operators run back to back) into maximal
    // segments sharing one dominant category. Host-transfer gaps
    // enter as idle pseudo-operators.
    //
    struct PathItem
    {
        TdCategory category;
        Tick start;
        Tick ticks;
        std::string op;
    };
    std::vector<PathItem> items;
    Tick path_cursor = result.start;
    for (const OpAttribution &attr : report.operators) {
        if (attr.start > path_cursor) {
            items.push_back({TdCategory::Idle, path_cursor,
                             attr.start - path_cursor, "host-transfer"});
        }
        items.push_back(
            {attr.td.dominant(), attr.start, attr.ticks(), attr.name});
        path_cursor = attr.end;
    }
    if (result.end > path_cursor) {
        items.push_back({TdCategory::Idle, path_cursor,
                         result.end - path_cursor, "host-transfer"});
    }
    for (const PathItem &item : items) {
        if (!report.criticalPath.empty() &&
            report.criticalPath.back().category == item.category) {
            CriticalSegment &seg = report.criticalPath.back();
            seg.ticks += item.ticks;
            // Track the heaviest contributor via its share field
            // until share is finalized below.
            if (static_cast<double>(item.ticks) > seg.share) {
                seg.share = static_cast<double>(item.ticks);
                seg.dominantOp = item.op;
            }
        } else {
            CriticalSegment seg;
            seg.category = item.category;
            seg.start = item.start;
            seg.ticks = item.ticks;
            seg.dominantOp = item.op;
            seg.share = static_cast<double>(item.ticks);
            report.criticalPath.push_back(std::move(seg));
        }
    }
    for (CriticalSegment &seg : report.criticalPath) {
        seg.share = report.latency > 0
                        ? static_cast<double>(seg.ticks) /
                              static_cast<double>(report.latency)
                        : 0.0;
    }

    return report;
}

void
BottleneckReport::print(std::ostream &os) const
{
    os << "top-down breakdown (" << ticksToMilliSeconds(latency)
       << " ms, " << spec.cores << " cores)\n";
    for (TdCategory c : kTdCategories) {
        os << "  " << std::left << std::setw(13) << tdCategoryName(c)
           << std::right << std::setw(7) << std::fixed
           << std::setprecision(2) << 100.0 * total.share(c) << " %  "
           << std::setprecision(3) << ticksToMilliSeconds(total.ticks(c))
           << " ms\n";
    }
    os << "roofline (ridge " << std::setprecision(1)
       << spec.ridgeOpsPerByte() << " ops/B)\n";
    for (const OpAttribution &op : operators) {
        os << "  " << std::left << std::setw(20) << op.name << std::right
           << " " << std::setw(8) << std::setprecision(2)
           << op.roofline.intensityOpsPerByte << " ops/B  "
           << std::setw(7) << op.roofline.achievedOpsPerSecond / 1e12
           << " / " << op.roofline.ceilingOpsPerSecond / 1e12
           << " Tops  "
           << (op.roofline.computeBound ? "compute" : "memory")
           << "-bound  [" << tdCategoryName(op.td.dominant()) << "]\n";
    }
    os << "critical path\n";
    for (const CriticalSegment &seg : criticalPath) {
        os << "  " << std::left << std::setw(13)
           << tdCategoryName(seg.category) << std::right << std::setw(7)
           << 100.0 * seg.share << " %  "
           << std::setprecision(3) << ticksToMilliSeconds(seg.ticks)
           << " ms  (" << seg.dominantOp << ")\n";
    }
    os.unsetf(std::ios::fixed);
}

void
BottleneckReport::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("latency_ticks", latency)
        .field("latency_ms", ticksToMilliSeconds(latency));

    json.key("machine").beginObject();
    json.field("cores", spec.cores)
        .field("peak_ops_per_s", spec.peakOpsPerSecond)
        .field("hbm_bytes_per_s", spec.hbmBytesPerSecond)
        .field("ridge_ops_per_byte", spec.ridgeOpsPerByte());
    json.endObject();

    json.key("topdown");
    jsonBreakdown(json, total);

    json.key("cores").beginArray();
    for (const CoreAttribution &core : cores) {
        json.beginObject().field("core", core.core).key("topdown");
        jsonBreakdown(json, core.td);
        json.endObject();
    }
    json.endArray();

    json.key("operators").beginArray();
    for (const OpAttribution &op : operators) {
        json.beginObject()
            .field("name", op.name)
            .field("kind", op.kind)
            .field("start_ticks", op.start)
            .field("end_ticks", op.end)
            .field("dominant", tdCategoryName(op.td.dominant()));
        json.key("topdown");
        jsonBreakdown(json, op.td);
        json.key("roofline").beginObject();
        json.field("intensity_ops_per_byte",
                   op.roofline.intensityOpsPerByte)
            .field("achieved_ops_per_s", op.roofline.achievedOpsPerSecond)
            .field("ceiling_ops_per_s", op.roofline.ceilingOpsPerSecond)
            .field("efficiency", op.roofline.efficiency())
            .field("compute_bound", op.roofline.computeBound);
        json.endObject();
        json.endObject();
    }
    json.endArray();

    json.key("critical_path").beginArray();
    for (const CriticalSegment &seg : criticalPath) {
        json.beginObject()
            .field("category", tdCategoryName(seg.category))
            .field("start_ticks", seg.start)
            .field("ticks", seg.ticks)
            .field("share", seg.share)
            .field("dominant_op", seg.dominantOp)
            .endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

} // namespace obs
} // namespace dtu
