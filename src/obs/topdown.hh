/**
 * @file
 * Top-down cycle accounting and roofline attribution.
 *
 * Answers the paper's Section VI questions without hand-reading
 * Perfetto traces: where did every core tick of a run go, which
 * operators are compute- vs bandwidth-bound against the i20's
 * roofline, and which phases form the critical path.
 *
 * Every tick of every leased core is classified into exactly one
 * top-down category:
 *
 *   issue        productive VLIW issue / compute
 *   throttled    LPME power-integrity bubbles
 *   dma-wait     stalled on activation/weight movement (the memory
 *                phase outlasting compute, plus unhidden fill/drain)
 *   sync-wait    blocked on the synchronization engine
 *   icache-stall kernel code loads the prefetcher could not hide
 *   idle         launch overhead and host-transfer gaps
 *
 * The categories tile each operator window exactly and, summed with
 * the inter-operator gaps (charged to idle), equal the end-to-end
 * latency — the invariant tests/test_obs.cc pins.
 *
 * Each operator also gets a roofline placement: arithmetic intensity
 * (2*macs / bytes moved), achieved ops/s over its window, and the
 * ceiling min(peak compute, intensity * HBM bandwidth) from the chip
 * spec — the Fig. 12 analysis as machine-readable output.
 */

#ifndef DTU_OBS_TOPDOWN_HH
#define DTU_OBS_TOPDOWN_HH

#include <ostream>
#include <string>
#include <vector>

#include "runtime/executor.hh"

namespace dtu
{
namespace obs
{

/** Where a core tick went (exactly one category per tick). */
enum class TdCategory
{
    Issue,
    Throttled,
    DmaWait,
    SyncWait,
    IcacheStall,
    Idle,
};

/** Stable lowercase name for JSON/tables. */
const char *tdCategoryName(TdCategory category);

/** All classifiable categories, in display order. */
inline constexpr TdCategory kTdCategories[] = {
    TdCategory::Issue,       TdCategory::Throttled,
    TdCategory::DmaWait,     TdCategory::SyncWait,
    TdCategory::IcacheStall, TdCategory::Idle,
};

/** Per-category tick totals over some span (an op, a core, a run). */
struct TdBreakdown
{
    Tick issue = 0;
    Tick throttled = 0;
    Tick dmaWait = 0;
    Tick syncWait = 0;
    Tick icacheStall = 0;
    Tick idle = 0;

    Tick ticks(TdCategory category) const;
    Tick total() const
    {
        return issue + throttled + dmaWait + syncWait + icacheStall +
               idle;
    }

    /** Fraction of total() in @p category (0 when empty). */
    double share(TdCategory category) const;

    /** The category holding the most ticks (Issue on an empty span). */
    TdCategory dominant() const;

    TdBreakdown &operator+=(const TdBreakdown &other);
};

/** Roofline placement of one operator (or aggregate). */
struct RooflinePoint
{
    /** Arithmetic intensity: 2*macs per byte moved. */
    double intensityOpsPerByte = 0.0;
    /** Ops/s achieved over the operator's wall-clock window. */
    double achievedOpsPerSecond = 0.0;
    /** min(peak compute, intensity * HBM bandwidth). */
    double ceilingOpsPerSecond = 0.0;
    /** True when the intensity sits at or above the ridge point. */
    bool computeBound = false;

    /** achieved / ceiling (0 when the ceiling is degenerate). */
    double
    efficiency() const
    {
        return ceilingOpsPerSecond > 0.0
                   ? achievedOpsPerSecond / ceilingOpsPerSecond
                   : 0.0;
    }
};

/** The roofline the report places operators against. */
struct MachineSpec
{
    /** Peak ops/s of the leased cores at the ladder top. */
    double peakOpsPerSecond = 0.0;
    /** HBM bandwidth ceiling in bytes/s. */
    double hbmBytesPerSecond = 0.0;
    /** Leased cores the peak was computed over. */
    unsigned cores = 0;

    /** Intensity at which the two ceilings cross. */
    double
    ridgeOpsPerByte() const
    {
        return hbmBytesPerSecond > 0.0
                   ? peakOpsPerSecond / hbmBytesPerSecond
                   : 0.0;
    }
};

/** Roofline spec for @p cores leased cores of a chip at max clock. */
MachineSpec machineSpec(const DtuConfig &config, DType dtype,
                        unsigned cores);

/** One operator's classified window and roofline placement. */
struct OpAttribution
{
    std::string name;
    std::string kind;
    Tick start = 0;
    Tick end = 0;
    TdBreakdown td;
    RooflinePoint roofline;

    Tick ticks() const { return end - start; }
};

/** One core's whole-run classification (sums to the run latency). */
struct CoreAttribution
{
    /** Hierarchical core name ("dtu2.cluster0.pg1.core2"). */
    std::string core;
    TdBreakdown td;
};

/**
 * A maximal run of consecutive operators sharing one dominant
 * category on the executed chain — the critical path through the
 * run, compressed to its phase structure.
 */
struct CriticalSegment
{
    TdCategory category = TdCategory::Issue;
    Tick start = 0;
    Tick ticks = 0;
    /** The operator contributing the most ticks to the segment. */
    std::string dominantOp;
    /** ticks / run latency. */
    double share = 0.0;
};

/** The rolled-up bottleneck picture of one execution. */
struct BottleneckReport
{
    Tick latency = 0;
    MachineSpec spec;
    /** Whole-run classification of one core (they are symmetric). */
    TdBreakdown total;
    /** Per leased core; each sums exactly to latency. */
    std::vector<CoreAttribution> cores;
    /** Per operator, in execution order. */
    std::vector<OpAttribution> operators;
    /** Dominant-category segments along the executed chain. */
    std::vector<CriticalSegment> criticalPath;

    /** Pretty-print the top-down + roofline summary. */
    void print(std::ostream &os) const;

    /** Serialize everything (deterministic; golden-diffable). */
    void writeJson(std::ostream &os) const;
};

/**
 * Build the report from a traced execution (requires the run used
 * ExecOptions::trace).
 * @param groups the processing-group lease the run executed on; the
 *        per-core attribution covers exactly these groups' cores.
 */
BottleneckReport buildBottleneckReport(const ExecResult &result,
                                       const DtuConfig &config,
                                       DType dtype,
                                       const std::vector<unsigned> &groups);

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_TOPDOWN_HH
