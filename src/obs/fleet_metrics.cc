#include "obs/fleet_metrics.hh"

#include "obs/prometheus.hh"
#include "sim/json.hh"

namespace dtu
{
namespace obs
{

void
FleetMetricSeries::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginArray();
    for (const FleetMetricSample &s : samples_) {
        json.beginObject().field("at_ticks", s.at);
        json.key("devices").beginArray();
        for (const DeviceMetricSample &d : s.devices) {
            json.beginObject()
                .field("device", static_cast<std::uint64_t>(d.device))
                .field("queue_depth", d.queueDepth)
                .field("in_flight_batches", d.inFlightBatches)
                .field("outstanding", d.outstanding)
                .field("completed", d.completed)
                .field("dropped", d.dropped)
                .field("retries", d.retries);
            if (d.hasPower) {
                json.field("power_watts", d.powerWatts)
                    .field("energy_joules", d.energyJoules)
                    .field("throttle_fraction", d.throttleFraction)
                    .field("frequency_ghz", d.frequencyGhz);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    os << "\n";
}

namespace
{

struct GaugeField
{
    const char *name;
    const char *help;
    std::uint64_t DeviceMetricSample::*member;
};

constexpr GaugeField kGauges[] = {
    {"fleet_queue_depth", "requests waiting in the device arrival queue",
     &DeviceMetricSample::queueDepth},
    {"fleet_in_flight_batches", "batches dispatched and not yet complete",
     &DeviceMetricSample::inFlightBatches},
    {"fleet_outstanding_requests", "queued plus in-flight requests",
     &DeviceMetricSample::outstanding},
    {"fleet_completed_requests_total", "requests completed this run",
     &DeviceMetricSample::completed},
    {"fleet_dropped_requests_total", "requests dropped this run",
     &DeviceMetricSample::dropped},
    {"fleet_batch_retries_total", "poisoned-batch re-executions this run",
     &DeviceMetricSample::retries},
};

} // namespace

void
FleetMetricSeries::writePrometheus(std::ostream &os,
                                   const std::string &prefix) const
{
    const FleetMetricSample *last = latest();
    if (!last)
        return;
    const std::string pre = prefix.empty() ? "" : prefix + "_";
    for (const GaugeField &g : kGauges) {
        std::string metric = pre + g.name;
        if (g.help && *g.help)
            os << "# HELP " << metric << " " << g.help << "\n";
        os << "# TYPE " << metric << " gauge\n";
        for (const DeviceMetricSample &d : last->devices) {
            os << metric << "{device=\""
               << promLabelEscape(std::to_string(d.device)) << "\"} "
               << promSampleValue(static_cast<double>(d.*g.member))
               << "\n";
        }
    }
}

} // namespace obs
} // namespace dtu
