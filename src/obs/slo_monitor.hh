/**
 * @file
 * Live SLO monitoring for the serving runtime.
 *
 * The ServingReport aggregates a whole run after the fact; an
 * operator of a real inference service watches the same signals
 * *live*: tail latency per time window, goodput (completions that met
 * their deadline), and the SLO burn rate — how fast the service is
 * spending its error budget (SRE convention: a burn rate of 1 exactly
 * exhausts the budget; 10 means ten times too fast).
 *
 * The SloMonitor ingests the scheduler's completion and drop events
 * as they happen and rolls them into tumbling windows anchored at
 * t = 0. Windows close as simulated time passes their end; each
 * closed window yields exact nearest-rank percentiles (the windows
 * are small enough to keep raw samples, unlike the report's
 * histogram), goodput, and burn rate, and is checked against the
 * configured alert thresholds. Threshold crossings invoke the
 * registered callback immediately — mid-run, at the simulated time
 * of the crossing — and are also kept for post-run inspection.
 *
 * Strictly opt-in: a Scheduler without a monitor behaves bit-for-bit
 * identically (the hooks are null-pointer checks).
 */

#ifndef DTU_OBS_SLO_MONITOR_HH
#define DTU_OBS_SLO_MONITOR_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "sim/ticks.hh"

namespace dtu
{
namespace obs
{

/** Monitoring policy: window width, target, alert thresholds. */
struct SloConfig
{
    /** Tumbling window width (default 10 ms of simulated time). */
    Tick window = 10'000'000'000;
    /**
     * Availability target the burn rate measures against: the
     * fraction of requests that must meet their SLO (complete, on
     * time). 0.99 leaves a 1% error budget.
     */
    double sloTarget = 0.99;
    /** Alert when a window's p99 latency exceeds this; 0 disables. */
    double p99AlertMs = 0.0;
    /** Alert when a window's burn rate exceeds this; 0 disables. */
    double burnRateAlert = 0.0;
};

/** One threshold crossing. */
struct SloAlert
{
    /** Simulated end time of the offending window. */
    Tick at = 0;
    /** "p99_latency" or "slo_burn_rate". */
    std::string kind;
    /** The observed value that crossed. */
    double value = 0.0;
    /** The configured threshold it crossed. */
    double threshold = 0.0;
};

/** One closed tumbling window. */
struct SloWindow
{
    Tick start = 0;
    Tick end = 0;
    std::uint64_t completed = 0;
    /** Completions past their deadline. */
    std::uint64_t missed = 0;
    /** Requests dropped (shed / timed out / rejected / failed). */
    std::uint64_t dropped = 0;
    /** Exact nearest-rank percentiles over the window, in ms. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    /** On-time completions per second of window. */
    double goodputPerSecond = 0.0;
    /** All completions per second of window. */
    double throughputPerSecond = 0.0;
    /**
     * Error-budget burn rate: bad-request fraction over the window
     * divided by the budget (1 - sloTarget). 1.0 = burning exactly
     * at budget; >1 = the service will exhaust its budget early.
     */
    double burnRate = 0.0;

    std::uint64_t total() const { return completed + dropped; }
};

/** Sliding-window SLO monitor fed by the serving scheduler. */
class SloMonitor
{
  public:
    using AlertCallback = std::function<void(const SloAlert &)>;

    explicit SloMonitor(SloConfig config = {});

    const SloConfig &config() const { return config_; }

    /** Register the live alert callback (replaces any previous). */
    void onAlert(AlertCallback callback);

    /**
     * Add a secondary alert listener. Listeners stack (unlike the
     * primary onAlert callback, which replaces) and run after it, in
     * registration order — the flight recorder subscribes here so it
     * never displaces a user's own alert handler.
     */
    void addAlertListener(AlertCallback listener);

    /** Ingest one completed request (at its completion time). */
    void recordCompletion(const serve::RequestOutcome &completed);

    /** Ingest one dropped request (at its drop time). */
    void recordDrop(const serve::RequestOutcome &dropped);

    /**
     * Close every window that ends at or before @p now. Safe to call
     * with non-decreasing times; the scheduler calls it once per
     * event-loop step.
     */
    void advanceTo(Tick now);

    /**
     * End of run: close windows through @p at and flush the final
     * partial window (if it holds any events).
     */
    void finish(Tick at);

    /** Closed windows so far (empty windows are skipped). */
    const std::vector<SloWindow> &windows() const { return windows_; }

    /** Threshold crossings so far. */
    const std::vector<SloAlert> &alerts() const { return alerts_; }

    /** Cumulative counts across all ingested events. */
    std::uint64_t totalCompleted() const { return totalCompleted_; }
    std::uint64_t totalMissed() const { return totalMissed_; }
    std::uint64_t totalDropped() const { return totalDropped_; }

    /** Serialize config, totals, windows, and alerts as JSON. */
    void writeJson(std::ostream &os) const;

    /** One CSV row per closed window. */
    void writeCsv(std::ostream &os) const;

  private:
    struct PendingCompletion
    {
        Tick at = 0;
        double latencyMs = 0.0;
        bool missed = false;
    };

    /** Close the window [windowStart_, windowStart_ + window). */
    void closeWindow();

    /** Invoke the primary callback, then every listener. */
    void fireAlert(const SloAlert &alert);

    SloConfig config_;
    AlertCallback callback_;
    std::vector<AlertCallback> listeners_;
    Tick windowStart_ = 0;
    std::vector<PendingCompletion> pendingCompletions_;
    std::vector<Tick> pendingDrops_;
    std::vector<SloWindow> windows_;
    std::vector<SloAlert> alerts_;
    std::uint64_t totalCompleted_ = 0;
    std::uint64_t totalMissed_ = 0;
    std::uint64_t totalDropped_ = 0;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_SLO_MONITOR_HH
