/**
 * @file
 * Fleet-wide periodic metric time-series.
 *
 * While a fleet serving run is in flight, the driver samples every
 * device's live serving state (queue depth, in-flight batches,
 * outstanding requests, cumulative drop/retry counts) on a fixed
 * simulated-time period. The samples form one FleetMetricSeries that
 * feeds three consumers: the request tracer's per-device counter
 * tracks (so Perfetto shows queue depth next to the request spans),
 * the Prometheus exporter (the dtusim_fleet_queue_depth{device=...}
 * gauge family), and the SLO flight recorder's metric ring buffer.
 *
 * Sampling is driven by the serving event loop at simulated times
 * that are pure observation points — the loop's settle/advance steps
 * are idempotent at non-event ticks, so enabling the series never
 * perturbs simulated results.
 */

#ifndef DTU_OBS_FLEET_METRICS_HH
#define DTU_OBS_FLEET_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtu
{
namespace obs
{

/** One device's serving state at a sample instant. */
struct DeviceMetricSample
{
    /** Device index within the fleet. */
    unsigned device = 0;
    /** Requests waiting in the arrival queue. */
    std::uint64_t queueDepth = 0;
    /** Batches dispatched and not yet completed. */
    std::uint64_t inFlightBatches = 0;
    /** Queued + in-flight requests. */
    std::uint64_t outstanding = 0;
    /** Requests completed so far this run (cumulative). */
    std::uint64_t completed = 0;
    /** Requests dropped so far this run (cumulative). */
    std::uint64_t dropped = 0;
    /** Poisoned-batch re-executions so far this run (cumulative). */
    std::uint64_t retries = 0;

    //
    // Power telemetry (filled only when an EnergyMonitor is
    // attached; hasPower gates the JSON fields so energy-disabled
    // series keep the pre-energy format).
    //
    bool hasPower = false;
    /** Mean chip power since the previous sample, watts. */
    double powerWatts = 0.0;
    /** Cumulative chip energy this run, joules. */
    double energyJoules = 0.0;
    /** Fraction of CPME windows throttled since the previous sample. */
    double throttleFraction = 0.0;
    /** Core DVFS point at the sample instant, GHz. */
    double frequencyGhz = 0.0;
};

/** A whole-fleet snapshot at one simulated instant. */
struct FleetMetricSample
{
    Tick at = 0;
    /** Per-device state, index order. */
    std::vector<DeviceMetricSample> devices;
};

/** An append-only series of fleet snapshots over one run. */
class FleetMetricSeries
{
  public:
    void append(FleetMetricSample sample)
    {
        samples_.push_back(std::move(sample));
    }

    const std::vector<FleetMetricSample> &samples() const
    {
        return samples_;
    }

    /** Most recent sample, or nullptr when empty. */
    const FleetMetricSample *latest() const
    {
        return samples_.empty() ? nullptr : &samples_.back();
    }

    void clear() { samples_.clear(); }

    /** Serialize the whole series as a JSON array of snapshots. */
    void writeJson(std::ostream &os) const;

    /**
     * Export the latest sample as per-device Prometheus gauges:
     * <prefix>_fleet_queue_depth{device="0"} and friends.
     */
    void writePrometheus(std::ostream &os,
                         const std::string &prefix = "dtusim") const;

  private:
    std::vector<FleetMetricSample> samples_;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_FLEET_METRICS_HH
