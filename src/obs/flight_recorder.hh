/**
 * @file
 * The SLO flight recorder: a retrospective "black box" for serving
 * incidents.
 *
 * Post-hoc reports tell you *that* an SLO burned; an operator wants
 * to know what the system looked like in the seconds *leading up to*
 * the burn. The FlightRecorder keeps bounded ring buffers of the
 * most recent sampled request lifecycles (from the RequestTracer)
 * and fleet metric snapshots (from the FleetMetricSeries). When an
 * SloMonitor burn-rate alert or an injected hardware fault fires,
 * the recorder dumps both rings plus the trigger context as one JSON
 * document — to memory always, and to a configured path when set.
 *
 * The trigger is latched: only the first trigger of a run dumps (the
 * black box preserves the state at the *first* incident instead of
 * being overwritten by the cascade that usually follows). Later
 * triggers are counted but do not dump; reset() re-arms.
 */

#ifndef DTU_OBS_FLIGHT_RECORDER_HH
#define DTU_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "obs/fleet_metrics.hh"
#include "power/power_event.hh"
#include "serve/request.hh"
#include "sim/ticks.hh"

namespace dtu
{
namespace obs
{

/**
 * One sampled request's fully resolved lifecycle: the scheduler's
 * uniform RequestOutcome plus the two bits only the tracer knows.
 * (This used to be a third parallel bookkeeping struct; now the
 * outcome is the single source of truth.)
 */
struct RequestRecord
{
    serve::RequestOutcome outcome;
    /** Reached device execution (false for queue-side drops). */
    bool executed = false;
    /** Flow-linked to at least one chip-level operator span. */
    bool deviceLinked = false;
};

/** A CPME/LPME decision stamped with its fleet device index. */
struct PowerEventRecord
{
    unsigned device = 0;
    PowerEvent event;
};

/** Ring capacities and the optional dump destination. */
struct FlightRecorderConfig
{
    /** Most recent sampled request lifecycles retained. */
    std::size_t requestCapacity = 256;
    /** Most recent fleet metric snapshots retained. */
    std::size_t metricCapacity = 64;
    /** Most recent power-management decisions retained. */
    std::size_t powerCapacity = 128;
    /** When non-empty, the trigger also writes the dump here. */
    std::string dumpPath;
};

/** Bounded recent-history recorder with a latched incident dump. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightRecorderConfig config = {});

    const FlightRecorderConfig &config() const { return config_; }

    /** Append one finished request lifecycle (oldest evicted). */
    void recordRequest(const RequestRecord &record);

    /** Append one fleet metric snapshot (oldest evicted). */
    void recordMetrics(const FleetMetricSample &sample);

    /**
     * Append one CPME/LPME decision (oldest evicted). Fed by the
     * EnergyMonitor, which drains each chip's PowerAuditTrail at the
     * metric sample points — so the dump can replay the power
     * manager's recent decisions next to the request lifecycles.
     */
    void recordPowerEvent(unsigned device, const PowerEvent &event);

    /**
     * An incident fired at simulated time @p at. The first trigger
     * dumps the rings as JSON (see lastDump()); later triggers only
     * count. @p reason names the source, e.g. "slo:slo_burn_rate" or
     * "fault:ecc_uncorrectable".
     */
    void trigger(const std::string &reason, Tick at);

    /** Triggers seen since the last reset (dumped or not). */
    std::uint64_t triggerCount() const { return triggers_; }

    /** Dumps produced since the last reset: 0 or 1 (latched). */
    std::uint64_t dumpCount() const { return dumped_ ? 1 : 0; }

    /** The dump JSON document; empty before the first trigger. */
    const std::string &lastDump() const { return dump_; }

    /** Write lastDump() to @p path; fatal() when nothing dumped. */
    void writeLastDump(const std::string &path) const;

    /** Requests currently buffered. */
    std::size_t bufferedRequests() const { return requests_.size(); }

    /** Metric snapshots currently buffered. */
    std::size_t bufferedMetrics() const { return metrics_.size(); }

    /** Power events currently buffered. */
    std::size_t bufferedPowerEvents() const { return power_.size(); }

    /** Re-arm the trigger latch and clear the rings and dump. */
    void reset();

  private:
    void writeDump(std::ostream &os, const std::string &reason,
                   Tick at) const;

    FlightRecorderConfig config_;
    std::deque<RequestRecord> requests_;
    std::deque<FleetMetricSample> metrics_;
    std::deque<PowerEventRecord> power_;
    std::uint64_t triggers_ = 0;
    bool dumped_ = false;
    std::string dump_;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_FLIGHT_RECORDER_HH
