#include "obs/request_tracer.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dtu
{
namespace obs
{

namespace
{

/** splitmix64 finalizer: a well-mixed pure hash, no RNG state. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

Tick
midpoint(Tick a, Tick b)
{
    return a + (b - a) / 2;
}

} // namespace

RequestTracer::RequestTracer(RequestTraceConfig config)
    : config_(config)
{
    fatalIf(config_.sampleRate < 0.0 || config_.sampleRate > 1.0,
            "request trace sample rate must be in [0, 1]");
    // p maps onto the hash's full 2^64 range; p = 1 is exact (every
    // hash value passes), p = 0 passes nothing.
    threshold_ = config_.sampleRate >= 1.0
                     ? ~0ull
                     : static_cast<std::uint64_t>(
                           std::ldexp(config_.sampleRate, 64));
    tracer_.setEnabled(true);
}

bool
RequestTracer::sampled(std::uint64_t id) const
{
    if (config_.sampleRate >= 1.0)
        return true;
    if (threshold_ == 0)
        return false;
    return mix64(config_.seed ^ mix64(id)) < threshold_;
}

std::string
RequestTracer::deviceProcess(int device)
{
    return device < 0 ? std::string("unrouted.requests")
                      : "dev" + std::to_string(device) + ".requests";
}

RequestRecord &
RequestTracer::recordFor(std::uint64_t id, const serve::Request &r)
{
    auto it = pending_.find(id);
    if (it == pending_.end()) {
        RequestRecord rec;
        rec.outcome.request = r;
        it = pending_.emplace(id, std::move(rec)).first;
        ++sampledSeen_;
    }
    return it->second;
}

void
RequestTracer::onRoute(unsigned device, const serve::Request &r)
{
    if (!sampled(r.id))
        return;
    RequestRecord &rec = recordFor(r.id, r);
    rec.outcome.device = static_cast<int>(device);
    tracer_.instant(tracer_.track("fleet.router", "decisions"),
                    r.model + " #" + std::to_string(r.id) + " -> dev" +
                        std::to_string(device),
                    "trace.route", r.arrival,
                    {{"device", static_cast<double>(device)}});
}

void
RequestTracer::onAdmit(unsigned device, const serve::Request &r)
{
    if (!sampled(r.id))
        return;
    RequestRecord &rec = recordFor(r.id, r);
    if (rec.outcome.device < 0)
        rec.outcome.device = static_cast<int>(device);
}

void
RequestTracer::onWeightLoad(unsigned device, const std::string &model,
                            Tick start, Tick end, std::uint64_t bytes)
{
    // Placement is a device-level event, not a per-request one, so
    // it is traced whenever request tracing is on at all.
    tracer_.span(tracer_.track(deviceProcess(static_cast<int>(device)),
                               "weight-load"),
                 "load " + model, "trace.weight-load", start, end,
                 {{"bytes", static_cast<double>(bytes)}});
}

void
RequestTracer::onBatchExecuted(unsigned device, Tracer &chip,
                               const std::vector<serve::Request> &batch,
                               Tick dispatched, Tick exec_end,
                               Tick link_ts, unsigned retries)
{
    const bool linked = chip.enabled();
    TrackId ops = chip.track("runtime", "operators");
    for (const serve::Request &r : batch) {
        if (!sampled(r.id))
            continue;
        RequestRecord &rec = recordFor(r.id, r);
        rec.outcome.device = static_cast<int>(device);
        rec.executed = true;
        rec.outcome.dispatched = dispatched;
        rec.outcome.completed = exec_end;
        rec.outcome.batchSize = static_cast<unsigned>(batch.size());
        rec.outcome.retries = retries;
        rec.deviceLinked = rec.deviceLinked || linked;
        // The hop into the chip timeline: lands inside an operator
        // span of the batch this request rode in.
        chip.flow(ops, r.model + " #" + std::to_string(r.id),
                  "request-flow", link_ts, r.id, FlowPhase::Step);
    }
}

void
RequestTracer::finishRecord(RequestRecord &rec)
{
    const serve::RequestOutcome &o = rec.outcome;
    const std::string proc = deviceProcess(o.device);
    const std::string name =
        o.request.model + " #" + std::to_string(o.request.id);
    const TrackId queue = tracer_.track(proc, "queue");
    const TrackId life = tracer_.track(proc, "lifecycle");

    const Tick arrival = o.request.arrival;
    const Tick queue_end = rec.executed ? o.dispatched : o.completed;
    tracer_.span(queue, name, "trace.queue", arrival, queue_end);
    tracer_.flow(queue, name, "request-flow",
                 midpoint(arrival, queue_end), o.request.id,
                 FlowPhase::Start);

    if (rec.executed) {
        const TrackId exec = tracer_.track(proc, "execute");
        TraceArgs args{{"batch", static_cast<double>(o.batchSize)}};
        if (o.retries)
            args.emplace_back("retries",
                              static_cast<double>(o.retries));
        tracer_.span(exec, name, "trace.execute", o.dispatched,
                     o.completed, std::move(args));
        // Generative lifecycles split the execution window into the
        // compute-bound prefill (dispatch -> first token) and the
        // bandwidth-bound decode loop (first token -> completion).
        if (o.request.generative() && o.firstToken > o.dispatched &&
            o.completed >= o.firstToken) {
            tracer_.span(exec, "prefill " + name, "trace.prefill",
                         o.dispatched, o.firstToken,
                         {{"prompt_len", static_cast<double>(
                                             o.request.gen.promptLen)}});
            tracer_.span(exec, "decode " + name, "trace.decode",
                         o.firstToken, o.completed,
                         {{"tokens", static_cast<double>(
                                         o.tokensEmitted)}});
        }
        if (o.retries) {
            tracer_.instant(exec, "batch-retry " + name, "trace.retry",
                            midpoint(o.dispatched, o.completed));
        }
        tracer_.flow(exec, name, "request-flow",
                     midpoint(o.dispatched, o.completed), o.request.id,
                     FlowPhase::Step);
    }

    tracer_.span(life, name, "trace.request", arrival, o.completed,
                 {{"latency_us",
                   ticksToMicroSeconds(o.completed - arrival)},
                  {"batch", static_cast<double>(o.batchSize)},
                  {"missed", o.missedDeadline() ? 1.0 : 0.0}});
    if (!o.completedOk()) {
        tracer_.instant(life,
                        std::string(o.outcomeName()) + " " + name,
                        "trace.drop", o.completed);
    }
    tracer_.flow(life, name, "request-flow",
                 midpoint(arrival, o.completed), o.request.id,
                 FlowPhase::End);

    finished_.push_back(rec);
    if (flight_)
        flight_->recordRequest(rec);
}

void
RequestTracer::onComplete(unsigned device,
                          const serve::RequestOutcome &completed)
{
    const serve::Request &r = completed.request;
    if (!sampled(r.id))
        return;
    RequestRecord &rec = recordFor(r.id, r);
    const int routed = rec.outcome.device;
    rec.outcome = completed;
    if (rec.outcome.device < 0)
        rec.outcome.device =
            routed >= 0 ? routed : static_cast<int>(device);
    rec.executed = true;
    finishRecord(rec);
    pending_.erase(r.id);
}

void
RequestTracer::onDrop(unsigned device,
                      const serve::RequestOutcome &dropped)
{
    const serve::Request &r = dropped.request;
    if (!sampled(r.id))
        return;
    RequestRecord &rec = recordFor(r.id, r);
    const int routed = rec.outcome.device;
    const bool executed = rec.executed;
    rec.outcome = dropped;
    if (rec.outcome.device < 0)
        rec.outcome.device =
            routed >= 0 ? routed : static_cast<int>(device);
    rec.executed = executed;
    finishRecord(rec);
    pending_.erase(r.id);
}

void
RequestTracer::recordMetrics(const FleetMetricSample &sample)
{
    for (const DeviceMetricSample &d : sample.devices) {
        const std::string p = "dev" + std::to_string(d.device);
        tracer_.counter(p + ".queue_depth", "requests", sample.at,
                        static_cast<double>(d.queueDepth));
        tracer_.counter(p + ".in_flight_batches", "batches", sample.at,
                        static_cast<double>(d.inFlightBatches));
        tracer_.counter(p + ".outstanding", "requests", sample.at,
                        static_cast<double>(d.outstanding));
        tracer_.counter(p + ".dropped_total", "requests", sample.at,
                        static_cast<double>(d.dropped));
        tracer_.counter(p + ".batch_retries_total", "retries",
                        sample.at, static_cast<double>(d.retries));
    }
    series_.append(sample);
    if (flight_)
        flight_->recordMetrics(sample);
}

void
RequestTracer::exportTrace(const std::vector<const Tracer *> &chips,
                           std::ostream &os) const
{
    std::vector<Tracer::ExportPart> parts;
    parts.push_back({"", &tracer_});
    for (std::size_t i = 0; i < chips.size(); ++i) {
        if (chips[i])
            parts.push_back({"dev" + std::to_string(i), chips[i]});
    }
    Tracer::exportMergedChromeTrace(parts, os);
}

void
RequestTracer::writeTrace(const std::vector<const Tracer *> &chips,
                          const std::string &path) const
{
    std::vector<Tracer::ExportPart> parts;
    parts.push_back({"", &tracer_});
    for (std::size_t i = 0; i < chips.size(); ++i) {
        if (chips[i])
            parts.push_back({"dev" + std::to_string(i), chips[i]});
    }
    Tracer::writeMergedChromeTrace(parts, path);
}

} // namespace obs
} // namespace dtu
