#include "obs/prometheus.hh"

#include <cmath>

#include "sim/json.hh"

namespace dtu
{
namespace obs
{

std::string
promSanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += legal ? c : '_';
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
promLabelEscape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
promSampleValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return jsonNumber(value);
}

namespace
{

void
writeHeader(std::ostream &os, const std::string &metric,
            const std::string &help, const char *type)
{
    if (!help.empty())
        os << "# HELP " << metric << " " << help << "\n";
    os << "# TYPE " << metric << " " << type << "\n";
}

} // namespace

void
writePrometheusText(const StatRegistry &stats, std::ostream &os,
                    const std::string &prefix)
{
    const std::string pre = prefix.empty() ? "" : prefix + "_";

    for (const std::string &name : stats.scalarNames()) {
        const Stat *stat = stats.stat(name);
        std::string metric = pre + promSanitize(name);
        writeHeader(os, metric, stat->description(), "gauge");
        os << metric << " " << promSampleValue(stat->value()) << "\n";
    }

    for (const std::string &name : stats.histogramNames()) {
        const Histogram *hist = stats.histogram(name);
        std::string metric = pre + promSanitize(name);
        writeHeader(os, metric, hist->description(), "histogram");
        // Cumulative le-buckets over the configured [lo, hi) range;
        // the last bucket already holds everything >= hi (edge-bucket
        // clamping), so it folds into +Inf.
        std::uint64_t cumulative = 0;
        const std::vector<std::uint64_t> &buckets = hist->buckets();
        double width =
            (hist->hi() - hist->lo()) / static_cast<double>(buckets.size());
        for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
            cumulative += buckets[i];
            double upper = hist->lo() + static_cast<double>(i + 1) * width;
            os << metric << "_bucket{le=\"" << jsonNumber(upper) << "\"} "
               << cumulative << "\n";
        }
        os << metric << "_bucket{le=\"+Inf\"} " << hist->count() << "\n";
        os << metric << "_sum " << promSampleValue(hist->sum()) << "\n";
        os << metric << "_count " << hist->count() << "\n";
    }
}

} // namespace obs
} // namespace dtu
