#include "obs/perf_monitor.hh"

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/tracer.hh"

namespace dtu
{
namespace obs
{

PerfMonitor::PerfMonitor(const StatRegistry &stats, Tick period,
                         Tracer *tracer)
    : stats_(stats), period_(period), tracer_(tracer)
{
    fatalIf(period_ == 0, "performance sample period must be > 0");
    // The t=0 snapshot anchors rate derivation for the first window.
    last_ = stats_.snapshot(0);
    nextBoundary_ = period_;
}

void
PerfMonitor::watch(const std::string &stat_name)
{
    fatalIf(!stats_.has(stat_name),
            "PerfMonitor cannot watch unknown stat '", stat_name, "'");
    for (const std::string &name : watched_)
        if (name == stat_name)
            return; // idempotent
    watched_.push_back(stat_name);
    series_[stat_name]; // reserve the (possibly empty) series slot
}

void
PerfMonitor::sampleUpTo(Tick now)
{
    while (nextBoundary_ <= now) {
        if (samples_ >= maxSamples_) {
            if (!saturated_) {
                warn(csprintf("PerfMonitor stopped after ", maxSamples_,
                              " samples; raise the period"));
                saturated_ = true;
            }
            return;
        }
        StatSnapshot snap = stats_.snapshot(nextBoundary_);
        const bool tl = tracer_ != nullptr && tracer_->enabled();
        for (const std::string &name : watched_) {
            PerfSample sample;
            sample.at = nextBoundary_;
            sample.value = snap.value(name);
            sample.ratePerSecond = snap.ratePerSecond(last_, name);
            series_[name].push_back(sample);
            if (tl) {
                tracer_->counter("pmu." + name, "rate/s", sample.at,
                                 sample.ratePerSecond);
            }
        }
        last_ = std::move(snap);
        ++samples_;
        nextBoundary_ += period_;
    }
}

const std::vector<PerfSample> &
PerfMonitor::series(const std::string &name) const
{
    static const std::vector<PerfSample> kEmpty;
    auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
}

double
PerfMonitor::latest(const std::string &name) const
{
    const std::vector<PerfSample> &s = series(name);
    return s.empty() ? 0.0 : s.back().value;
}

void
PerfMonitor::writeCsv(std::ostream &os) const
{
    os << "tick,seconds,stat,value,rate_per_s\n";
    // Long form, ordered by sample instant then watch order, so the
    // file reads chronologically.
    for (std::size_t i = 0; i < samples_; ++i) {
        for (const std::string &name : watched_) {
            const std::vector<PerfSample> &s = series(name);
            if (i >= s.size())
                continue; // series saturated early
            const PerfSample &p = s[i];
            os << p.at << "," << jsonNumber(ticksToSeconds(p.at)) << ","
               << name << "," << jsonNumber(p.value) << ","
               << jsonNumber(p.ratePerSecond) << "\n";
        }
    }
}

void
PerfMonitor::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("period_ticks", period_)
        .field("samples", static_cast<std::uint64_t>(samples_));
    json.key("series").beginObject();
    for (const std::string &name : watched_) {
        json.key(name).beginArray();
        for (const PerfSample &p : series(name)) {
            json.beginObject()
                .field("at_ticks", p.at)
                .field("value", p.value)
                .field("rate_per_s", p.ratePerSecond)
                .endObject();
        }
        json.endArray();
    }
    json.endObject();
    json.endObject();
    os << "\n";
}

} // namespace obs
} // namespace dtu
