/**
 * @file
 * PMU-style performance-counter sampling (the "obs" subsystem).
 *
 * A PerfMonitor watches a set of scalar stats — the per-core cycle
 * and MAC counters, DMA pipe bytes, HBM channel bytes, sync-engine
 * wait ticks, the CPME power gauges — and samples them into in-memory
 * time series at a fixed period of simulated time.
 *
 * dtusim's executor computes completion times analytically on
 * capacity ledgers rather than by draining the event queue, so the
 * sampler cannot be a literal periodic Event: nothing would ever
 * fire it. Instead the monitor samples *lazily*: the executor (and
 * any other driver) calls sampleUpTo(now) at its natural progress
 * points, and the monitor emits one sample per elapsed period
 * boundary, stamped at the exact boundary tick. Between boundaries
 * counters are piecewise-constant at the granularity of the driver's
 * hook calls — one operator window for the executor — which is also
 * the granularity the modelled hardware moves them at.
 *
 * Each sample records the raw counter value and the per-second rate
 * derived from the previous sample (StatSnapshot::ratePerSecond).
 * Series export as CSV and JSON, and mirror into the chip Tracer as
 * "pmu.<stat>" counter tracks so the sampled series line up with the
 * operator spans on one timeline.
 */

#ifndef DTU_OBS_PERF_MONITOR_HH
#define DTU_OBS_PERF_MONITOR_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace dtu
{

class Tracer;

namespace obs
{

/** One point of a sampled counter series. */
struct PerfSample
{
    /** Sample boundary this point was emitted at. */
    Tick at = 0;
    /** Raw counter value at the boundary. */
    double value = 0.0;
    /** Per-second rate of change since the previous sample. */
    double ratePerSecond = 0.0;
};

/** Samples watched stats into time series at a fixed period. */
class PerfMonitor
{
  public:
    /**
     * @param stats the registry the watched counters live in.
     * @param period sample period in ticks (> 0).
     * @param tracer optional chip tracer; when enabled, every sample
     *        also lands on a "pmu.<stat>" counter track.
     */
    PerfMonitor(const StatRegistry &stats, Tick period,
                Tracer *tracer = nullptr);

    Tick period() const { return period_; }

    /**
     * Add @p stat_name to the watched set. The stat must already be
     * registered — a misspelled channel is a configuration error, not
     * a silently flat series.
     */
    void watch(const std::string &stat_name);

    /** Watched stat names, in watch() order. */
    const std::vector<std::string> &watched() const { return watched_; }

    /**
     * Catch up sampling to simulated time @p now: emit one sample per
     * period boundary in (lastSampleAt, now]. Calls never move time
     * backwards; a @p now at or before the last boundary is a no-op.
     * Reads counters only — enabling sampling cannot perturb results.
     */
    void sampleUpTo(Tick now);

    /** Sample instants emitted so far. */
    std::size_t sampleCount() const { return samples_; }

    /** Tick of the last emitted sample boundary. */
    Tick lastSampleAt() const { return last_.at; }

    /** Series of @p name (empty when unknown or never sampled). */
    const std::vector<PerfSample> &series(const std::string &name) const;

    /** Latest sampled value of @p name (0.0 when never sampled). */
    double latest(const std::string &name) const;

    /**
     * Export every series as CSV in long (tidy) form:
     * tick,seconds,stat,value,rate_per_s — one line per (sample,
     * stat), ready for pandas/gnuplot.
     */
    void writeCsv(std::ostream &os) const;

    /** Export every series as JSON keyed by stat name. */
    void writeJson(std::ostream &os) const;

  private:
    const StatRegistry &stats_;
    Tick period_;
    Tracer *tracer_;
    std::vector<std::string> watched_;
    std::map<std::string, std::vector<PerfSample>> series_;
    /** Snapshot at the last emitted boundary (rate derivation base). */
    StatSnapshot last_;
    /** Next boundary a sample is due at. */
    Tick nextBoundary_;
    std::size_t samples_ = 0;
    /** Soft cap on sample instants; exceeded => warn once and stop. */
    std::size_t maxSamples_ = 1'000'000;
    bool saturated_ = false;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_PERF_MONITOR_HH
