#include "obs/flight_recorder.hh"

#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{
namespace obs
{

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.requestCapacity == 0,
            "flight recorder request capacity must be positive");
    fatalIf(config_.metricCapacity == 0,
            "flight recorder metric capacity must be positive");
}

void
FlightRecorder::recordRequest(const RequestRecord &record)
{
    requests_.push_back(record);
    while (requests_.size() > config_.requestCapacity)
        requests_.pop_front();
}

void
FlightRecorder::recordMetrics(const FleetMetricSample &sample)
{
    metrics_.push_back(sample);
    while (metrics_.size() > config_.metricCapacity)
        metrics_.pop_front();
}

void
FlightRecorder::recordPowerEvent(unsigned device, const PowerEvent &event)
{
    power_.push_back({device, event});
    while (power_.size() > config_.powerCapacity)
        power_.pop_front();
}

void
FlightRecorder::trigger(const std::string &reason, Tick at)
{
    ++triggers_;
    if (dumped_)
        return; // latched: the black box keeps the first incident
    dumped_ = true;
    std::ostringstream os;
    writeDump(os, reason, at);
    dump_ = os.str();
    if (!config_.dumpPath.empty()) {
        std::ofstream file(config_.dumpPath);
        fatalIf(!file, "cannot open flight recorder dump '",
                config_.dumpPath, "'");
        file << dump_;
        fatalIf(!file.good(), "error writing flight recorder dump '",
                config_.dumpPath, "'");
    }
    warn(csprintf("flight recorder triggered (", reason, ") at t=", at,
                  "ps: dumped ", requests_.size(), " requests, ",
                  metrics_.size(), " metric snapshots"));
}

void
FlightRecorder::writeLastDump(const std::string &path) const
{
    fatalIf(dump_.empty(), "flight recorder has not dumped yet");
    std::ofstream file(path);
    fatalIf(!file, "cannot open flight recorder dump '", path, "'");
    file << dump_;
    fatalIf(!file.good(), "error writing flight recorder dump '", path,
            "'");
}

void
FlightRecorder::reset()
{
    requests_.clear();
    metrics_.clear();
    power_.clear();
    triggers_ = 0;
    dumped_ = false;
    dump_.clear();
}

void
FlightRecorder::writeDump(std::ostream &os, const std::string &reason,
                          Tick at) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("reason", reason).field("at_ticks", at);
    json.field("buffered_requests",
               static_cast<std::uint64_t>(requests_.size()));
    json.field("buffered_metrics",
               static_cast<std::uint64_t>(metrics_.size()));
    json.field("buffered_power_events",
               static_cast<std::uint64_t>(power_.size()));

    json.key("requests").beginArray();
    for (const RequestRecord &r : requests_) {
        const serve::RequestOutcome &o = r.outcome;
        json.beginObject()
            .field("id", o.request.id)
            .field("model", o.request.model)
            .field("device", static_cast<std::int64_t>(o.device))
            .field("arrival_ticks", o.request.arrival)
            .field("dispatched_ticks", o.dispatched)
            .field("terminal_ticks", o.completed)
            .field("batch", static_cast<std::uint64_t>(o.batchSize))
            .field("retries", static_cast<std::uint64_t>(o.retries))
            .field("executed", r.executed)
            .field("device_linked", r.deviceLinked)
            .field("missed", o.missedDeadline())
            .field("outcome", o.outcomeName());
        if (o.request.generative()) {
            json.field("first_token_ticks", o.firstToken)
                .field("tokens_emitted",
                       static_cast<std::uint64_t>(o.tokensEmitted));
        }
        json.endObject();
    }
    json.endArray();

    json.key("metrics").beginArray();
    for (const FleetMetricSample &s : metrics_) {
        json.beginObject().field("at_ticks", s.at);
        json.key("devices").beginArray();
        for (const DeviceMetricSample &d : s.devices) {
            json.beginObject()
                .field("device", static_cast<std::uint64_t>(d.device))
                .field("queue_depth", d.queueDepth)
                .field("in_flight_batches", d.inFlightBatches)
                .field("outstanding", d.outstanding)
                .field("completed", d.completed)
                .field("dropped", d.dropped)
                .field("retries", d.retries);
            if (d.hasPower) {
                json.field("power_watts", d.powerWatts)
                    .field("energy_joules", d.energyJoules)
                    .field("throttle_fraction", d.throttleFraction)
                    .field("frequency_ghz", d.frequencyGhz);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.key("power_events").beginArray();
    for (const PowerEventRecord &p : power_) {
        json.beginObject();
        json.field("device", static_cast<std::uint64_t>(p.device));
        json.key("event");
        writePowerEventJson(p.event, json);
        json.endObject();
    }
    json.endArray();

    json.endObject();
    os << "\n";
}

} // namespace obs
} // namespace dtu
