/**
 * @file
 * Request-lifecycle distributed tracing for the serving runtime.
 *
 * Chip tracing (sim/tracer.hh) ends at the device edge: it shows
 * operators and DMA but not the journey a request takes through the
 * fleet. The RequestTracer closes that gap. Every request already
 * carries a unique id — that id doubles as its trace id — and the
 * serving layers report lifecycle hooks as they handle it: router
 * choice, enqueue/admission, weight placement, batch formation,
 * device execution, retry, and the terminal completion or drop.
 *
 * Sampled requests materialize as causally-linked spans in the
 * tracer's own timeline (per-device pid lanes: "dev<N>.requests"
 * processes with queue / execute / lifecycle threads), tied together
 * by Chrome flow arrows keyed on the request id. The arrows cross
 * into the *chip* tracer: while a sampled request's batch executes,
 * the scheduler force-enables the device timeline (ScopedTracerEnable)
 * and drops a flow step onto the "runtime.operators" track, so
 * opening the merged export in Perfetto walks queue wait -> batch
 * execution -> the exact operator spans that served the request.
 *
 * Sampling is head-based: whether a request is traced is a pure hash
 * of (seed, request id), decided identically at every hook site, so
 * a sampled request's chain is always complete and the decision draws
 * no simulator RNG state. With no RequestTracer attached every hook
 * is a null-pointer check and serving output is bit-for-bit
 * unchanged (golden-asserted in the tests).
 *
 * The tracer also ingests the fleet's periodic metric snapshots
 * (obs/fleet_metrics.hh), turning them into per-device counter
 * tracks, and forwards finished lifecycles + snapshots to an
 * attached FlightRecorder.
 */

#ifndef DTU_OBS_REQUEST_TRACER_HH
#define DTU_OBS_REQUEST_TRACER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/fleet_metrics.hh"
#include "obs/flight_recorder.hh"
#include "serve/request.hh"
#include "sim/tracer.hh"

namespace dtu
{
namespace obs
{

/** Sampling and metric policy for request tracing. */
struct RequestTraceConfig
{
    /**
     * Head-based sampling rate: the fraction of requests traced.
     * The decision is a pure function of (seed, request id), so one
     * request is either fully traced or fully invisible.
     */
    double sampleRate = 1.0;
    /** Seed for the sampling hash (independent of simulator RNGs). */
    std::uint64_t seed = 1;
    /**
     * Period of fleet metric snapshots in ticks (simulated time);
     * 0 disables the time-series. Default 100 us.
     */
    Tick metricPeriod = 100'000'000;
};

/** Samples request lifecycles into a Chrome/Perfetto timeline. */
class RequestTracer
{
  public:
    explicit RequestTracer(RequestTraceConfig config = {});
    RequestTracer(const RequestTracer &) = delete;
    RequestTracer &operator=(const RequestTracer &) = delete;

    const RequestTraceConfig &config() const { return config_; }

    /** Whole-trace sampling decision for @p id (pure, stateless). */
    bool sampled(std::uint64_t id) const;

    /** The request-lane timeline (always recording; spans are only
     *  emitted for sampled requests). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Forward finished lifecycles + metric snapshots here. */
    void setFlightRecorder(FlightRecorder *recorder)
    {
        flight_ = recorder;
    }

    //
    // Lifecycle hooks, called by serve::Fleet / serve::Scheduler.
    //

    /** The router assigned @p r to @p device (fleet runs only). */
    void onRoute(unsigned device, const serve::Request &r);

    /** @p r passed admission control into @p device's queue. */
    void onAdmit(unsigned device, const serve::Request &r);

    /** @p device began a modeled weight load for @p model. */
    void onWeightLoad(unsigned device, const std::string &model,
                      Tick start, Tick end, std::uint64_t bytes);

    /**
     * A batch holding @p batch dispatched on @p device at
     * @p dispatched and executed through @p exec_end after
     * @p retries re-runs. @p chip is the device's own tracer —
     * currently force-enabled by the caller — and @p link_ts is a
     * tick inside one of the chip-level operator spans the batch
     * produced; a flow step lands there for every sampled rider.
     */
    void onBatchExecuted(unsigned device, Tracer &chip,
                         const std::vector<serve::Request> &batch,
                         Tick dispatched, Tick exec_end,
                         Tick link_ts, unsigned retries);

    /** Terminal state: @p completed finished on @p device. */
    void onComplete(unsigned device,
                    const serve::RequestOutcome &completed);

    /** Terminal state: @p dropped left @p device's pipeline. */
    void onDrop(unsigned device, const serve::RequestOutcome &dropped);

    //
    // Metric time-series.
    //

    Tick metricPeriod() const { return config_.metricPeriod; }

    /** Ingest one fleet snapshot: counter tracks + series + ring. */
    void recordMetrics(const FleetMetricSample &sample);

    const FleetMetricSeries &metrics() const { return series_; }

    //
    // Results.
    //

    /** Finished sampled lifecycles, in terminal-event order. */
    const std::vector<RequestRecord> &finished() const
    {
        return finished_;
    }

    /** Sampled requests seen so far (terminal or not). */
    std::uint64_t sampledSeen() const { return sampledSeen_; }

    /**
     * Merged Chrome trace: the request lanes plus each device's chip
     * timeline ("dev<i>" process prefixes, disjoint pids, shared
     * flow ids). @p chips is indexed by fleet device.
     */
    void exportTrace(const std::vector<const Tracer *> &chips,
                     std::ostream &os) const;

    /** exportTrace into a file; fatal() on I/O failure. */
    void writeTrace(const std::vector<const Tracer *> &chips,
                    const std::string &path) const;

  private:
    /** The record for @p id, created (and counted) on first sight. */
    RequestRecord &recordFor(std::uint64_t id,
                             const serve::Request &r);

    /** Emit the finished record's spans + flows, then retire it. */
    void finishRecord(RequestRecord &rec);

    static std::string deviceProcess(int device);

    RequestTraceConfig config_;
    std::uint64_t threshold_ = 0;
    Tracer tracer_;
    FleetMetricSeries series_;
    FlightRecorder *flight_ = nullptr;
    /** Sampled requests whose terminal event has not arrived. */
    std::map<std::uint64_t, RequestRecord> pending_;
    std::vector<RequestRecord> finished_;
    std::uint64_t sampledSeen_ = 0;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_REQUEST_TRACER_HH
