/**
 * @file
 * Prometheus text-exposition export of a StatRegistry.
 *
 * Renders every scalar stat as a gauge and every histogram in the
 * native Prometheus histogram form (cumulative le-buckets plus _sum
 * and _count) in the version-0.0.4 text format a Prometheus server
 * scrapes. Hierarchical stat names ("dtu2.cluster0.pg1.dma.bytes")
 * sanitize to legal metric names (dots become underscores) and keep
 * their StatRegistry description as the HELP line, so a live
 * dashboard and the simulator's own dumps speak the same vocabulary.
 */

#ifndef DTU_OBS_PROMETHEUS_HH
#define DTU_OBS_PROMETHEUS_HH

#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace dtu
{
namespace obs
{

/**
 * Sanitize an arbitrary stat name into a legal Prometheus metric
 * name: [a-zA-Z0-9_:] only, with a leading underscore prepended when
 * the name would start with a digit.
 */
std::string promSanitize(const std::string &name);

/**
 * Escape a label value for use inside {name="..."}: backslash,
 * double quote, and newline escape per the text-format spec.
 */
std::string promLabelEscape(const std::string &value);

/**
 * Render a sample value. Prometheus spells non-finite values "NaN",
 * "+Inf" and "-Inf" (JSON-style "null" is a parse error on scrape).
 */
std::string promSampleValue(double value);

/**
 * Write @p stats in Prometheus text exposition format.
 * @param prefix prepended (with '_') to every metric name so chips
 *        scrape under one namespace; empty disables.
 */
void writePrometheusText(const StatRegistry &stats, std::ostream &os,
                         const std::string &prefix = "dtusim");

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_PROMETHEUS_HH
