/**
 * @file
 * Fleet energy & power observability: per-component attribution,
 * power telemetry, and the CPME decision feed.
 *
 * The chips have always *metered* energy (one joules scalar per run);
 * an operator wants to know where it went and when. The EnergyMonitor
 * attaches to every chip of a Server or Fleet and turns the meters
 * into telemetry:
 *
 *  - per-component energy attribution (compute-MAC, vector-SPU, L1,
 *    L2, HBM, DMA, static leakage) per device and fleet-wide, read
 *    from each EnergyMeter's running EnergyBreakdown;
 *  - per-device power samples (mean watts since the previous sample,
 *    cumulative joules, CPME throttle fraction, DVFS point) folded
 *    into the fleet metric time-series at the serving loop's
 *    observation points;
 *  - the CPME/LPME decision audit trail: attach() installs each
 *    chip's PowerAuditTrail and every sample point drains the fresh
 *    decisions into the SLO flight recorder, so an incident dump can
 *    replay "denied 12 W -> coasted to 1.1 GHz -> throttled ->
 *    recovered" next to the request lifecycles;
 *  - an optional per-operator energy-feature corpus (shape, roofline
 *    intensity, top-down tick mix, joules by component) for offline
 *    modeling;
 *  - the EnergyReport JSON artifact and the dtusim_power_* /
 *    dtusim_energy_* Prometheus families.
 *
 * Strictly opt-in, like every observer in this tree: without a
 * monitor attached the serving path is bit-for-bit unchanged, and
 * every JSON field the monitor adds is gated so energy-disabled
 * artifacts keep the pre-energy format byte-for-byte.
 */

#ifndef DTU_OBS_ENERGY_MONITOR_HH
#define DTU_OBS_ENERGY_MONITOR_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/fleet_metrics.hh"
#include "power/power_event.hh"
#include "power/power_model.hh"
#include "sim/ticks.hh"

namespace dtu
{

class Dtu;
struct ExecResult;

namespace obs
{

class FlightRecorder;

/** Sampling and audit knobs. */
struct EnergyMonitorConfig
{
    /**
     * Power-sample period in simulated ticks. Used by drivers that
     * have no request tracer attached (the tracer's metricPeriod
     * wins when both are present, so the two observers share one
     * sample stream). 0 disables periodic sampling; run totals and
     * the audit trail still work.
     */
    Tick samplePeriod = 1'000'000'000; // 1 ms
    /** Ring capacity of each chip's installed PowerAuditTrail. */
    std::size_t auditCapacity = 1024;
    /** Record the per-operator energy-feature corpus (opt-in). */
    bool corpus = false;
};

/** One per-operator energy-feature corpus row. */
struct EnergyCorpusRow
{
    unsigned device = 0;
    std::string model;
    /** Which execution produced it: "batch", "prefill", "decode". */
    std::string phase;
    std::string op;
    std::string kind;
    double macs = 0.0;
    double bytes = 0.0;
    /** Roofline intensity, MACs per logical byte. */
    double intensity = 0.0;
    /** Top-down tick mix (see PhaseBreakdown's attribution rules). */
    double issueTicks = 0.0;
    double dmaTicks = 0.0;
    double otherTicks = 0.0;
    double frequencyGhz = 0.0;
    double throttle = 0.0;
    EnergyBreakdown energy;
};

/** The fleet-wide energy/power observer. */
class EnergyMonitor
{
  public:
    explicit EnergyMonitor(EnergyMonitorConfig config = {});

    const EnergyMonitorConfig &config() const { return config_; }
    Tick samplePeriod() const { return config_.samplePeriod; }
    bool corpusEnabled() const { return config_.corpus; }

    /**
     * Watch chip @p dtu as fleet device @p device. Installs the
     * chip's PowerAuditTrail (unless one is already present) and
     * snapshots the meter baselines. Attach every device before the
     * first beginRun().
     */
    void attach(unsigned device, Dtu &dtu);

    /** Devices currently attached. */
    std::size_t deviceCount() const { return devices_.size(); }

    /**
     * Forward drained CPME/LPME decisions to @p recorder's power
     * ring (null detaches).
     */
    void setFlightRecorder(FlightRecorder *recorder)
    {
        flightRec_ = recorder;
    }

    /**
     * A serving run starts at simulated time @p at: clear the sample
     * series and each chip's audit trail, and re-baseline the meters
     * so all reported energy is this run's. The corpus is *not*
     * cleared — it accumulates across runs by design.
     */
    void beginRun(Tick at);

    /**
     * Fill the power telemetry of @p sample's device entries (mean
     * watts since the previous sample, cumulative joules, throttle
     * fraction, DVFS point), append the sample to the series, and
     * drain fresh audit events into the flight recorder. Called by
     * the serving loop at its metric observation points.
     */
    void annotate(FleetMetricSample &sample);

    /**
     * The run ended at @p at: extend the power-averaging span to the
     * final completion and drain the audit tails.
     */
    void endRun(Tick at);

    /** Energy consumed by @p device since beginRun(), by component. */
    EnergyBreakdown runBreakdown(unsigned device) const;

    /** Joules consumed by @p device since beginRun(). */
    double runJoules(unsigned device) const;

    /** The power-annotated sample series of the current run. */
    const FleetMetricSeries &series() const { return series_; }

    /** The audit trail installed on @p device, or nullptr. */
    const PowerAuditTrail *auditTrail(unsigned device) const;

    /**
     * Append one executed batch's operator traces to the energy
     * corpus (no-op unless config().corpus).
     */
    void recordOps(unsigned device, const std::string &model,
                   const std::string &phase, const ExecResult &result);

    const std::vector<EnergyCorpusRow> &corpus() const
    {
        return corpus_;
    }

    /** Serialize the corpus as a JSON array of feature rows. */
    void writeCorpusJson(std::ostream &os) const;

    /**
     * The EnergyReport artifact: per-device component breakdowns,
     * mean watts, throttle fractions, and audit summaries plus the
     * fleet rollup, as one JSON document.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Export the dtusim_power_* and dtusim_energy_* gauge families
     * (per-device watts, frequency, throttle fraction, limit and
     * reserve watts, total and per-component joules, and per-kind
     * audit decision counts).
     */
    void writePrometheus(std::ostream &os,
                         const std::string &prefix = "dtusim") const;

  private:
    struct DeviceState
    {
        unsigned device = 0;
        Dtu *dtu = nullptr;
        PowerAuditTrail *audit = nullptr;
        /** Run baselines (set by beginRun). */
        Tick runStart = 0;
        double joulesBase = 0.0;
        EnergyBreakdown breakdownBase;
        std::uint64_t windowsBase = 0;
        std::uint64_t throttledBase = 0;
        /** Previous-sample state (for deltas). */
        Tick lastAt = 0;
        double lastJoules = 0.0;
        std::uint64_t lastWindows = 0;
        std::uint64_t lastThrottled = 0;
        /** Audit events (absolute index) already forwarded. */
        std::uint64_t forwarded = 0;
    };

    DeviceState *find(unsigned device);
    const DeviceState *find(unsigned device) const;
    void drainAudit(DeviceState &dev);

    EnergyMonitorConfig config_;
    std::vector<DeviceState> devices_;
    FleetMetricSeries series_;
    std::vector<EnergyCorpusRow> corpus_;
    FlightRecorder *flightRec_ = nullptr;
};

} // namespace obs
} // namespace dtu

#endif // DTU_OBS_ENERGY_MONITOR_HH
