#include "obs/slo_monitor.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dtu
{
namespace obs
{

namespace
{

/** Exact nearest-rank percentile of an ascending-sorted sample set. */
double
nearestRank(const std::vector<double> &sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    double rank =
        fraction * static_cast<double>(sorted.size());
    auto idx = static_cast<std::size_t>(std::ceil(rank));
    idx = std::clamp<std::size_t>(idx, 1, sorted.size());
    return sorted[idx - 1];
}

} // namespace

SloMonitor::SloMonitor(SloConfig config) : config_(config)
{
    fatalIf(config_.window == 0, "SLO window must be positive");
    fatalIf(config_.sloTarget <= 0.0 || config_.sloTarget >= 1.0,
            "SLO target must be in (0, 1)");
}

void
SloMonitor::onAlert(AlertCallback callback)
{
    callback_ = std::move(callback);
}

void
SloMonitor::addAlertListener(AlertCallback listener)
{
    listeners_.push_back(std::move(listener));
}

void
SloMonitor::fireAlert(const SloAlert &alert)
{
    if (callback_)
        callback_(alert);
    for (const AlertCallback &listener : listeners_)
        listener(alert);
}

void
SloMonitor::recordCompletion(const serve::RequestOutcome &completed)
{
    PendingCompletion p;
    p.at = completed.completed;
    p.latencyMs = ticksToMilliSeconds(completed.latency());
    p.missed = completed.missedDeadline();
    pendingCompletions_.push_back(p);
    ++totalCompleted_;
    if (p.missed)
        ++totalMissed_;
}

void
SloMonitor::recordDrop(const serve::RequestOutcome &dropped)
{
    pendingDrops_.push_back(dropped.completed);
    ++totalDropped_;
}

void
SloMonitor::closeWindow()
{
    const Tick window_end = windowStart_ + config_.window;

    SloWindow w;
    w.start = windowStart_;
    w.end = window_end;

    std::vector<double> latencies;
    auto in_window = [&](Tick at) { return at < window_end; };
    // Events are ingested as simulated time advances, so everything
    // pending for this window sits at its front; partition keeps the
    // rest for the following windows.
    auto keep_completion =
        std::stable_partition(pendingCompletions_.begin(),
                              pendingCompletions_.end(),
                              [&](const PendingCompletion &p) {
                                  return !in_window(p.at);
                              });
    for (auto it = keep_completion; it != pendingCompletions_.end();
         ++it) {
        ++w.completed;
        if (it->missed)
            ++w.missed;
        latencies.push_back(it->latencyMs);
    }
    pendingCompletions_.erase(keep_completion, pendingCompletions_.end());
    auto keep_drop = std::stable_partition(
        pendingDrops_.begin(), pendingDrops_.end(),
        [&](Tick at) { return !in_window(at); });
    w.dropped = static_cast<std::uint64_t>(
        std::distance(keep_drop, pendingDrops_.end()));
    pendingDrops_.erase(keep_drop, pendingDrops_.end());

    windowStart_ = window_end;
    if (w.total() == 0)
        return; // idle window: nothing to report or alert on

    std::sort(latencies.begin(), latencies.end());
    w.p50Ms = nearestRank(latencies, 0.50);
    w.p95Ms = nearestRank(latencies, 0.95);
    w.p99Ms = nearestRank(latencies, 0.99);

    double seconds = ticksToSeconds(config_.window);
    w.throughputPerSecond = static_cast<double>(w.completed) / seconds;
    w.goodputPerSecond =
        static_cast<double>(w.completed - w.missed) / seconds;
    // An sloTarget at (or past) 1.0 would make the error-budget
    // denominator zero: every miss is then infinitely over budget,
    // which is correct arithmetic but poison in JSON and Prometheus
    // exports. Saturate to the bad fraction over the smallest
    // representable budget instead of dividing by zero.
    double bad = static_cast<double>(w.missed + w.dropped);
    double budget = std::max(1.0 - config_.sloTarget,
                             std::numeric_limits<double>::min());
    w.burnRate = bad / static_cast<double>(w.total()) / budget;

    if (config_.p99AlertMs > 0.0 && w.p99Ms > config_.p99AlertMs) {
        alerts_.push_back(
            {w.end, "p99_latency", w.p99Ms, config_.p99AlertMs});
        fireAlert(alerts_.back());
    }
    if (config_.burnRateAlert > 0.0 &&
        w.burnRate > config_.burnRateAlert) {
        alerts_.push_back(
            {w.end, "slo_burn_rate", w.burnRate, config_.burnRateAlert});
        fireAlert(alerts_.back());
    }
    windows_.push_back(std::move(w));
}

void
SloMonitor::advanceTo(Tick now)
{
    while (windowStart_ + config_.window <= now)
        closeWindow();
}

void
SloMonitor::finish(Tick at)
{
    advanceTo(at);
    // The final partial window: the run ended inside it; report it
    // if anything happened there.
    if (!pendingCompletions_.empty() || !pendingDrops_.empty())
        closeWindow();
}

void
SloMonitor::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("config").beginObject();
    json.field("window_ticks", config_.window)
        .field("slo_target", config_.sloTarget)
        .field("p99_alert_ms", config_.p99AlertMs)
        .field("burn_rate_alert", config_.burnRateAlert);
    json.endObject();
    json.field("total_completed", totalCompleted_)
        .field("total_missed", totalMissed_)
        .field("total_dropped", totalDropped_);
    json.key("windows").beginArray();
    for (const SloWindow &w : windows_) {
        json.beginObject()
            .field("start_ticks", w.start)
            .field("end_ticks", w.end)
            .field("completed", w.completed)
            .field("missed", w.missed)
            .field("dropped", w.dropped)
            .field("p50_ms", w.p50Ms)
            .field("p95_ms", w.p95Ms)
            .field("p99_ms", w.p99Ms)
            .field("goodput_per_s", w.goodputPerSecond)
            .field("throughput_per_s", w.throughputPerSecond)
            .field("burn_rate", w.burnRate)
            .endObject();
    }
    json.endArray();
    json.key("alerts").beginArray();
    for (const SloAlert &a : alerts_) {
        json.beginObject()
            .field("at_ticks", a.at)
            .field("kind", a.kind)
            .field("value", a.value)
            .field("threshold", a.threshold)
            .endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

void
SloMonitor::writeCsv(std::ostream &os) const
{
    os << "start_tick,end_tick,completed,missed,dropped,p50_ms,p95_ms,"
          "p99_ms,goodput_per_s,throughput_per_s,burn_rate\n";
    for (const SloWindow &w : windows_) {
        os << w.start << "," << w.end << "," << w.completed << ","
           << w.missed << "," << w.dropped << "," << jsonNumber(w.p50Ms)
           << "," << jsonNumber(w.p95Ms) << "," << jsonNumber(w.p99Ms)
           << "," << jsonNumber(w.goodputPerSecond) << ","
           << jsonNumber(w.throughputPerSecond) << ","
           << jsonNumber(w.burnRate) << "\n";
    }
}

} // namespace obs
} // namespace dtu
